"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's artefacts:

* ``figure12`` / ``figure13`` / ``figure14a`` / ``figure14b`` /
  ``figure14c`` / ``figure15`` -- regenerate an evaluation figure;
* ``salp``        -- subarray-level-parallelism interaction sweep
  (SALP-1/SALP-2/MASA vs SAM-en and the composed SAM-en+masa design);
* ``kernels``     -- micro-kernel stride sweep over the generated
  workload families (stream/strided/PolyBench) on baseline vs SAM-en
  vs masa, the Figure-14-style sensitivity grid;
* ``table1``      -- the qualitative comparison matrix;
* ``reliability`` -- the fault-injection matrix;
* ``query``       -- run one SQL statement on a chosen design
  (``--explain`` prints the physical plan instead of simulating);
* ``explain``     -- show the planner's operator tree for a statement;
* ``trace``       -- ``trace report`` runs one statement with the
  cycle-level timeline recorder attached and prints per-bank
  utilization / row-hit-rate tables plus the stall breakdown;
* ``bench``       -- host-performance baseline over a pinned kernel
  set (``--compare BENCH_x.json`` gates regressions for CI);
* ``schemes``     -- list the available designs.

Every figure/table command also speaks JSON (``--json``) and can drop
its payload into an artifacts directory (``--artifacts DIR``); ``query``
additionally offers ``--stats`` (metrics registry dump), ``--profile``
(phase-span flamegraph), ``--trace`` (command-level trace summary,
exported as JSONL when combined with ``--artifacts``), ``--stalls``
(cycle-accounting stall attribution) and ``--timeline`` (timeline
recording; Chrome trace-event export with ``--artifacts``).  Sweep
commands accept ``--timeline`` to record every simulated point.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _add_size_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ta", type=int, default=512,
                        help="records in the wide table Ta")
    parser.add_argument("--tb", type=int, default=1024,
                        help="records in the narrow table Tb")


def _add_output_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", action="store_true",
                        help="emit the result as JSON instead of text")
    parser.add_argument("--artifacts", metavar="DIR", default=None,
                        help="also write the result into DIR as JSON")


def _add_sweep_args(parser: argparse.ArgumentParser) -> None:
    """Shared flags of every sweep-driven command (the figures and the
    reliability matrix all execute through :class:`repro.exp.SweepEngine`)."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep points "
                             "(results are identical at any N)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR, else ~/.cache/repro/sweeps)")
    parser.add_argument("--no-cache", action="store_true",
                        help="re-simulate every point; neither read nor "
                             "write the result cache")
    parser.add_argument("--check", action="store_true",
                        help="attach the repro.check protocol checker and "
                             "plan oracle to every simulated point (a "
                             "violation aborts the sweep)")
    parser.add_argument("--timeline", action="store_true",
                        help="record a cycle-level timeline for every "
                             "simulated point (cached points are still "
                             "hits: the flag is not part of the cache "
                             "key); Chrome trace-event exports land in "
                             "--artifacts when set")


def _make_engine(args):
    """A :class:`SweepEngine` from the shared sweep flags."""
    from .exp import ResultCache, SweepEngine, default_cache_dir

    cache = None
    if not getattr(args, "no_cache", False):
        cache = ResultCache(
            getattr(args, "cache_dir", None) or default_cache_dir()
        )
    return SweepEngine(jobs=getattr(args, "jobs", 1), cache=cache,
                       check=getattr(args, "check", False),
                       timeline=getattr(args, "timeline", False),
                       timeline_dir=getattr(args, "artifacts", None))


def _finish_sweep(args, name: str, engine) -> None:
    """Engine epilogue: one-line summary on stderr, sweep manifest into
    the artifacts directory when one was requested."""
    print(engine.summary(), file=sys.stderr)
    if getattr(args, "artifacts", None):
        from .obs.artifacts import ArtifactWriter

        path = ArtifactWriter(args.artifacts).write_json(
            f"{name}.sweep.json", engine.manifest()
        )
        print(f"wrote {path}", file=sys.stderr)


def _emit(args, name: str, payload, text_fn) -> int:
    """Common output path: text by default, JSON and/or artifacts on
    request.  ``text_fn`` is lazy so --json skips ASCII rendering."""
    from .obs.artifacts import ArtifactWriter, to_jsonable

    if getattr(args, "artifacts", None):
        path = ArtifactWriter(args.artifacts).write_json(
            f"{name}.json", payload
        )
        print(f"wrote {path}", file=sys.stderr)
    if getattr(args, "json", False):
        print(json.dumps(to_jsonable(payload), indent=2, sort_keys=True))
    else:
        print(text_fn())
    return 0


def _cmd_figure12(args) -> int:
    from .harness.figure12 import run_figure12

    engine = _make_engine(args)
    result = run_figure12(
        n_ta=args.ta, n_tb=args.tb,
        designs=args.designs or None,
        queries=args.queries or None,
        engine=engine,
    )
    code = _emit(args, "figure12", result.payload(), result.render)
    _finish_sweep(args, "figure12", engine)
    return code


def _cmd_figure13(args) -> int:
    from .harness.figure13 import run_figure13

    engine = _make_engine(args)
    designs = args.designs or ["baseline", "SAM-sub", "SAM-IO", "SAM-en"]
    result = run_figure13(n_ta=args.ta, n_tb=args.tb, designs=designs,
                          engine=engine)
    code = _emit(args, "figure13", result.payload(), result.render)
    _finish_sweep(args, "figure13", engine)
    return code


def _cmd_figure14a(args) -> int:
    from .harness.figure14 import run_figure14a

    engine = _make_engine(args)
    result = run_figure14a(n_ta=args.ta, n_tb=args.tb, engine=engine)
    code = _emit(args, "figure14a", result.payload(), result.render)
    _finish_sweep(args, "figure14a", engine)
    return code


def _cmd_figure14b(args) -> int:
    from .harness.figure14 import run_figure14b

    engine = _make_engine(args)
    result = run_figure14b(n_ta=args.ta, n_tb=args.tb, engine=engine)
    code = _emit(args, "figure14b", result.payload(), result.render)
    _finish_sweep(args, "figure14b", engine)
    return code


def _cmd_figure14c(args) -> int:
    from .harness.figure14 import figure14c_payload, render_figure14c

    return _emit(args, "figure14c", figure14c_payload(), render_figure14c)


def _cmd_figure15(args) -> int:
    from .harness.figure15 import run_figure15

    known = set("abcdefghi")
    selected = args.panels or sorted(known)
    for key in selected:
        if key not in known:
            print(f"unknown panel {key!r} (have {sorted(known)})",
                  file=sys.stderr)
            return 2
    engine = _make_engine(args)
    panels = run_figure15(n_ta=args.ta, engine=engine)
    payload = {
        "kind": "figure15",
        "panels": {key: panels[key].payload() for key in selected},
    }

    def text() -> str:
        return "\n\n".join(panels[key].render() for key in selected)

    code = _emit(args, "figure15", payload, text)
    _finish_sweep(args, "figure15", engine)
    return code


def _cmd_salp(args) -> int:
    from .harness.salp import run_salp_sweep

    engine = _make_engine(args)
    result = run_salp_sweep(
        n_ta=args.ta, n_tb=args.tb,
        designs=args.designs or None,
        queries=args.queries or None,
        engine=engine,
    )
    code = _emit(args, "salp", result.payload(), result.render)
    _finish_sweep(args, "salp", engine)
    return code


def _cmd_kernels(args) -> int:
    from .harness.kernels import run_kernel_sweep

    engine = _make_engine(args)
    result = run_kernel_sweep(
        designs=args.designs or None,
        gather_factor=args.gather,
        engine=engine,
    )
    code = _emit(args, "kernels", result.payload(), result.render)
    _finish_sweep(args, "kernels", engine)
    return code


def _cmd_table1(args) -> int:
    from .core.compare import comparison_matrix, render_table

    payload = {"kind": "table1", "matrix": comparison_matrix()}
    return _emit(args, "table1", payload, render_table)


def _cmd_reliability(args) -> int:
    from .harness.reliability import (
        render_rows,
        rows_payload,
        run_reliability,
    )

    engine = _make_engine(args)
    rows = run_reliability(trials=args.trials, engine=engine)
    if args.json or args.artifacts:
        code = _emit(args, "reliability", rows_payload(rows, args.trials),
                     lambda: render_rows(rows))
    else:
        print(render_rows(rows))
        code = 0
    _finish_sweep(args, "reliability", engine)
    return code


def _explain_one(scheme_name, query, tables, gather_factor, as_json):
    from .imdb.planner import plan_for

    plan = plan_for(scheme_name, query, tables,
                    gather_factor=gather_factor)
    if as_json:
        return plan.to_dict()
    return plan.explain()


def _cmd_explain(args) -> int:
    from .core.registry import available_schemes
    from .workloads import make_tables
    from .imdb.sql import parse

    query = parse(args.sql, name="cli")
    tables = make_tables(args.ta, args.tb)
    schemes = available_schemes() if args.all_schemes else [args.scheme]

    def gather_for(name):
        # stride-less designs reject an explicit gather factor; with
        # --all-schemes the flag only applies where it is meaningful
        from .core.registry import _NO_STRIDE

        if args.all_schemes and name in _NO_STRIDE:
            return None
        return args.gather

    if args.json:
        payload = {
            name: _explain_one(name, query, tables, gather_for(name), True)
            for name in schemes
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    blocks = []
    for name in schemes:
        tree = _explain_one(name, query, tables, gather_for(name), False)
        blocks.append(f"-- {name} --\n{tree}" if args.all_schemes else tree)
    print("\n\n".join(blocks))
    return 0


def _cmd_query(args) -> int:
    from .workloads import make_tables
    from .imdb.sql import parse
    from .obs import Observation
    from .sim.runner import run_query

    query = parse(args.sql, name="cli")
    tables = make_tables(args.ta, args.tb)
    if args.explain:
        # plan only -- no simulation
        out = _explain_one(args.scheme, query, tables, args.gather,
                           args.json)
        print(json.dumps(out, indent=2, sort_keys=True) if args.json
              else out)
        return 0
    observe = Observation(trace=args.trace, timeline=args.timeline,
                          artifacts_dir=args.artifacts)
    result = run_query(args.scheme, query, tables,
                       gather_factor=args.gather, observe=observe,
                       check=args.check)
    if args.json:
        from .obs.artifacts import to_jsonable

        print(json.dumps(to_jsonable(result.manifest()), indent=2,
                         sort_keys=True))
    else:
        print(f"scheme   : {result.scheme}")
        print(f"result   : {result.result}")
        print(f"cycles   : {result.cycles}  ({result.ns / 1000:.1f} us)")
        print(f"power    : {result.power.total_mw:.0f} mW")
        stats = result.memory_stats
        print(
            f"commands : {stats.reads} RD ({stats.gather_reads} gathers), "
            f"{stats.writes} WR, {stats.acts + stats.col_acts} ACT, "
            f"{stats.mode_switches} mode switches"
        )
        if args.check:
            print(
                f"checked  : {observe.registry.value('check.commands')} "
                f"commands, 0 violations"
            )
    if args.stats:
        print()
        print(observe.registry.render())
    if args.profile:
        print()
        print(observe.profiler.render())
    if args.trace and not args.json:
        print()
        print(observe.tracer.report(result.cycles))
    if args.stalls and not args.json:
        from .obs import render_stall_report

        print()
        print("stall attribution (cycles):")
        print(render_stall_report(result.stalls["per_core"]))
    if args.timeline and not args.json:
        print()
        print(observe.timeline_recorder.report())
    if observe.manifest_path is not None:
        print(f"wrote {observe.manifest_path}", file=sys.stderr)
    if args.baseline and args.scheme != "baseline":
        tables = make_tables(args.ta, args.tb)
        base = run_query("baseline", query, tables)
        print(f"speedup  : {base.cycles / result.cycles:.2f}x over baseline")
    return 0


def _cmd_bench(args) -> int:
    from .harness.bench import (
        compare_bench,
        load_bench,
        profile_bench,
        render_bench,
        run_bench,
        write_bench,
    )

    if args.profile:
        from .obs.artifacts import ArtifactWriter

        payload, text = profile_bench(
            n_ta=args.ta, n_tb=args.tb, top_n=args.profile_top
        )
        print(text, end="")
        writer = ArtifactWriter(args.out)
        path = writer.write_json("bench-profile.json", payload)
        print(f"wrote {path}", file=sys.stderr)
        return 0

    payload = run_bench(args.label, n_ta=args.ta, n_tb=args.tb,
                        repeats=args.repeats)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_bench(payload))
    path = write_bench(payload, args.out)
    print(f"wrote {path}", file=sys.stderr)
    if args.compare:
        baseline = load_bench(args.compare)
        regressions, notes = compare_bench(
            payload, baseline, threshold=args.threshold,
            strict_cycles=args.strict_cycles,
        )
        for note in notes:
            print(f"note: {note}", file=sys.stderr)
        if regressions:
            for regression in regressions:
                print(f"REGRESSION: {regression}", file=sys.stderr)
            return 1
        print(
            f"ok: within {args.threshold:.1f}x of "
            f"{baseline['label']} ({args.compare})",
            file=sys.stderr,
        )
    return 0


def _cmd_trace_report(args) -> int:
    from .workloads import make_tables
    from .imdb.sql import parse
    from .obs import Observation, render_stall_report
    from .sim.runner import run_query

    query = parse(args.sql, name="cli")
    tables = make_tables(args.ta, args.tb)
    observe = Observation(timeline=True, artifacts_dir=args.artifacts)
    result = run_query(args.scheme, query, tables,
                       gather_factor=args.gather, observe=observe)
    print(observe.timeline_recorder.report())
    print()
    print("stall attribution (cycles):")
    print(render_stall_report(result.stalls["per_core"]))
    if observe.manifest_path is not None:
        print(f"wrote {observe.manifest_path}", file=sys.stderr)
    return 0


def _parse_inject(pairs) -> tuple:
    """Parse --inject PARAM=VALUE pairs into timing-override tuples."""
    out = []
    for pair in pairs or ():
        name, _, value = pair.partition("=")
        if not _ or not name:
            raise SystemExit(f"--inject wants PARAM=VALUE, got {pair!r}")
        out.append((name, int(value)))
    return tuple(out)


def _cmd_check_fuzz(args) -> int:
    from .check import DEFAULT_SCHEMES, run_fuzz

    report = run_fuzz(
        seed=args.seed,
        cases=args.cases,
        schemes=tuple(args.schemes) if args.schemes else DEFAULT_SCHEMES,
        inject=_parse_inject(args.inject),
        artifacts_dir=args.artifacts,
        progress=lambda line: print(line, file=sys.stderr),
    )
    if args.json:
        print(json.dumps(report.summary(), indent=2, sort_keys=True))
    else:
        s = report.summary()
        status = "OK" if report.ok else "FAIL"
        print(f"{status}: {s['cases']} cases, {s['commands']} commands "
              f"checked, {s['failures']} failures")
        if report.reproducer_path:
            print(f"reproducer: {report.reproducer_path}")
    return 0 if report.ok else 1


def _cmd_check_replay(args) -> int:
    from .check import replay

    result = replay(args.artifact)
    payload = {
        "case": result.case.describe(),
        "commands": result.commands,
        "failed": result.failed,
        "signature": result.signature(),
        "violations": [v.to_dict() for v in result.violations],
        "mismatches": [m.to_dict() for m in result.mismatches],
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"{result.case.describe()}: "
              f"{'FAIL ' + str(result.signature()) if result.failed else 'OK'}")
        for v in result.violations[:8]:
            print(f"  {v}")
        for m in result.mismatches[:8]:
            print(f"  {m}")
    return 1 if result.failed else 0


def _cmd_schemes(args) -> int:
    from .core.registry import available_schemes, make_scheme

    rows = []
    for name in available_schemes():
        scheme = make_scheme(name)
        rows.append({
            "name": name,
            "timing": scheme.timing.name,
            "supports_stride": scheme.supports_stride,
            "gather_factor": (
                scheme.gather_factor if scheme.supports_stride else None
            ),
            "area_silicon_fraction": scheme.area.silicon_fraction,
        })
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    for row in rows:
        stride = (
            f"gather x{row['gather_factor']}"
            if row["supports_stride"]
            else "no stride hw"
        )
        print(
            f"{row['name']:14s} {row['timing']:22s} {stride:14s} "
            f"area +{row['area_silicon_fraction']:.2%}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'SAM: Accelerating Strided Memory "
                    "Accesses' (MICRO 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure12", help="speedup over all queries")
    _add_size_args(p)
    p.add_argument("--designs", nargs="*", default=None)
    p.add_argument("--queries", nargs="*", default=None)
    _add_output_args(p)
    _add_sweep_args(p)
    p.set_defaults(func=_cmd_figure12)

    p = sub.add_parser("figure13", help="power and energy efficiency")
    _add_size_args(p)
    p.add_argument("--designs", nargs="*", default=None)
    _add_output_args(p)
    _add_sweep_args(p)
    p.set_defaults(func=_cmd_figure13)

    p = sub.add_parser("figure14a", help="substrate swap")
    _add_size_args(p)
    _add_output_args(p)
    _add_sweep_args(p)
    p.set_defaults(func=_cmd_figure14a)

    p = sub.add_parser("figure14b", help="strided granularity sweep")
    _add_size_args(p)
    _add_output_args(p)
    _add_sweep_args(p)
    p.set_defaults(func=_cmd_figure14b)

    p = sub.add_parser("figure14c", help="area/storage overhead")
    _add_output_args(p)
    p.set_defaults(func=_cmd_figure14c)

    p = sub.add_parser("figure15", help="parametric query sweeps")
    _add_size_args(p)
    p.add_argument("--panels", nargs="*", default=None,
                   help="panels a..i (default: all)")
    _add_output_args(p)
    _add_sweep_args(p)
    p.set_defaults(func=_cmd_figure15)

    p = sub.add_parser(
        "salp",
        help="subarray-level-parallelism interaction sweep",
    )
    _add_size_args(p)
    p.add_argument("--designs", nargs="*", default=None,
                   help="designs to sweep (default: the SALP family "
                        "plus SAM-en and SAM-en+masa)")
    p.add_argument("--queries", nargs="*", default=None,
                   help="queries to sweep (default: the bank-conflict-"
                        "heavy Q3/Q7/Q8)")
    _add_output_args(p)
    _add_sweep_args(p)
    p.set_defaults(func=_cmd_salp)

    p = sub.add_parser(
        "kernels",
        help="micro-kernel stride sweep (generated workloads)",
    )
    p.add_argument("--designs", nargs="*", default=None,
                   help="designs to sweep against baseline "
                        "(default: SAM-en and masa)")
    p.add_argument("--gather", type=int, default=8,
                   help="gather factor for stride-capable designs")
    _add_output_args(p)
    _add_sweep_args(p)
    p.set_defaults(func=_cmd_kernels)

    p = sub.add_parser("table1", help="qualitative comparison matrix")
    _add_output_args(p)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("reliability", help="fault-injection matrix")
    p.add_argument("--trials", type=int, default=500)
    _add_output_args(p)
    _add_sweep_args(p)
    p.set_defaults(func=_cmd_reliability)

    p = sub.add_parser("check", help="correctness tooling (repro.check)")
    check_sub = p.add_subparsers(dest="check_command", required=True)
    f = check_sub.add_parser(
        "fuzz", help="randomized config x trace fuzzing with the protocol "
                     "checker and data oracle attached")
    f.add_argument("--seed", type=int, default=0,
                   help="base seed of the deterministic case stream")
    f.add_argument("--cases", type=int, default=200,
                   help="number of generated cases")
    f.add_argument("--schemes", nargs="*", default=None,
                   help="designs to draw from (default: the six core "
                        "designs)")
    f.add_argument("--inject", nargs="*", default=None,
                   metavar="PARAM=VALUE",
                   help="corrupt the controller-side timing table "
                        "(e.g. tRCD=1) to prove the checker catches it")
    f.add_argument("--artifacts", metavar="DIR", default=None,
                   help="directory for minimized JSON reproducers")
    f.add_argument("--json", action="store_true",
                   help="print the machine-readable summary")
    f.set_defaults(func=_cmd_check_fuzz)
    r = check_sub.add_parser(
        "replay", help="re-run a minimized JSON reproducer")
    r.add_argument("artifact", help="path to a fuzz-failure-*.json file")
    r.add_argument("--json", action="store_true",
                   help="print the machine-readable outcome")
    r.set_defaults(func=_cmd_check_replay)

    p = sub.add_parser("query", help="run one SQL statement")
    p.add_argument("sql", help="e.g. 'SELECT SUM(f9) FROM Ta WHERE f10 > "
                               "7500'")
    p.add_argument("--scheme", default="SAM-en")
    p.add_argument("--gather", type=int, default=None,
                   help="gather factor (2/4/8)")
    p.add_argument("--baseline", action="store_true",
                   help="also run the baseline and print the speedup")
    p.add_argument("--stats", action="store_true",
                   help="print the full metrics registry after the run")
    p.add_argument("--profile", action="store_true",
                   help="print the phase-span profile after the run")
    p.add_argument("--trace", action="store_true",
                   help="attach a command tracer (report + JSONL export "
                        "with --artifacts)")
    p.add_argument("--check", action="store_true",
                   help="attach the repro.check protocol checker and "
                        "plan oracle (a violation aborts the run)")
    p.add_argument("--explain", action="store_true",
                   help="print the physical plan (operator tree with "
                        "access modes, footprints and cost estimates) "
                        "instead of simulating")
    p.add_argument("--stalls", action="store_true",
                   help="print the cycle-accounting stall attribution "
                        "(per-core busy / stall-reason breakdown)")
    p.add_argument("--timeline", action="store_true",
                   help="attach the timeline recorder (per-bank report; "
                        "Chrome trace-event export with --artifacts)")
    _add_size_args(p)
    _add_output_args(p)
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "trace", help="cycle-level timeline tooling")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    t = trace_sub.add_parser(
        "report", help="run one statement with the timeline recorder and "
                       "print per-bank utilization, row-hit-rate and "
                       "stall-attribution tables")
    t.add_argument("sql", help="e.g. 'SELECT SUM(f9) FROM Ta WHERE "
                               "f10 > 7500'")
    t.add_argument("--scheme", default="SAM-en")
    t.add_argument("--gather", type=int, default=None,
                   help="gather factor (2/4/8)")
    _add_size_args(t)
    t.add_argument("--artifacts", metavar="DIR", default=None,
                   help="also write the run manifest, Chrome trace-event "
                        "JSON and timeline JSONL into DIR")
    t.set_defaults(func=_cmd_trace_report)

    p = sub.add_parser(
        "bench", help="host-performance baseline over a pinned kernel set")
    p.add_argument("--label", default="local",
                   help="payload label; the output file is "
                        "BENCH_<label>.json")
    p.add_argument("--out", metavar="DIR", default=".",
                   help="directory for BENCH_<label>.json (default: cwd)")
    p.add_argument("--repeats", type=int, default=2,
                   help="runs per kernel; the fastest wall time counts")
    p.add_argument("--compare", metavar="FILE", default=None,
                   help="compare against a stored bench payload instead "
                        "of writing one; exits non-zero on a wall-time "
                        "regression beyond --threshold")
    p.add_argument("--threshold", type=float, default=2.0,
                   help="wall-time regression gate for --compare "
                        "(default: 2.0x)")
    p.add_argument("--strict-cycles", action="store_true",
                   help="with --compare, treat any simulated-cycle drift "
                        "as a regression (ratchet mode for perf refactors "
                        "that promise identical behavior)")
    p.add_argument("--profile", action="store_true",
                   help="cProfile one pass over the pinned kernels and "
                        "write the top-N hot functions to "
                        "<out>/bench-profile.json instead of timing")
    p.add_argument("--profile-top", type=int, default=30, metavar="N",
                   help="rows to keep in the --profile table "
                        "(default: 30)")
    _add_size_args(p)
    p.add_argument("--json", action="store_true",
                   help="emit the bench payload as JSON")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "explain", help="show the physical query plan without running it")
    p.add_argument("sql", help="e.g. 'SELECT f3 FROM Ta WHERE f10 > 7500'")
    p.add_argument("--scheme", default="SAM-en")
    p.add_argument("--all-schemes", action="store_true",
                   help="print the plan under every registered design")
    p.add_argument("--gather", type=int, default=None,
                   help="gather factor (2/4/8)")
    _add_size_args(p)
    p.add_argument("--json", action="store_true",
                   help="emit the plan tree(s) as JSON")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("schemes", help="list available designs")
    p.add_argument("--json", action="store_true",
                   help="emit the scheme list as JSON")
    p.set_defaults(func=_cmd_schemes)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
