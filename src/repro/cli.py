"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's artefacts:

* ``figure12`` / ``figure13`` / ``figure14a`` / ``figure14b`` /
  ``figure14c`` / ``figure15`` -- regenerate an evaluation figure;
* ``table1``      -- the qualitative comparison matrix;
* ``reliability`` -- the fault-injection matrix;
* ``query``       -- run one SQL statement on a chosen design;
* ``schemes``     -- list the available designs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_size_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ta", type=int, default=512,
                        help="records in the wide table Ta")
    parser.add_argument("--tb", type=int, default=1024,
                        help="records in the narrow table Tb")


def _cmd_figure12(args) -> int:
    from .harness.figure12 import run_figure12

    result = run_figure12(
        n_ta=args.ta, n_tb=args.tb,
        designs=args.designs or None,
        queries=args.queries or None,
    )
    print(result.render())
    return 0


def _cmd_figure13(args) -> int:
    from .harness.figure13 import run_figure13

    designs = args.designs or ["baseline", "SAM-sub", "SAM-IO", "SAM-en"]
    print(run_figure13(n_ta=args.ta, n_tb=args.tb,
                       designs=designs).render())
    return 0


def _cmd_figure14a(args) -> int:
    from .harness.figure14 import run_figure14a

    print(run_figure14a(n_ta=args.ta, n_tb=args.tb).render())
    return 0


def _cmd_figure14b(args) -> int:
    from .harness.figure14 import run_figure14b

    print(run_figure14b(n_ta=args.ta, n_tb=args.tb).render())
    return 0


def _cmd_figure14c(args) -> int:
    from .harness.figure14 import render_figure14c

    print(render_figure14c())
    return 0


def _cmd_figure15(args) -> int:
    from .harness.figure15 import run_figure15

    panels = run_figure15(n_ta=args.ta)
    selected = args.panels or sorted(panels)
    for key in selected:
        if key not in panels:
            print(f"unknown panel {key!r} (have {sorted(panels)})",
                  file=sys.stderr)
            return 2
        print(panels[key].render())
        print()
    return 0


def _cmd_table1(args) -> int:
    from .core.compare import render_table

    print(render_table())
    return 0


def _cmd_reliability(args) -> int:
    from .harness.reliability import render_reliability

    print(render_reliability(trials=args.trials))
    return 0


def _cmd_query(args) -> int:
    from .harness.workload import make_tables
    from .imdb.sql import parse
    from .sim.runner import run_query

    query = parse(args.sql, name="cli")
    tables = make_tables(args.ta, args.tb)
    result = run_query(args.scheme, query, tables,
                       gather_factor=args.gather)
    print(f"scheme   : {result.scheme}")
    print(f"result   : {result.result}")
    print(f"cycles   : {result.cycles}  ({result.ns / 1000:.1f} us)")
    print(f"power    : {result.power.total_mw:.0f} mW")
    stats = result.memory_stats
    print(
        f"commands : {stats.reads} RD ({stats.gather_reads} gathers), "
        f"{stats.writes} WR, {stats.acts + stats.col_acts} ACT, "
        f"{stats.mode_switches} mode switches"
    )
    if args.baseline and args.scheme != "baseline":
        tables = make_tables(args.ta, args.tb)
        base = run_query("baseline", query, tables)
        print(f"speedup  : {base.cycles / result.cycles:.2f}x over baseline")
    return 0


def _cmd_schemes(args) -> int:
    from .core.registry import available_schemes, make_scheme

    for name in available_schemes():
        scheme = make_scheme(name)
        stride = (
            f"gather x{scheme.gather_factor}"
            if scheme.supports_stride
            else "no stride hw"
        )
        print(
            f"{name:14s} {scheme.timing.name:22s} {stride:14s} "
            f"area +{scheme.area.silicon_fraction:.2%}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'SAM: Accelerating Strided Memory "
                    "Accesses' (MICRO 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure12", help="speedup over all queries")
    _add_size_args(p)
    p.add_argument("--designs", nargs="*", default=None)
    p.add_argument("--queries", nargs="*", default=None)
    p.set_defaults(func=_cmd_figure12)

    p = sub.add_parser("figure13", help="power and energy efficiency")
    _add_size_args(p)
    p.add_argument("--designs", nargs="*", default=None)
    p.set_defaults(func=_cmd_figure13)

    p = sub.add_parser("figure14a", help="substrate swap")
    _add_size_args(p)
    p.set_defaults(func=_cmd_figure14a)

    p = sub.add_parser("figure14b", help="strided granularity sweep")
    _add_size_args(p)
    p.set_defaults(func=_cmd_figure14b)

    p = sub.add_parser("figure14c", help="area/storage overhead")
    p.set_defaults(func=_cmd_figure14c)

    p = sub.add_parser("figure15", help="parametric query sweeps")
    _add_size_args(p)
    p.add_argument("--panels", nargs="*", default=None,
                   help="panels a..i (default: all)")
    p.set_defaults(func=_cmd_figure15)

    p = sub.add_parser("table1", help="qualitative comparison matrix")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("reliability", help="fault-injection matrix")
    p.add_argument("--trials", type=int, default=500)
    p.set_defaults(func=_cmd_reliability)

    p = sub.add_parser("query", help="run one SQL statement")
    p.add_argument("sql", help="e.g. 'SELECT SUM(f9) FROM Ta WHERE f10 > "
                               "7500'")
    p.add_argument("--scheme", default="SAM-en")
    p.add_argument("--gather", type=int, default=None,
                   help="gather factor (2/4/8)")
    p.add_argument("--baseline", action="store_true",
                   help="also run the baseline and print the speedup")
    _add_size_args(p)
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("schemes", help="list available designs")
    p.set_defaults(func=_cmd_schemes)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
