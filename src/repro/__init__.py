"""repro: a full reproduction of "SAM: Accelerating Strided Memory
Accesses" (MICRO 2021).

Public API tour:

* ``repro.core`` -- the SAM designs (SAM-sub, SAM-IO, SAM-en) and the
  comparators (GS-DRAM, GS-DRAM-ecc, RC-NVM-bit/wd, baseline, column
  store), behind :func:`repro.core.make_scheme`.
* ``repro.sim.run_query`` -- simulate one query on one design.
* ``repro.imdb`` -- the benchmark tables and queries of Table 3.
* ``repro.dram`` -- the cycle-level DDR4/RRAM substrate and the
  functional chip datapath that proves the gather semantics.
* ``repro.ecc`` -- chipkill codecs (SSC, SSC-DSD), SEC-DED, layouts,
  fault injection.
* ``repro.harness`` -- regenerates every table and figure of the paper.
"""

from .core import FIGURE12_DESIGNS, available_schemes, make_scheme
from .imdb import Table, TA, TB, all_queries, by_name
from .sim import RunResult, SystemConfig, run_ideal, run_query

__version__ = "1.0.0"

__all__ = [
    "FIGURE12_DESIGNS",
    "available_schemes",
    "make_scheme",
    "Table",
    "TA",
    "TB",
    "all_queries",
    "by_name",
    "RunResult",
    "SystemConfig",
    "run_ideal",
    "run_query",
    "__version__",
]
