"""OS support: stride-mode virtual-to-physical remapping (Figure 10)."""

from .stride_mapping import (
    PAGE_SIZE,
    PageTable,
    StrideMapping,
    sam_io_mapping,
    sam_sub_mapping,
)

__all__ = [
    "PAGE_SIZE",
    "PageTable",
    "StrideMapping",
    "sam_io_mapping",
    "sam_sub_mapping",
]
