"""Virtual-to-physical address mapping under stride mode (Figure 10).

An OS page normally maps its 12-bit page offset straight into the low
physical bits.  Under stride mode the DRAM row shape changes (column-wise
subarrays for SAM-sub; multi-sub-row "wide rows" for SAM-IO / SAM-en), so a
small segment of the page offset is swapped with the physical bits that
select the stride dimension:

* SAM-sub, 4-bit granularity: a 3-bit segment swaps with the subarray
  (row-stacking) bits.
* SAM-IO / SAM-en: the segment swaps with the extended column / rank bits.
* 8-bit granularity designs swap only a 2-bit segment.

The mapping is its own inverse (it is a bit permutation built from swaps),
which the property tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS


@dataclass(frozen=True)
class StrideMapping:
    """One stride-mode bit-swap mapping.

    ``segment_bits`` is the width of the swapped segment (3 for 4-bit
    strided granularity, 2 for 8-bit).  ``offset_lsb`` is where the
    segment sits inside the page offset (just above the 16B strided-data
    offset, Figure 10).  ``target_lsb`` is the physical position the
    segment is swapped with (subarray bits for SAM-sub, extended column /
    rank bits for SAM-IO / SAM-en).
    """

    name: str
    segment_bits: int
    offset_lsb: int
    target_lsb: int

    def __post_init__(self) -> None:
        if self.segment_bits <= 0:
            raise ValueError("segment must be at least one bit")
        lo = range(self.offset_lsb, self.offset_lsb + self.segment_bits)
        hi = range(self.target_lsb, self.target_lsb + self.segment_bits)
        if set(lo) & set(hi):
            raise ValueError("swapped segments overlap")

    def apply(self, phys: int) -> int:
        """Swap the two bit segments of a physical address."""
        mask = (1 << self.segment_bits) - 1
        low = (phys >> self.offset_lsb) & mask
        high = (phys >> self.target_lsb) & mask
        phys &= ~(mask << self.offset_lsb)
        phys &= ~(mask << self.target_lsb)
        phys |= high << self.offset_lsb
        phys |= low << self.target_lsb
        return phys

    def undo(self, phys: int) -> int:
        """Inverse mapping (== apply, since swaps are involutions)."""
        return self.apply(phys)


def sam_sub_mapping(granularity_bits: int = 4) -> StrideMapping:
    """SAM-sub: segment swaps with the row-stacking (subarray) bits.

    The physical layout of Table 2 places the row bits above
    rank/bank/channel/column/offset; the vertical-stacking bits are the
    low row bits (bit 24 up in our 13-bit-offset+11-bit-low layout)."""
    segment = 3 if granularity_bits == 4 else 2
    return StrideMapping(
        name=f"SAM-sub/{granularity_bits}-bit",
        segment_bits=segment,
        offset_lsb=4,  # just above the 16B strided-data offset
        target_lsb=24,  # low row bits (rows of one bank)
    )


def sam_io_mapping(granularity_bits: int = 4) -> StrideMapping:
    """SAM-IO / SAM-en: segment swaps with extended column (+ rank) bits."""
    segment = 3 if granularity_bits == 4 else 2
    return StrideMapping(
        name=f"SAM-IO/{granularity_bits}-bit",
        segment_bits=segment,
        offset_lsb=4,
        target_lsb=PAGE_BITS,  # first bits above the page offset
    )


class PageTable:
    """A minimal single-level page table with stride-mode translation.

    Pages are 4KB; ``map_page`` binds a virtual page to a physical frame.
    ``translate`` performs the regular walk; ``translate_stride`` applies
    the stride-mode bit swap afterwards, the way the kernel module of
    Section 5.2 would for sload/sstore mappings.
    """

    def __init__(self, mapping: StrideMapping | None = None) -> None:
        self._frames = {}
        self.mapping = mapping

    def map_page(self, vpage: int, pframe: int) -> None:
        if vpage < 0 or pframe < 0:
            raise ValueError("page numbers must be non-negative")
        self._frames[vpage] = pframe

    def translate(self, vaddr: int) -> int:
        vpage, offset = divmod(vaddr, PAGE_SIZE)
        try:
            frame = self._frames[vpage]
        except KeyError:
            raise KeyError(f"page fault at {vaddr:#x}") from None
        return frame * PAGE_SIZE + offset

    def translate_stride(self, vaddr: int) -> int:
        if self.mapping is None:
            raise RuntimeError("no stride mapping configured")
        return self.mapping.apply(self.translate(vaddr))
