"""Figure 15: parametric arithmetic/aggregate query sweeps.

Nine panels; all normalized to the row-store baseline, with the "ideal"
series being the better of the row store and the column store per point:

(a)-(c) arithmetic query, selectivity sweep at 8 / 64 / 128 projected fields
(d)-(f) arithmetic query, projectivity sweep at 10% / 50% / 100% selected
(g)     aggregate query, selectivity sweep at 8 projected fields
(h)     aggregate query, projectivity sweep at 100% selected
(i)     record-size sweep at 100% projectivity and selectivity

Each panel is one :class:`~repro.exp.ExperimentSpec` -- the keys are
``(series, x)`` pairs over the panel's x-axis -- and all nine specs can
share one :class:`~repro.exp.SweepEngine` (``run_figure15``), so a whole
figure sweeps in parallel and caches as a unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..exp import (
    ExperimentSpec,
    SweepEngine,
    SweepPoint,
    TableSpec,
    standard_tables,
)
from ..imdb.queries import aggregate_query, arithmetic_query
from ..imdb.query import Predicate, SelectQuery
from ..workloads import QueryWorkload

#: The representative designs of Figure 15.
FIG15_DESIGNS = ("RC-NVM-wd", "GS-DRAM-ecc", "SAM-en")

#: sweep axes (paper: 10%..100% selectivity; 4..128 fields projected)
SELECTIVITIES = (0.1, 0.25, 0.5, 0.75, 1.0)
PROJECTIVITIES = (4, 8, 16, 32, 64, 128)
RECORD_FIELDS = (2, 8, 32, 128, 512, 1024)  # 16B .. 8KB records


@dataclass
class SweepResult:
    """One panel: x-axis values -> {design -> speedup}."""

    panel: str
    xlabel: str
    points: Dict[object, Dict[str, float]] = field(default_factory=dict)

    def series(self, design: str) -> List[float]:
        return [self.points[x][design] for x in self.points]

    def payload(self) -> Dict[str, object]:
        """Machine-readable form (``--json`` / artifact export)."""
        return {
            "kind": "figure15-panel",
            "panel": self.panel,
            "xlabel": self.xlabel,
            "points": {str(x): per for x, per in self.points.items()},
        }

    def render(self) -> str:
        designs = list(next(iter(self.points.values())))
        lines = [f"== {self.panel} ({self.xlabel})"]
        lines.append(
            "x".rjust(8) + "".join(d.rjust(14) for d in designs)
        )
        for x, per in self.points.items():
            lines.append(
                f"{x!s:>8}" + "".join(f"{per[d]:14.2f}" for d in designs)
            )
        return "\n".join(lines)


def _axis_points(
    query, x: str, tables, designs: Sequence[str]
) -> List[SweepPoint]:
    """The points of one x-axis value: baseline, every design, and the
    column store (which, with the baseline, defines "ideal")."""
    workload = QueryWorkload(query=query, tables=tables)
    points = [
        SweepPoint(key=("baseline", x), scheme="baseline",
                   workload=workload),
        SweepPoint(key=("column-store", x), scheme="column-store",
                   workload=workload),
    ]
    points += [
        SweepPoint(key=(design, x), scheme=design, workload=workload)
        for design in designs
    ]
    return points


def _shape_panel(run, panel: SweepResult, xs: Sequence[object],
                 designs: Sequence[str]) -> SweepResult:
    """Speedups vs baseline; ideal = best of row store and column store."""
    for x in xs:
        base = run.cycles(("baseline", str(x)))
        per: Dict[str, float] = {
            design: run.speedup((design, str(x)), ("baseline", str(x)))
            for design in designs
        }
        col = run.cycles(("column-store", str(x)))
        per["ideal"] = base / min(base, col)
        panel.points[x] = per
    return panel


def build_selectivity_spec(
    projected: int,
    n_ta: int = 1024,
    designs: Sequence[str] = FIG15_DESIGNS,
    selectivities: Sequence[float] = SELECTIVITIES,
    aggregate: bool = False,
) -> ExperimentSpec:
    """Panels (a)-(c)/(g) as data: vary selectivity at fixed projectivity."""
    maker = aggregate_query if aggregate else arithmetic_query
    kind = "aggregate" if aggregate else "arithmetic"
    tables = standard_tables(n_ta, 64)
    points: List[SweepPoint] = []
    for sel in selectivities:
        points += _axis_points(maker(projected, sel), str(sel), tables,
                               designs)
    return ExperimentSpec(
        f"figure15-sel-{kind}-p{projected}", tuple(points),
        normalize="divide by baseline cycles per selectivity",
    )


def run_selectivity_sweep(
    projected: int,
    n_ta: int = 1024,
    designs: Sequence[str] = FIG15_DESIGNS,
    selectivities: Sequence[float] = SELECTIVITIES,
    aggregate: bool = False,
    engine: Optional[SweepEngine] = None,
) -> SweepResult:
    """Panels (a)-(c) and (g): vary selectivity at fixed projectivity."""
    engine = engine or SweepEngine()
    run = engine.run(build_selectivity_spec(
        projected, n_ta, designs, selectivities, aggregate
    ))
    kind = "aggregate" if aggregate else "arithmetic"
    panel = SweepResult(
        f"{kind}, {projected} fields projected", "selectivity"
    )
    return _shape_panel(run, panel, selectivities, designs)


def build_projectivity_spec(
    selectivity: float,
    n_ta: int = 1024,
    designs: Sequence[str] = FIG15_DESIGNS,
    projectivities: Sequence[int] = PROJECTIVITIES,
    aggregate: bool = False,
) -> ExperimentSpec:
    """Panels (d)-(f)/(h) as data: vary projectivity at fixed selectivity."""
    maker = aggregate_query if aggregate else arithmetic_query
    kind = "aggregate" if aggregate else "arithmetic"
    tables = standard_tables(n_ta, 64)
    points: List[SweepPoint] = []
    for proj in projectivities:
        points += _axis_points(maker(proj, selectivity), str(proj), tables,
                               designs)
    return ExperimentSpec(
        f"figure15-proj-{kind}-s{selectivity:g}", tuple(points),
        normalize="divide by baseline cycles per projectivity",
    )


def run_projectivity_sweep(
    selectivity: float,
    n_ta: int = 1024,
    designs: Sequence[str] = FIG15_DESIGNS,
    projectivities: Sequence[int] = PROJECTIVITIES,
    aggregate: bool = False,
    engine: Optional[SweepEngine] = None,
) -> SweepResult:
    """Panels (d)-(f) and (h): vary projectivity at fixed selectivity."""
    engine = engine or SweepEngine()
    run = engine.run(build_projectivity_spec(
        selectivity, n_ta, designs, projectivities, aggregate
    ))
    kind = "aggregate" if aggregate else "arithmetic"
    panel = SweepResult(
        f"{kind}, {selectivity:.0%} records selected", "fields projected"
    )
    return _shape_panel(run, panel, projectivities, designs)


def build_record_size_spec(
    n_bytes_total: int = 1 << 20,
    designs: Sequence[str] = FIG15_DESIGNS,
    record_fields: Sequence[int] = RECORD_FIELDS,
) -> ExperimentSpec:
    """Panel (i) as data: vary record size at constant table footprint.

    Each x-axis value carries its *own* table recipes (fewer records as
    they grow); table data is deterministic in (schema, records, seed),
    so worker processes rebuild identical tables.
    """
    points: List[SweepPoint] = []
    for fields in record_fields:
        ta = TableSpec("Ta", fields, 1, 3)  # for record_bytes only
        n_records = max(8, n_bytes_total // ta.schema.record_bytes)
        tables = (
            TableSpec("Ta", fields, n_records, 3),
            TableSpec("Tb", 16, 64, 4),
        )
        query = SelectQuery(
            f"Arith[rs={fields}]",
            "Ta",
            tuple(range(fields)),
            Predicate.where(0, "<", 1.0),
        )
        x = str(fields)
        workload = QueryWorkload(query=query, tables=tables)
        points.append(SweepPoint(key=("baseline", x), scheme="baseline",
                                 workload=workload))
        points += [
            SweepPoint(key=(design, x), scheme=design, workload=workload)
            for design in designs
        ]
    return ExperimentSpec(
        "figure15-record-size", tuple(points),
        normalize="divide by baseline cycles per record size",
    )


def run_record_size_sweep(
    n_bytes_total: int = 1 << 20,
    designs: Sequence[str] = FIG15_DESIGNS,
    record_fields: Sequence[int] = RECORD_FIELDS,
    engine: Optional[SweepEngine] = None,
) -> SweepResult:
    """Panel (i): vary record size at 100% projectivity and selectivity.

    The table footprint is held constant (fewer records as they grow),
    matching the paper's fixed-table-size sweep.
    """
    engine = engine or SweepEngine()
    run = engine.run(build_record_size_spec(
        n_bytes_total, designs, record_fields
    ))
    panel = SweepResult(
        "arithmetic, all fields projected, 100% selected", "record size (8B)"
    )
    for fields in record_fields:
        x = str(fields)
        point: Dict[str, float] = {
            design: run.speedup((design, x), ("baseline", x))
            for design in designs
        }
        point["ideal"] = 1.0  # row store is ideal at 100%/100%
        panel.points[fields] = point
    return panel


def run_figure15(
    n_ta: int = 512,
    designs: Sequence[str] = FIG15_DESIGNS,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, SweepResult]:
    """All nine panels (reduced sweep density by default -- each point is
    a full simulation of four designs).  One engine runs them all, so a
    single ``--jobs``/cache setting covers the whole figure."""
    engine = engine or SweepEngine()
    return {
        "a": run_selectivity_sweep(8, n_ta, designs, engine=engine),
        "b": run_selectivity_sweep(64, n_ta, designs, engine=engine),
        "c": run_selectivity_sweep(128, n_ta, designs, engine=engine),
        "d": run_projectivity_sweep(0.10, n_ta, designs, engine=engine),
        "e": run_projectivity_sweep(0.50, n_ta, designs, engine=engine),
        "f": run_projectivity_sweep(1.00, n_ta, designs, engine=engine),
        "g": run_selectivity_sweep(8, n_ta, designs, aggregate=True,
                                   engine=engine),
        "h": run_projectivity_sweep(1.00, n_ta, designs, aggregate=True,
                                    engine=engine),
        "i": run_record_size_sweep(designs=designs, engine=engine),
    }
