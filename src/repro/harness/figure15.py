"""Figure 15: parametric arithmetic/aggregate query sweeps.

Nine panels; all normalized to the row-store baseline, with the "ideal"
series being the better of the row store and the column store per point:

(a)-(c) arithmetic query, selectivity sweep at 8 / 64 / 128 projected fields
(d)-(f) arithmetic query, projectivity sweep at 10% / 50% / 100% selected
(g)     aggregate query, selectivity sweep at 8 projected fields
(h)     aggregate query, projectivity sweep at 100% selected
(i)     record-size sweep at 100% projectivity and selectivity
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..imdb.queries import aggregate_query, arithmetic_query
from ..imdb.query import Predicate, SelectQuery
from ..imdb.schema import Table, TableSchema
from ..sim.runner import run_query
from .workload import make_tables

#: The representative designs of Figure 15.
FIG15_DESIGNS = ("RC-NVM-wd", "GS-DRAM-ecc", "SAM-en")

#: sweep axes (paper: 10%..100% selectivity; 4..128 fields projected)
SELECTIVITIES = (0.1, 0.25, 0.5, 0.75, 1.0)
PROJECTIVITIES = (4, 8, 16, 32, 64, 128)
RECORD_FIELDS = (2, 8, 32, 128, 512, 1024)  # 16B .. 8KB records


@dataclass
class SweepResult:
    """One panel: x-axis values -> {design -> speedup}."""

    panel: str
    xlabel: str
    points: Dict[object, Dict[str, float]] = field(default_factory=dict)

    def series(self, design: str) -> List[float]:
        return [self.points[x][design] for x in self.points]

    def payload(self) -> Dict[str, object]:
        """Machine-readable form (``--json`` / artifact export)."""
        return {
            "kind": "figure15-panel",
            "panel": self.panel,
            "xlabel": self.xlabel,
            "points": {str(x): per for x, per in self.points.items()},
        }

    def render(self) -> str:
        designs = list(next(iter(self.points.values())))
        lines = [f"== {self.panel} ({self.xlabel})"]
        lines.append(
            "x".rjust(8) + "".join(d.rjust(14) for d in designs)
        )
        for x, per in self.points.items():
            lines.append(
                f"{x!s:>8}" + "".join(f"{per[d]:14.2f}" for d in designs)
            )
        return "\n".join(lines)


def _run_point(
    query,
    n_ta: int,
    designs: Sequence[str],
) -> Dict[str, float]:
    """Speedups of ``designs`` + ideal for one query configuration."""
    tables = make_tables(n_ta, 64)
    base = run_query("baseline", query, tables).cycles
    out: Dict[str, float] = {}
    for design in designs:
        tables = make_tables(n_ta, 64)
        result = run_query(design, query, tables)
        out[design] = base / result.cycles
    # ideal: best of row store (baseline) and column store
    tables = make_tables(n_ta, 64)
    col = run_query("column-store", query, tables).cycles
    out["ideal"] = base / min(base, col)
    return out


def run_selectivity_sweep(
    projected: int,
    n_ta: int = 1024,
    designs: Sequence[str] = FIG15_DESIGNS,
    selectivities: Sequence[float] = SELECTIVITIES,
    aggregate: bool = False,
) -> SweepResult:
    """Panels (a)-(c) and (g): vary selectivity at fixed projectivity."""
    maker = aggregate_query if aggregate else arithmetic_query
    kind = "aggregate" if aggregate else "arithmetic"
    panel = SweepResult(
        f"{kind}, {projected} fields projected", "selectivity"
    )
    for sel in selectivities:
        query = maker(projected, sel)
        panel.points[sel] = _run_point(query, n_ta, designs)
    return panel


def run_projectivity_sweep(
    selectivity: float,
    n_ta: int = 1024,
    designs: Sequence[str] = FIG15_DESIGNS,
    projectivities: Sequence[int] = PROJECTIVITIES,
    aggregate: bool = False,
) -> SweepResult:
    """Panels (d)-(f) and (h): vary projectivity at fixed selectivity."""
    maker = aggregate_query if aggregate else arithmetic_query
    kind = "aggregate" if aggregate else "arithmetic"
    panel = SweepResult(
        f"{kind}, {selectivity:.0%} records selected", "fields projected"
    )
    for proj in projectivities:
        query = maker(proj, selectivity)
        panel.points[proj] = _run_point(query, n_ta, designs)
    return panel


def run_record_size_sweep(
    n_bytes_total: int = 1 << 20,
    designs: Sequence[str] = FIG15_DESIGNS,
    record_fields: Sequence[int] = RECORD_FIELDS,
) -> SweepResult:
    """Panel (i): vary record size at 100% projectivity and selectivity.

    The table footprint is held constant (fewer records as they grow),
    matching the paper's fixed-table-size sweep.
    """
    panel = SweepResult(
        "arithmetic, all fields projected, 100% selected", "record size (8B)"
    )
    for fields in record_fields:
        schema = TableSchema(f"T{fields}", n_fields=fields)
        n_records = max(8, n_bytes_total // schema.record_bytes)
        query = SelectQuery(
            f"Arith[rs={fields}]",
            "Ta",
            tuple(range(fields)),
            Predicate.where(0, "<", 1.0),
        )
        tables = {
            "Ta": Table(schema, n_records, seed=3),
            "Tb": Table(TableSchema("Tb", 16), 64, seed=4),
        }
        base = run_query("baseline", query, tables).cycles
        point: Dict[str, float] = {}
        for design in designs:
            tables = {
                "Ta": Table(schema, n_records, seed=3),
                "Tb": Table(TableSchema("Tb", 16), 64, seed=4),
            }
            result = run_query(design, query, tables)
            point[design] = base / result.cycles
        point["ideal"] = 1.0  # row store is ideal at 100%/100%
        panel.points[fields] = point
    return panel


def run_figure15(
    n_ta: int = 512,
    designs: Sequence[str] = FIG15_DESIGNS,
) -> Dict[str, SweepResult]:
    """All nine panels (reduced sweep density by default -- each point is
    a full simulation of four designs)."""
    return {
        "a": run_selectivity_sweep(8, n_ta, designs),
        "b": run_selectivity_sweep(64, n_ta, designs),
        "c": run_selectivity_sweep(128, n_ta, designs),
        "d": run_projectivity_sweep(0.10, n_ta, designs),
        "e": run_projectivity_sweep(0.50, n_ta, designs),
        "f": run_projectivity_sweep(1.00, n_ta, designs),
        "g": run_selectivity_sweep(8, n_ta, designs, aggregate=True),
        "h": run_projectivity_sweep(1.00, n_ta, designs, aggregate=True),
        "i": run_record_size_sweep(designs=designs),
    }
