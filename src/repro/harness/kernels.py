"""Micro-kernel stride sweep: where SAM helps, where it cannot.

The paper's Figure 14 asks the sensitivity question -- how does the
speedup move as the access pattern changes?  This harness asks it with
generated micro-kernels instead of SQL: the
:class:`~repro.workloads.KernelWorkload` families from the workload IR
(stream read/write/copy, strided gather/scatter at parametric stride,
and the PolyBench-style mxv / jacobi2d / doitgen) swept across stride
points and designs.  The expected shape:

* ``strided_*`` kernels gain roughly the gather factor once the stride
  spans a full cache line -- each baseline line fetch carries one useful
  element, each SAM gather carries eight;
* ``stream_*`` and ``jacobi2d`` are unit-stride and gain nothing: every
  fetched line is already fully used, so there is nothing for stride
  hardware to recover;
* ``mxv`` / ``doitgen`` mix a contiguous stream with a strided operand
  and land in between;
* ``masa`` (subarray parallelism without stride hardware) tracks the
  baseline on these single-region kernels -- it attacks bank conflicts,
  not sparse fetch.

Every point is one end-to-end simulation through the standard
:class:`~repro.exp.SweepEngine` (``--jobs``, ``--check`` and the result
cache behave exactly like the figure harnesses); under ``--check`` each
kernel run is validated op-for-op against the generator's expected-bytes
model by the :class:`~repro.check.KernelOracle`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.registry import _NO_STRIDE
from ..exp import ExperimentSpec, SweepEngine, SweepPoint
from ..workloads import KernelWorkload

#: Designs swept against the row-store baseline.
KERNEL_DESIGNS = ("SAM-en", "masa")

#: Strided families x stride points (bytes): the Figure-14-style grid.
STRIDE_FAMILIES = ("strided_read", "strided_write", "strided_copy")
STRIDE_POINTS = (64, 256, 1024)

#: Footprint (records) of each strided-family kernel.
STRIDE_RECORDS = 512

#: Fixed context rows: unit-stride streams and the PolyBench trio.
FIXED_KERNELS = (
    "stream_read[n=2048]",
    "stream_copy[n=2048]",
    "mxv[n=32]",
    "jacobi2d[n=24]",
    "doitgen[n=24]",
)


def kernel_grid() -> List[KernelWorkload]:
    """The sweep's workloads in row order: stride grid, then fixed rows."""
    grid = [
        KernelWorkload.from_spec(
            f"{family}[n={STRIDE_RECORDS},stride={stride}]"
        )
        for family in STRIDE_FAMILIES
        for stride in STRIDE_POINTS
    ]
    grid += [KernelWorkload.from_spec(spec) for spec in FIXED_KERNELS]
    return grid


@dataclass
class KernelSweepResult:
    """Cycles and speedups per (design, kernel)."""

    designs: List[str]
    kernels: List[str]
    #: cycles[design][kernel]; includes the "baseline" row
    cycles: Dict[str, Dict[str, int]]
    #: speedup over the row-store baseline, per kernel
    speedups: Dict[str, Dict[str, float]]
    #: gather bursts the controller served (reads + writes), per
    #: (design, kernel) -- zero on designs without stride hardware, the
    #: direct witness of *why* a kernel did or did not accelerate
    gathers: Dict[str, Dict[str, int]]

    def payload(self) -> Dict[str, object]:
        """Machine-readable form (``--json`` / artifact export)."""
        return {
            "kind": "kernel-sweep",
            "designs": self.designs,
            "kernels": self.kernels,
            "stride_points": list(STRIDE_POINTS),
            "cycles": self.cycles,
            "speedups": self.speedups,
            "gathers": self.gathers,
        }

    def render(self) -> str:
        designs = self.designs
        width = max(len(k) for k in self.kernels) + 2
        lines = ["Speedup over baseline (cycles_baseline / cycles):"]
        lines.append(
            "kernel".ljust(width) + "baseline".rjust(10)
            + "".join(d.rjust(12) for d in designs)
        )
        for k in self.kernels:
            row = k.ljust(width) + f"{self.cycles['baseline'][k]:10d}"
            row += "".join(
                f"{self.speedups[d][k]:12.2f}" for d in designs
            )
            lines.append(row)
        return "\n".join(lines)


def build_kernel_spec(
    designs: Optional[Sequence[str]] = None,
    gather_factor: int = 8,
) -> ExperimentSpec:
    """The sweep as data: baseline plus every design, per kernel."""
    design_list = list(designs or KERNEL_DESIGNS)
    grid = kernel_grid()
    points = [
        SweepPoint(key=("baseline", w.name), kind="kernel",
                   scheme="baseline", workload=w)
        for w in grid
    ]
    for design in design_list:
        # designs without stride hardware reject a gather factor
        gf = gather_factor if design not in _NO_STRIDE else None
        points += [
            SweepPoint(key=(design, w.name), kind="kernel", scheme=design,
                       workload=w, gather_factor=gf)
            for w in grid
        ]
    return ExperimentSpec(
        "kernels", tuple(points),
        normalize="divide by baseline cycles per kernel",
    )


def run_kernel_sweep(
    designs: Optional[Sequence[str]] = None,
    gather_factor: int = 8,
    engine: Optional[SweepEngine] = None,
) -> KernelSweepResult:
    """Run the micro-kernel sweep and shape the per-kernel speedups."""
    engine = engine or SweepEngine()
    design_list = list(designs or KERNEL_DESIGNS)
    kernel_names = [w.name for w in kernel_grid()]
    run = engine.run(build_kernel_spec(design_list, gather_factor))

    series = ["baseline"] + design_list
    cycles = {
        d: {k: run.cycles((d, k)) for k in kernel_names} for d in series
    }
    speedups = {
        d: {
            k: run.speedup((d, k), ("baseline", k)) for k in kernel_names
        }
        for d in design_list
    }
    gathers = {
        d: {
            k: int(run[(d, k)].memory_stats.gather_reads
                   + run[(d, k)].memory_stats.gather_writes)
            for k in kernel_names
        }
        for d in series
    }
    return KernelSweepResult(
        design_list, kernel_names, cycles, speedups, gathers
    )


def render_kernels(result: KernelSweepResult) -> str:
    return result.render()
