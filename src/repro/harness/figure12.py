"""Figure 12: speedup of every design on the Q and Qs queries.

Every (scheme, query) pair is simulated end to end; speedups are
normalized to the commodity row-store baseline, exactly as in the paper.
The ``ideal`` series is a row store for Qs queries and a column store for
Q queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.registry import FIGURE12_DESIGNS
from ..imdb.queries import q_queries, qs_queries
from ..sim.runner import run_ideal, run_query
from .workload import geomean, make_tables


@dataclass
class Figure12Result:
    """Speedups[design][query], normalized to the row-store baseline."""

    speedups: Dict[str, Dict[str, float]]
    baseline_cycles: Dict[str, int]
    q_names: List[str]
    qs_names: List[str]

    def gmean(self, design: str, queries: Sequence[str]) -> float:
        if not queries:
            return float("nan")
        return geomean(self.speedups[design][q] for q in queries)

    def q_gmean(self, design: str) -> float:
        return self.gmean(design, self.q_names)

    def qs_gmean(self, design: str) -> float:
        return self.gmean(design, self.qs_names)

    def payload(self) -> Dict[str, object]:
        """Machine-readable form (``--json`` / artifact export)."""
        return {
            "kind": "figure12",
            "designs": list(self.speedups),
            "q_names": self.q_names,
            "qs_names": self.qs_names,
            "speedups": self.speedups,
            "baseline_cycles": self.baseline_cycles,
            "gmeans": {
                d: {
                    "Q": self.q_gmean(d) if self.q_names else None,
                    "Qs": self.qs_gmean(d) if self.qs_names else None,
                }
                for d in self.speedups
            },
        }

    def render_chart(self) -> str:
        """Figure-12 shaped ASCII bars: Q/Qs geomeans per design."""
        from .report import bar_chart

        blocks = []
        if self.q_names:
            blocks.append("Gmean speedup, Q queries (column-friendly):")
            blocks.append(
                bar_chart(
                    {d: self.q_gmean(d) for d in self.speedups},
                    reference=1.0,
                    fmt="{:.2f}x",
                )
            )
        if self.qs_names:
            blocks.append("")
            blocks.append("Gmean speedup, Qs queries (row-friendly):")
            blocks.append(
                bar_chart(
                    {d: self.qs_gmean(d) for d in self.speedups},
                    reference=1.0,
                    fmt="{:.2f}x",
                )
            )
        return '\n'.join(blocks)

    def render(self) -> str:
        designs = list(self.speedups)
        lines = []
        header = "query".ljust(8) + "".join(d.rjust(13) for d in designs)
        lines.append(header)
        rows = list(self.q_names)
        if self.q_names:
            rows.append("Gmean(Q)")
        rows += self.qs_names
        if self.qs_names:
            rows.append("Gmean(Qs)")
        for name in rows:
            row = name.ljust(8)
            for d in designs:
                if name == "Gmean(Q)":
                    v = self.q_gmean(d)
                elif name == "Gmean(Qs)":
                    v = self.qs_gmean(d)
                else:
                    v = self.speedups[d][name]
                row += f"{v:13.2f}"
            lines.append(row)
        return "\n".join(lines)


def run_figure12(
    n_ta: int = 2048,
    n_tb: int = 4096,
    designs: Optional[Sequence[str]] = None,
    queries: Optional[Sequence[str]] = None,
    include_ideal: bool = True,
    gather_factor: int = 8,
) -> Figure12Result:
    """Regenerate Figure 12 (optionally restricted to some designs/queries).

    ``gather_factor=8`` is the paper's default: SSC-DSD chipkill with 4-bit
    strided granularity.
    """
    q_list = [q for q in q_queries() if queries is None or q.name in queries]
    qs_list = [
        q for q in qs_queries() if queries is None or q.name in queries
    ]
    all_q = q_list + qs_list
    designs = list(designs or FIGURE12_DESIGNS)

    baseline_cycles: Dict[str, int] = {}
    for query in all_q:
        tables = make_tables(n_ta, n_tb)
        baseline_cycles[query.name] = run_query(
            "baseline", query, tables
        ).cycles

    speedups: Dict[str, Dict[str, float]] = {}
    for design in designs:
        speedups[design] = {}
        for query in all_q:
            tables = make_tables(n_ta, n_tb)
            result = run_query(design, query, tables,
                               gather_factor=gather_factor)
            speedups[design][query.name] = (
                baseline_cycles[query.name] / result.cycles
            )
    if include_ideal:
        speedups["ideal"] = {}
        for query in all_q:
            tables = make_tables(n_ta, n_tb)
            result = run_ideal(query, tables)
            speedups["ideal"][query.name] = (
                baseline_cycles[query.name] / result.cycles
            )
    return Figure12Result(
        speedups,
        baseline_cycles,
        [q.name for q in q_list],
        [q.name for q in qs_list],
    )
