"""Figure 12: speedup of every design on the Q and Qs queries.

Every (scheme, query) pair is simulated end to end; speedups are
normalized to the commodity row-store baseline, exactly as in the paper.
The ``ideal`` series is a row store for Qs queries and a column store for
Q queries.

The harness is a thin layer over :mod:`repro.exp`: it *builds* a
declarative :class:`~repro.exp.ExperimentSpec` of every (scheme, query)
point and *shapes* the engine's results into :class:`Figure12Result`;
execution order, parallelism (``--jobs``) and result caching live in the
engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.registry import FIGURE12_DESIGNS, _NO_STRIDE
from ..exp import ExperimentSpec, SweepEngine, SweepPoint, standard_tables
from ..imdb.queries import q_queries, qs_queries
from ..workloads import QueryWorkload, geomean


@dataclass
class Figure12Result:
    """Speedups[design][query], normalized to the row-store baseline."""

    speedups: Dict[str, Dict[str, float]]
    baseline_cycles: Dict[str, int]
    q_names: List[str]
    qs_names: List[str]

    def gmean(self, design: str, queries: Sequence[str]) -> float:
        if not queries:
            return float("nan")
        return geomean(self.speedups[design][q] for q in queries)

    def q_gmean(self, design: str) -> float:
        return self.gmean(design, self.q_names)

    def qs_gmean(self, design: str) -> float:
        return self.gmean(design, self.qs_names)

    def payload(self) -> Dict[str, object]:
        """Machine-readable form (``--json`` / artifact export)."""
        return {
            "kind": "figure12",
            "designs": list(self.speedups),
            "q_names": self.q_names,
            "qs_names": self.qs_names,
            "speedups": self.speedups,
            "baseline_cycles": self.baseline_cycles,
            "gmeans": {
                d: {
                    "Q": self.q_gmean(d) if self.q_names else None,
                    "Qs": self.qs_gmean(d) if self.qs_names else None,
                }
                for d in self.speedups
            },
        }

    def render_chart(self) -> str:
        """Figure-12 shaped ASCII bars: Q/Qs geomeans per design."""
        from .report import bar_chart

        blocks = []
        if self.q_names:
            blocks.append("Gmean speedup, Q queries (column-friendly):")
            blocks.append(
                bar_chart(
                    {d: self.q_gmean(d) for d in self.speedups},
                    reference=1.0,
                    fmt="{:.2f}x",
                )
            )
        if self.qs_names:
            blocks.append("")
            blocks.append("Gmean speedup, Qs queries (row-friendly):")
            blocks.append(
                bar_chart(
                    {d: self.qs_gmean(d) for d in self.speedups},
                    reference=1.0,
                    fmt="{:.2f}x",
                )
            )
        return '\n'.join(blocks)

    def render(self) -> str:
        designs = list(self.speedups)
        lines = []
        header = "query".ljust(8) + "".join(d.rjust(13) for d in designs)
        lines.append(header)
        rows = list(self.q_names)
        if self.q_names:
            rows.append("Gmean(Q)")
        rows += self.qs_names
        if self.qs_names:
            rows.append("Gmean(Qs)")
        for name in rows:
            row = name.ljust(8)
            for d in designs:
                if name == "Gmean(Q)":
                    v = self.q_gmean(d)
                elif name == "Gmean(Qs)":
                    v = self.qs_gmean(d)
                else:
                    v = self.speedups[d][name]
                row += f"{v:13.2f}"
            lines.append(row)
        return "\n".join(lines)


def _query_lists(queries: Optional[Sequence[str]]):
    q_list = [q for q in q_queries() if queries is None or q.name in queries]
    qs_list = [
        q for q in qs_queries() if queries is None or q.name in queries
    ]
    return q_list, qs_list


def build_figure12_spec(
    n_ta: int = 2048,
    n_tb: int = 4096,
    designs: Optional[Sequence[str]] = None,
    queries: Optional[Sequence[str]] = None,
    include_ideal: bool = True,
    gather_factor: int = 8,
) -> ExperimentSpec:
    """Figure 12 as data: one point per (series, query)."""
    q_list, qs_list = _query_lists(queries)
    all_q = q_list + qs_list
    designs = list(designs or FIGURE12_DESIGNS)
    tables = standard_tables(n_ta, n_tb)

    points = [
        SweepPoint(key=("baseline", q.name), scheme="baseline",
                   workload=QueryWorkload(query=q, tables=tables))
        for q in all_q
    ]
    for design in designs:
        # designs without stride hardware reject a gather factor
        gf = gather_factor if design not in _NO_STRIDE else None
        points += [
            SweepPoint(key=(design, q.name), scheme=design,
                       workload=QueryWorkload(query=q, tables=tables),
                       gather_factor=gf)
            for q in all_q
        ]
    if include_ideal:
        # the paper's "ideal": a plain row store for row-preferring
        # queries, a plain column store for column-preferring ones
        points += [
            SweepPoint(
                key=("ideal", q.name),
                scheme="baseline" if q.prefers == "row" else "column-store",
                workload=QueryWorkload(query=q, tables=tables),
            )
            for q in all_q
        ]
    return ExperimentSpec(
        "figure12", tuple(points),
        normalize="divide by baseline cycles per query",
    )


def run_figure12(
    n_ta: int = 2048,
    n_tb: int = 4096,
    designs: Optional[Sequence[str]] = None,
    queries: Optional[Sequence[str]] = None,
    include_ideal: bool = True,
    gather_factor: int = 8,
    engine: Optional[SweepEngine] = None,
) -> Figure12Result:
    """Regenerate Figure 12 (optionally restricted to some designs/queries).

    ``gather_factor=8`` is the paper's default: SSC-DSD chipkill with 4-bit
    strided granularity.  ``engine`` chooses parallelism and caching; the
    default runs serially without a cache.
    """
    engine = engine or SweepEngine()
    q_list, qs_list = _query_lists(queries)
    all_q = q_list + qs_list
    design_list = list(designs or FIGURE12_DESIGNS)
    run = engine.run(build_figure12_spec(
        n_ta, n_tb, designs, queries, include_ideal, gather_factor
    ))

    baseline_cycles: Dict[str, int] = {
        q.name: run.cycles(("baseline", q.name)) for q in all_q
    }
    series = design_list + (["ideal"] if include_ideal else [])
    speedups: Dict[str, Dict[str, float]] = {
        name: {
            q.name: run.speedup((name, q.name), ("baseline", q.name))
            for q in all_q
        }
        for name in series
    }
    return Figure12Result(
        speedups,
        baseline_cycles,
        [q.name for q in q_list],
        [q.name for q in qs_list],
    )
