"""ASCII chart rendering for harness results.

The benchmarks print numeric tables; these helpers turn the same data
into terminal bar charts so the figure *shapes* are visible at a glance
(grouped bars like Figure 12, line-ish sweeps like Figure 15).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

_BAR = "#"


def bar_chart(
    values: Mapping[str, float],
    width: int = 48,
    reference: Optional[float] = None,
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal bars for one series, labelled and scaled to ``width``.

    ``reference`` draws a marker column (e.g. the 1.0x baseline).
    """
    if not values:
        return "(empty)"
    peak = max(max(values.values()), reference or 0.0)
    if peak <= 0:
        peak = 1.0
    label_w = max(len(k) for k in values)
    lines = []
    for key, value in values.items():
        n = int(round(value / peak * width))
        bar = _BAR * n
        if reference is not None:
            ref_col = int(round(reference / peak * width))
            if ref_col < width:
                bar = (
                    bar.ljust(ref_col) + "|" + bar[ref_col + 1 :]
                    if n <= ref_col
                    else bar[:ref_col] + "|" + bar[ref_col + 1 :]
                )
        lines.append(
            f"{key.ljust(label_w)}  {bar.ljust(width)} " + fmt.format(value)
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    reference: Optional[float] = None,
) -> str:
    """Figure-12-style grouped bars: one block per group (query), one bar
    per series (design)."""
    blocks = []
    for group, series in groups.items():
        blocks.append(group)
        chart = bar_chart(series, width=width, reference=reference)
        blocks.append("  " + chart.replace("\n", "\n  "))
    return "\n".join(blocks)


def sweep_chart(
    points: Mapping[object, Mapping[str, float]],
    series: Sequence[str],
    height: int = 10,
    width: int = 60,
) -> str:
    """A Figure-15-style sweep as a character plot (one glyph per series)."""
    if not points:
        return "(empty)"
    xs = list(points)
    peak = max(
        points[x].get(s, 0.0) for x in xs for s in series
    )
    if peak <= 0:
        peak = 1.0
    glyphs = "ox+*@%"
    grid = [[" "] * width for _ in range(height)]
    for si, name in enumerate(series):
        glyph = glyphs[si % len(glyphs)]
        for xi, x in enumerate(xs):
            v = points[x].get(name)
            if v is None:
                continue
            col = int(xi / max(1, len(xs) - 1) * (width - 1))
            row = height - 1 - int(v / peak * (height - 1))
            grid[row][col] = glyph
    lines = ["".join(row).rstrip() or "" for row in grid]
    axis = "-" * width
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series)
    )
    xlabels = f"{xs[0]!s} .. {xs[-1]!s}   (peak {peak:.2f})"
    return "\n".join(lines + [axis, xlabels, legend])
