"""Benchmark workload construction (Section 6.1).

The paper loads 10M records per table; a pure-Python cycle-level simulator
cannot stream that in reasonable time, so the harness defaults to a few
thousand records.  The workloads are stationary streaming scans -- per-
record cost converges after a few hundred records -- so relative numbers
are stable in table size (EXPERIMENTS.md records the sensitivity check).
"""

from __future__ import annotations

from typing import Dict

from ..imdb.schema import TA, TB, Table

#: Default table sizes for the harness (records).
DEFAULT_TA_RECORDS = 2048
DEFAULT_TB_RECORDS = 4096


def make_tables(
    n_ta: int = DEFAULT_TA_RECORDS,
    n_tb: int = DEFAULT_TB_RECORDS,
    seed: int = 42,
) -> Dict[str, Table]:
    """Fresh Ta/Tb tables (fresh per run: updates mutate them)."""
    return {
        "Ta": Table(TA, n_ta, seed=seed),
        "Tb": Table(TB, n_tb, seed=seed + 1),
    }


def geomean(values) -> float:
    """Geometric mean (the paper's cross-query summary statistic)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of nothing")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geomean needs positive values, got {v}")
        product *= v
    return product ** (1.0 / len(values))
