"""SALP interaction sweep: subarray-level parallelism x strided access.

Kim et al. (ISCA'12) exploit the subarray substructure of a DRAM bank to
overlap precharges and activates that the classic bank model serializes.
This harness measures how much of the row-store bank-conflict penalty
each SALP flavour recovers on the benchmark's conflict-heavy queries --
the joins (Q7/Q8) ping-pong between Ta and Tb, whose address regions map
to the *same banks in different subarrays*, and the aggregates stream a
wide table through a narrow row-buffer -- and whether the recovery
composes with SAM's strided gathers (``SAM-en+masa``).

Every point is one end-to-end simulation through the standard
:class:`~repro.exp.SweepEngine` (so ``--jobs``, ``--check`` and the
result cache behave exactly like the figure harnesses).  Beyond the
usual speedups, the payload keeps each run's precharge/activate stall
cycles (the ``trp``/``tras`` attribution buckets that SALP exists to
shrink) and the MASA ``SA_SEL`` command count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.registry import SALP_DESIGNS, _NO_STRIDE
from ..exp import ExperimentSpec, SweepEngine, SweepPoint, standard_tables
from ..workloads import QueryWorkload
from ..imdb.queries import q_queries

#: Bank-conflict-heavy queries: the two joins plus a wide aggregate.
SALP_QUERIES = ("Q3", "Q7", "Q8")

#: The stall buckets SALP targets (precharge / activate serialization).
CONFLICT_STALLS = ("trp", "tras")


@dataclass
class SALPSweepResult:
    """Speedups plus conflict-stall accounting per (design, query)."""

    designs: List[str]
    queries: List[str]
    #: cycles[design][query]; includes the "baseline" row
    cycles: Dict[str, Dict[str, int]]
    #: speedup over the row-store baseline, per query
    speedups: Dict[str, Dict[str, float]]
    #: merged stall attribution {reason: cycles} per (design, query)
    stalls: Dict[str, Dict[str, Dict[str, int]]]
    #: MASA subarray-select commands issued, per (design, query)
    sa_sels: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def conflict_cycles(self, design: str, query: str) -> int:
        """Precharge + activate stall cycles of one run."""
        per = self.stalls[design][query]
        return sum(int(per.get(r, 0)) for r in CONFLICT_STALLS)

    def payload(self) -> Dict[str, object]:
        """Machine-readable form (``--json`` / artifact export)."""
        return {
            "kind": "salp-sweep",
            "designs": self.designs,
            "queries": self.queries,
            "cycles": self.cycles,
            "speedups": self.speedups,
            "stalls": self.stalls,
            "sa_sels": self.sa_sels,
            "conflict_stalls": {
                d: {
                    q: self.conflict_cycles(d, q) for q in self.queries
                }
                for d in ["baseline"] + self.designs
            },
        }

    def render(self) -> str:
        designs = self.designs
        lines = ["Speedup over baseline:"]
        lines.append(
            "query".ljust(8) + "".join(d.rjust(13) for d in designs)
        )
        for q in self.queries:
            lines.append(
                q.ljust(8)
                + "".join(f"{self.speedups[d][q]:13.2f}" for d in designs)
            )
        lines.append("")
        lines.append("Precharge+activate stall cycles (trp+tras):")
        lines.append(
            "query".ljust(8) + "baseline".rjust(13)
            + "".join(d.rjust(13) for d in designs)
        )
        for q in self.queries:
            row = q.ljust(8) + f"{self.conflict_cycles('baseline', q):13d}"
            row += "".join(
                f"{self.conflict_cycles(d, q):13d}" for d in designs
            )
            lines.append(row)
        sa = [
            f"{d}/{q}={self.sa_sels[d][q]}"
            for d in designs
            for q in self.queries
            if self.sa_sels.get(d, {}).get(q, 0)
        ]
        if sa:
            lines.append("")
            lines.append("SA_SEL commands: " + ", ".join(sa))
        return "\n".join(lines)


def build_salp_spec(
    n_ta: int = 2048,
    n_tb: int = 4096,
    designs: Optional[Sequence[str]] = None,
    queries: Optional[Sequence[str]] = None,
    gather_factor: int = 8,
) -> ExperimentSpec:
    """The sweep as data: baseline plus every design, per query."""
    design_list = list(designs or SALP_DESIGNS)
    q_list = [
        q for q in q_queries()
        if q.name in (queries or SALP_QUERIES)
    ]
    tables = standard_tables(n_ta, n_tb)
    points = [
        SweepPoint(key=("baseline", q.name), scheme="baseline",
                   workload=QueryWorkload(query=q, tables=tables))
        for q in q_list
    ]
    for design in designs or SALP_DESIGNS:
        gf = gather_factor if design not in _NO_STRIDE else None
        points += [
            SweepPoint(key=(design, q.name), scheme=design,
                       workload=QueryWorkload(query=q, tables=tables),
                       gather_factor=gf)
            for q in q_list
        ]
    return ExperimentSpec(
        "salp", tuple(points),
        normalize="divide by baseline cycles per query",
    )


def run_salp_sweep(
    n_ta: int = 2048,
    n_tb: int = 4096,
    designs: Optional[Sequence[str]] = None,
    queries: Optional[Sequence[str]] = None,
    gather_factor: int = 8,
    engine: Optional[SweepEngine] = None,
) -> SALPSweepResult:
    """Run the SALP interaction sweep and shape the stall accounting."""
    engine = engine or SweepEngine()
    design_list = list(designs or SALP_DESIGNS)
    query_names = [
        q.name for q in q_queries()
        if q.name in (queries or SALP_QUERIES)
    ]
    run = engine.run(build_salp_spec(
        n_ta, n_tb, designs, queries, gather_factor
    ))

    series = ["baseline"] + design_list
    cycles: Dict[str, Dict[str, int]] = {
        d: {q: run.cycles((d, q)) for q in query_names} for d in series
    }
    speedups = {
        d: {
            q: run.speedup((d, q), ("baseline", q)) for q in query_names
        }
        for d in design_list
    }
    stalls: Dict[str, Dict[str, Dict[str, int]]] = {}
    sa_sels: Dict[str, Dict[str, int]] = {}
    for d in series:
        stalls[d] = {}
        sa_sels[d] = {}
        for q in query_names:
            result = run[(d, q)]
            merged = (result.stalls or {}).get("merged", {})
            stalls[d][q] = {k: int(v) for k, v in sorted(merged.items())}
            sa_sels[d][q] = int(getattr(result.memory_stats, "sa_sels", 0))
    return SALPSweepResult(
        design_list, query_names, cycles, speedups, stalls, sa_sels
    )
