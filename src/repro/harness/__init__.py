"""Experiment harness: regenerates every table and figure of the paper."""

from .figure12 import Figure12Result, run_figure12
from .figure13 import Figure13Result, run_figure13
from .figure14 import (
    run_figure14a,
    run_figure14b,
    run_figure14c,
    render_figure14c,
)
from .figure15 import (
    FIG15_DESIGNS,
    run_figure15,
    run_projectivity_sweep,
    run_record_size_sweep,
    run_selectivity_sweep,
)
from .kernels import (
    KERNEL_DESIGNS,
    KernelSweepResult,
    build_kernel_spec,
    render_kernels,
    run_kernel_sweep,
)
from .reliability import render_reliability, run_reliability
from .report import bar_chart, grouped_bar_chart, sweep_chart

# table helpers migrated into the workload IR; re-exported for callers
# that still reach them through the harness namespace
from ..workloads import geomean, make_tables

__all__ = [
    "Figure12Result",
    "run_figure12",
    "Figure13Result",
    "run_figure13",
    "run_figure14a",
    "run_figure14b",
    "run_figure14c",
    "render_figure14c",
    "FIG15_DESIGNS",
    "run_figure15",
    "run_projectivity_sweep",
    "run_record_size_sweep",
    "run_selectivity_sweep",
    "KERNEL_DESIGNS",
    "KernelSweepResult",
    "build_kernel_spec",
    "render_kernels",
    "run_kernel_sweep",
    "render_reliability",
    "run_reliability",
    "bar_chart",
    "grouped_bar_chart",
    "sweep_chart",
    "geomean",
    "make_tables",
]
