"""Perf-baseline bench harness (host performance, not paper numbers).

``repro bench`` runs a pinned set of (scheme, workload) kernels -- SQL
queries by name, generated micro-kernels by their
:meth:`~repro.workloads.KernelWorkload.from_spec` string -- and
measures how fast the *simulator itself* executes them: host wall time,
simulated cycles per host second, and memory operations per host second
(all read from the span profiler every run carries).  The result is a
``BENCH_<label>.json`` at the repo root -- the committed ``BENCH_seed``
baseline gives every later PR (most importantly the event-driven kernel
refactor) a perf trajectory to compare against via
``repro bench --compare``.

Simulated cycle counts are deterministic, so the compare mode also
cross-checks them: a cycle drift is not a perf regression but a behavior
change, and is reported separately.  Only the wall-time ratio gates
(with a generous threshold -- CI machines vary).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..imdb.queries import by_name
from ..obs import Observation
from ..obs.artifacts import git_describe, iso_utc
from ..sim.runner import run_query
from ..workloads import make_tables

#: bump when the bench payload layout changes incompatibly
BENCH_SCHEMA_VERSION = 1

#: pinned kernel set: representative schemes x workload shapes (gathers
#: on a row store, a pure column store, SAM on both friendly and hostile
#: queries, the column-wise-activation design, the subarray-parallel
#: bank model, and a generated strided micro-kernel on both sides of the
#: stride-hardware divide).  A workload is a query name or a
#: ``KernelWorkload.from_spec`` string.
BENCH_KERNELS: Tuple[Tuple[str, str], ...] = (
    ("baseline", "Q3"),
    ("column-store", "Q1"),
    ("SAM-en", "Q3"),
    ("SAM-en", "Qs1"),
    ("SAM-sub", "Q1"),
    ("masa", "Q3"),
    ("baseline", "strided_read[stride=256]"),
    ("SAM-en", "strided_read[stride=256]"),
)

#: default wall-time regression gate (CI machines vary; 2x is meant to
#: catch "accidentally quadratic", not noise)
DEFAULT_THRESHOLD = 2.0


def _run_one(scheme: str, workload: str, tables, queries, observe=None):
    """Run one bench row: a query by name, else a kernel by spec."""
    if workload in queries:
        return run_query(scheme, queries[workload], tables,
                         observe=observe)
    from ..sim.runner import run_workload
    from ..workloads import KernelWorkload

    return run_workload(KernelWorkload.from_spec(workload), scheme,
                        observe=observe)


def _sim_wall_s(result) -> float:
    """Host seconds spent in the simulation phases (execute +
    flush_drain), from the run's span tree."""
    root = result.spans
    if root is None:
        return 0.0
    total = 0.0
    for child in root.children:
        if child.name in ("execute", "flush_drain"):
            total += child.wall_s
    return total


def run_bench(
    label: str,
    n_ta: int = 512,
    n_tb: int = 1024,
    repeats: int = 2,
    kernels: Sequence[Tuple[str, str]] = BENCH_KERNELS,
) -> Dict[str, object]:
    """Run the pinned kernels; returns the bench payload (best-of-N
    wall times -- the min is the least-noisy host estimate)."""
    tables = make_tables(n_ta, n_tb)
    queries = by_name()
    rows: List[Dict[str, object]] = []
    for scheme, workload in kernels:
        best: Optional[Dict[str, object]] = None
        for _ in range(max(1, repeats)):
            obs = Observation()
            result = _run_one(scheme, workload, tables, queries,
                              observe=obs)
            wall_s = result.spans.wall_s if result.spans else 0.0
            sim_wall_s = _sim_wall_s(result)
            mem_ops = (
                result.core_stats.get("loads", 0)
                + result.core_stats.get("stores", 0)
                + result.core_stats.get("gathers", 0)
            )
            events = int(result.metrics.get("sim.events", 0))
            row = {
                "kernel": [scheme, workload],
                "wall_s": wall_s,
                "sim_wall_s": sim_wall_s,
                "cycles": result.cycles,
                "cycles_per_sec": (
                    result.cycles / sim_wall_s if sim_wall_s else 0.0
                ),
                "mem_ops": mem_ops,
                "ops_per_sec": mem_ops / sim_wall_s if sim_wall_s else 0.0,
                # wake-up efficiency: executed kernel events, and events
                # per simulated cycle (deterministic, like cycles -- the
                # event wheel keeps it identical to the polling reference
                # by construction, so drift here is a behavior change)
                "events": events,
                "events_per_cycle": (
                    events / result.cycles if result.cycles else 0.0
                ),
                "events_per_sec": (
                    events / sim_wall_s if sim_wall_s else 0.0
                ),
            }
            if best is None or row["wall_s"] < best["wall_s"]:
                best = row
        rows.append(best)
    total_wall = sum(r["wall_s"] for r in rows)
    total_cycles = sum(r["cycles"] for r in rows)
    total_sim_wall = sum(r["sim_wall_s"] for r in rows)
    total_events = sum(r["events"] for r in rows)
    created_unix = time.time()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench",
        "label": label,
        "created_unix": created_unix,
        "created": iso_utc(created_unix),
        "git": git_describe(),
        "tables": {"ta": n_ta, "tb": n_tb},
        "repeats": repeats,
        "kernels": rows,
        "totals": {
            "wall_s": total_wall,
            "sim_wall_s": total_sim_wall,
            "cycles": total_cycles,
            "cycles_per_sec": (
                total_cycles / total_sim_wall if total_sim_wall else 0.0
            ),
            "events": total_events,
            "events_per_cycle": (
                total_events / total_cycles if total_cycles else 0.0
            ),
            "events_per_sec": (
                total_events / total_sim_wall if total_sim_wall else 0.0
            ),
        },
    }


def profile_bench(
    n_ta: int = 512,
    n_tb: int = 1024,
    kernels: Sequence[Tuple[str, str]] = BENCH_KERNELS,
    top_n: int = 30,
) -> Tuple[Dict[str, object], str]:
    """cProfile one pass over the pinned kernels.

    Returns ``(payload, text)``: the payload is a JSON-able dict with the
    top-N functions by tottime (for ``ArtifactWriter``), the text is the
    classic pstats table for the console.  Timing under the profiler is
    skewed, so this never writes a ``BENCH_*`` payload.
    """
    import cProfile
    import io
    import pstats

    tables = make_tables(n_ta, n_tb)
    queries = by_name()
    profiler = cProfile.Profile()
    profiler.enable()
    for scheme, workload in kernels:
        _run_one(scheme, workload, tables, queries)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("tottime").print_stats(top_n)
    rows: List[Dict[str, object]] = []
    for (filename, lineno, func), entry in stats.stats.items():
        cc, nc, tt, ct = entry[:4]
        rows.append({
            "function": func,
            "file": filename,
            "line": lineno,
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime_s": tt,
            "cumtime_s": ct,
        })
    rows.sort(key=lambda r: r["tottime_s"], reverse=True)
    created_unix = time.time()
    payload = {
        "kind": "bench-profile",
        "created_unix": created_unix,
        "created": iso_utc(created_unix),
        "git": git_describe(),
        "tables": {"ta": n_ta, "tb": n_tb},
        "kernels": [list(k) for k in kernels],
        "top_by_tottime": rows[:top_n],
    }
    return payload, stream.getvalue()


def write_bench(payload: Dict[str, object],
                out_dir: "str | Path" = ".") -> Path:
    """Write ``BENCH_<label>.json`` into ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{payload['label']}.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_bench(path: "str | Path") -> Dict[str, object]:
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("kind") != "bench":
        raise ValueError(f"{path} is not a bench payload")
    return payload


def compare_bench(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
    strict_cycles: bool = False,
) -> Tuple[List[str], List[str]]:
    """Compare two bench payloads.

    Returns ``(regressions, notes)``: regressions are wall-time ratios
    beyond ``threshold`` (these should fail CI); notes are non-gating
    observations (cycle drifts = behavior changes, missing kernels).
    With ``strict_cycles`` a cycle drift *is* a regression -- the ratchet
    mode for perf refactors that promise identical simulated behavior.
    """
    regressions: List[str] = []
    notes: List[str] = []
    base_rows = {
        tuple(r["kernel"]): r for r in baseline.get("kernels", [])
    }
    for row in current.get("kernels", []):
        key = tuple(row["kernel"])
        base = base_rows.pop(key, None)
        name = "/".join(key)
        if base is None:
            notes.append(f"{name}: no baseline entry")
            continue
        base_wall = base.get("wall_s") or 0.0
        if base_wall > 0:
            ratio = row["wall_s"] / base_wall
            if ratio > threshold:
                regressions.append(
                    f"{name}: wall {row['wall_s']:.3f}s vs baseline "
                    f"{base_wall:.3f}s ({ratio:.2f}x > {threshold:.2f}x)"
                )
        if base.get("cycles") != row.get("cycles"):
            drift = (
                f"{name}: simulated cycles changed "
                f"{base.get('cycles')} -> {row.get('cycles')} "
            )
            if strict_cycles:
                regressions.append(
                    drift + "(strict-cycles: drift gates the build)"
                )
            else:
                notes.append(
                    drift + "(behavior change, not a perf regression)"
                )
        # events are deterministic like cycles; older baselines predate
        # the field, so only compare when both payloads carry it
        if (
            base.get("events") is not None
            and row.get("events") is not None
            and base["events"] != row["events"]
        ):
            notes.append(
                f"{name}: executed events changed "
                f"{base['events']} -> {row['events']} "
                f"(wakeup-schedule change, not a perf regression)"
            )
    for key in base_rows:
        notes.append(f"{'/'.join(key)}: kernel missing from current run")
    return regressions, notes


def render_bench(payload: Dict[str, object]) -> str:
    """Terminal table for one bench payload."""
    rows = payload.get("kernels", [])
    width = max(
        [24] + [len("/".join(r["kernel"])) + 2 for r in rows]
    )
    lines = [
        f"bench {payload['label']} "
        f"(git {payload.get('git') or '?'}, {payload.get('created', '?')})",
        f"{'kernel':<{width}s}   wall_s   Mcycles/s     kops/s"
        "    cycles  ev/cyc",
    ]
    for row in rows:
        name = "/".join(row["kernel"])
        lines.append(
            f"{name:<{width}s}{row['wall_s']:>9.3f}"
            f"{row['cycles_per_sec'] / 1e6:>12.2f}"
            f"{row['ops_per_sec'] / 1e3:>11.1f}"
            f"{row['cycles']:>10d}"
            f"{row.get('events_per_cycle', 0.0):>8.3f}"
        )
    totals = payload.get("totals", {})
    lines.append(
        f"{'total':<{width}s}{totals.get('wall_s', 0.0):>9.3f}"
        f"{totals.get('cycles_per_sec', 0.0) / 1e6:>12.2f}"
        f"{'':>11s}{totals.get('cycles', 0):>10d}"
        f"{totals.get('events_per_cycle', 0.0):>8.3f}"
    )
    return "\n".join(lines)
