"""Figure 14: substrate swap, strided granularity, and area overhead.

(a) RC-NVM and SAM implemented on each other's technology: RC-NVM-wd and
    SAM designs with DRAM vs NVM (RRAM) timing.
(b) Performance of RC-NVM-wd, GS-DRAM-ecc and SAM-en at 16/8/4-bit strided
    granularity (gather factors 2/4/8).
(c) Area / storage overhead of every design (static model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..area.overhead import AreaReport, all_designs
from ..core.registry import make_scheme
from ..dram.timing import preset
from ..imdb.queries import all_queries, q_queries
from ..sim.runner import run_query
from .workload import geomean, make_tables


def _swap_timing(scheme, timing_name: str):
    """Return the scheme with its base timing forced to ``timing_name``."""
    scheme.base_timing = lambda: preset(timing_name)  # type: ignore
    return scheme


@dataclass
class Figure14aResult:
    """Average speedup (all queries) of each design on each substrate."""

    speedups: Dict[str, Dict[str, float]]  # substrate -> design -> gmean

    def payload(self) -> Dict[str, object]:
        return {"kind": "figure14a", "speedups": self.speedups}

    def render(self) -> str:
        lines = ["design           on-DRAM   on-NVM"]
        designs = sorted(
            {d for per in self.speedups.values() for d in per}
        )
        for d in designs:
            dram = self.speedups["DRAM"].get(d, float("nan"))
            nvm = self.speedups["NVM"].get(d, float("nan"))
            lines.append(f"{d:14s} {dram:9.2f} {nvm:8.2f}")
        return "\n".join(lines)


def run_figure14a(
    n_ta: int = 1024,
    n_tb: int = 2048,
    designs: Sequence[str] = ("RC-NVM-wd", "SAM-sub", "SAM-IO", "SAM-en"),
    queries: Optional[Sequence[str]] = None,
) -> Figure14aResult:
    """Figure 14(a): every design on both memory technologies."""
    q_list = [
        q for q in all_queries() if queries is None or q.name in queries
    ]
    base_cycles = {}
    for query in q_list:
        tables = make_tables(n_ta, n_tb)
        base_cycles[query.name] = run_query("baseline", query, tables).cycles
    out: Dict[str, Dict[str, float]] = {"DRAM": {}, "NVM": {}}
    for substrate, timing_name in (("DRAM", "DDR4-2400"), ("NVM", "RRAM")):
        for design in designs:
            speeds = []
            for query in q_list:
                scheme = _swap_timing(make_scheme(design), timing_name)
                tables = make_tables(n_ta, n_tb)
                result = run_query(scheme, query, tables)
                speeds.append(base_cycles[query.name] / result.cycles)
            out[substrate][design] = geomean(speeds)
    return Figure14aResult(out)


@dataclass
class Figure14bResult:
    """Q-query gmean speedup per design per strided granularity."""

    speedups: Dict[int, Dict[str, float]]  # granularity bits -> design

    def payload(self) -> Dict[str, object]:
        return {
            "kind": "figure14b",
            "speedups": {str(bits): per
                         for bits, per in self.speedups.items()},
        }

    def render(self) -> str:
        lines = ["granularity   " + "".join(
            d.rjust(14)
            for d in next(iter(self.speedups.values()))
        )]
        for bits in sorted(self.speedups, reverse=True):
            row = f"{bits:2d}-bit        "
            for d, v in self.speedups[bits].items():
                row += f"{v:14.2f}"
            lines.append(row)
        return "\n".join(lines)


#: granularity in bits-per-chip -> gather factor (elements per burst)
GRANULARITY_TO_GATHER = {16: 2, 8: 4, 4: 8}


def run_figure14b(
    n_ta: int = 1024,
    n_tb: int = 2048,
    designs: Sequence[str] = ("RC-NVM-wd", "GS-DRAM-ecc", "SAM-en"),
    queries: Optional[Sequence[str]] = None,
) -> Figure14bResult:
    """Figure 14(b): strided granularity sweep over Q queries."""
    q_list = [
        q for q in q_queries() if queries is None or q.name in queries
    ]
    base_cycles = {}
    for query in q_list:
        tables = make_tables(n_ta, n_tb)
        base_cycles[query.name] = run_query("baseline", query, tables).cycles
    out: Dict[int, Dict[str, float]] = {}
    for bits, factor in GRANULARITY_TO_GATHER.items():
        out[bits] = {}
        for design in designs:
            speeds = []
            for query in q_list:
                tables = make_tables(n_ta, n_tb)
                result = run_query(
                    design, query, tables, gather_factor=factor
                )
                speeds.append(base_cycles[query.name] / result.cycles)
            out[bits][design] = geomean(speeds)
    return Figure14bResult(out)


def run_figure14c() -> Dict[str, AreaReport]:
    """Figure 14(c): the static area/storage overhead model."""
    return all_designs()


def figure14c_payload() -> Dict[str, object]:
    """Machine-readable Figure 14(c)."""
    return {
        "kind": "figure14c",
        "designs": {
            name: {
                "silicon_fraction": report.silicon_fraction,
                "storage_fraction": report.storage_fraction,
                "extra_metal_layers": report.extra_metal_layers,
            }
            for name, report in run_figure14c().items()
        },
    }


def render_figure14c() -> str:
    lines = ["design          silicon   storage   extra-metal"]
    for name, report in run_figure14c().items():
        lines.append(
            f"{name:14s} {report.silicon_fraction:8.3%} "
            f"{report.storage_fraction:8.3%}   {report.extra_metal_layers}"
        )
    return "\n".join(lines)
