"""Figure 14: substrate swap, strided granularity, and area overhead.

(a) RC-NVM and SAM implemented on each other's technology: RC-NVM-wd and
    SAM designs with DRAM vs NVM (RRAM) timing.
(b) Performance of RC-NVM-wd, GS-DRAM-ecc and SAM-en at 16/8/4-bit strided
    granularity (gather factors 2/4/8).
(c) Area / storage overhead of every design (static model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..area.overhead import AreaReport, all_designs
from ..exp import ExperimentSpec, SweepEngine, SweepPoint, standard_tables
from ..imdb.queries import all_queries, q_queries
from ..workloads import QueryWorkload, geomean


@dataclass
class Figure14aResult:
    """Average speedup (all queries) of each design on each substrate."""

    speedups: Dict[str, Dict[str, float]]  # substrate -> design -> gmean

    def payload(self) -> Dict[str, object]:
        return {"kind": "figure14a", "speedups": self.speedups}

    def render(self) -> str:
        lines = ["design           on-DRAM   on-NVM"]
        designs = sorted(
            {d for per in self.speedups.values() for d in per}
        )
        for d in designs:
            dram = self.speedups["DRAM"].get(d, float("nan"))
            nvm = self.speedups["NVM"].get(d, float("nan"))
            lines.append(f"{d:14s} {dram:9.2f} {nvm:8.2f}")
        return "\n".join(lines)


#: Figure 14(a) substrates: display label -> timing preset to force.
SUBSTRATES = (("DRAM", "DDR4-2400"), ("NVM", "RRAM"))


def build_figure14a_spec(
    n_ta: int = 1024,
    n_tb: int = 2048,
    designs: Sequence[str] = ("RC-NVM-wd", "SAM-sub", "SAM-IO", "SAM-en"),
    queries: Optional[Sequence[str]] = None,
) -> ExperimentSpec:
    """Figure 14(a) as data: baseline per query + every design on every
    substrate, timing forced via the scheme's immutable ``with_timing``
    clone (no shared-instance monkeypatching)."""
    q_list = [
        q for q in all_queries() if queries is None or q.name in queries
    ]
    tables = standard_tables(n_ta, n_tb)
    points = [
        SweepPoint(key=("baseline", q.name), scheme="baseline",
                   workload=QueryWorkload(query=q, tables=tables))
        for q in q_list
    ]
    points += [
        SweepPoint(key=(substrate, design, q.name), scheme=design,
                   workload=QueryWorkload(query=q, tables=tables),
                   timing=timing_name)
        for substrate, timing_name in SUBSTRATES
        for design in designs
        for q in q_list
    ]
    return ExperimentSpec(
        "figure14a", tuple(points),
        normalize="divide by baseline cycles per query, gmean per design",
    )


def run_figure14a(
    n_ta: int = 1024,
    n_tb: int = 2048,
    designs: Sequence[str] = ("RC-NVM-wd", "SAM-sub", "SAM-IO", "SAM-en"),
    queries: Optional[Sequence[str]] = None,
    engine: Optional[SweepEngine] = None,
) -> Figure14aResult:
    """Figure 14(a): every design on both memory technologies."""
    engine = engine or SweepEngine()
    q_list = [
        q for q in all_queries() if queries is None or q.name in queries
    ]
    run = engine.run(build_figure14a_spec(n_ta, n_tb, designs, queries))
    out: Dict[str, Dict[str, float]] = {"DRAM": {}, "NVM": {}}
    for substrate, _ in SUBSTRATES:
        for design in designs:
            out[substrate][design] = geomean(
                run.speedup((substrate, design, q.name),
                            ("baseline", q.name))
                for q in q_list
            )
    return Figure14aResult(out)


@dataclass
class Figure14bResult:
    """Q-query gmean speedup per design per strided granularity."""

    speedups: Dict[int, Dict[str, float]]  # granularity bits -> design

    def payload(self) -> Dict[str, object]:
        return {
            "kind": "figure14b",
            "speedups": {str(bits): per
                         for bits, per in self.speedups.items()},
        }

    def render(self) -> str:
        lines = ["granularity   " + "".join(
            d.rjust(14)
            for d in next(iter(self.speedups.values()))
        )]
        for bits in sorted(self.speedups, reverse=True):
            row = f"{bits:2d}-bit        "
            for d, v in self.speedups[bits].items():
                row += f"{v:14.2f}"
            lines.append(row)
        return "\n".join(lines)


#: granularity in bits-per-chip -> gather factor (elements per burst)
GRANULARITY_TO_GATHER = {16: 2, 8: 4, 4: 8}


def build_figure14b_spec(
    n_ta: int = 1024,
    n_tb: int = 2048,
    designs: Sequence[str] = ("RC-NVM-wd", "GS-DRAM-ecc", "SAM-en"),
    queries: Optional[Sequence[str]] = None,
) -> ExperimentSpec:
    """Figure 14(b) as data: baseline per query + every design at every
    strided granularity."""
    q_list = [
        q for q in q_queries() if queries is None or q.name in queries
    ]
    tables = standard_tables(n_ta, n_tb)
    points = [
        SweepPoint(key=("baseline", q.name), scheme="baseline",
                   workload=QueryWorkload(query=q, tables=tables))
        for q in q_list
    ]
    points += [
        SweepPoint(key=(f"{bits}-bit", design, q.name), scheme=design,
                   workload=QueryWorkload(query=q, tables=tables),
                   gather_factor=factor)
        for bits, factor in GRANULARITY_TO_GATHER.items()
        for design in designs
        for q in q_list
    ]
    return ExperimentSpec(
        "figure14b", tuple(points),
        normalize="divide by baseline cycles per query, gmean per design",
    )


def run_figure14b(
    n_ta: int = 1024,
    n_tb: int = 2048,
    designs: Sequence[str] = ("RC-NVM-wd", "GS-DRAM-ecc", "SAM-en"),
    queries: Optional[Sequence[str]] = None,
    engine: Optional[SweepEngine] = None,
) -> Figure14bResult:
    """Figure 14(b): strided granularity sweep over Q queries."""
    engine = engine or SweepEngine()
    q_list = [
        q for q in q_queries() if queries is None or q.name in queries
    ]
    run = engine.run(build_figure14b_spec(n_ta, n_tb, designs, queries))
    out: Dict[int, Dict[str, float]] = {}
    for bits in GRANULARITY_TO_GATHER:
        out[bits] = {}
        for design in designs:
            out[bits][design] = geomean(
                run.speedup((f"{bits}-bit", design, q.name),
                            ("baseline", q.name))
                for q in q_list
            )
    return Figure14bResult(out)


def run_figure14c() -> Dict[str, AreaReport]:
    """Figure 14(c): the static area/storage overhead model."""
    return all_designs()


def figure14c_payload() -> Dict[str, object]:
    """Machine-readable Figure 14(c)."""
    return {
        "kind": "figure14c",
        "designs": {
            name: {
                "silicon_fraction": report.silicon_fraction,
                "storage_fraction": report.storage_fraction,
                "extra_metal_layers": report.extra_metal_layers,
            }
            for name, report in run_figure14c().items()
        },
    }


def render_figure14c() -> str:
    lines = ["design          silicon   storage   extra-metal"]
    for name, report in run_figure14c().items():
        lines.append(
            f"{name:14s} {report.silicon_fraction:8.3%} "
            f"{report.storage_fraction:8.3%}   {report.extra_metal_layers}"
        )
    return "\n".join(lines)
