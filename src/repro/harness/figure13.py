"""Figure 13: power and energy efficiency by query class.

The paper groups the benchmark into four classes -- read-type Q queries
(Q1-Q10), write-type Q queries (Q11, Q12), read-type Qs queries (Qs1-Qs4)
and write-type Qs queries (Qs5, Qs6) -- and reports, per design:

* average memory power (mW), split into background / RD-WR / ACT,
* energy efficiency normalized to the row-store baseline
  (baseline energy / design energy for the same work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.registry import FIGURE12_DESIGNS
from ..exp import ExperimentSpec, SweepEngine, SweepPoint, standard_tables
from ..workloads import QueryWorkload
from ..imdb.queries import by_name

#: Figure 13's query classes.
CLASSES = {
    "Read(Q1-Q10)": [f"Q{i}" for i in range(1, 11)],
    "Write(Q11,Q12)": ["Q11", "Q12"],
    "Read(Qs1-Qs4)": ["Qs1", "Qs2", "Qs3", "Qs4"],
    "Write(Qs5,Qs6)": ["Qs5", "Qs6"],
}


@dataclass
class Figure13Result:
    """power_mw[class][design] -> {background, rdwr, act, total};
    efficiency[class][design] -> energy efficiency vs baseline."""

    power_mw: Dict[str, Dict[str, Dict[str, float]]]
    efficiency: Dict[str, Dict[str, float]]

    def payload(self) -> Dict[str, object]:
        """Machine-readable form (``--json`` / artifact export)."""
        return {
            "kind": "figure13",
            "power_mw": self.power_mw,
            "efficiency": self.efficiency,
        }

    def render(self) -> str:
        lines = []
        for cls, per_design in self.power_mw.items():
            lines.append(f"== {cls}")
            for design, parts in per_design.items():
                eff = self.efficiency[cls][design]
                lines.append(
                    f"  {design:12s} power={parts['total']:7.1f} mW "
                    f"(bg={parts['background']:6.1f} rdwr={parts['rdwr']:6.1f}"
                    f" act={parts['act']:6.1f})  energy-eff={eff:5.2f}x"
                )
        return "\n".join(lines)


def build_figure13_spec(
    n_ta: int = 1024,
    n_tb: int = 2048,
    designs: Optional[Sequence[str]] = None,
) -> ExperimentSpec:
    """Figure 13 as data: one point per (design, query); the query
    classes partition the benchmark, so (design, query) keys are unique."""
    designs = list(designs or (("baseline",) + tuple(FIGURE12_DESIGNS)))
    queries = by_name()
    tables = standard_tables(n_ta, n_tb)
    points = [
        SweepPoint(key=(design, qname), scheme=design,
                   workload=QueryWorkload(query=queries[qname],
                                          tables=tables))
        for design in designs
        for names in CLASSES.values()
        for qname in names
    ]
    return ExperimentSpec(
        "figure13", tuple(points),
        normalize="baseline class energy / design class energy",
    )


def run_figure13(
    n_ta: int = 1024,
    n_tb: int = 2048,
    designs: Optional[Sequence[str]] = None,
    engine: Optional[SweepEngine] = None,
) -> Figure13Result:
    """Regenerate Figure 13."""
    engine = engine or SweepEngine()
    designs = list(designs or (("baseline",) + tuple(FIGURE12_DESIGNS)))
    run = engine.run(build_figure13_spec(n_ta, n_tb, designs))
    power: Dict[str, Dict[str, Dict[str, float]]] = {}
    eff: Dict[str, Dict[str, float]] = {}
    # energy per class per design, for the efficiency ratios
    energy: Dict[str, Dict[str, float]] = {c: {} for c in CLASSES}
    for cls, names in CLASSES.items():
        power[cls] = {}
        for design in designs:
            totals = {"background": 0.0, "rdwr": 0.0, "act": 0.0,
                      "total": 0.0}
            cls_energy = 0.0
            elapsed = 0.0
            for qname in names:
                p = run[(design, qname)].power
                cls_energy += p.total_nj
                elapsed += p.elapsed_ns
                totals["background"] += p.background_nj
                totals["rdwr"] += p.rdwr_nj
                totals["act"] += p.act_nj
            totals["total"] = sum(
                totals[k] for k in ("background", "rdwr", "act")
            )
            # power = class energy over class runtime
            if elapsed > 0:
                for key in totals:
                    totals[key] = totals[key] / elapsed * 1e3
            power[cls][design] = totals
            energy[cls][design] = cls_energy
    for cls in CLASSES:
        base = energy[cls].get("baseline")
        eff[cls] = {}
        for design in designs:
            eff[cls][design] = (
                base / energy[cls][design] if base else float("nan")
            )
    return Figure13Result(power, eff)
