"""Reliability evaluation (the chipkill claims of Sections 3-4).

Two complementary analyses:

* **structural** -- codeword-integrity checks per access scheme: a strided
  transfer is protectable only if it moves complete codewords
  (:mod:`repro.ecc.layout`); SAM does, GS-DRAM does not.
* **empirical** -- Monte-Carlo fault injection through the real RS
  decoders: chip faults, DQ faults, double-chip faults, with per-design
  protection rates (GS-DRAM's strided accesses run uncovered).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.registry import make_scheme
from ..exp import ExperimentSpec, SweepEngine, SweepPoint
from ..ecc.chipkill import SSCCodec, SSCDSDCodec
from ..ecc.injection import FAULT_MODELS, run_campaign, unprotected_tally
from ..ecc.layout import (
    gs_dram_gather_check,
    regular_transfer_check,
    sam_gather_check,
)


@dataclass
class ReliabilityRow:
    design: str
    strided_codewords_intact: bool
    chip_fault_protection: float  # fraction corrected-or-detected
    dq_fault_protection: float
    double_chip_protection: float


def evaluate_design(design: str, trials: int = 500,
                    seed: int = 0) -> ReliabilityRow:
    """Reliability of strided accesses under one design."""
    scheme = make_scheme(design)
    if not scheme.supports_stride:
        intact = regular_transfer_check().complete
    elif design.startswith("GS-DRAM") and design != "GS-DRAM-ecc":
        intact = gs_dram_gather_check().complete
    elif design == "GS-DRAM-ecc":
        # embedded ECC restores coverage at a bandwidth cost
        intact = True
    else:
        intact = sam_gather_check().complete

    if intact:
        codec = SSCCodec()
        chip = run_campaign(codec, FAULT_MODELS["chip"], trials, seed)
        dq = run_campaign(codec, FAULT_MODELS["dq"], trials, seed + 1)
        dsd = SSCDSDCodec()
        double = run_campaign(dsd, FAULT_MODELS["double_chip"], trials,
                              seed + 2)
        return ReliabilityRow(
            design,
            True,
            chip.protected_rate,
            dq.protected_rate,
            double.protected_rate,
        )
    chip = unprotected_tally(FAULT_MODELS["chip"], trials, seed)
    dq = unprotected_tally(FAULT_MODELS["dq"], trials, seed + 1)
    double = unprotected_tally(FAULT_MODELS["double_chip"], trials, seed + 2)
    return ReliabilityRow(
        design,
        False,
        chip.protected_rate,
        dq.protected_rate,
        double.protected_rate,
    )


#: the designs of the reliability matrix, in display order
RELIABILITY_DESIGNS = (
    "baseline", "SAM-sub", "SAM-IO", "SAM-en",
    "GS-DRAM", "GS-DRAM-ecc", "RC-NVM-wd",
)


def build_reliability_spec(
    trials: int = 500,
    seed: int = 0,
    designs: Sequence[str] = RELIABILITY_DESIGNS,
) -> ExperimentSpec:
    """The reliability matrix as data: one Monte-Carlo campaign per
    design (``kind="reliability"`` points dispatch to
    :func:`evaluate_design` in whichever process runs them)."""
    points = tuple(
        SweepPoint(
            key=("reliability", d),
            kind="reliability",
            scheme=d,
            params=(("seed", seed), ("trials", trials)),
        )
        for d in designs
    )
    return ExperimentSpec(
        "reliability", points,
        normalize="protection rates are already fractions",
    )


def run_reliability(
    trials: int = 500,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, ReliabilityRow]:
    engine = engine or SweepEngine()
    run = engine.run(build_reliability_spec(trials))
    return {d: run[("reliability", d)] for d in RELIABILITY_DESIGNS}


def rows_payload(rows: Dict[str, ReliabilityRow],
                 trials: int) -> Dict[str, object]:
    """Machine-readable reliability matrix (``--json`` / artifacts)."""
    from dataclasses import asdict

    return {
        "kind": "reliability",
        "trials": trials,
        "designs": {name: asdict(row) for name, row in rows.items()},
    }


def reliability_payload(
    trials: int = 500,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, object]:
    return rows_payload(run_reliability(trials, engine=engine), trials)


def render_rows(rows: Dict[str, ReliabilityRow]) -> str:
    lines = [
        "design        codewords-intact  chip-fault  dq-fault  double-chip"
    ]
    for row in rows.values():
        lines.append(
            f"{row.design:13s} {str(row.strided_codewords_intact):>14}"
            f"  {row.chip_fault_protection:9.1%} {row.dq_fault_protection:9.1%}"
            f" {row.double_chip_protection:11.1%}"
        )
    return "\n".join(lines)


def render_reliability(
    trials: int = 500,
    engine: Optional[SweepEngine] = None,
) -> str:
    return render_rows(run_reliability(trials, engine=engine))
