"""Command-level tracing and bandwidth analysis.

Attach a :class:`CommandTracer` to a controller (it installs itself as the
controller's observer) to record every issued command.  The tracer offers
the analyses a memory-system study needs when a number looks off:

* data-bus utilization over time (who is bus-bound),
* per-bank command histograms (who is bank-conflict-bound),
* command-interval statistics (where the bubbles are),
* an exportable event list for offline inspection, including JSONL
  export into an artifacts directory (one event object per line).

Attaching chains any previously installed observer (e.g. the obs layer's
stall ring), so tracing composes with default-on observability.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..dram.commands import Command, Request
from ..dram.controller import MemoryController


@dataclass(frozen=True)
class TraceEvent:
    """One issued command."""

    cycle: int
    command: str
    rank: int
    bank: int
    row: int
    gather: int

    def as_tuple(self) -> Tuple[int, str, int, int, int, int]:
        return (self.cycle, self.command, self.rank, self.bank, self.row,
                self.gather)


class CommandTracer:
    """Records controller commands and derives summary statistics."""

    def __init__(self, controller: MemoryController,
                 keep_events: bool = True) -> None:
        self.controller = controller
        self.keep_events = keep_events
        self.events: List[TraceEvent] = []
        self.command_counts: Counter = Counter()
        self.bank_commands: Counter = Counter()
        self._last_cas_cycle: Optional[int] = None
        self.cas_gaps: Counter = Counter()
        self._chained = controller.observer
        controller.observer = self._observe

    def detach(self) -> None:
        self.controller.observer = self._chained
        self._chained = None

    # ------------------------------------------------------------ recording

    def _observe(self, cycle: int, command: Command,
                 request: Optional[Request]) -> None:
        if self._chained is not None:
            self._chained(cycle, command, request)
        name = command.value
        self.command_counts[name] += 1
        if request is not None:
            self.bank_commands[(request.addr.rank, request.addr.bank)] += 1
            if self.keep_events:
                self.events.append(
                    TraceEvent(
                        cycle,
                        name,
                        request.addr.rank,
                        request.addr.bank,
                        request.addr.row,
                        request.gather,
                    )
                )
            if command in (Command.RD, Command.WR):
                if self._last_cas_cycle is not None:
                    gap = cycle - self._last_cas_cycle
                    self.cas_gaps[min(gap, 32)] += 1
                self._last_cas_cycle = cycle

    # ------------------------------------------------------------- analyses

    def bus_utilization(self, elapsed_cycles: int) -> float:
        """Fraction of cycles the data bus carried a burst."""
        if elapsed_cycles <= 0:
            return 0.0
        busy = self.controller.channel.data_busy_cycles
        return min(1.0, busy / elapsed_cycles)

    def hottest_banks(self, top: int = 4) -> List[Tuple[Tuple[int, int], int]]:
        return self.bank_commands.most_common(top)

    def recent(self, n: int = 64) -> List[TraceEvent]:
        """The last ``n`` recorded events."""
        return self.events[-n:]

    # --------------------------------------------------------------- export

    def export_jsonl(self, path: "str | Path") -> Path:
        """Write the recorded events as JSON Lines (one event per line),
        the format run artifacts and regression tooling diff."""
        path = Path(path)
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(json.dumps(asdict(event), sort_keys=True))
                fh.write("\n")
        return path

    def cas_gap_histogram(self) -> Dict[int, int]:
        """Distribution of cycles between consecutive column commands;
        a spike at tBL means bus-bound, larger modes are bubbles."""
        return dict(sorted(self.cas_gaps.items()))

    def report(self, elapsed_cycles: int) -> str:
        lines = [
            f"commands: " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.command_counts.items())
            ),
            f"data-bus utilization: "
            f"{self.bus_utilization(elapsed_cycles):.1%}",
        ]
        if self.bank_commands:
            hot = ", ".join(
                f"rank{r}/bank{b}: {n}"
                for (r, b), n in self.hottest_banks()
            )
            lines.append(f"hottest banks: {hot}")
        gaps = self.cas_gap_histogram()
        if gaps:
            total = sum(gaps.values())
            mode_gap = max(gaps, key=gaps.get)
            lines.append(
                f"CAS gaps: mode={mode_gap} cycles "
                f"({gaps[mode_gap] / total:.0%} of intervals)"
            )
        return "\n".join(lines)
