"""End-to-end query runner: scheme + query + tables -> RunResult.

This is the reproduction's equivalent of the paper's gem5+NVMain stack:
it allocates the tables through the scheme's placement, lowers the query
with the executor, runs the cores against the cycle-level memory system,
flushes dirty state, and reports time, command counts and energy.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.registry import make_scheme
from ..core.scheme import AccessScheme, Placement, TablePlacement
from ..cpu.core import Core
from ..power.model import PowerModel

# typing-only imports of the imdb layer (it imports sim.config, so pulling
# it at module load would be circular; the executor is imported lazily in
# run_query instead)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..imdb.executor import CostModel, ExecutorOutput
    from ..imdb.query import Query
    from ..imdb.schema import Table
from .config import SystemConfig
from .kernel import Kernel
from .results import RunResult
from .system import MemorySystem

#: Address-space spacing between allocated regions (tables never overlap).
#: The module holds 32 GiB (2^35 bytes); four 8 GiB regions tile it exactly.
_REGION_STRIDE = 1 << 33

#: Safety valve for runaway simulations.
_MAX_EVENTS = 200_000_000


def allocate_placements(
    scheme: AccessScheme, tables: Dict[str, Table]
) -> Dict[str, Placement]:
    """Place every table (and an insert shadow region per table)."""
    placements: Dict[str, Placement] = {}
    capacity = scheme.geometry.capacity_bytes
    if 2 * len(tables) * _REGION_STRIDE > capacity:
        raise ValueError("too many tables for the module's address space")
    region = 0
    for name in sorted(tables):
        table = tables[name]
        base = region * _REGION_STRIDE
        placements[name] = scheme.placement(
            TablePlacement(base, table.schema.record_bytes, table.n_records)
        )
        region += 1
        insert_base = region * _REGION_STRIDE
        placements[f"{name}+insert"] = scheme.placement(
            TablePlacement(
                insert_base, table.schema.record_bytes, table.n_records
            )
        )
        region += 1
    return placements


def run_query(
    scheme: "AccessScheme | str",
    query: "Query",
    tables: "Dict[str, Table]",
    config: Optional[SystemConfig] = None,
    cost: "Optional[CostModel]" = None,
    gather_factor: Optional[int] = None,
) -> RunResult:
    """Simulate one query on one design and return the measurements."""
    from ..imdb.executor import QueryExecutor

    if isinstance(scheme, str):
        scheme = make_scheme(scheme, gather_factor=gather_factor)
    config = config or SystemConfig()

    kernel = Kernel()
    system = MemorySystem(kernel, scheme, config)
    placements = allocate_placements(scheme, tables)
    executor = QueryExecutor(scheme, config, tables, placements, cost)
    output = executor.build(query)

    cores = [
        Core(kernel, core_id, system, config.core)
        for core_id in range(config.cores)
    ]
    for core, ops in zip(cores, output.ops_per_core):
        core.run(ops)

    kernel.run(max_events=_MAX_EVENTS)
    unfinished = [c.core_id for c in cores if not c.finished]
    if unfinished:
        raise RuntimeError(
            f"cores {unfinished} stalled at t={kernel.now} "
            f"({scheme.name}/{query.name})"
        )
    # Account the writeback tail: flush dirty lines and drain the queues.
    system.flush_caches()
    kernel.run(max_events=_MAX_EVENTS)
    if not system.fully_drained:
        raise RuntimeError(
            f"memory system failed to drain ({scheme.name}/{query.name})"
        )

    cycles = kernel.now
    power_model = PowerModel(
        scheme.power_config, scheme.timing, scheme.geometry
    )
    power = power_model.evaluate(system.controller.stats, cycles)
    core_stats = {
        "loads": sum(c.loads for c in cores),
        "stores": sum(c.stores for c in cores),
        "gathers": sum(c.gathers for c in cores),
        "hits": sum(c.hits for c in cores),
        "misses": sum(c.misses for c in cores),
    }
    busy = system.controller.channel.data_busy_cycles
    return RunResult(
        scheme=scheme.name,
        query=query.name,
        cycles=cycles,
        ns=scheme.timing.ns(cycles),
        memory_stats=system.controller.stats,
        power=power,
        result=output.result,
        selected_records=output.selected_records,
        core_stats=core_stats,
        bus_utilization=min(1.0, busy / cycles) if cycles else 0.0,
    )


def run_ideal(
    query: "Query",
    tables: "Dict[str, Table]",
    config: Optional[SystemConfig] = None,
    cost: "Optional[CostModel]" = None,
) -> RunResult:
    """The paper's "ideal" series: a plain row store for row-preferring
    queries, a plain column store for column-preferring ones."""
    name = "baseline" if query.prefers == "row" else "column-store"
    result = run_query(name, query, tables, config, cost)
    result.scheme = "ideal"
    return result
