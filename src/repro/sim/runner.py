"""End-to-end runner: scheme + workload -> RunResult.

This is the reproduction's equivalent of the paper's gem5+NVMain stack:
it allocates the workload's tables through the scheme's placement,
lowers the workload into per-core op streams (the relational executor
for queries, the generator registry for micro-kernels), runs the cores
against the cycle-level memory system, flushes dirty state, and reports
time, command counts and energy.

:func:`run_workload` is the single core path; :func:`run_query` and
:func:`run_ideal` are thin wrappers that construct a
:class:`~repro.workloads.QueryWorkload` -- their parameter lists cannot
drift from the core's because they *are* the core's.

Every run is observed: a :class:`repro.obs.Observation` (created on
demand when the caller does not pass one) records phase spans, publishes
all statistics into a metrics registry -- the single source the power
model and harnesses read from -- keeps a ring of recently issued DRAM
commands for stall forensics, and can write a JSON run manifest plus a
JSONL command trace into an artifacts directory.  A wedged simulation
raises :class:`repro.obs.SimulationStallError` carrying per-bank state,
queue occupancies and the last commands instead of a bare string.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional

from ..core.registry import make_scheme
from ..core.scheme import AccessScheme, Placement, TablePlacement
from ..cpu.core import Core
from ..kernel import Kernel, SimulationError
from ..obs import (
    Observation,
    SimulationStallError,
    build_stall_report,
    merge_breakdown,
)
from ..obs.artifacts import ArtifactWriter
from ..power.model import PowerModel

# typing-only imports of the imdb/workloads layers (they import
# sim.config, so pulling them at module load would be circular; the
# wrappers import lazily instead)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..imdb.executor import CostModel
    from ..imdb.query import Query
    from ..imdb.schema import Table
    from ..workloads import Workload
from .config import SystemConfig
from .results import RunResult
from .system import MemorySystem

#: Address-space spacing between allocated regions (tables never overlap).
#: The module holds 32 GiB (2^35 bytes); four 8 GiB regions tile it exactly.
_REGION_STRIDE = 1 << 33

#: Safety valve for runaway simulations.
_MAX_EVENTS = 200_000_000

#: Read-latency histogram buckets (memory-controller cycles).
_LATENCY_BUCKETS = (24, 32, 48, 64, 96, 128, 192, 256, 512, 1024)

#: Fraction of the event budget beyond which a run counts as near-runaway.
_EVENT_WARN_FRACTION = 0.5


def allocate_placements(
    scheme: AccessScheme, tables: Dict[str, Table]
) -> Dict[str, Placement]:
    """Place every table (and an insert shadow region per table)."""
    placements: Dict[str, Placement] = {}
    capacity = scheme.geometry.capacity_bytes
    if 2 * len(tables) * _REGION_STRIDE > capacity:
        raise ValueError("too many tables for the module's address space")
    region = 0
    for name in sorted(tables):
        table = tables[name]
        base = region * _REGION_STRIDE
        placements[name] = scheme.placement(
            TablePlacement(base, table.schema.record_bytes, table.n_records)
        )
        region += 1
        insert_base = region * _REGION_STRIDE
        placements[f"{name}+insert"] = scheme.placement(
            TablePlacement(
                insert_base, table.schema.record_bytes, table.n_records
            )
        )
        region += 1
    return placements


def _attach_observers(
    system: MemorySystem, obs: Observation, cores: List[Core]
) -> None:
    """Wire the observation into the controller's hot path."""
    controller = system.controller
    controller.observer = obs.observe_command
    controller.latency_hist = obs.registry.histogram(
        "dram.read_latency_cycles", _LATENCY_BUCKETS
    )
    controller.metrics = obs.registry
    controller.stall_ledger = obs.stalls.ledger
    for core in cores:
        core.stall_log = obs.stalls.core_log(core.core_id)
    if obs.trace:
        from .trace import CommandTracer

        # chains obs.observe_command, so the stall ring stays fed
        obs.tracer = CommandTracer(
            controller, keep_events=obs.keep_trace_events
        )
    if obs.timeline:
        from ..obs.timeline import TimelineRecorder

        obs.timeline_recorder = TimelineRecorder(controller).attach()


def _stall(
    reason: str,
    kernel: Kernel,
    system: MemorySystem,
    cores: List[Core],
    scheme: AccessScheme,
    workload_name: str,
    obs: Observation,
) -> SimulationStallError:
    return SimulationStallError(build_stall_report(
        reason,
        kernel,
        system,
        cores=cores,
        scheme=scheme.name,
        query=workload_name,
        recent_events=obs.recent_events(),
    ))


def _add_activity_spans(
    obs: Observation,
    execute_span,
    cores: List[Core],
    system: MemorySystem,
) -> None:
    """Reconstruct per-core and per-bank activity windows as spans."""
    profiler = obs.profiler
    for core in cores:
        profiler.add(
            execute_span,
            f"core{core.core_id}",
            core.start_cycle,
            core.finish_cycle
            if core.finish_cycle is not None else core.start_cycle,
            loads=core.loads,
            stores=core.stores,
            gathers=core.gathers,
            misses=core.misses,
        )
    for rank_id, rank in enumerate(system.controller.channel.ranks):
        for bank_id, bank in enumerate(rank.banks):
            if bank.first_act_cycle < 0:
                continue
            profiler.add(
                execute_span,
                f"rank{rank_id}/bank{bank_id}",
                bank.first_act_cycle,
                bank.last_act_cycle,
                activations=bank.activations,
                row_hits=bank.row_hits,
                row_conflicts=bank.row_conflicts,
            )


def _publish_metrics(
    obs: Observation,
    system: MemorySystem,
    cores: List[Core],
    cycles: int,
    events: int,
    max_events: int,
    scheme: AccessScheme,
    kernel: Optional[Kernel] = None,
) -> None:
    """Publish every collected statistic into the metrics registry."""
    reg = obs.registry
    reg.publish_struct("dram", system.controller.stats)
    reg.gauge("dram.avg_read_latency").set(
        system.controller.stats.avg_read_latency
    )
    reg.publish_struct("sys", system.stats)
    for name in ("loads", "stores", "gathers", "hits", "misses",
                 "retries"):
        reg.counter(f"core.{name}").inc(
            sum(getattr(c, name) for c in cores)
        )
    for level, occ in system.hierarchy.occupancy().items():
        for key, value in occ.items():
            reg.gauge(f"cache.{level}.{key}").set(value)
    reg.gauge("sim.cycles").set(cycles)
    reg.gauge("sim.ns").set(scheme.timing.ns(cycles))
    # Event count against the safety valve: near-runaway runs become
    # visible long before they trip _MAX_EVENTS.
    reg.gauge("sim.events").set(events)
    reg.gauge("sim.max_events").set(max_events)
    # Event-wheel efficiency gauges: executed kernel events per simulated
    # cycle (the wakeup-efficiency number the bench ratchets), memoized
    # scheduler replays, and writeback-poll futility.
    reg.set_ratio("sim.events_per_cycle", events, cycles)
    if kernel is not None:
        reg.gauge("kernel.events").set(kernel.events)
        reg.gauge("kernel.cancelled").set(kernel.cancelled)
    reg.gauge("dram.peek_hits").set(system.controller.peek_hits)
    reg.gauge("sys.wb_polls").set(system.wb_polls)
    reg.gauge("sys.wb_polls_futile").set(system.wb_polls_futile)
    frac = events / max_events if max_events else 0.0
    reg.gauge("sim.event_budget_used").set(frac)
    if frac > _EVENT_WARN_FRACTION:
        reg.counter("sim.events_near_limit").inc()
        warnings.warn(
            f"simulation used {frac:.0%} of its event budget "
            f"({events}/{max_events}); raise max_events or shrink the "
            f"workload ({scheme.name})",
            RuntimeWarning,
            stacklevel=3,
        )


def _attribute_stalls(obs: Observation, cores: List[Core]) -> Dict:
    """Run the stall attributor and publish the breakdown as metrics."""
    per_core = obs.stalls.attribute(cores)
    merged = merge_breakdown(per_core)
    for reason, cyc in sorted(merged.items()):
        obs.registry.gauge(f"stalls.{reason}").set(cyc)
    return {"per_core": per_core, "merged": merged}


def _finish_timeline(obs: Observation, cycles: int) -> None:
    """Close the timeline, add the core lanes, publish its digest."""
    timeline = obs.timeline_recorder
    if timeline is None:
        return
    timeline.finalize(cycles)
    for core_id, log in sorted(obs.stalls.core_logs.items()):
        for start, end in log.busy:
            timeline.add_core_span(core_id, start, end, "busy")
        for start, end, reason in log.blocks:
            timeline.add_core_span(core_id, start, end, f"stall:{reason}")
    for key, value in timeline.digest().items():
        obs.registry.gauge(f"timeline.{key}").set(value)


def _bus_utilization(obs: Observation, busy: int, cycles: int,
                     scheme: AccessScheme, workload_name: str) -> float:
    """Busy fraction of the data bus, *without* clamping: a value above
    1.0 is a bookkeeping bug, so it is surfaced as a warning metric
    rather than silently hidden by ``min(1.0, ...)``."""
    if not cycles:
        return 0.0
    utilization = busy / cycles
    if utilization > 1.0:
        obs.registry.counter("sim.bus_utilization_overflow").inc()
        obs.registry.gauge("sim.bus_utilization_raw").set(utilization)
        warnings.warn(
            f"data-bus utilization {utilization:.3f} > 1.0 "
            f"({scheme.name}/{workload_name}): busy-cycle bookkeeping bug",
            RuntimeWarning,
            stacklevel=3,
        )
    obs.registry.gauge("sim.bus_utilization").set(utilization)
    return utilization


def run_workload(
    workload: "Workload",
    scheme: "AccessScheme | str",
    tables: "Optional[Dict[str, Table]]" = None,
    config: Optional[SystemConfig] = None,
    cost: "Optional[CostModel]" = None,
    gather_factor: Optional[int] = None,
    timing: Optional[str] = None,
    observe: Optional[Observation] = None,
    artifacts: Optional[str] = None,
    max_events: Optional[int] = None,
    check: bool = False,
) -> RunResult:
    """Simulate one workload on one design and return the measurements.

    ``workload`` is any :class:`repro.workloads.Workload` -- a relational
    query or a generated micro-kernel; ``tables`` optionally supplies
    pre-materialized tables (the workload's own
    :meth:`~repro.workloads.Workload.materialize` runs otherwise).

    ``check`` attaches the :mod:`repro.check` correctness tooling: a
    strict :class:`~repro.check.TimingProtocolChecker` on the memory
    controller and a :class:`~repro.check.PlanValidator` on a private
    copy of the scheme, plus the workload's own build oracle (the plan
    footprint diff for queries, the :class:`~repro.check.KernelOracle`
    access/expected-bytes diff for kernels).  Any protocol violation or
    oracle mismatch aborts the run with a structured exception;
    ``check.*`` counters land in the run's metrics.

    ``observe`` threads a caller-owned :class:`repro.obs.Observation`
    through the run (enable tracing, choose an artifacts directory);
    without one, default-on metrics, spans and the stall ring are still
    recorded.  ``artifacts`` is a shortcut for an artifacts directory.
    ``max_events`` overrides the runaway-simulation safety valve.
    ``timing`` forces a base-timing preset by name (substrate swap) via
    :meth:`~repro.core.scheme.AccessScheme.with_timing`; together with a
    string ``scheme`` this keeps the whole entry point picklable, which
    is what lets :mod:`repro.exp` run sweep points in worker processes.
    """
    if isinstance(scheme, str):
        scheme = make_scheme(scheme, gather_factor=gather_factor)
    if timing is not None:
        scheme = scheme.with_timing(timing)
    config = config or SystemConfig()
    obs = observe if observe is not None else Observation()
    if tables is None:
        tables = workload.materialize()
    validator = None
    if check:
        import copy

        from ..check import PlanValidator, TimingProtocolChecker

        # private copy: the observer must not leak into shared/cached
        # scheme instances (parallel sweeps reuse them across points)
        scheme = copy.copy(scheme)
        validator = PlanValidator(
            scheme, registry=obs.registry, strict=True
        ).attach()
    if artifacts is not None and obs.artifacts_dir is None:
        obs.artifacts_dir = artifacts
    limit = max_events if max_events is not None else _MAX_EVENTS
    profiler = obs.profiler

    kernel = Kernel()
    profiler.clock = lambda: kernel.now
    events = 0
    span_name = "run_query" if workload.kind == "query" else "run_kernel"
    with profiler.span(span_name, scheme=scheme.name, query=workload.name):
        with profiler.span("allocate"):
            system = MemorySystem(kernel, scheme, config)
            if check:
                TimingProtocolChecker(
                    scheme.timing, scheme.geometry,
                    registry=obs.registry, strict=True,
                    salp=scheme.salp_mode,
                ).attach(system.controller)
            placements = allocate_placements(scheme, tables)
        with profiler.span("build"):
            build = workload.build(scheme, config, tables, placements,
                                   cost=cost)
            if validator is not None:
                # static check before any cycle is simulated: the plan
                # footprint diff for queries, the generator access /
                # expected-bytes oracle for kernels
                workload.check_build(validator, build, placements)
            cores = [
                Core(kernel, core_id, system, config.core)
                for core_id in range(config.cores)
            ]
            for core, ops in zip(cores, build.ops_per_core):
                core.run(ops)
        _attach_observers(system, obs, cores)
        with profiler.span("execute") as execute_span:
            try:
                events += kernel.run(max_events=limit)
            except SimulationStallError:
                raise
            except SimulationError as exc:
                raise _stall(f"event budget exhausted: {exc}", kernel,
                             system, cores, scheme, workload.name,
                             obs) from exc
            unfinished = [c.core_id for c in cores if not c.finished]
            if unfinished:
                raise _stall(
                    f"cores {unfinished} stalled (no events left to make "
                    f"progress)", kernel, system, cores, scheme,
                    workload.name, obs
                )
        # Account the writeback tail: flush dirty lines, drain the queues.
        with profiler.span("flush_drain"):
            system.flush_caches()
            try:
                events += kernel.run(max_events=limit)
            except SimulationStallError:
                raise
            except SimulationError as exc:
                raise _stall(f"event budget exhausted during drain: {exc}",
                             kernel, system, cores, scheme, workload.name,
                             obs) from exc
            if not system.fully_drained:
                raise _stall("memory system failed to drain", kernel,
                             system, cores, scheme, workload.name, obs)
        _add_activity_spans(obs, execute_span, cores, system)

    cycles = kernel.now
    _publish_metrics(obs, system, cores, cycles, events, limit, scheme,
                     kernel=kernel)
    stalls = _attribute_stalls(obs, cores)
    _finish_timeline(obs, cycles)
    # Energy is priced off the registry: the published dram.* counters
    # are the single source of truth, not the raw struct.
    power_model = PowerModel(
        scheme.power_config, scheme.timing, scheme.geometry
    )
    power = power_model.evaluate_registry(obs.registry, cycles)
    obs.registry.gauge("power.background_nj").set(power.background_nj)
    obs.registry.gauge("power.act_nj").set(power.act_nj)
    obs.registry.gauge("power.rdwr_nj").set(power.rdwr_nj)
    obs.registry.gauge("power.total_nj").set(power.total_nj)
    obs.registry.gauge("power.total_mw").set(power.total_mw)
    core_stats = {
        "loads": sum(c.loads for c in cores),
        "stores": sum(c.stores for c in cores),
        "gathers": sum(c.gathers for c in cores),
        "hits": sum(c.hits for c in cores),
        "misses": sum(c.misses for c in cores),
    }
    busy = system.controller.channel.data_busy_cycles
    result = RunResult(
        scheme=scheme.name,
        query=workload.name,
        cycles=cycles,
        ns=scheme.timing.ns(cycles),
        memory_stats=system.controller.stats,
        power=power,
        result=build.result,
        selected_records=build.selected_records,
        core_stats=core_stats,
        bus_utilization=_bus_utilization(obs, busy, cycles, scheme,
                                         workload.name),
        metrics=obs.registry.as_dict(),
        spans=profiler.root,
        stalls=stalls,
        config=config,
        plan=build.plan,
    )
    if obs.artifacts_dir is not None:
        writer = ArtifactWriter(obs.artifacts_dir)
        obs.manifest_path = writer.write_run(
            result, tracer=obs.tracer, timeline=obs.timeline_recorder
        )
    return result


def run_query(
    scheme: "AccessScheme | str",
    query: "Query",
    tables: "Dict[str, Table]",
    config: Optional[SystemConfig] = None,
    cost: "Optional[CostModel]" = None,
    gather_factor: Optional[int] = None,
    timing: Optional[str] = None,
    observe: Optional[Observation] = None,
    artifacts: Optional[str] = None,
    max_events: Optional[int] = None,
    check: bool = False,
) -> RunResult:
    """Simulate one query on one design (thin :func:`run_workload`
    wrapper around a :class:`~repro.workloads.QueryWorkload`).

    The caller's ``tables`` dict is used as-is -- updates and inserts
    mutate it, exactly as before the workload IR existed.
    """
    from ..workloads import QueryWorkload

    return run_workload(
        QueryWorkload(query=query),
        scheme,
        tables=tables,
        config=config,
        cost=cost,
        gather_factor=gather_factor,
        timing=timing,
        observe=observe,
        artifacts=artifacts,
        max_events=max_events,
        check=check,
    )


def run_ideal(
    query: "Query",
    tables: "Dict[str, Table]",
    config: Optional[SystemConfig] = None,
    cost: "Optional[CostModel]" = None,
    gather_factor: Optional[int] = None,
    timing: Optional[str] = None,
    observe: Optional[Observation] = None,
    artifacts: Optional[str] = None,
    max_events: Optional[int] = None,
    check: bool = False,
) -> RunResult:
    """The paper's "ideal" series: the min-cost plan over the two pure
    layouts (plain row store vs plain column store).

    The choice is a real planner decision -- both layouts are planned
    and the cheaper estimated-burst total wins -- not a lookup of the
    query's ``prefers`` annotation.  All ``run_query`` keyword arguments
    are forwarded to the winning run.
    """
    from ..imdb.planner import ideal_choice

    name, _estimates = ideal_choice(query, tables, config=config, cost=cost)
    result = run_query(
        name,
        query,
        tables,
        config=config,
        cost=cost,
        gather_factor=gather_factor,
        timing=timing,
        observe=observe,
        artifacts=artifacts,
        max_events=max_events,
        check=check,
    )
    result.scheme = "ideal"
    return result
