"""The simulated machine: cores + sector caches + memory controller.

:class:`MemorySystem` wires one access scheme into the full system and
provides the services the cores use:

* sector-granular cache lookups (hierarchy of :mod:`repro.cache`),
* an MSHR that merges demand misses to in-flight lines,
* request lowering through the scheme (regular reads/writes, gathers),
* writeback handling with write-queue backpressure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..cache.hierarchy import CacheHierarchy, HierarchyConfig, LookupResult
from ..core.scheme import AccessScheme, GatherPlan
from ..dram.controller import MemoryController
from ..kernel import Kernel
from .config import SystemConfig


@dataclass
class _MSHREntry:
    pending_mask: int
    waiters: List[Callable[[], None]] = field(default_factory=list)


@dataclass
class SystemStats:
    demand_fetches: int = 0
    merged_fetches: int = 0
    gathers: int = 0
    gather_fallback_requests: int = 0
    writebacks: int = 0
    streaming_stores: int = 0
    gather_stores: int = 0


class MemorySystem:
    """One scheme instantiated into a runnable system."""

    def __init__(
        self,
        kernel: Kernel,
        scheme: AccessScheme,
        config: Optional[SystemConfig] = None,
    ) -> None:
        self.kernel = kernel
        self.scheme = scheme
        self.config = config or SystemConfig()
        hier_cfg = HierarchyConfig(
            l1_bytes=self.config.hierarchy.l1_bytes,
            l1_ways=self.config.hierarchy.l1_ways,
            l2_bytes=self.config.hierarchy.l2_bytes,
            l2_ways=self.config.hierarchy.l2_ways,
            llc_bytes=self.config.hierarchy.llc_bytes,
            llc_ways=self.config.hierarchy.llc_ways,
            line_bytes=self.config.hierarchy.line_bytes,
            sectors=scheme.sectors_per_line,
        )
        self.hierarchy = CacheHierarchy(hier_cfg, per_core_l1=self.config.cores)
        self.controller = MemoryController(
            kernel,
            scheme.timing,
            scheme.geometry,
            self.config.controller,
            salp=scheme.salp_mode,
        )
        self.line_bytes = self.config.hierarchy.line_bytes
        self.stats = SystemStats()
        self._mshr: Dict[int, _MSHREntry] = {}
        self._pending_writebacks: Deque[int] = deque()
        self._writeback_poll_scheduled = False
        # Writeback-poll futility gate (event-wheel mode).  The poll
        # *event chain* is identical in both scheduling modes -- polls
        # fire at exactly the cycles and heap positions polling mode
        # uses, which is what keeps the two modes cycle-exact -- but a
        # poll that provably cannot succeed re-arms in O(1) instead of
        # re-lowering the blocked writeback.  The proof obligation: a
        # blocked drain can only unblock after a controller queue slot
        # frees, and slots free exactly when the controller issues a
        # RD/WR (`slot_listener`).  If no issue happened since the poll
        # was armed, queue lengths can only have grown, so the same
        # admission check must fail again.
        self._wb_slot_epoch = 0
        self._wb_armed_epoch = -1
        #: writeback poll events fired / fired-but-provably-futile
        self.wb_polls = 0
        self.wb_polls_futile = 0
        self.outstanding_writes = 0
        self._done_callbacks: List[Callable[[], None]] = []
        if self.config.controller.event_wheel:
            self.controller.slot_listener = self._on_slot_freed

    # ------------------------------------------------------------ utilities

    def sectorize(self, addr: int, size: int) -> Tuple[int, int]:
        """(line_addr, sector_mask) covering ``[addr, addr+size)``."""
        line = addr - addr % self.line_bytes
        cache = self.hierarchy.llc
        return line, cache.sector_mask_for(addr, size)

    def lookup(self, core: int, line: int, mask: int) -> LookupResult:
        return self.hierarchy.lookup(core, line, mask)

    def gather_cached(self, core: int, element_addrs: Sequence[int]) -> bool:
        """True when every element of a gather group is already cached."""
        for addr in element_addrs:
            line, mask = self.sectorize(addr, self.scheme.sector_bytes)
            result = self.hierarchy.lookup(core, line, mask)
            if result.missing_mask:
                return False
        return True

    def write_hit(self, core: int, line: int, mask: int) -> bool:
        """Try to mark sectors dirty in place; False when not resident."""
        result = self.hierarchy.write(core, line, mask)
        return result.level is not None

    # -------------------------------------------------------------- fetches

    def issue_fetch(
        self, core: int, line: int, mask: int,
        callback: Callable[[], None],
    ) -> bool:
        """A demand fetch (MSHR-merged).

        A regular read moves the whole 64B line, so the fill validates
        every sector regardless of the sectors the requester asked for;
        ``mask`` only matters for the requester's own wake-up.
        """
        whole = self.scheme.fetch_fills_whole_line
        entry = self._mshr.get(line)
        if entry is not None and (
            whole or (mask & ~entry.pending_mask) == 0
        ):
            entry.waiters.append(callback)
            self.stats.merged_fetches += 1
            return True
        if whole:
            requests = self.scheme.lower_read(line)
            fill_mask = (1 << self.hierarchy.llc.sectors) - 1
        else:
            # fine-granularity designs fetch only the requested sectors
            requests = self.scheme.lower_read_sectors(line, mask)
            fill_mask = mask
        if not self._can_accept_all(requests):
            return False
        if entry is None:
            entry = _MSHREntry(pending_mask=0)
            self._mshr[line] = entry
        entry.pending_mask |= fill_mask
        entry.waiters.append(callback)
        self.stats.demand_fetches += 1
        self._submit_plan(
            requests, lambda: self._finish_fetch(core, line, fill_mask),
            core=core,
        )
        return True

    def _finish_fetch(self, core: int, line: int, fill_mask: int) -> None:
        entry = self._mshr.get(line)
        if entry is not None:
            entry.pending_mask &= ~fill_mask
            if entry.pending_mask == 0:
                self._mshr.pop(line, None)
                waiters = entry.waiters
            else:
                waiters = entry.waiters
                entry.waiters = []
        else:
            waiters = []
        evictions = self.hierarchy.fill_from_memory(core, line, fill_mask)
        self._push_writebacks(evictions)
        for waiter in waiters:
            waiter()

    # -------------------------------------------------------------- gathers

    def issue_gather(
        self, core: int, element_addrs: Sequence[int],
        callback: Callable[[], None],
    ) -> bool:
        plan = self.scheme.lower_gather_read(element_addrs)
        if plan is None:
            # No stride hardware: fall back to per-element demand fetches,
            # fused into one completion.
            return self._issue_gather_fallback(core, element_addrs, callback)
        if not self._can_accept_all(plan.requests):
            return False
        self.stats.gathers += 1
        if self.scheme.plan_observer is not None:
            # after admission: a rejected plan is re-lowered on retry and
            # would otherwise be observed (and validated) twice
            self.scheme.plan_observer("read", element_addrs, plan)
        self._submit_plan(
            plan.requests,
            lambda: self._finish_gather(core, plan, callback),
            core=core,
        )
        return True

    def _issue_gather_fallback(
        self, core: int, element_addrs: Sequence[int],
        callback: Callable[[], None],
    ) -> bool:
        lines = []
        for addr in element_addrs:
            line, mask = self.sectorize(addr, self.scheme.sector_bytes)
            result = self.hierarchy.lookup(core, line, mask)
            if result.missing_mask:
                lines.append((line, result.missing_mask))
        if not lines:
            self.kernel.schedule(0, callback)
            return True
        remaining = len(lines)

        def _one_done() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                callback()

        # all-or-nothing admission to keep retry semantics simple
        requests_needed = sum(
            1 for line, _m in lines if line not in self._mshr
        )
        if requests_needed and len(
            self.controller.read_queue
        ) + requests_needed > self.controller.config.read_queue_capacity:
            return False
        self.stats.gather_fallback_requests += len(lines)
        for line, mask in lines:
            if not self.issue_fetch(core, line, mask, _one_done):
                # capacity was checked above; treat as merged completion
                self.kernel.schedule(0, _one_done)
        return True

    def _finish_gather(self, core: int, plan: GatherPlan,
                       callback: Callable[[], None]) -> None:
        for line, mask in plan.fills:
            evictions = self.hierarchy.fill_from_memory(core, line, mask)
            self._push_writebacks(evictions)
        callback()

    # --------------------------------------------------------------- stores

    def issue_store_line(self, core: int, line: int) -> bool:
        """A full-line streaming store (INSERT traffic): write directly."""
        requests = self.scheme.lower_write(line)
        if not self._can_accept_all(requests):
            return False
        self.stats.streaming_stores += 1
        self._submit_plan(requests, None, core=core)
        return True

    def issue_gather_store(self, core: int,
                           element_addrs: Sequence[int]) -> bool:
        """A strided store: each element is a whole codeword, written
        without read-modify-write.  Updates any cached copies in place."""
        plan = self.scheme.lower_gather_write(element_addrs)
        if plan is None:
            # no stride hardware: read-modify-write per element line
            raise RuntimeError(
                f"scheme {self.scheme.name} cannot lower strided stores; "
                "the executor should emit Store ops instead"
            )
        if not self._can_accept_all(plan.requests):
            return False
        self.stats.gather_stores += 1
        if self.scheme.plan_observer is not None:
            self.scheme.plan_observer("write", element_addrs, plan)
        for line, mask in plan.fills:
            # keep caches coherent: update sectors that are resident
            self.write_hit(core, line, mask)
        self._submit_plan(plan.requests, None, core=core)
        return True

    # ----------------------------------------------------------- writebacks

    def _push_writebacks(self, evictions) -> None:
        for ev in evictions:
            if ev.dirty_mask:
                self._pending_writebacks.append(ev.line_addr)
        self._drain_writebacks()

    def _drain_writebacks(self) -> None:
        while self._pending_writebacks:
            line = self._pending_writebacks[0]
            requests = self.scheme.lower_write(line)
            if not self._can_accept_all(requests):
                self._schedule_writeback_poll()
                return
            self._pending_writebacks.popleft()
            self.stats.writebacks += 1
            self._submit_plan(requests, None)

    def _on_slot_freed(self, _request) -> None:
        """Controller notification: a RD/WR issued, so a queue slot just
        freed.  Marks blocked writeback polls as worth retrying."""
        self._wb_slot_epoch += 1

    def _schedule_writeback_poll(self) -> None:
        if self._writeback_poll_scheduled:
            return
        self._writeback_poll_scheduled = True
        self._wb_armed_epoch = self._wb_slot_epoch
        self.kernel.schedule(16, self._writeback_poll)

    def _writeback_poll(self) -> None:
        self.wb_polls += 1
        self._writeback_poll_scheduled = False
        if (
            self.config.controller.event_wheel
            and self._pending_writebacks
            and self._wb_slot_epoch == self._wb_armed_epoch
        ):
            # No queue slot freed since this poll was armed: re-lowering
            # the blocked writeback would fail the same admission check,
            # so skip straight to re-arming (exactly what a failed drain
            # attempt would have done).
            self.wb_polls_futile += 1
            self._schedule_writeback_poll()
            return
        self._drain_writebacks()

    def flush_caches(self) -> None:
        """End-of-run: push every dirty line toward memory."""
        for ev in self.hierarchy.flush_dirty():
            self._pending_writebacks.append(ev.line_addr)
        self._drain_writebacks()

    @property
    def fully_drained(self) -> bool:
        return (
            not self._pending_writebacks
            and self.outstanding_writes == 0
            and self.controller.idle()
        )

    def debug_state(self) -> dict:
        """Occupancy snapshot for stall diagnostics and metrics."""
        return {
            "mshr_lines": len(self._mshr),
            "pending_writebacks": len(self._pending_writebacks),
            "writeback_polls": self.wb_polls,
            "writeback_polls_futile": self.wb_polls_futile,
            "outstanding_writes": self.outstanding_writes,
            "read_queue": len(self.controller.read_queue),
            "write_queue": len(self.controller.write_queue),
            "fully_drained": self.fully_drained,
        }

    # ------------------------------------------------------------ plumbing

    def _can_accept_all(self, requests) -> bool:
        reads = sum(1 for r in requests if r.is_read)
        writes = len(requests) - reads
        cfg = self.controller.config
        return (
            len(self.controller.read_queue) + reads
            <= cfg.read_queue_capacity
            and len(self.controller.write_queue) + writes
            <= cfg.write_queue_capacity
        )

    def _submit_plan(self, requests,
                     callback: Optional[Callable[[], None]],
                     core: Optional[int] = None) -> None:
        remaining = len(requests)

        def _one_done(_req, _time) -> None:
            nonlocal remaining
            remaining -= 1
            if _req.type.value == "WRITE":
                self.outstanding_writes -= 1
            if remaining == 0 and callback is not None:
                callback()
            self._drain_writebacks()

        for request in requests:
            request.on_complete = _one_done
            request.source_core = core
            if not request.is_read:
                self.outstanding_writes += 1
            self.controller.submit(request)

    def core_may_be_done(self, core) -> None:
        """Hook for the runner's end-of-run detection (no-op by default)."""
