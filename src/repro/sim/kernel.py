"""Compatibility shim: the kernel lives at :mod:`repro.kernel` (it is a
dependency of every timed component, including packages below ``sim``)."""

from ..kernel import Kernel, SimulationError

__all__ = ["Kernel", "SimulationError"]
