"""Simulation glue: kernel, configuration, system, runner, results."""

from .config import DEFAULT_CONFIG, SystemConfig
from ..kernel import Kernel, SimulationError
from .results import RunResult
from .runner import allocate_placements, run_ideal, run_query
from .system import MemorySystem, SystemStats
from .trace import CommandTracer, TraceEvent

__all__ = [
    "DEFAULT_CONFIG",
    "SystemConfig",
    "Kernel",
    "SimulationError",
    "RunResult",
    "allocate_placements",
    "run_ideal",
    "run_query",
    "MemorySystem",
    "SystemStats",
    "CommandTracer",
    "TraceEvent",
]
