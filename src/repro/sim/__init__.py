"""Simulation glue: kernel, configuration, system, runner, results."""

from .config import DEFAULT_CONFIG, SystemConfig
from ..kernel import Kernel, SimulationError
from ..obs import Observation, SimulationStallError, StallReport
from .results import RunResult
from .runner import allocate_placements, run_ideal, run_query
from .system import MemorySystem, SystemStats
from .trace import CommandTracer, TraceEvent

__all__ = [
    "DEFAULT_CONFIG",
    "SystemConfig",
    "Kernel",
    "Observation",
    "SimulationError",
    "SimulationStallError",
    "StallReport",
    "RunResult",
    "allocate_placements",
    "run_ideal",
    "run_query",
    "MemorySystem",
    "SystemStats",
    "CommandTracer",
    "TraceEvent",
]
