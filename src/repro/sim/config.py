"""Simulated-system configuration (Table 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.hierarchy import HierarchyConfig
from ..cpu.core import CoreConfig
from ..dram.controller import ControllerConfig
from ..dram.geometry import Geometry


@dataclass(frozen=True)
class SystemConfig:
    """Everything Table 2 specifies, in one place.

    * Processor: 4 cores, x86, 4.0 GHz (the memory clock is 1.2 GHz, so
      one memory cycle is ~3.33 CPU cycles; core issue costs are given in
      memory cycles).
    * Caches: L1 32KB / L2 256KB / LLC 8MB, 64B lines, 8-way.
    * Memory controller: open page, FR-FCFS, write queue capacity 32,
      address mapping rw:rk:bk:ch:cl:offset.
    * Memory: DDR4-2400, x4, 1 channel, 2 ranks, 16 banks.
    """

    cores: int = 4
    cpu_ghz: float = 4.0
    geometry: Geometry = field(default_factory=Geometry)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    @property
    def cpu_cycles_per_mem_cycle(self) -> float:
        # DDR4-2400 command clock is 1200 MHz
        return self.cpu_ghz * 1e9 / 1.2e9

    def compute_cycles(self, cpu_cycles: float) -> float:
        """Convert CPU cycles of work into memory-clock cycles."""
        return cpu_cycles / self.cpu_cycles_per_mem_cycle


DEFAULT_CONFIG = SystemConfig()
