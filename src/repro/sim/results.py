"""Run-result containers shared by the runner and the harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..dram.controller import CommandStats
from ..power.model import PowerBreakdown

if TYPE_CHECKING:  # pragma: no cover
    from ..imdb.plan import PhysicalPlan
    from ..obs.spans import Span
    from .config import SystemConfig


@dataclass
class RunResult:
    """Outcome of one (scheme, query) simulation."""

    scheme: str
    query: str
    cycles: int
    ns: float
    memory_stats: CommandStats
    power: PowerBreakdown
    result: object
    selected_records: int = 0
    core_stats: Dict[str, int] = field(default_factory=dict)
    bus_utilization: float = 0.0
    #: registry snapshot (flat name -> value/histogram dict); the
    #: machine-readable face of every number above
    metrics: Dict[str, object] = field(default_factory=dict)
    #: root of the phase-span tree recorded during the run
    spans: "Optional[Span]" = None
    #: stall attribution: {"per_core": {id: {reason: cycles}},
    #: "merged": {reason: cycles}} (see repro.obs.stalls)
    stalls: Optional[Dict] = None
    #: the SystemConfig the run used (for the run manifest)
    config: "Optional[SystemConfig]" = None
    #: the physical plan the planner chose for this run
    plan: "Optional[PhysicalPlan]" = None

    def manifest(self, extra: Optional[Dict] = None) -> Dict[str, object]:
        """The JSON run-manifest payload for this result."""
        from ..obs.artifacts import build_run_manifest

        return build_run_manifest(self, extra=extra)

    @property
    def seconds(self) -> float:
        return self.ns * 1e-9

    def speedup_over(self, baseline: "RunResult") -> float:
        """Speedup of this run relative to ``baseline`` (same query)."""
        if self.cycles <= 0:
            raise ValueError("run did not execute")
        return baseline.cycles / self.cycles

    def energy_efficiency_over(self, baseline: "RunResult") -> float:
        """Relative energy efficiency: baseline energy / this energy."""
        mine = self.power.total_nj
        theirs = baseline.power.total_nj
        if mine <= 0:
            raise ValueError("no energy recorded")
        return theirs / mine
