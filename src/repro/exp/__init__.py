"""Unified sweep engine: declarative specs, parallel execution, caching.

Every harness (Figures 12-15, reliability) describes its grid of
independent simulations as an :class:`ExperimentSpec` of
:class:`SweepPoint` data records and hands it to a :class:`SweepEngine`,
which executes points serially or across worker processes (``jobs``),
skips points already present in a content-addressed :class:`ResultCache`,
and returns results keyed and ordered exactly like the spec -- parallel
output is bit-identical to serial.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    default_cache_dir,
    point_digest,
    source_digest,
)
from .engine import PointOutcome, SweepEngine, SweepRun, execute_point
from .spec import (
    ExperimentSpec,
    SweepPoint,
    TableSpec,
    build_tables,
    standard_tables,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ExperimentSpec",
    "PointOutcome",
    "ResultCache",
    "SweepEngine",
    "SweepPoint",
    "SweepRun",
    "TableSpec",
    "build_tables",
    "default_cache_dir",
    "execute_point",
    "point_digest",
    "source_digest",
    "standard_tables",
]
