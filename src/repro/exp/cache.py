"""Content-addressed sweep-result cache.

A sweep point's outcome is a pure function of (the point's data, the
system configuration it names, and the simulator source code).  The cache
key is therefore a SHA-256 over

* the canonical JSON form of the :class:`~repro.exp.spec.SweepPoint`
  (covers scheme, workload content -- query plan or kernel parameters
  plus table recipes -- config and overrides),
* a digest of the git-tracked ``repro`` package sources (any source edit
  invalidates every entry -- re-running a figure after an *unrelated*
  edit still misses, which is the safe direction), and
* a cache schema version.

Entries are pickled payloads (``RunResult`` / ``ReliabilityRow``) stored
as ``<digest>.pkl`` under the cache directory; writes go through a
temporary file + ``os.replace`` so interrupted runs never leave a
truncated entry behind.  A corrupt or unreadable entry degrades to a
cache miss, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

from ..obs.artifacts import to_jsonable
from .spec import SweepPoint

#: bump when cached payload layout changes incompatibly
#: (v2: points carry a Workload instead of query + tables fields)
CACHE_SCHEMA_VERSION = 2

_source_digest_cache: dict = {}


def _package_root() -> Path:
    """Directory of the installed ``repro`` package sources."""
    return Path(__file__).resolve().parents[1]


def _tracked_sources(root: Path) -> "list[Path]":
    """Python sources under ``root``, preferring git's tracked-file list
    (the digest covers exactly what a clean checkout would run)."""
    try:
        out = subprocess.run(
            ["git", "ls-files", "-z", "--", "*.py"],
            cwd=root, capture_output=True, timeout=5,
        )
        if out.returncode == 0 and out.stdout:
            files = [
                root / name
                for name in out.stdout.decode().split("\0")
                if name
            ]
            files = [f for f in files if f.is_file()]
            if files:
                return sorted(files)
    except (OSError, subprocess.SubprocessError):
        pass
    return sorted(root.rglob("*.py"))


def source_digest(root: Optional[Path] = None) -> str:
    """Digest of the simulator's source tree (memoized per process)."""
    root = root or _package_root()
    key = str(root)
    if key not in _source_digest_cache:
        h = hashlib.sha256()
        for path in _tracked_sources(root):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            try:
                h.update(path.read_bytes())
            except OSError:
                continue
        _source_digest_cache[key] = h.hexdigest()
    return _source_digest_cache[key]


def point_digest(point: SweepPoint, source: Optional[str] = None) -> str:
    """Stable content hash identifying one sweep point's outcome."""
    jsonable = to_jsonable(point)
    # observability-only knobs do not change the simulated outcome, so
    # they stay out of the identity (a timeline-on rerun hits the same
    # cached payload instead of resimulating)
    for observability_field in ("timeline", "timeline_dir"):
        jsonable.pop(observability_field, None)
    workload = point.workload
    payload = {
        "cache_schema": CACHE_SCHEMA_VERSION,
        "source": source if source is not None else source_digest(),
        "point": jsonable,
        # the workload's own content digest covers its concrete type and
        # canonicalized parameters (two families could share field names)
        "workload_type": type(workload).__name__ if workload else None,
        "workload_digest": workload.digest if workload else None,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Pickle store of completed sweep points, one file per digest."""

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path(self, digest: str) -> Path:
        return self.directory / f"{digest}.pkl"

    def get(self, digest: str) -> Optional[object]:
        """The cached payload, or None on miss/corruption."""
        path = self.path(digest)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None

    def put(self, digest: str, payload: object) -> Path:
        """Atomically store ``payload`` under ``digest``."""
        path = self.path(digest)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro/sweeps``,
    else ``~/.cache/repro/sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "sweeps"
