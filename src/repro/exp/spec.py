"""Declarative experiment specifications.

A paper figure is a *grid* of independent simulations.  Instead of each
harness hand-rolling its own nested loops around ``run_query``, it builds
an :class:`ExperimentSpec`: a named, ordered tuple of
:class:`SweepPoint` records, each describing one unit of work purely as
data -- scheme name, query plan, table recipes, config and overrides.
Because a point is plain (frozen-dataclass) data, it can be

* pickled to a worker process (parallel execution),
* hashed to a stable content digest (result caching), and
* replayed bit-identically in any order (deterministic sweeps).

Tables are described by :class:`TableSpec` *recipes* rather than
materialized arrays: table data is a pure function of
``(schema, n_records, seed)``, so workers rebuild them locally and the
spec stays tiny and hashable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..imdb.query import Query
from ..imdb.schema import FIELD_BYTES, Table, TableSchema
from ..sim.config import SystemConfig

#: sweep-point kinds with a registered executor (see repro.exp.engine)
POINT_KINDS = ("query", "reliability")


@dataclass(frozen=True)
class TableSpec:
    """Recipe for one synthetic table (data is deterministic in these)."""

    name: str
    n_fields: int
    n_records: int
    seed: int
    field_bytes: int = FIELD_BYTES

    def __post_init__(self) -> None:
        if self.n_records <= 0 or self.n_fields <= 0:
            raise ValueError("table spec needs records and fields")

    @property
    def schema(self) -> TableSchema:
        return TableSchema(self.name, self.n_fields, self.field_bytes)

    def build(self) -> Table:
        """Materialize the table (same bytes on every call)."""
        return Table(self.schema, self.n_records, seed=self.seed)


def standard_tables(
    n_ta: int, n_tb: int, seed: int = 42
) -> Tuple[TableSpec, TableSpec]:
    """The benchmark's Ta (128 fields) / Tb (16 fields) pair, matching
    :func:`repro.harness.workload.make_tables`."""
    return (
        TableSpec("Ta", 128, n_ta, seed),
        TableSpec("Tb", 16, n_tb, seed + 1),
    )


def build_tables(specs: Tuple[TableSpec, ...]) -> Dict[str, Table]:
    """Materialize every table of a point, keyed by table name."""
    return {spec.name: spec.build() for spec in specs}


@dataclass(frozen=True)
class SweepPoint:
    """One unit of sweep work, described purely as data.

    ``key`` is the point's identity inside its spec -- a tuple of strings
    chosen by the spec builder (e.g. ``("SAM-en", "Q3")``) that result
    shapers use to look results back up.  ``kind`` selects the executor:
    ``"query"`` runs :func:`repro.sim.runner.run_query`, ``"reliability"``
    runs a fault-injection campaign.  ``params`` carries kind-specific
    extras as a sorted tuple of pairs (kept hashable for caching).
    """

    key: Tuple[str, ...]
    kind: str = "query"
    scheme: Optional[str] = None
    query: Optional[Query] = None
    tables: Tuple[TableSpec, ...] = ()
    gather_factor: Optional[int] = None
    timing: Optional[str] = None  # base-timing preset override by name
    config: Optional[SystemConfig] = None
    max_events: Optional[int] = None
    #: run with the repro.check protocol checker + plan oracle attached
    #: (strict: a violation aborts the sweep); part of the cache digest,
    #: so checked and unchecked payloads never alias
    check: bool = False
    #: record a cycle-level timeline for this point (observability only:
    #: excluded from the cache digest, so flipping it neither invalidates
    #: cached results nor forks new cache entries -- a warm hit may
    #: therefore come back without ``timeline.*`` metrics; use
    #: ``--no-cache`` to force a recorded run)
    timeline: bool = False
    #: directory for the point's Chrome trace-event export (None keeps
    #: the timeline in metrics digests only); excluded from the digest
    timeline_dir: Optional[str] = None
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("a sweep point needs a non-empty key")
        if self.kind not in POINT_KINDS:
            raise ValueError(
                f"unknown point kind {self.kind!r}; have {POINT_KINDS}"
            )
        if self.kind == "query":
            if self.scheme is None or self.query is None or not self.tables:
                raise ValueError(
                    "a query point needs scheme, query and tables"
                )
        elif self.scheme is None:
            raise ValueError(f"a {self.kind} point needs a scheme/design")

    def param(self, name: str, default: object = None) -> object:
        return dict(self.params).get(name, default)

    @property
    def label(self) -> str:
        return "/".join(self.key)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named grid of sweep points plus its normalization rule.

    ``normalize`` documents how shapers turn raw results into figure
    numbers (e.g. ``"divide by baseline cycles per query"``); the engine
    itself never normalizes -- it only guarantees that results come back
    keyed and ordered exactly like ``points``.
    """

    name: str
    points: Tuple[SweepPoint, ...]
    normalize: Optional[str] = None
    meta: Tuple[Tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        keys = [p.key for p in self.points]
        if len(set(keys)) != len(keys):
            seen: set = set()
            dup = next(k for k in keys if k in seen or seen.add(k))
            raise ValueError(f"duplicate sweep-point key {dup!r}")

    def __len__(self) -> int:
        return len(self.points)

    def keys(self) -> Tuple[Tuple[str, ...], ...]:
        return tuple(p.key for p in self.points)

    def point(self, key: Tuple[str, ...]) -> SweepPoint:
        for p in self.points:
            if p.key == key:
                return p
        raise KeyError(key)
