"""Declarative experiment specifications.

A paper figure is a *grid* of independent simulations.  Instead of each
harness hand-rolling its own nested loops around the runner, it builds
an :class:`ExperimentSpec`: a named, ordered tuple of
:class:`SweepPoint` records, each describing one unit of work purely as
data -- scheme name, workload, config and overrides.  Because a point is
plain (frozen-dataclass) data, it can be

* pickled to a worker process (parallel execution),
* hashed to a stable content digest (result caching), and
* replayed bit-identically in any order (deterministic sweeps).

The work itself is a :class:`repro.workloads.Workload` -- a relational
query (:class:`~repro.workloads.QueryWorkload`) or a generated
micro-kernel (:class:`~repro.workloads.KernelWorkload`).  Workloads
describe their memory footprint as :class:`~repro.workloads.TableSpec`
*recipes* rather than materialized arrays: table data is a pure function
of ``(schema, n_records, seed)``, so workers rebuild it locally and the
spec stays tiny and hashable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

# table recipes live with the workload IR now; re-exported here because
# they are part of the sweep-spec vocabulary (specs reference recipes)
from ..workloads.tables import TableSpec, build_tables, standard_tables
from ..sim.config import SystemConfig
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..workloads import Workload

__all__ = [
    "POINT_KINDS",
    "ExperimentSpec",
    "SweepPoint",
    "TableSpec",
    "build_tables",
    "standard_tables",
]

#: sweep-point kinds with a registered executor (see repro.exp.engine)
POINT_KINDS = ("query", "kernel", "reliability")

#: kinds executed through :func:`repro.sim.runner.run_workload`
WORKLOAD_KINDS = ("query", "kernel")


@dataclass(frozen=True)
class SweepPoint:
    """One unit of sweep work, described purely as data.

    ``key`` is the point's identity inside its spec -- a tuple of strings
    chosen by the spec builder (e.g. ``("SAM-en", "Q3")``) that result
    shapers use to look results back up.  ``kind`` selects the executor:
    ``"query"`` and ``"kernel"`` run the point's ``workload`` through
    :func:`repro.sim.runner.run_workload`, ``"reliability"`` runs a
    fault-injection campaign.  ``params`` carries kind-specific extras as
    a sorted tuple of pairs (kept hashable for caching).
    """

    key: Tuple[str, ...]
    kind: str = "query"
    scheme: Optional[str] = None
    workload: "Optional[Workload]" = None
    gather_factor: Optional[int] = None
    timing: Optional[str] = None  # base-timing preset override by name
    config: Optional[SystemConfig] = None
    max_events: Optional[int] = None
    #: run with the repro.check protocol checker + workload oracle
    #: attached (strict: a violation aborts the sweep); part of the cache
    #: digest, so checked and unchecked payloads never alias
    check: bool = False
    #: record a cycle-level timeline for this point (observability only:
    #: excluded from the cache digest, so flipping it neither invalidates
    #: cached results nor forks new cache entries -- a warm hit may
    #: therefore come back without ``timeline.*`` metrics; use
    #: ``--no-cache`` to force a recorded run)
    timeline: bool = False
    #: directory for the point's Chrome trace-event export (None keeps
    #: the timeline in metrics digests only); excluded from the digest
    timeline_dir: Optional[str] = None
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("a sweep point needs a non-empty key")
        if self.kind not in POINT_KINDS:
            raise ValueError(
                f"unknown point kind {self.kind!r}; have {POINT_KINDS}"
            )
        if self.kind in WORKLOAD_KINDS:
            if self.scheme is None or self.workload is None:
                raise ValueError(
                    f"a {self.kind} point needs a scheme and a workload"
                )
            if self.workload.kind != self.kind:
                raise ValueError(
                    f"point kind {self.kind!r} does not match workload "
                    f"kind {self.workload.kind!r} "
                    f"({self.workload.name})"
                )
        elif self.scheme is None:
            raise ValueError(f"a {self.kind} point needs a scheme/design")

    def param(self, name: str, default: object = None) -> object:
        return dict(self.params).get(name, default)

    @property
    def label(self) -> str:
        return "/".join(self.key)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named grid of sweep points plus its normalization rule.

    ``normalize`` documents how shapers turn raw results into figure
    numbers (e.g. ``"divide by baseline cycles per query"``); the engine
    itself never normalizes -- it only guarantees that results come back
    keyed and ordered exactly like ``points``.
    """

    name: str
    points: Tuple[SweepPoint, ...]
    normalize: Optional[str] = None
    meta: Tuple[Tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        keys = [p.key for p in self.points]
        if len(set(keys)) != len(keys):
            seen: set = set()
            dup = next(k for k in keys if k in seen or seen.add(k))
            raise ValueError(f"duplicate sweep-point key {dup!r}")

    def __len__(self) -> int:
        return len(self.points)

    def keys(self) -> Tuple[Tuple[str, ...], ...]:
        return tuple(p.key for p in self.points)

    def point(self, key: Tuple[str, ...]) -> SweepPoint:
        for p in self.points:
            if p.key == key:
                return p
        raise KeyError(key)
