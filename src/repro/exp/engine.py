"""Sweep engine: executes an :class:`~repro.exp.spec.ExperimentSpec`.

Execution is pluggable between a serial in-process loop and a
``multiprocessing`` pool (``jobs > 1``).  Worker processes receive only
the pickled :class:`SweepPoint`, rebuild their own tables and
``MemorySystem`` from it, and return the pickled payload -- simulations
share no state, so the two executors produce *bit-identical* results;
the engine re-orders completions back into spec order regardless of
which worker finished first.

An optional :class:`~repro.exp.cache.ResultCache` short-circuits points
whose content digest (point + config + source tree) already has a stored
payload, so an interrupted figure run resumes where it stopped and a
warm rerun executes zero simulations.

Every run is observed: the engine's metrics registry counts points,
cache hits/misses and executed simulations, its span profiler records
one span per point (with per-point wall time even for parallel points),
and :meth:`SweepEngine.manifest` rolls the whole history into one
machine-readable sweep manifest.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanProfiler
from .cache import ResultCache, point_digest, source_digest
from .spec import ExperimentSpec, SweepPoint

Key = Tuple[str, ...]


# --------------------------------------------------------------------------
# Point executors (must stay module-level: worker processes import them)
# --------------------------------------------------------------------------

def _execute_workload(point: SweepPoint) -> object:
    """Run a query or kernel point through the workload-generic runner."""
    from ..sim.runner import run_workload

    observe = None
    if point.timeline:
        from ..obs import Observation

        observe = Observation(timeline=True)
    result = run_workload(
        point.workload,
        point.scheme,
        config=point.config,
        gather_factor=point.gather_factor,
        timing=point.timing,
        max_events=point.max_events,
        check=point.check,
        observe=observe,
    )
    if observe is not None and point.timeline_dir:
        from ..obs.artifacts import ArtifactWriter, _slug

        ArtifactWriter(point.timeline_dir).write_timeline(
            observe.timeline_recorder,
            f"point-{_slug('-'.join(point.key))}",
        )
    return result


def _execute_reliability(point: SweepPoint) -> object:
    from ..harness.reliability import evaluate_design

    return evaluate_design(
        point.scheme,
        trials=int(point.param("trials", 500)),
        seed=int(point.param("seed", 0)),
    )


_EXECUTORS = {
    "query": _execute_workload,
    "kernel": _execute_workload,
    "reliability": _execute_reliability,
}


def execute_point(point: SweepPoint) -> object:
    """Run one sweep point to completion (in whichever process)."""
    return _EXECUTORS[point.kind](point)


def _pool_worker(item: Tuple[int, SweepPoint]) -> Tuple[int, object, float]:
    """Pool entry: returns (spec index, payload, worker wall seconds)."""
    index, point = item
    start = time.perf_counter()
    with warnings.catch_warnings():
        # diagnostics-by-warning (near-runaway etc.) stay visible in the
        # parent's serial path; in workers they would interleave rawly
        warnings.simplefilter("ignore", RuntimeWarning)
        payload = execute_point(point)
    return index, payload, time.perf_counter() - start


# --------------------------------------------------------------------------
# Results
# --------------------------------------------------------------------------

@dataclass
class PointOutcome:
    """Bookkeeping for one executed-or-cached point."""

    key: Key
    cached: bool
    wall_s: float


@dataclass
class SweepRun:
    """Outcome of one engine run: payloads in spec order plus counters."""

    spec: ExperimentSpec
    results: Dict[Key, object]
    outcomes: List[PointOutcome] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    jobs: int = 1
    wall_s: float = 0.0

    def __getitem__(self, key: Key) -> object:
        return self.results[key]

    def __contains__(self, key: Key) -> bool:
        return key in self.results

    def cycles(self, key: Key) -> int:
        """Simulated cycles of a query point."""
        return self.results[key].cycles

    def speedup(self, key: Key, baseline_key: Key) -> float:
        """The normalization rule of every figure: baseline cycles of the
        same query divided by this point's cycles."""
        return self.cycles(baseline_key) / self.cycles(key)

    def manifest(self) -> dict:
        """Machine-readable sweep summary (rolled into artifacts)."""
        return {
            "kind": "sweep",
            "name": self.spec.name,
            "normalize": self.spec.normalize,
            "points": len(self.spec),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "executed": self.executed,
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "outcomes": [
                {
                    "key": list(o.key),
                    "cached": o.cached,
                    "wall_s": o.wall_s,
                }
                for o in self.outcomes
            ],
        }


# --------------------------------------------------------------------------
# Engine
# --------------------------------------------------------------------------

class SweepEngine:
    """Executes experiment specs with caching and optional parallelism.

    One engine instance may run several specs (Figure 15 runs nine
    panels); ``history`` keeps every :class:`SweepRun` for roll-up into a
    single sweep manifest.  ``registry``/``profiler`` default to fresh
    instances but accept shared ones so sweeps fold into a caller's
    observability bundle.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        registry: Optional[MetricsRegistry] = None,
        profiler: Optional[SpanProfiler] = None,
        check: bool = False,
        timeline: bool = False,
        timeline_dir: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.registry = registry or MetricsRegistry()
        self.profiler = profiler or SpanProfiler()
        self.check = check
        self.timeline = timeline
        self.timeline_dir = timeline_dir
        self.history: List[SweepRun] = []

    # ---------------------------------------------------------------- runs

    def run(self, spec: ExperimentSpec) -> SweepRun:
        """Execute every point of ``spec``; results come back keyed and
        ordered exactly like ``spec.points`` no matter the executor."""
        started = time.perf_counter()
        points = spec.points
        if self.check:
            # every query point runs with the protocol checker attached;
            # part of the point identity, so digests diverge from
            # unchecked runs of the same spec
            points = tuple(
                dataclasses.replace(p, check=True)
                if p.workload is not None and not p.check else p
                for p in points
            )
        if self.timeline:
            # timeline recording is observability-only (excluded from the
            # cache digest): cached points stay hits and simply come back
            # without timeline data
            points = tuple(
                dataclasses.replace(
                    p, timeline=True, timeline_dir=self.timeline_dir
                )
                if p.workload is not None and not p.timeline else p
                for p in points
            )
        payloads: List[Optional[object]] = [None] * len(points)
        outcomes: List[Optional[PointOutcome]] = [None] * len(points)
        digests: List[Optional[str]] = [None] * len(points)
        pending: List[int] = []

        hits = 0
        with self.profiler.span(f"sweep:{spec.name}", points=len(points),
                                jobs=self.jobs):
            if self.cache is not None:
                source = source_digest()
                for i, point in enumerate(points):
                    digests[i] = point_digest(point, source=source)
                    payload = self.cache.get(digests[i])
                    if payload is not None:
                        payloads[i] = payload
                        outcomes[i] = PointOutcome(point.key, True, 0.0)
                        hits += 1
                    else:
                        pending.append(i)
            else:
                pending = list(range(len(points)))

            if pending:
                if self.jobs > 1 and len(pending) > 1:
                    self._run_parallel(points, pending, payloads, outcomes)
                else:
                    self._run_serial(points, pending, payloads, outcomes)
                if self.cache is not None:
                    for i in pending:
                        self.cache.put(digests[i], payloads[i])

        run = SweepRun(
            spec=spec,
            results={p.key: payloads[i] for i, p in enumerate(points)},
            outcomes=[o for o in outcomes if o is not None],
            cache_hits=hits,
            cache_misses=len(pending),
            executed=len(pending),
            jobs=self.jobs,
            wall_s=time.perf_counter() - started,
        )
        self._publish(run)
        self.history.append(run)
        return run

    def _run_serial(self, points, pending, payloads, outcomes) -> None:
        for i in pending:
            point = points[i]
            with self.profiler.span(f"point:{point.label}") as span:
                payloads[i] = execute_point(point)
            outcomes[i] = PointOutcome(point.key, False, span.wall_s)

    def _run_parallel(self, points, pending, payloads, outcomes) -> None:
        # fork keeps worker start-up free of re-imports on POSIX; the
        # work items are picklable either way, so spawn also works.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        jobs = min(self.jobs, len(pending))
        items = [(i, points[i]) for i in pending]
        with ctx.Pool(processes=jobs) as pool:
            # unordered: completions land as they finish, the index puts
            # them back in spec order (determinism is by construction --
            # workers share no state)
            for index, payload, wall in pool.imap_unordered(
                _pool_worker, items
            ):
                payloads[index] = payload
                point = points[index]
                outcomes[index] = PointOutcome(point.key, False, wall)
                self.profiler.add(
                    None, f"point:{point.label}", 0, 0,
                    wall_s=wall, parallel=True,
                )

    # ----------------------------------------------------------- reporting

    def _publish(self, run: SweepRun) -> None:
        reg = self.registry
        reg.counter("exp.points").inc(len(run.spec))
        reg.counter("exp.cache.hits").inc(run.cache_hits)
        reg.counter("exp.cache.misses").inc(run.cache_misses)
        reg.counter("exp.executed").inc(run.executed)
        reg.gauge("exp.jobs").set(run.jobs)
        reg.gauge("exp.last_wall_s").set(run.wall_s)

    @property
    def cache_hits(self) -> int:
        return sum(r.cache_hits for r in self.history)

    @property
    def executed(self) -> int:
        return sum(r.executed for r in self.history)

    def manifest(self) -> dict:
        """One roll-up manifest over every spec this engine ran."""
        return {
            "kind": "sweep-manifest",
            "jobs": self.jobs,
            "cached": self.cache is not None,
            "cache_dir": (
                str(self.cache.directory) if self.cache is not None else None
            ),
            "sweeps": [r.manifest() for r in self.history],
            "totals": {
                "points": sum(len(r.spec) for r in self.history),
                "cache_hits": self.cache_hits,
                "cache_misses": sum(r.cache_misses for r in self.history),
                "executed": self.executed,
                "wall_s": sum(r.wall_s for r in self.history),
            },
            "metrics": self.registry.as_dict(),
        }

    def summary(self) -> str:
        """One-line human summary (the CLI prints this to stderr)."""
        totals = self.manifest()["totals"]
        return (
            f"sweep: {totals['points']} points, "
            f"{totals['executed']} executed, "
            f"{totals['cache_hits']} cached, jobs={self.jobs}, "
            f"{totals['wall_s']:.1f}s"
        )
