"""ECC substrate: SEC-DED, chipkill (SSC / SSC-DSD), layouts, injection."""

from . import hamming
from .chipkill import (
    ChipAlignedSSC,
    CorrectionReport,
    SSCCodec,
    SSCDSDCodec,
    decode_line,
    encode_line,
    sector_chip_symbols,
    sector_from_chip_symbols,
)
from .gf import GF, field
from .injection import (
    FAULT_MODELS,
    FaultModel,
    ReliabilityTally,
    run_campaign,
    unprotected_tally,
)
from .layout import (
    CodewordCheck,
    check_codewords,
    gs_dram_gather_check,
    regular_transfer_check,
    sam_gather_check,
)
from .rs import DecodeFailure, DecodeResult, ReedSolomon

__all__ = [
    "hamming",
    "ChipAlignedSSC",
    "CorrectionReport",
    "sector_chip_symbols",
    "sector_from_chip_symbols",
    "SSCCodec",
    "SSCDSDCodec",
    "decode_line",
    "encode_line",
    "GF",
    "field",
    "FAULT_MODELS",
    "FaultModel",
    "ReliabilityTally",
    "run_campaign",
    "unprotected_tally",
    "CodewordCheck",
    "check_codewords",
    "gs_dram_gather_check",
    "regular_transfer_check",
    "sam_gather_check",
    "DecodeFailure",
    "DecodeResult",
    "ReedSolomon",
]
