"""Fault injection and Monte-Carlo reliability evaluation.

Models the failure modes the paper's reliability discussion revolves
around: single-bit upsets, a fully failed chip (the chipkill case), and a
single stuck DQ pin (the SSC-variant case of Figure 4(c)).  Faults are
applied to codewords at the symbol level and pushed through a codec to
measure corrected / detected / silent-corruption rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List

from .chipkill import _RSCodecBase


@dataclass(frozen=True)
class FaultModel:
    """A named fault generator: maps (rng, n_chips) -> per-chip XOR masks."""

    name: str
    generate: Callable[[random.Random, int], List[int]]


def single_bit_fault(rng: random.Random, n_chips: int) -> List[int]:
    """Flip one random bit of one random chip's symbol."""
    masks = [0] * n_chips
    masks[rng.randrange(n_chips)] = 1 << rng.randrange(8)
    return masks


def chip_fault(rng: random.Random, n_chips: int) -> List[int]:
    """A whole chip returns garbage: its symbol gets a random nonzero mask."""
    masks = [0] * n_chips
    masks[rng.randrange(n_chips)] = rng.randrange(1, 256)
    return masks


def double_chip_fault(rng: random.Random, n_chips: int) -> List[int]:
    """Two distinct chips fail simultaneously."""
    masks = [0] * n_chips
    for chip in rng.sample(range(n_chips), 2):
        masks[chip] = rng.randrange(1, 256)
    return masks


def dq_fault(rng: random.Random, n_chips: int) -> List[int]:
    """One DQ pin sticks: under the SSC-variant layout, one pin's burst
    contribution is exactly one 8-bit symbol, so this equals a chip fault
    for the codeword that symbol belongs to (Section 2.3)."""
    return chip_fault(rng, n_chips)


FAULT_MODELS = {
    "single_bit": FaultModel("single_bit", single_bit_fault),
    "chip": FaultModel("chip", chip_fault),
    "double_chip": FaultModel("double_chip", double_chip_fault),
    "dq": FaultModel("dq", dq_fault),
}


@dataclass
class ReliabilityTally:
    """Outcome counts of a Monte-Carlo fault-injection campaign."""

    trials: int = 0
    corrected: int = 0
    detected: int = 0
    silent: int = 0  # decoder produced wrong data without flagging it

    @property
    def protected_rate(self) -> float:
        """Fraction of trials where data was recovered or flagged."""
        if not self.trials:
            return 1.0
        return (self.corrected + self.detected) / self.trials

    @property
    def silent_rate(self) -> float:
        if not self.trials:
            return 0.0
        return self.silent / self.trials


def run_campaign(
    codec: _RSCodecBase,
    fault: FaultModel,
    trials: int = 1000,
    seed: int = 0,
) -> ReliabilityTally:
    """Inject ``fault`` into random codewords ``trials`` times."""
    rng = random.Random(seed)
    tally = ReliabilityTally()
    n = codec.n
    for _ in range(trials):
        data = bytes(rng.randrange(256) for _ in range(codec.data_bytes))
        parity = codec.encode(data)
        masks = fault.generate(rng, n)
        bad_data = bytes(
            b ^ masks[i] for i, b in enumerate(data)
        )
        bad_parity = bytes(
            b ^ masks[codec.data_bytes + i] for i, b in enumerate(parity)
        )
        report = codec.decode(bad_data, bad_parity)
        tally.trials += 1
        if report.detected_uncorrectable:
            tally.detected += 1
        elif report.data == data:
            tally.corrected += 1
        else:
            tally.silent += 1
    return tally


def unprotected_tally(fault: FaultModel, trials: int = 1000,
                      seed: int = 0) -> ReliabilityTally:
    """The GS-DRAM strided-access case: no codec covers the transfer, so
    every injected fault is silent corruption."""
    rng = random.Random(seed)
    tally = ReliabilityTally(trials=trials)
    for _ in range(trials):
        masks = fault.generate(rng, 18)
        if any(masks):
            tally.silent += 1
        else:
            tally.corrected += 1
    return tally
