"""Chipkill codecs over memory-transfer data (Section 2.3).

Three organizations are modelled:

* :class:`SSCCodec` -- Figure 4(b): one codeword per two beats; symbol =
  the 8 bits chip *i* contributes in those beats.  18 symbols (16 data +
  2 parity), RS(18, 16) over GF(256): corrects one failed chip.
* The *SSC variant* of Figure 4(c) -- same code, but the symbol is the 8
  bits one DQ carries over the whole 8-beat burst.  SAM-IO stores data so a
  strided transfer moves whole variant codewords; byte-level the codec is
  identical, only the (chip, beat) -> symbol mapping differs (see
  :mod:`repro.ecc.layout`).
* :class:`SSCDSDCodec` -- the 36-chip wide channel: 32 data + 4 parity
  chips, distance 5 (single-chip correct, double-chip detect).

All codecs speak bytes: a codeword is ``symbol_bytes * n`` bytes, one byte
per chip (per 4-bit chips we group the two beats of a codeword interval so
each chip still contributes exactly one byte -- see :mod:`repro.ecc.rs` for
why the field stays GF(256)).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from .rs import DecodeFailure, DecodeResult, ReedSolomon

try:  # numpy is an accelerator, never a requirement
    import numpy as np
except ImportError:  # pragma: no cover - the image ships numpy
    np = None


@dataclass(frozen=True)
class CorrectionReport:
    """What a codec did to one codeword."""

    data: bytes
    corrected_chips: Tuple[int, ...]
    detected_uncorrectable: bool


class _RSCodecBase:
    """Shared RS-backed chipkill machinery (one byte symbol per chip)."""

    def __init__(self, data_chips: int, parity_chips: int) -> None:
        self.data_chips = data_chips
        self.parity_chips = parity_chips
        self.n = data_chips + parity_chips
        self.rs = ReedSolomon(self.n, data_chips, 8)

    @property
    def data_bytes(self) -> int:
        return self.data_chips

    @property
    def parity_bytes(self) -> int:
        return self.parity_chips

    def encode(self, data: bytes) -> bytes:
        """Return the parity bytes for ``data`` (one byte per data chip)."""
        if len(data) != self.data_chips:
            raise ValueError(
                f"codeword data is {self.data_chips} bytes, got {len(data)}"
            )
        codeword = self.rs.encode(list(data))
        return bytes(codeword[self.data_chips :])

    def decode(self, data: bytes, parity: bytes) -> CorrectionReport:
        """Correct the codeword; never raises -- failures are reported."""
        if len(data) != self.data_chips or len(parity) != self.parity_chips:
            raise ValueError(
                f"codeword is {self.data_chips}B data + "
                f"{self.parity_chips}B parity, got {len(data)}B + "
                f"{len(parity)}B"
            )
        try:
            result: DecodeResult = self.rs.decode(list(data) + list(parity))
        except DecodeFailure:
            return CorrectionReport(data, (), True)
        return CorrectionReport(
            bytes(result.data), result.corrected_positions, False
        )

    def check(self, data: bytes, parity: bytes) -> bool:
        """True when (data, parity) is a valid codeword."""
        if len(data) != self.data_chips or len(parity) != self.parity_chips:
            raise ValueError(
                f"codeword is {self.data_chips}B data + "
                f"{self.parity_chips}B parity, got {len(data)}B + "
                f"{len(parity)}B"
            )
        return not any(self.rs.syndromes(list(data) + list(parity)))

    # ------------------------------------------------------------- batches

    def encode_many(self, datas: Sequence[bytes]) -> List[bytes]:
        """Batch :meth:`encode`: one vectorized RS pass over many words."""
        if np is None or not datas:
            return [self.encode(d) for d in datas]
        for d in datas:
            if len(d) != self.data_chips:
                raise ValueError(
                    f"codeword data is {self.data_chips} bytes, got {len(d)}"
                )
        arr = np.frombuffer(b"".join(datas), dtype=np.uint8)
        codewords = self.rs.encode_batch(arr.reshape(-1, self.data_chips))
        parity = codewords[:, self.data_chips:].astype(np.uint8)
        return [row.tobytes() for row in parity]

    def check_many(
        self, datas: Sequence[bytes], paritys: Sequence[bytes]
    ) -> List[bool]:
        """Batch :meth:`check` over parallel data/parity sequences."""
        if np is None or not datas:
            return [self.check(d, p) for d, p in zip(datas, paritys)]
        if len(datas) != len(paritys):
            raise ValueError("data and parity sequences differ in length")
        words = [
            d + p for d, p in zip(datas, paritys)
            if len(d) == self.data_chips and len(p) == self.parity_chips
        ]
        if len(words) != len(datas):
            raise ValueError(
                f"codeword is {self.data_chips}B data + "
                f"{self.parity_chips}B parity"
            )
        arr = np.frombuffer(b"".join(words), dtype=np.uint8)
        synd = self.rs.syndromes_batch(arr.reshape(-1, self.n))
        return [not bool(row.any()) for row in synd]


class SSCCodec(_RSCodecBase):
    """Single Symbol Correct chipkill: 16 data chips + 2 parity chips.

    One codeword covers two beats of the 18-chip channel (144 bits = 16B
    data + 2B parity); a whole failed chip corrupts exactly one symbol and
    is always corrected.
    """

    def __init__(self) -> None:
        super().__init__(data_chips=16, parity_chips=2)


class SSCDSDCodec(_RSCodecBase):
    """Single Symbol Correct - Double Symbol Detect: 36-chip wide channel
    (32 data + 4 parity), distance 5."""

    def __init__(self) -> None:
        super().__init__(data_chips=32, parity_chips=4)

    def decode(self, data: bytes, parity: bytes) -> CorrectionReport:
        """Correct one chip; explicitly *detect* two.

        The underlying RS code could correct two symbols, but SSC-DSD as
        deployed treats double-chip faults as detected-uncorrectable (the
        second "chip" is usually the broken bus, and miscorrection risk
        rises), so we cap correction at one symbol.
        """
        report = super().decode(data, parity)
        if len(report.corrected_chips) > 1:
            return CorrectionReport(data, (), True)
        return report


# ---------------------------------------------------------------------------
# Chip-aligned symbol extraction
#
# The SSC symbol is "the eight bits a chip contributes to the codeword",
# which is *not* a consecutive byte of the sector: the transfer layouts of
# Figure 4 interleave chips at nibble (default) or bit (transposed)
# granularity.  Correcting a chip failure therefore requires mapping the
# sector to chip-aligned symbols first.
# ---------------------------------------------------------------------------

def sector_chip_symbols(data: bytes, parity: bytes,
                        layout: str = "default") -> List[int]:
    """18 chip-aligned GF(256) symbols of one (16B data, 2B parity) sector.

    ``default`` (Figure 4(b)): chip ``i`` holds sector bits
    ``{64*b + 4*i + l : b in 0..1, l in 0..3}`` -- two nibbles, one per
    beat.  ``transposed`` (Figure 4(c)): chip ``i`` holds bits
    ``{16*k + i : k in 0..7}``.
    """
    if len(data) != 16 or len(parity) != 2:
        raise ValueError("a sector is 16B of data + 2B of parity")
    dbits = int.from_bytes(data, "little")
    pbits = int.from_bytes(parity, "little")
    symbols = []
    if layout == "default":
        for i in range(16):
            lo = (dbits >> (4 * i)) & 0xF
            hi = (dbits >> (64 + 4 * i)) & 0xF
            symbols.append(lo | (hi << 4))
        for c in range(2):
            lo = (pbits >> (4 * c)) & 0xF
            hi = (pbits >> (8 + 4 * c)) & 0xF
            symbols.append(lo | (hi << 4))
    elif layout == "transposed":
        for i in range(16):
            symbol = 0
            for k in range(8):
                symbol |= ((dbits >> (16 * k + i)) & 1) << k
            symbols.append(symbol)
        for c in range(2):
            symbol = 0
            for k in range(8):
                symbol |= ((pbits >> (2 * k + c)) & 1) << k
            symbols.append(symbol)
    else:
        raise ValueError(f"unknown layout {layout!r}")
    return symbols


@lru_cache(maxsize=None)
def _symbol_bit_index(layout: str):
    """``(18, 8)`` index matrix: symbol ``s`` bit ``k`` -> bit position in
    the 144-bit sector codeword (128 data bits, then 16 parity bits).

    This is :func:`sector_chip_symbols` as a fixed bit permutation, so
    whole batches of sectors reduce to unpack-gather-pack (same engine as
    :mod:`repro.dram.bitmatrix`)."""
    idx = np.empty((18, 8), dtype=np.intp)
    for s in range(18):
        for k in range(8):
            if layout == "default":
                if s < 16:
                    idx[s, k] = (
                        4 * s + k if k < 4 else 64 + 4 * s + (k - 4)
                    )
                else:
                    c = s - 16
                    idx[s, k] = 128 + (
                        4 * c + k if k < 4 else 8 + 4 * c + (k - 4)
                    )
            elif layout == "transposed":
                idx[s, k] = (
                    16 * k + s if s < 16 else 128 + 2 * k + (s - 16)
                )
            else:
                raise ValueError(f"unknown layout {layout!r}")
    idx.setflags(write=False)
    return idx


def _chip_symbols_batch(data_arr, parity_arr, layout: str):
    """``(batch, 18)`` chip-aligned symbols from ``(batch, 16)`` data and
    ``(batch, 2)`` parity byte arrays."""
    raw = np.concatenate([data_arr, parity_arr], axis=1)
    bits = np.unpackbits(raw, axis=1, bitorder="little")
    idx = _symbol_bit_index(layout)
    sym_bits = bits[:, idx.reshape(-1)].reshape(-1, 18, 8)
    packed = np.packbits(sym_bits, axis=2, bitorder="little")
    return packed[:, :, 0].astype(np.int64)


def _parity_from_symbols_batch(parity_syms, layout: str):
    """Scatter ``(batch, 2)`` parity symbols back to parity bytes."""
    bits = np.unpackbits(
        parity_syms.astype(np.uint8), axis=1, bitorder="little"
    )
    fwd = (_symbol_bit_index(layout)[16:] - 128).reshape(-1)
    out = np.zeros_like(bits)
    out[:, fwd] = bits
    return np.packbits(out, axis=1, bitorder="little")


def sector_from_chip_symbols(symbols: Sequence[int],
                             layout: str = "default") -> Tuple[bytes, bytes]:
    """Inverse of :func:`sector_chip_symbols`."""
    if len(symbols) != 18:
        raise ValueError("a sector codeword has 18 chip symbols")
    dbits = 0
    pbits = 0
    if layout == "default":
        for i in range(16):
            dbits |= (symbols[i] & 0xF) << (4 * i)
            dbits |= ((symbols[i] >> 4) & 0xF) << (64 + 4 * i)
        for c in range(2):
            pbits |= (symbols[16 + c] & 0xF) << (4 * c)
            pbits |= ((symbols[16 + c] >> 4) & 0xF) << (8 + 4 * c)
    elif layout == "transposed":
        for i in range(16):
            for k in range(8):
                if (symbols[i] >> k) & 1:
                    dbits |= 1 << (16 * k + i)
        for c in range(2):
            for k in range(8):
                if (symbols[16 + c] >> k) & 1:
                    pbits |= 1 << (2 * k + c)
    else:
        raise ValueError(f"unknown layout {layout!r}")
    return dbits.to_bytes(16, "little"), pbits.to_bytes(2, "little")


class ChipAlignedSSC:
    """SSC over chip-aligned symbols: the codec that actually survives a
    whole-chip failure under the Figure 4 transfer layouts."""

    def __init__(self, layout: str = "default") -> None:
        if layout not in ("default", "transposed"):
            raise ValueError(f"unknown layout {layout!r}")
        self.layout = layout
        self.rs = ReedSolomon(18, 16, 8)

    def encode_sector(self, data: bytes) -> bytes:
        """Parity bytes such that the 18 *chip* symbols form a codeword."""
        if len(data) != 16:
            raise ValueError("a sector is 16 bytes")
        data_symbols = sector_chip_symbols(data, b"\x00\x00",
                                           self.layout)[:16]
        codeword = self.rs.encode(data_symbols)
        _, parity = sector_from_chip_symbols(codeword, self.layout)
        return parity

    def decode_sector(self, data: bytes, parity: bytes) -> CorrectionReport:
        symbols = sector_chip_symbols(data, parity, self.layout)
        try:
            result = self.rs.decode(symbols)
        except DecodeFailure:
            return CorrectionReport(data, (), True)
        # re-encode the corrected data symbols: yields a clean codeword
        # even when the corrupted symbol was a parity chip's
        codeword = self.rs.encode(list(result.data))
        fixed_data, _ = sector_from_chip_symbols(codeword, self.layout)
        return CorrectionReport(
            fixed_data, result.corrected_positions, False
        )

    def check_sector(self, data: bytes, parity: bytes) -> bool:
        return not any(
            self.rs.syndromes(sector_chip_symbols(data, parity, self.layout))
        )

    # ------------------------------------------------------------- batches

    def encode_sectors(self, datas: Sequence[bytes]) -> List[bytes]:
        """Batch :meth:`encode_sector`: symbol extraction and RS encoding
        of many sectors in one vectorized pass."""
        if np is None or not datas:
            return [self.encode_sector(d) for d in datas]
        for d in datas:
            if len(d) != 16:
                raise ValueError("a sector is 16 bytes")
        arr = np.frombuffer(b"".join(datas), dtype=np.uint8).reshape(-1, 16)
        zeros = np.zeros((arr.shape[0], 2), dtype=np.uint8)
        symbols = _chip_symbols_batch(arr, zeros, self.layout)[:, :16]
        codewords = self.rs.encode_batch(symbols)
        parity = _parity_from_symbols_batch(codewords[:, 16:], self.layout)
        return [row.tobytes() for row in parity]

    def check_sectors(
        self, datas: Sequence[bytes], paritys: Sequence[bytes]
    ) -> List[bool]:
        """Batch :meth:`check_sector` over parallel sequences."""
        if np is None or not datas:
            return [
                self.check_sector(d, p) for d, p in zip(datas, paritys)
            ]
        if len(datas) != len(paritys):
            raise ValueError("data and parity sequences differ in length")
        for d, p in zip(datas, paritys):
            if len(d) != 16 or len(p) != 2:
                raise ValueError("a sector is 16B of data + 2B of parity")
        darr = np.frombuffer(b"".join(datas), dtype=np.uint8).reshape(-1, 16)
        parr = np.frombuffer(b"".join(paritys), dtype=np.uint8).reshape(-1, 2)
        symbols = _chip_symbols_batch(darr, parr, self.layout)
        synd = self.rs.syndromes_batch(symbols)
        return [not bool(row.any()) for row in synd]


def codeword_split(line: bytes, codec: _RSCodecBase) -> List[bytes]:
    """Split a 64B line into the per-codeword data chunks of ``codec``."""
    step = codec.data_bytes
    if len(line) % step:
        raise ValueError(f"line of {len(line)}B does not split into {step}B")
    return [line[i : i + step] for i in range(0, len(line), step)]


def encode_line(line: bytes, codec: Optional[_RSCodecBase] = None) -> bytes:
    """Chipkill parity for a 64B line: 2B per 16B codeword -> 8B total."""
    codec = codec or SSCCodec()
    return b"".join(codec.encode_many(codeword_split(line, codec)))


def decode_line(
    line: bytes, parity: bytes, codec: Optional[_RSCodecBase] = None
) -> Tuple[bytes, List[CorrectionReport]]:
    """Correct a 64B line given its 8B parity; returns (data, reports)."""
    codec = codec or SSCCodec()
    chunks = codeword_split(line, codec)
    pstep = codec.parity_bytes
    reports = []
    corrected = []
    for i, chunk in enumerate(chunks):
        report = codec.decode(chunk, parity[i * pstep : (i + 1) * pstep])
        reports.append(report)
        corrected.append(report.data)
    return b"".join(corrected), reports
