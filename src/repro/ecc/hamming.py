"""Hsiao SEC-DED (72, 64) code -- the desktop ECC of Figure 4(a).

Single-bit errors are corrected, double-bit errors detected.  We build an
odd-weight-column (Hsiao) parity-check matrix: 8 check bits, 72 columns.
Check-bit columns are weight-1 (identity); the 64 data columns are distinct
odd-weight (>= 3) 8-bit vectors.  Odd-weight columns give the classic Hsiao
property: any double error has an even-weight (hence nonzero, non-column)
syndrome, so it is never miscorrected as a single error.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Tuple

DATA_BITS = 64
CHECK_BITS = 8
CODE_BITS = DATA_BITS + CHECK_BITS


def _build_columns() -> List[int]:
    """72 distinct odd-weight 8-bit columns: identity first, then weight-3
    and weight-5 vectors for the data bits."""
    columns = [1 << i for i in range(CHECK_BITS)]
    for weight in (3, 5):
        for combo in combinations(range(CHECK_BITS), weight):
            value = 0
            for bit in combo:
                value |= 1 << bit
            columns.append(value)
            if len(columns) == CODE_BITS:
                return columns
    raise AssertionError("not enough odd-weight columns")


_COLUMNS = _build_columns()
_CHECK_COLUMNS = _COLUMNS[:CHECK_BITS]
_DATA_COLUMNS = _COLUMNS[CHECK_BITS:]
_SYNDROME_TO_POSITION = {col: i for i, col in enumerate(_COLUMNS)}


class DoubleError(Exception):
    """A double-bit error was detected (uncorrectable by SEC-DED)."""


@dataclass(frozen=True)
class SecDedResult:
    data: int  # corrected 64-bit data word
    corrected_bit: Optional[int]  # codeword bit index fixed, or None


def encode(data: int) -> Tuple[int, int]:
    """Return ``(data, check)`` for a 64-bit word."""
    if not 0 <= data < (1 << DATA_BITS):
        raise ValueError("data must be a 64-bit value")
    check = 0
    for bit in range(DATA_BITS):
        if (data >> bit) & 1:
            check ^= _DATA_COLUMNS[bit]
    return data, check


def syndrome(data: int, check: int) -> int:
    s = check
    for bit in range(DATA_BITS):
        if (data >> bit) & 1:
            s ^= _DATA_COLUMNS[bit]
    return s


def decode(data: int, check: int) -> SecDedResult:
    """Correct a single-bit error; raise :class:`DoubleError` on doubles."""
    s = syndrome(data, check)
    if s == 0:
        return SecDedResult(data, None)
    if bin(s).count("1") % 2 == 0:
        raise DoubleError(f"even-weight syndrome {s:#04x}: double-bit error")
    position = _SYNDROME_TO_POSITION.get(s)
    if position is None:
        # odd-weight syndrome not matching any column: >= 3 errors
        raise DoubleError(f"unmatched syndrome {s:#04x}: multi-bit error")
    if position < CHECK_BITS:
        return SecDedResult(data, position)  # error was in a check bit
    data_bit = position - CHECK_BITS
    return SecDedResult(data ^ (1 << data_bit), position)
