"""Galois-field arithmetic for the chipkill codes.

Chipkill ECC treats the bits a chip contributes to a codeword as one symbol
of GF(2^m): SSC uses 8-bit symbols (GF(256)), SSC-DSD uses 4-bit symbols
(GF(16)).  This module provides table-driven GF(2^m) arithmetic for any
small m; :mod:`repro.ecc.rs` builds Reed-Solomon codes on top of it.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

try:  # numpy is an accelerator, never a requirement
    import numpy as np
except ImportError:  # pragma: no cover - the image ships numpy
    np = None

#: Primitive polynomials (with the x^m term) for the field sizes we use.
PRIMITIVE_POLYS = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,  # x^4 + x + 1
    8: 0b100011101,  # x^8 + x^4 + x^3 + x^2 + 1
}


class GF:
    """The finite field GF(2^m) with log/antilog tables."""

    def __init__(self, m: int, primitive_poly: int | None = None) -> None:
        if primitive_poly is None:
            if m not in PRIMITIVE_POLYS:
                raise ValueError(f"no default primitive polynomial for m={m}")
            primitive_poly = PRIMITIVE_POLYS[m]
        self.m = m
        self.size = 1 << m
        self.poly = primitive_poly
        self.exp: List[int] = [0] * (2 * self.size)
        self.log: List[int] = [0] * self.size
        x = 1
        for i in range(self.size - 1):
            self.exp[i] = x
            self.log[x] = i
            x <<= 1
            if x & self.size:
                x ^= primitive_poly
        # duplicate so exp[i + (size-1)] works without a modulo
        for i in range(self.size - 1, 2 * self.size):
            self.exp[i] = self.exp[i - (self.size - 1)]
        self._np_tables: Optional[tuple] = None

    def np_tables(self) -> Optional[Tuple["np.ndarray", "np.ndarray"]]:
        """``(log, exp)`` as numpy arrays for batch kernels.

        The exp table keeps the doubled length, so ``exp[log[a] + log[b]]``
        needs no modulo (max index ``2*(size-2) < 2*size``).  Returns None
        when numpy is unavailable; callers fall back to the scalar ops.
        """
        if np is None:
            return None
        if self._np_tables is None:
            log = np.asarray(self.log, dtype=np.int64)
            exp = np.asarray(self.exp, dtype=np.int64)
            log.setflags(write=False)
            exp.setflags(write=False)
            self._np_tables = (log, exp)
        return self._np_tables

    # ------------------------------------------------------------ basic ops

    def add(self, a: int, b: int) -> int:
        """Addition (== subtraction) is XOR in characteristic 2."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return self.exp[self.log[a] + self.log[b]]

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self.exp[self.log[a] - self.log[b] + self.size - 1]

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse")
        return self.exp[self.size - 1 - self.log[a]]

    def pow(self, a: int, n: int) -> int:
        if a == 0:
            return 0 if n else 1
        return self.exp[(self.log[a] * n) % (self.size - 1)]

    def alpha_pow(self, n: int) -> int:
        """alpha^n for the primitive element alpha."""
        return self.exp[n % (self.size - 1)]

    # -------------------------------------------------------- polynomials
    # Polynomials are lists of coefficients, lowest degree first.

    def poly_eval(self, p: List[int], x: int) -> int:
        """Evaluate polynomial ``p`` at ``x`` (Horner, highest degree last)."""
        result = 0
        for coeff in reversed(p):
            result = self.mul(result, x) ^ coeff
        return result

    def poly_mul(self, p: List[int], q: List[int]) -> List[int]:
        out = [0] * (len(p) + len(q) - 1)
        for i, a in enumerate(p):
            if a == 0:
                continue
            for j, b in enumerate(q):
                if b:
                    out[i + j] ^= self.mul(a, b)
        return out

    def poly_add(self, p: List[int], q: List[int]) -> List[int]:
        n = max(len(p), len(q))
        out = [0] * n
        for i, a in enumerate(p):
            out[i] ^= a
        for i, b in enumerate(q):
            out[i] ^= b
        return out

    def poly_scale(self, p: List[int], s: int) -> List[int]:
        return [self.mul(c, s) for c in p]

    def poly_deriv(self, p: List[int]) -> List[int]:
        """Formal derivative: even-power terms vanish in characteristic 2."""
        return [p[i] if i % 2 == 1 else 0 for i in range(1, len(p))]


@lru_cache(maxsize=None)
def field(m: int) -> GF:
    """Shared GF(2^m) instance (tables are immutable)."""
    return GF(m)
