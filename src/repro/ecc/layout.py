"""Codeword-to-transfer layout analysis (Figures 4 and 5).

The reliability argument of the paper is *structural*: a transfer is
chipkill-protectable only if it carries complete codewords -- every data
symbol together with its parity symbols, all sourced from addresses the
parity actually covers.  This module models a memory transfer as the set of
``(chip, beat, line)`` cells it moves and decides, per access scheme,
whether codeword integrity holds:

* Regular 64B transfers: 4 complete SSC codewords (2 beats each) -- fine.
* SAM-sub / SAM-en gathers: each strided element is one whole codeword
  transmitted by all 18 chips in tandem -- fine (Section 4.1).
* SAM-IO gathers: the SSC-variant layout keeps each lane a whole symbol --
  fine, with the transposed-codeword caveat (Section 4.2.2).
* GS-DRAM gathers: data chips return lines from *different rows* while a
  parity chip can only return one row's parity per access -- the codewords
  are incomplete, so chipkill (and even SEC-DED) must be disabled
  (Section 3.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

#: One cell of a transfer: which chip, which beat, and which memory line
#: (row identity) the bits come from.
Cell = Tuple[int, int, int]  # (chip, beat, line_id)

DATA_CHIPS = 16
PARITY_CHIPS = 2
CHIPS = DATA_CHIPS + PARITY_CHIPS
BEATS = 8


@dataclass(frozen=True)
class CodewordCheck:
    """Integrity verdict for one transfer."""

    complete: bool
    codewords: int  # number of complete codewords found
    reason: str


def _cells_regular(line_id: int = 0) -> List[Cell]:
    """A regular burst: all chips, all beats, one line."""
    return [(c, b, line_id) for c in range(CHIPS) for b in range(BEATS)]


def _cells_sam_gather(line_ids: Sequence[int]) -> List[Cell]:
    """A SAM stride-mode burst: all 18 chips participate every beat, but
    the bits on DQ-position j come from line ``line_ids[j]``.  At codeword
    granularity each strided element's data and parity travel together."""
    if len(line_ids) != 4:
        raise ValueError("SAM gathers four lines per burst")
    # Each chip contributes one symbol per line (8 bits spread over the
    # burst); beat index is not meaningful per line here, so give each
    # element its own two-beat slot for accounting purposes.
    cells = []
    for j, line in enumerate(line_ids):
        for c in range(CHIPS):
            for b in (2 * j, 2 * j + 1):
                cells.append((c, b, line))
    return cells


def _cells_gs_dram_gather(line_ids: Sequence[int]) -> List[Cell]:
    """A GS-DRAM gather: data chips are split across lines (each group of
    chips returns its own row), while parity chips can only follow one row
    address."""
    n = len(line_ids)
    if DATA_CHIPS % n:
        raise ValueError(f"cannot spread {n} lines over {DATA_CHIPS} chips")
    group = DATA_CHIPS // n
    cells = []
    for c in range(DATA_CHIPS):
        line = line_ids[c // group]
        for b in range(BEATS):
            cells.append((c, b, line))
    for c in range(DATA_CHIPS, CHIPS):
        for b in range(BEATS):
            cells.append((c, b, line_ids[0]))  # parity follows one row only
    return cells


def check_codewords(cells: Sequence[Cell]) -> CodewordCheck:
    """Decide whether a transfer decomposes into complete SSC codewords.

    A codeword needs, for one line, a two-beat-equivalent slice of *all*
    chips (16 data symbols + 2 parity symbols from the same line).
    """
    by_line_chip: Dict[int, Set[int]] = {}
    cell_count: Dict[Tuple[int, int], int] = {}
    for chip, _beat, line in cells:
        by_line_chip.setdefault(line, set()).add(chip)
        cell_count[(line, chip)] = cell_count.get((line, chip), 0) + 1
    codewords = 0
    for line, chips in sorted(by_line_chip.items()):
        if len(chips) != CHIPS:
            return CodewordCheck(
                False,
                codewords,
                f"line {line}: only {len(chips)}/{CHIPS} chips present -- "
                "its parity symbols are not in the transfer",
            )
        beats = min(cell_count[(line, chip)] for chip in chips)
        codewords += beats // 2  # one codeword per two beats
    if codewords == 0:
        return CodewordCheck(False, 0, "no complete codeword in transfer")
    return CodewordCheck(True, codewords, "all codewords complete")


def regular_transfer_check() -> CodewordCheck:
    """Any scheme's regular 64B burst."""
    return check_codewords(_cells_regular())


def sam_gather_check(line_ids: Sequence[int] = (0, 1, 2, 3)) -> CodewordCheck:
    """SAM-sub / SAM-IO / SAM-en stride-mode burst."""
    return check_codewords(_cells_sam_gather(line_ids))


def gs_dram_gather_check(
    line_ids: Sequence[int] = (0, 1, 2, 3)
) -> CodewordCheck:
    """GS-DRAM gather: expected to fail codeword integrity."""
    return check_codewords(_cells_gs_dram_gather(line_ids))
