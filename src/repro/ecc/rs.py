"""Systematic Reed-Solomon codes over GF(2^m).

The chipkill codes of the paper are RS codes whose symbols map one-to-one
onto DRAM chips (or DQ pins):

* SSC (Figure 4(b)): RS(18, 16) over GF(256) -- 16 data symbols + 2 parity
  symbols, minimum distance 3, corrects any single symbol (= chip) error.
* SSC-DSD: the 36-chip wide-channel organization of Section 2.3 with 4-bit
  beat-level symbols.  A plain RS code over GF(16) cannot reach length 36
  (n <= 15); production SSC-DSD codes are custom SbEC-DbED designs.  We
  keep the chip-granularity protection by grouping each chip's bits per
  codeword into one GF(256) symbol and using RS(36, 32) -- same distance
  (5), same per-chip failure coverage, standard decoder.

The decoder is the classic syndrome / Berlekamp-Massey / Chien / Forney
pipeline, so it handles any number of errors up to floor((n-k)/2) and flags
uncorrectable patterns instead of miscorrecting (up to the code's
guarantees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .gf import GF, field

try:  # numpy is an accelerator, never a requirement
    import numpy as np
except ImportError:  # pragma: no cover - the image ships numpy
    np = None


class DecodeFailure(Exception):
    """The received word is detectably uncorrectable."""


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of a decode attempt."""

    data: Tuple[int, ...]  # corrected data symbols
    corrected_positions: Tuple[int, ...]  # codeword positions fixed
    detected_only: bool = False  # True when errors were detected but not fixed

    @property
    def corrected(self) -> int:
        return len(self.corrected_positions)


class ReedSolomon:
    """A systematic RS(n, k) code over GF(2^m).

    Codewords are ``k`` data symbols followed by ``n - k`` parity symbols.
    """

    def __init__(self, n: int, k: int, m: int) -> None:
        gf = field(m)
        if not 0 < k < n < gf.size:
            raise ValueError(
                f"invalid RS parameters n={n}, k={k} over GF(2^{m})"
            )
        self.n = n
        self.k = k
        self.m = m
        self.gf = gf
        self.nparity = n - k
        # generator polynomial g(x) = prod_{i=1..n-k} (x - alpha^i)
        g = [1]
        for i in range(1, self.nparity + 1):
            g = gf.poly_mul(g, [gf.alpha_pow(i), 1])
        self.generator = g
        self._batch_tables = None

    @property
    def correctable(self) -> int:
        """Maximum number of guaranteed-correctable symbol errors."""
        return self.nparity // 2

    @property
    def min_distance(self) -> int:
        return self.nparity + 1

    # -------------------------------------------------------------- encode

    def encode(self, data: Sequence[int]) -> List[int]:
        """Append parity: systematic encoding via polynomial division."""
        if len(data) != self.k:
            raise ValueError(f"expected {self.k} data symbols, got {len(data)}")
        for s in data:
            if not 0 <= s < self.gf.size:
                raise ValueError(f"symbol {s} out of range for GF(2^{self.m})")
        gf = self.gf
        # message * x^(n-k) mod g(x)
        remainder = [0] * self.nparity
        for symbol in data:
            feedback = symbol ^ remainder[-1]
            remainder = [0] + remainder[:-1]
            if feedback:
                for i in range(self.nparity):
                    # generator is monic: skip its leading coefficient
                    remainder[i] ^= gf.mul(self.generator[i], feedback)
        # remainder indexed low->high corresponds to parity symbols; emit so
        # that codeword = data + parity evaluates consistently in decode.
        parity = list(reversed(remainder))
        return list(data) + parity

    # ------------------------------------------------------- batch kernels
    #
    # Systematic RS encoding and syndrome computation are GF(2^m)-linear,
    # so whole batches of codewords reduce to table lookups: multiply via
    # the log/antilog tables (the doubled exp table absorbs the modulo),
    # mask out zero operands, and XOR-reduce.  The scalar ``encode`` /
    # ``syndromes`` above stay as the reference oracle.

    def _kernels(self):
        """Lazy batch-kernel tables; None without numpy."""
        if np is None:
            return None
        if self._batch_tables is None:
            log, exp = self.gf.np_tables()
            # parity rows of the systematic generator matrix: parity(e_j)
            # for each unit data vector e_j (encode is linear over GF, so
            # parity(d) = XOR_j d_j * parity(e_j) symbol-wise)
            pgen = np.zeros((self.k, self.nparity), dtype=np.int64)
            for j in range(self.k):
                unit = [0] * self.k
                unit[j] = 1
                pgen[j] = self.encode(unit)[self.k:]
            # syndrome locator logs: S_i = XOR_j c_j * alpha^(i*(n-1-j))
            i_idx = np.arange(1, self.nparity + 1, dtype=np.int64)
            j_exp = (self.n - 1 - np.arange(self.n, dtype=np.int64))
            loc_log = (i_idx[:, None] * j_exp[None, :]) % (self.gf.size - 1)
            for arr in (pgen, loc_log):
                arr.setflags(write=False)
            self._batch_tables = (log, exp, pgen, log[pgen], loc_log)
        return self._batch_tables

    def _check_symbols(self, arr, width: int, what: str):
        if arr.ndim != 2 or arr.shape[1] != width:
            raise ValueError(
                f"expected a (batch, {width}) array of {what} symbols, "
                f"got shape {arr.shape}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= self.gf.size):
            raise ValueError(f"symbol out of range for GF(2^{self.m})")

    def encode_batch(self, data):
        """Systematic encode of a whole ``(batch, k)`` array of symbols.

        Returns a ``(batch, n)`` int64 array (data columns first, parity
        appended), bit-identical to row-wise :meth:`encode`.  Falls back
        to a scalar loop (returning a list of codeword lists) when numpy
        is unavailable.
        """
        kern = self._kernels()
        if kern is None:
            return [self.encode(list(row)) for row in data]
        log, exp, pgen, pgen_log, _ = kern
        arr = np.asarray(data, dtype=np.int64)
        self._check_symbols(arr, self.k, "data")
        term = exp[log[arr][:, :, None] + pgen_log[None, :, :]]
        zero = (arr[:, :, None] == 0) | (pgen[None, :, :] == 0)
        parity = np.bitwise_xor.reduce(np.where(zero, 0, term), axis=1)
        return np.concatenate([arr, parity], axis=1)

    def syndromes_batch(self, codewords):
        """Syndromes of a whole ``(batch, n)`` array of codewords.

        Returns a ``(batch, n - k)`` int64 array matching row-wise
        :meth:`syndromes`; a row of zeros means a valid codeword.  Falls
        back to a scalar loop when numpy is unavailable.
        """
        kern = self._kernels()
        if kern is None:
            return [self.syndromes(list(row)) for row in codewords]
        log, exp, _, _, loc_log = kern
        arr = np.asarray(codewords, dtype=np.int64)
        self._check_symbols(arr, self.n, "codeword")
        term = exp[log[arr][:, None, :] + loc_log[None, :, :]]
        zero = arr[:, None, :] == 0
        return np.bitwise_xor.reduce(np.where(zero, 0, term), axis=2)

    # -------------------------------------------------------------- decode

    def syndromes(self, codeword: Sequence[int]) -> List[int]:
        """S_i = C(alpha^i) for i = 1..n-k, with C ordered highest power
        first (codeword[0] is the highest-degree coefficient)."""
        if len(codeword) != self.n:
            raise ValueError(
                f"expected {self.n} codeword symbols, got {len(codeword)}"
            )
        limit = 1 << self.m
        for s in codeword:
            if not 0 <= s < limit:
                raise ValueError(
                    f"symbol {s} out of range for GF(2^{self.m})"
                )
        gf = self.gf
        out = []
        for i in range(1, self.nparity + 1):
            x = gf.alpha_pow(i)
            acc = 0
            for symbol in codeword:
                acc = gf.mul(acc, x) ^ symbol
            out.append(acc)
        return out

    def decode(self, received: Sequence[int]) -> DecodeResult:
        """Correct up to ``correctable`` symbol errors.

        Raises :class:`DecodeFailure` when the error pattern is detected to
        exceed the correction capability.
        """
        if len(received) != self.n:
            raise ValueError(f"expected {self.n} symbols, got {len(received)}")
        gf = self.gf
        synd = self.syndromes(received)
        if not any(synd):
            return DecodeResult(tuple(received[: self.k]), ())
        sigma = self._berlekamp_massey(synd)
        nerrors = len(sigma) - 1
        if nerrors > self.correctable:
            raise DecodeFailure(
                f"detected more than {self.correctable} symbol errors"
            )
        positions = self._chien_search(sigma)
        if len(positions) != nerrors:
            raise DecodeFailure("error locator has wrong number of roots")
        magnitudes = self._forney(synd, sigma, positions)
        corrected = list(received)
        for pos, mag in zip(positions, magnitudes):
            corrected[pos] ^= mag
        if any(self.syndromes(corrected)):
            raise DecodeFailure("correction did not produce a codeword")
        return DecodeResult(tuple(corrected[: self.k]), tuple(positions))

    # ------------------------------------------------------------ internals

    def _berlekamp_massey(self, synd: List[int]) -> List[int]:
        """Error-locator polynomial sigma(x), lowest degree first."""
        gf = self.gf
        sigma = [1]
        prev = [1]
        length = 0
        mshift = 1
        b = 1
        for i, s in enumerate(synd):
            # discrepancy
            d = s
            for j in range(1, length + 1):
                if j < len(sigma) and sigma[j]:
                    d ^= gf.mul(sigma[j], synd[i - j])
            if d == 0:
                mshift += 1
            elif 2 * length <= i:
                temp = list(sigma)
                scale = gf.div(d, b)
                shifted = [0] * mshift + gf.poly_scale(prev, scale)
                sigma = gf.poly_add(sigma, shifted)
                prev = temp
                length = i + 1 - length
                b = d
                mshift = 1
            else:
                scale = gf.div(d, b)
                shifted = [0] * mshift + gf.poly_scale(prev, scale)
                sigma = gf.poly_add(sigma, shifted)
                mshift += 1
        # strip trailing zeros
        while len(sigma) > 1 and sigma[-1] == 0:
            sigma.pop()
        return sigma

    def _chien_search(self, sigma: List[int]) -> List[int]:
        """Positions (0 = first transmitted symbol) where sigma has roots."""
        gf = self.gf
        positions = []
        for pos in range(self.n):
            # symbol at position pos has locator alpha^(n-1-pos)
            x_inv = gf.inv(gf.alpha_pow(self.n - 1 - pos))
            if self.gf.poly_eval(sigma, x_inv) == 0:
                positions.append(pos)
        return positions

    def _forney(
        self, synd: List[int], sigma: List[int], positions: List[int]
    ) -> List[int]:
        """Error magnitudes via the Forney algorithm."""
        gf = self.gf
        # error evaluator omega(x) = [S(x) * sigma(x)] mod x^(n-k)
        s_poly = list(synd)  # S_1 + S_2 x + ...
        omega = gf.poly_mul(s_poly, sigma)[: self.nparity]
        deriv = gf.poly_deriv(sigma)
        magnitudes = []
        for pos in positions:
            x = gf.alpha_pow(self.n - 1 - pos)  # locator X_j
            x_inv = gf.inv(x)
            num = gf.poly_eval(omega, x_inv)
            den = gf.poly_eval(deriv, x_inv)
            if den == 0:
                raise DecodeFailure("Forney denominator vanished")
            # narrow-sense code (first root alpha^1):
            # magnitude = omega(X_j^-1) / sigma'(X_j^-1)
            magnitudes.append(gf.div(num, den))
        return magnitudes
