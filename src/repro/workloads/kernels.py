"""Generated micro-kernel workloads (the paper's Figure-14-style sweeps).

The evaluation of a strided-access accelerator lives or dies on
parameterized micro-kernels: stream read/write/copy (unit stride -- the
case SAM should *not* change), strided gather/scatter at parametric
stride x element width x footprint (the case it exists for), and small
PolyBench-style kernels (``mxv`` column sweeps, ``jacobi2d`` stencils,
``doitgen`` tensor contractions) that mix both.  This module is a
generator registry in the MEF style: a kernel name plus an integer
parameter map deterministically expands into

* a set of flat arrays, described as :class:`TableSpec` recipes (an
  array of ``n`` records with pitch ``stride`` bytes is a table whose
  record size is the stride -- the runner places it through the scheme
  exactly like a relational table), and
* an ordered tuple of *access groups*: logical element accesses
  ``(record, offset)`` into one array, tagged read/write, with an
  element size and a ``strided`` flag.

:meth:`KernelWorkload.build` lowers the groups scheme-aware: strided
groups become ``GatherLoad``/``GatherStore`` chunks of the scheme's
gather factor when the design has stride hardware, and plain per-element
``Load``/``Store`` ops otherwise (stride-less schemes cannot lower
strided stores at all -- the memory system rejects them by design).
Groups round-robin across cores, so multi-core interleaving is
deterministic in the group order.

Invariants every generator keeps (the differential oracle relies on
them):

* at most two arrays (the runner's address space holds four regions:
  two tables plus their insert shadows);
* read and write footprints are disjoint, so the expected bytes of every
  read are the functional memory's reference pattern regardless of how
  cores interleave;
* element addresses are ``elem``-aligned and sit at a record-relative
  offset inside the array.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..cpu.isa import encode
from ..cpu.ops import GatherLoad, GatherStore, Load, MemOp, Store
from .base import Workload, WorkloadBuild
from .tables import TableSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..core.scheme import AccessScheme, Placement
    from ..imdb.schema import Table
    from ..sim.config import SystemConfig

#: one access group: (kind, array, ((record, offset), ...), elem, strided)
Group = Tuple[str, str, Tuple[Tuple[int, int], ...], int, bool]

#: records per generated group (the unit of core round-robin; strided
#: groups are re-chunked to the scheme's gather factor at build time)
_GROUP_RECORDS = 32


@dataclass(frozen=True)
class KernelProgram:
    """A fully expanded kernel: its arrays and its access groups."""

    arrays: Tuple[TableSpec, ...]
    groups: Tuple[Group, ...]

    @property
    def reads(self) -> int:
        return sum(len(g[2]) for g in self.groups if g[0] == "read")

    @property
    def writes(self) -> int:
        return sum(len(g[2]) for g in self.groups if g[0] == "write")


@dataclass(frozen=True)
class KernelDef:
    """Registry entry: defaults plus the generator function."""

    name: str
    defaults: Tuple[Tuple[str, int], ...]
    generate: Callable[[Dict[str, int], int], KernelProgram]
    doc: str = ""


def _chunks(seq, size):
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def _store_bytes(addr: int, size: int) -> bytes:
    """Deterministic payload a kernel stores at ``addr``.

    Kernels never read their write footprints back (the generator
    invariant that makes :meth:`KernelWorkload.expected_result`
    order-independent), so any address-derived pattern works -- it only
    has to be reproducible so the oracle's functional memory and the
    simulated datapath agree.
    """
    return hashlib.blake2b(
        addr.to_bytes(8, "little"), digest_size=size, salt=b"store"
    ).digest()


def _validate_strided(p: Dict[str, int]) -> int:
    """Common stride/elem validation; returns fields per record."""
    stride, elem = p["stride"], p["elem"]
    if elem not in (1, 2, 4, 8):
        raise ValueError(f"element width {elem} not in (1, 2, 4, 8)")
    if stride < elem or stride % elem:
        raise ValueError(
            f"stride {stride} must be a multiple of element width {elem}"
        )
    if p["n"] <= 0:
        raise ValueError("kernel footprint n must be positive")
    return stride // elem


def _array(name: str, n_fields: int, n_records: int, seed: int,
           field_bytes: int = 8) -> TableSpec:
    return TableSpec(name, n_fields, n_records, seed,
                     field_bytes=field_bytes)


def _linear_groups(kind: str, array: str, n: int, elem: int,
                   strided: bool) -> Iterator[Group]:
    """Groups over records 0..n, element at offset 0 of each record."""
    records = list(range(n))
    for chunk in _chunks(records, _GROUP_RECORDS):
        yield (kind, array, tuple((r, 0) for r in chunk), elem, strided)


def _row_group(kind: str, array: str, record: int, n_fields: int,
               elem: int) -> Group:
    """One contiguous row: every field of one record."""
    return (kind, array,
            tuple((record, elem * f) for f in range(n_fields)), elem,
            False)


# --------------------------------------------------------------- generators

def _gen_stream(mode: str):
    def generate(p: Dict[str, int], seed: int) -> KernelProgram:
        p = dict(p, stride=p["elem"])
        _validate_strided(p)
        n, elem = p["n"], p["elem"]
        arrays = [_array("A", 1, n, seed, field_bytes=elem)]
        groups: List[Group] = []
        if mode == "copy":
            arrays.append(_array("B", 1, n, seed + 1, field_bytes=elem))
            for chunk in _chunks(list(range(n)), _GROUP_RECORDS):
                elems = tuple((r, 0) for r in chunk)
                groups.append(("read", "A", elems, elem, False))
                groups.append(("write", "B", elems, elem, False))
        else:
            kind = "read" if mode == "read" else "write"
            groups.extend(_linear_groups(kind, "A", n, elem, False))
        return KernelProgram(tuple(arrays), tuple(groups))

    return generate


def _gen_strided(mode: str):
    def generate(p: Dict[str, int], seed: int) -> KernelProgram:
        n_fields = _validate_strided(p)
        n, elem = p["n"], p["elem"]
        strided = p["stride"] > elem
        arrays = [_array("A", n_fields, n, seed, field_bytes=elem)]
        groups: List[Group] = []
        if mode == "copy":
            arrays.append(
                _array("B", n_fields, n, seed + 1, field_bytes=elem)
            )
            for chunk in _chunks(list(range(n)), _GROUP_RECORDS):
                elems = tuple((r, 0) for r in chunk)
                groups.append(("read", "A", elems, elem, strided))
                groups.append(("write", "B", elems, elem, strided))
        else:
            kind = "read" if mode == "read" else "write"
            groups.extend(_linear_groups(kind, "A", n, elem, strided))
        return KernelProgram(tuple(arrays), tuple(groups))

    return generate


def _gen_mxv(p: Dict[str, int], seed: int) -> KernelProgram:
    """y = A.x by column sweep: every column of the row-major matrix is
    a strided gather of ``n`` elements at pitch ``n * 8`` -- the access
    pattern SAM's stride mode was built for."""
    n = p["n"]
    if n <= 0:
        raise ValueError("mxv needs a positive dimension n")
    matrix = _array("A", n, n, seed)
    # x occupies records [0, n), y records [n, 2n) of one vector array
    # (kernels keep to two arrays so the runner's four address-space
    # regions suffice)
    vec = _array("v", 1, 2 * n, seed + 1)
    groups: List[Group] = []
    for j in range(n):
        groups.append(("read", "v", ((j, 0),), 8, False))
        for chunk in _chunks(list(range(n)), _GROUP_RECORDS):
            groups.append(
                ("read", "A", tuple((r, 8 * j) for r in chunk), 8, True)
            )
    for chunk in _chunks(list(range(n, 2 * n)), _GROUP_RECORDS):
        groups.append(("write", "v", tuple((r, 0) for r in chunk), 8,
                       False))
    return KernelProgram((matrix, vec), tuple(groups))


def _gen_jacobi2d(p: Dict[str, int], seed: int) -> KernelProgram:
    """5-point stencil over a row-major grid: the neighbour rows are
    contiguous reads, so the kernel is unit-stride end to end -- SAM's
    stride hardware has nothing to accelerate here."""
    n, iters = p["n"], p["iters"]
    if n < 3 or iters <= 0:
        raise ValueError("jacobi2d needs n >= 3 and iters >= 1")
    a = _array("A", n, n, seed)
    b = _array("B", n, n, seed + 1)
    groups: List[Group] = []
    for _ in range(iters):
        for i in range(1, n - 1):
            for row in (i - 1, i, i + 1):
                groups.append(_row_group("read", "A", row, n, 8))
            groups.append(
                ("write", "B", tuple((i, 8 * j) for j in range(1, n - 1)),
                 8, False)
            )
    return KernelProgram((a, b), tuple(groups))


def _gen_doitgen(p: Dict[str, int], seed: int) -> KernelProgram:
    """PolyBench doitgen's inner product: stream one row of the tensor
    slice, gather one column of the C4 coefficient matrix (pitch
    ``n * 8``) -- a half-streaming, half-strided mix."""
    n = p["n"]
    if n <= 0:
        raise ValueError("doitgen needs a positive dimension n")
    a = _array("A", n, n, seed)
    c4 = _array("C4", n, n, seed + 1)
    groups: List[Group] = []
    for r in range(n):
        groups.append(_row_group("read", "A", r, n, 8))
        for chunk in _chunks(list(range(n)), _GROUP_RECORDS):
            groups.append(
                ("read", "C4", tuple((k, 8 * (r % n)) for k in chunk), 8,
                 True)
            )
    return KernelProgram((a, c4), tuple(groups))


KERNELS: Dict[str, KernelDef] = {
    "stream_read": KernelDef(
        "stream_read", (("n", 4096), ("elem", 8)), _gen_stream("read"),
        "unit-stride read of n elements"),
    "stream_write": KernelDef(
        "stream_write", (("n", 4096), ("elem", 8)), _gen_stream("write"),
        "unit-stride write of n elements"),
    "stream_copy": KernelDef(
        "stream_copy", (("n", 4096), ("elem", 8)), _gen_stream("copy"),
        "unit-stride copy of n elements"),
    "strided_read": KernelDef(
        "strided_read", (("n", 512), ("stride", 512), ("elem", 8)),
        _gen_strided("read"),
        "gather n elements at parametric byte stride"),
    "strided_write": KernelDef(
        "strided_write", (("n", 512), ("stride", 512), ("elem", 8)),
        _gen_strided("write"),
        "scatter n elements at parametric byte stride"),
    "strided_copy": KernelDef(
        "strided_copy", (("n", 512), ("stride", 512), ("elem", 8)),
        _gen_strided("copy"),
        "gather + scatter n elements at parametric byte stride"),
    "mxv": KernelDef(
        "mxv", (("n", 32),), _gen_mxv,
        "matrix-vector product by strided column sweep"),
    "jacobi2d": KernelDef(
        "jacobi2d", (("n", 24), ("iters", 1)), _gen_jacobi2d,
        "5-point stencil (unit stride; SAM-neutral by design)"),
    "doitgen": KernelDef(
        "doitgen", (("n", 24),), _gen_doitgen,
        "tensor contraction: streamed rows x strided coefficient columns"),
}


def available_kernels() -> Tuple[str, ...]:
    return tuple(sorted(KERNELS))


@lru_cache(maxsize=256)
def _expand(kernel: str, params: Tuple[Tuple[str, int], ...],
            seed: int) -> KernelProgram:
    return KERNELS[kernel].generate(dict(params), seed)


@dataclass(frozen=True)
class KernelWorkload(Workload):
    """One parameterized micro-kernel from the generator registry.

    Identity is ``(kernel, params, seed)``: equal triples expand to the
    same arrays, the same access groups, the same op streams under any
    given scheme, and the same digest.  ``params`` is canonicalized
    (sorted, defaults filled in) at construction, so two spellings of
    the same kernel alias to one cache entry.
    """

    kernel: str
    params: Tuple[Tuple[str, int], ...] = ()
    seed: int = 0

    kind = "kernel"

    def __post_init__(self) -> None:
        definition = KERNELS.get(self.kernel)
        if definition is None:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; have "
                f"{available_kernels()}"
            )
        defaults = dict(definition.defaults)
        resolved = dict(defaults)
        for key, value in dict(self.params).items():
            if key not in defaults:
                raise ValueError(
                    f"kernel {self.kernel!r} knows no parameter {key!r} "
                    f"(have {sorted(defaults)})"
                )
            resolved[key] = int(value)
        object.__setattr__(
            self, "params", tuple(sorted(resolved.items()))
        )
        # expand eagerly so invalid parameter *values* (stride not a
        # multiple of the element width, non-positive footprints, ...)
        # fail at construction, not at first build; the expansion is
        # memoized, so sweeps pay nothing extra
        self.program()

    # ------------------------------------------------------------- identity

    @property
    def name(self) -> str:
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kernel}[{inner}]"

    @property
    def digest(self) -> str:
        payload = {
            "family": "kernel",
            "kernel": self.kernel,
            "params": [list(p) for p in self.params],
            "seed": self.seed,
        }
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "KernelWorkload":
        """Parse ``"strided_read[n=512,stride=256]"`` (or a bare kernel
        name, which takes every default)."""
        spec = spec.strip()
        if "[" not in spec:
            return cls(kernel=spec, seed=seed)
        kernel, _, rest = spec.partition("[")
        body = rest.rstrip()
        if not body.endswith("]"):
            raise ValueError(f"malformed kernel spec {spec!r}")
        body = body[:-1]
        params = []
        for pair in filter(None, (s.strip() for s in body.split(","))):
            key, sep, value = pair.partition("=")
            if not sep or not key or not value:
                raise ValueError(
                    f"malformed kernel parameter {pair!r} in {spec!r}"
                )
            params.append((key.strip(), int(value)))
        return cls(kernel=kernel.strip(), params=tuple(params), seed=seed)

    # ------------------------------------------------------------ expansion

    def program(self) -> KernelProgram:
        return _expand(self.kernel, self.params, self.seed)

    @property
    def table_specs(self) -> Tuple[TableSpec, ...]:
        return self.program().arrays

    def accesses(
        self, placements: "Dict[str, Placement]"
    ) -> Iterator[Tuple[str, int, int]]:
        """Program-order element accesses as ``(kind, addr, size)``.

        This is the generator's own view of the kernel -- independent of
        how :meth:`build` chunks, partitions or encodes the ops -- and is
        what the kernel oracle diffs the lowered streams against.
        """
        for kind, array, elems, elem, _strided in self.program().groups:
            placement = placements[array]
            for record, offset in elems:
                yield kind, placement.addr_of(record, offset), elem

    def expected_result(self, placements: "Dict[str, Placement]") -> str:
        """The expected-bytes model: a digest over every read element's
        functional-memory content, in program order.

        Generators keep read and write footprints disjoint, so each
        read's bytes are the deterministic reference pattern no matter
        how per-core streams interleave in the simulator -- the digest is
        well-defined for the placed addresses of any scheme.
        """
        from ..check.oracle import FunctionalMemory

        memory = FunctionalMemory()
        h = hashlib.blake2b(digest_size=16)
        for kind, addr, size in self.accesses(placements):
            if kind == "read":
                h.update(memory.read(addr, size))
            else:
                memory.write(addr, _store_bytes(addr, size))
        return f"kernel:{h.hexdigest()}"

    # ------------------------------------------------------------- lowering

    def build(
        self,
        scheme: "AccessScheme",
        config: "SystemConfig",
        tables: "Dict[str, Table]",
        placements: "Dict[str, Placement]",
        cost: Optional[object] = None,
    ) -> WorkloadBuild:
        program = self.program()
        ops_per_core: List[List[MemOp]] = [
            [] for _ in range(config.cores)
        ]
        g = scheme.gather_factor
        for index, (kind, array, elems, elem, strided) in enumerate(
            program.groups
        ):
            placement = placements[array]
            addrs = [placement.addr_of(r, off) for r, off in elems]
            ops: List[MemOp] = []
            if strided and scheme.supports_stride:
                op_cls = GatherLoad if kind == "read" else GatherStore
                for chunk in _chunks(addrs, g):
                    ops.append(op_cls(chunk))
            else:
                # stride-less designs take per-element demand accesses
                # (the memory system refuses to lower strided stores for
                # them, by design)
                op_cls = Load if kind == "read" else Store
                ops.extend(op_cls(addr, elem) for addr in addrs)
            ops_per_core[index % config.cores].extend(ops)
        return WorkloadBuild(
            ops_per_core=ops_per_core,
            result=self.expected_result(placements),
            selected_records=program.reads,
        )

    def check_build(self, validator, build: WorkloadBuild,
                    placements: "Dict[str, Placement]") -> None:
        """Route the ``--check`` pass to the kernel oracle."""
        from ..check.oracle import KernelOracle

        KernelOracle(
            registry=getattr(validator, "registry", None),
            strict=getattr(validator, "strict", True),
        ).check_build(self, validator.scheme, build, placements)


def encode_stream(ops: "List[MemOp]") -> List[int]:
    """Encode a core's gather ops as 64-bit sload/sstore words.

    The register field carries the gather-group size (how many elements
    the stride burst covers); the address field carries the group's
    leading element.  Plain loads/stores have no stride-ISA form and are
    skipped.  Round-tripping through :func:`repro.cpu.isa.decode` is the
    decode path a real frontend would exercise.
    """
    words = []
    for op in ops:
        if isinstance(op, GatherLoad):
            words.append(
                encode("sload", len(op.element_addrs),
                       op.element_addrs[0])
            )
        elif isinstance(op, GatherStore):
            words.append(
                encode("sstore", len(op.element_addrs),
                       op.element_addrs[0])
            )
    return words
