"""The workload IR: what the simulator runs, described as data.

A :class:`Workload` is everything :func:`repro.sim.runner.run_workload`
needs to drive one simulation, independent of *what kind* of work it is:

* a stable ``name`` (labels, sweep keys, artifacts),
* a content ``digest`` (two workloads with the same digest produce the
  same op streams and expected result -- the result cache keys on it),
* ``table_specs`` describing the memory footprint as
  :class:`~repro.workloads.tables.TableSpec` recipes (the runner places
  them through the scheme exactly like relational tables), and
* ``build()``, which lowers the workload into per-core streams of
  :mod:`repro.cpu.ops` memory operations over the sload/sstore ISA plus
  an expected-result model the differential oracle can check.

Two families implement it: :class:`~repro.workloads.query.QueryWorkload`
wraps the relational ``repro.imdb`` path behavior-identically, and
:class:`~repro.workloads.kernels.KernelWorkload` generates parameterized
micro-kernels (stream / strided / PolyBench-style).  Workloads are frozen
dataclasses: hashable, picklable to sweep workers, and digestible.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .tables import TableSpec, build_tables

if TYPE_CHECKING:  # pragma: no cover
    from ..core.scheme import AccessScheme, Placement
    from ..cpu.ops import MemOp
    from ..imdb.schema import Table
    from ..sim.config import SystemConfig


@dataclass
class WorkloadBuild:
    """What lowering a workload produces: per-core op streams, the
    ground-truth/expected result, and (for query workloads) the physical
    plan the oracle diffs footprints against."""

    ops_per_core: "List[List[MemOp]]"
    result: object
    selected_records: int = 0
    plan: Optional[object] = None

    @property
    def total_ops(self) -> int:
        return sum(len(ops) for ops in self.ops_per_core)


class Workload(abc.ABC):
    """One simulatable unit of work (see module docstring)."""

    #: executor family: ``"query"`` or ``"kernel"`` (matches the sweep
    #: point kinds in :mod:`repro.exp.spec`)
    kind: str = ""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Stable human-readable identity (sweep keys, artifact names)."""

    @property
    @abc.abstractmethod
    def digest(self) -> str:
        """Content digest: equal digests => equal op streams + result."""

    @property
    @abc.abstractmethod
    def table_specs(self) -> Tuple[TableSpec, ...]:
        """Memory-footprint recipes the runner places and allocates."""

    def materialize(self) -> "Dict[str, Table]":
        """Build the tables this workload runs against."""
        specs = self.table_specs
        if not specs:
            raise ValueError(
                f"workload {self.name!r} carries no table specs; pass "
                f"pre-materialized tables to run_workload instead"
            )
        return build_tables(specs)

    @abc.abstractmethod
    def build(
        self,
        scheme: "AccessScheme",
        config: "SystemConfig",
        tables: "Dict[str, Table]",
        placements: "Dict[str, Placement]",
        cost: Optional[object] = None,
    ) -> WorkloadBuild:
        """Lower into per-core op streams + the expected-result model."""

    def check_build(self, validator, build: WorkloadBuild,
                    placements: "Dict[str, Placement]") -> None:
        """Hook for the ``--check`` oracle pass over a finished build.

        The base implementation diffs lowered gathers against the
        physical plan when one exists (the query path); kernel workloads
        override this with the generator's expected-access model.
        """
        if build.plan is not None:
            validator.check_lowered_ops(
                build.plan, build.ops_per_core, placements
            )
