"""Workload IR: everything the simulator can run, unified as data.

``repro.workloads`` is the layer between "what to measure" and "how to
simulate it".  A :class:`Workload` names itself, digests its content,
describes its memory footprint as :class:`TableSpec` recipes and lowers
itself into per-core op streams over the sload/sstore ISA -- so the
runner (:func:`repro.sim.runner.run_workload`), the sweep engine
(:class:`repro.exp.SweepPoint` carries a workload), the result cache
(keyed on the workload digest) and the check oracles all speak one
vocabulary regardless of whether the work is a relational query
(:class:`QueryWorkload`) or a generated micro-kernel
(:class:`KernelWorkload`, backed by the :data:`KERNELS` registry).

The table helpers (``make_tables``, ``standard_tables``, ``geomean``)
live here too: they describe workload inputs, not harness plumbing.
"""

from .base import Workload, WorkloadBuild
from .kernels import (
    KERNELS,
    KernelDef,
    KernelProgram,
    KernelWorkload,
    available_kernels,
    encode_stream,
)
from .query import QueryWorkload
from .tables import (
    DEFAULT_TA_RECORDS,
    DEFAULT_TB_RECORDS,
    TableSpec,
    build_tables,
    geomean,
    make_tables,
    standard_tables,
)

__all__ = [
    "DEFAULT_TA_RECORDS",
    "DEFAULT_TB_RECORDS",
    "KERNELS",
    "KernelDef",
    "KernelProgram",
    "KernelWorkload",
    "QueryWorkload",
    "TableSpec",
    "Workload",
    "WorkloadBuild",
    "available_kernels",
    "build_tables",
    "encode_stream",
    "geomean",
    "make_tables",
    "standard_tables",
]
