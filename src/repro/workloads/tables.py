"""Table recipes and benchmark workload construction (Section 6.1).

The paper loads 10M records per table; a pure-Python cycle-level simulator
cannot stream that in reasonable time, so the harness defaults to a few
thousand records.  The workloads are stationary streaming scans -- per-
record cost converges after a few hundred records -- so relative numbers
are stable in table size (EXPERIMENTS.md records the sensitivity check).

:class:`TableSpec` is the hashable *recipe* form used by sweep points and
workloads: table data is a pure function of ``(schema, n_records, seed)``,
so worker processes rebuild tables locally and specs stay tiny.  Kernel
workloads reuse the same recipe to describe flat arrays -- an array of
``n`` records of ``stride`` bytes is just a table whose record pitch is
the stride.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..imdb.schema import FIELD_BYTES, TA, TB, Table, TableSchema

#: Default table sizes for the harness (records).
DEFAULT_TA_RECORDS = 2048
DEFAULT_TB_RECORDS = 4096


@dataclass(frozen=True)
class TableSpec:
    """Recipe for one synthetic table (data is deterministic in these)."""

    name: str
    n_fields: int
    n_records: int
    seed: int
    field_bytes: int = FIELD_BYTES

    def __post_init__(self) -> None:
        if self.n_records <= 0 or self.n_fields <= 0:
            raise ValueError("table spec needs records and fields")

    @property
    def schema(self) -> TableSchema:
        return TableSchema(self.name, self.n_fields, self.field_bytes)

    def build(self) -> Table:
        """Materialize the table (same bytes on every call)."""
        return Table(self.schema, self.n_records, seed=self.seed)


def standard_tables(
    n_ta: int, n_tb: int, seed: int = 42
) -> Tuple[TableSpec, TableSpec]:
    """The benchmark's Ta (128 fields) / Tb (16 fields) pair, matching
    :func:`make_tables`."""
    return (
        TableSpec("Ta", 128, n_ta, seed),
        TableSpec("Tb", 16, n_tb, seed + 1),
    )


def build_tables(specs: Tuple[TableSpec, ...]) -> Dict[str, Table]:
    """Materialize every table of a point, keyed by table name."""
    return {spec.name: spec.build() for spec in specs}


def make_tables(
    n_ta: int = DEFAULT_TA_RECORDS,
    n_tb: int = DEFAULT_TB_RECORDS,
    seed: int = 42,
) -> Dict[str, Table]:
    """Fresh Ta/Tb tables (fresh per run: updates mutate them)."""
    return {
        "Ta": Table(TA, n_ta, seed=seed),
        "Tb": Table(TB, n_tb, seed=seed + 1),
    }


def geomean(values) -> float:
    """Geometric mean (the paper's cross-query summary statistic)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of nothing")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geomean needs positive values, got {v}")
        product *= v
    return product ** (1.0 / len(values))
