"""The relational workload family: one ``repro.imdb`` query as a Workload.

``QueryWorkload`` is a behavior-identical wrapper around the existing
planner/lowering path -- :meth:`build` delegates straight to
:class:`~repro.imdb.executor.QueryExecutor`, so a query run through the
workload layer produces exactly the op streams, plan and ground-truth
result the pre-IR ``run_query`` produced.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from .base import Workload, WorkloadBuild
from .tables import TableSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..core.scheme import AccessScheme, Placement
    from ..imdb.query import Query
    from ..imdb.schema import Table
    from ..sim.config import SystemConfig


@dataclass(frozen=True)
class QueryWorkload(Workload):
    """One relational query over table recipes.

    ``tables`` may stay empty when the caller hands pre-materialized
    tables to ``run_workload`` directly (the ``run_query`` compatibility
    path); sweep points must carry the recipes so worker processes can
    rebuild them.
    """

    query: "Query"
    tables: Tuple[TableSpec, ...] = ()

    kind = "query"

    @property
    def name(self) -> str:
        return self.query.name

    @property
    def table_specs(self) -> Tuple[TableSpec, ...]:
        return self.tables

    @property
    def digest(self) -> str:
        from ..obs.artifacts import to_jsonable

        payload = {
            "family": "query",
            # the query's concrete type matters (two kinds could share
            # field names)
            "query_type": type(self.query).__name__,
            "query": to_jsonable(self.query),
            "tables": to_jsonable(self.tables),
        }
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def build(
        self,
        scheme: "AccessScheme",
        config: "SystemConfig",
        tables: "Dict[str, Table]",
        placements: "Dict[str, Placement]",
        cost: Optional[object] = None,
    ) -> WorkloadBuild:
        from ..imdb.executor import QueryExecutor

        executor = QueryExecutor(scheme, config, tables, placements, cost)
        output = executor.build(self.query)
        return WorkloadBuild(
            ops_per_core=output.ops_per_core,
            result=output.result,
            selected_records=output.selected_records,
            plan=output.plan,
        )
