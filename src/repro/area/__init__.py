"""Area and storage overhead models (wiring tracks + peripheral logic)."""

from .overhead import (
    AreaReport,
    all_designs,
    gs_dram_area,
    gs_dram_ecc_area,
    rc_nvm_bit_area,
    rc_nvm_wd_area,
    sam_en_area,
    sam_io_area,
    sam_sub_area,
    software_two_copy_area,
)
from .wiring import TrackBudget, sam_sub_global_bitlines, wire_overhead

__all__ = [
    "AreaReport",
    "all_designs",
    "gs_dram_area",
    "gs_dram_ecc_area",
    "rc_nvm_bit_area",
    "rc_nvm_wd_area",
    "sam_en_area",
    "sam_io_area",
    "sam_sub_area",
    "software_two_copy_area",
    "TrackBudget",
    "sam_sub_global_bitlines",
    "wire_overhead",
]
