"""Metal-layer wiring-track area model (Section 6.1).

DRAM array area along one dimension is proportional to the number of
routing tracks a metal layer must carry across a subarray.  The paper
counts, for the baseline subarray of 512 rows:

* 128 M2 tracks for global wordlines,
* 12 M2 tracks for 4 differential LDLs and 4 local wordline-select lines.

SAM-sub's row-wise global bitlines add 8 M2 tracks (4 differential pairs),
giving 8 / 140 = 5.7% area growth; its per-column-subarray control lines
ride M3 and add 0.7%.  RC-NVM's duplicated peripheral circuit and the
reshaped (square) subarray are modelled as track-count multipliers from the
RC-NVM paper's own reporting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TrackBudget:
    """Routing tracks crossing one subarray in one metal layer."""

    global_wordlines: int = 128
    ldl_tracks: int = 8  # 4 differential local data lines
    wlsel_tracks: int = 4  # 4 local wordline-select lines

    @property
    def baseline(self) -> int:
        return self.global_wordlines + self.ldl_tracks + self.wlsel_tracks


def wire_overhead(extra_tracks: int, budget: TrackBudget | None = None) -> float:
    """Fractional area growth from ``extra_tracks`` additional M2 tracks."""
    budget = budget or TrackBudget()
    if extra_tracks < 0:
        raise ValueError("extra tracks cannot be negative")
    return extra_tracks / budget.baseline


def sam_sub_global_bitlines(budget: TrackBudget | None = None) -> float:
    """4 differential row-wise global BLs -> 8 M2 tracks (~5.7%)."""
    return wire_overhead(8, budget)


#: Control lines for column-wise subarrays, routed in M3 (one per
#: column-wise subarray over the bank): the paper reports 0.7%.
CONTROL_LINE_M3_OVERHEAD = 0.007
