"""Per-design area and storage overheads (Figure 14(c), Section 6.1).

Two sources are combined:

* wiring -- extra routing tracks (:mod:`repro.area.wiring`),
* peripheral logic -- extra global sense amps, decoders, registers,
  serializers, priced against a CACTI-3DD-style die model (a 32 nm 8 Gb
  die of ~17.6 mm^2 array area, per the paper's 0.14 mm^2 == 0.8%
  global-SA figure).

Storage overhead is separate from silicon: GS-DRAM-ecc embeds ECC in data
pages (1/8 of capacity), and the software two-copy approach doubles it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .wiring import CONTROL_LINE_M3_OVERHEAD, sam_sub_global_bitlines

#: Die area implied by the paper's calibration: 0.14 mm^2 of global sense
#: amps equals 0.8% of the die.
DIE_AREA_MM2 = 0.14 / 0.008

#: CACTI-3DD-derived logic blocks (mm^2, 32 nm).
GLOBAL_SA_MM2 = 0.14
COLUMN_DECODER_MM2 = 0.002
MODE_REGISTER_MM2 = 0.0002
EXTRA_SERIALIZERS_MM2 = 0.001


@dataclass(frozen=True)
class AreaReport:
    """Silicon and storage overhead of one design."""

    design: str
    wiring_fraction: float
    logic_fraction: float
    extra_metal_layers: int
    storage_fraction: float = 0.0

    @property
    def silicon_fraction(self) -> float:
        return self.wiring_fraction + self.logic_fraction


def _logic_fraction(mm2: float) -> float:
    return mm2 / DIE_AREA_MM2


def sam_sub_area() -> AreaReport:
    """SAM-sub: global BLs (5.7%) + M3 control (0.7%) + global SAs (0.8%)
    + simplified column decoder (<0.01%) -- ~7.2% total."""
    wiring = sam_sub_global_bitlines() + CONTROL_LINE_M3_OVERHEAD
    logic = _logic_fraction(GLOBAL_SA_MM2 + COLUMN_DECODER_MM2)
    return AreaReport("SAM-sub", wiring, logic, extra_metal_layers=0)


def sam_io_area() -> AreaReport:
    """SAM-IO: only the 7-bit I/O mode register (<0.01%)."""
    return AreaReport(
        "SAM-IO", 0.0, _logic_fraction(MODE_REGISTER_MM2), extra_metal_layers=0
    )


def sam_en_area() -> AreaReport:
    """SAM-en: M3 control lines (0.7%) + mode register + second serializer
    set (both negligible)."""
    logic = _logic_fraction(MODE_REGISTER_MM2 + EXTRA_SERIALIZERS_MM2)
    return AreaReport(
        "SAM-en", CONTROL_LINE_M3_OVERHEAD, logic, extra_metal_layers=0
    )


def rc_nvm_bit_area() -> AreaReport:
    """RC-NVM (bit-level symmetry): duplicated peripherals, ~15% silicon
    and two extra metal layers (Section 3.3.2)."""
    return AreaReport("RC-NVM-bit", 0.10, 0.05, extra_metal_layers=2)


def rc_nvm_wd_area() -> AreaReport:
    """RC-NVM with the reshaped square subarray: more global BLs push the
    overhead to ~33%, still two extra metal layers."""
    return AreaReport("RC-NVM-wd", 0.28, 0.05, extra_metal_layers=2)


def gs_dram_area() -> AreaReport:
    """GS-DRAM: chip-level shift + address translation logic; tiny."""
    return AreaReport("GS-DRAM", 0.0, 0.002, extra_metal_layers=0)


def gs_dram_ecc_area() -> AreaReport:
    """GS-DRAM with embedded ECC: same silicon, 12.5% storage overhead
    (8B of ECC per 64B line stored in the data pages)."""
    return AreaReport(
        "GS-DRAM-ecc", 0.0, 0.002, extra_metal_layers=0, storage_fraction=0.125
    )


def software_two_copy_area() -> AreaReport:
    """The naive software approach: a second, column-wise copy (Section 1)."""
    return AreaReport(
        "two-copy", 0.0, 0.0, extra_metal_layers=0, storage_fraction=1.0
    )


def all_designs() -> Dict[str, AreaReport]:
    """Area/storage reports for every design of Figure 14(c)."""
    reports = [
        rc_nvm_bit_area(),
        rc_nvm_wd_area(),
        gs_dram_area(),
        gs_dram_ecc_area(),
        sam_sub_area(),
        sam_io_area(),
        sam_en_area(),
        software_two_copy_area(),
    ]
    return {r.design: r for r in reports}
