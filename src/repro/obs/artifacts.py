"""Machine-readable run artifacts.

Every simulation can leave a paper trail: a JSON *run manifest* (scheme,
query, system configuration, git revision, wall-clock, all metrics, the
span tree) plus an optional JSONL command trace.  Artifacts land in a
directory chosen by the caller (``--artifacts DIR`` on the CLI) so that
benchmark sweeps and future regression tooling can diff runs instead of
scraping ASCII tables.

The serializer is deliberately forgiving: dataclasses, enums, mappings,
sequences and objects exposing ``to_dict``/``payload`` all become plain
JSON; anything else falls back to ``repr`` rather than raising mid-run.

Manifest schema history:

* v1 -- initial layout (scheme/query identity, config, metrics, spans,
  ``created_unix`` wall-clock).
* v2 -- added ``created``, the same instant as ``created_unix`` rendered
  as an ISO-8601 UTC timestamp, so humans and log pipelines need no
  epoch conversion.
"""

from __future__ import annotations

import enum
import json
import subprocess
import time
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.results import RunResult
    from ..sim.trace import CommandTracer
    from .timeline import TimelineRecorder

#: bump when the manifest layout changes incompatibly.
#: v2: ``created`` (ISO-8601 UTC) added next to ``created_unix``.
MANIFEST_SCHEMA_VERSION = 2

_git_describe_cache: dict = {}


def to_jsonable(obj: object) -> object:
    """Recursively convert ``obj`` into JSON-serializable builtins."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return obj.value
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name)) for f in fields(obj)
        }
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    for attr in ("to_dict", "payload", "as_dict"):
        method = getattr(obj, attr, None)
        if callable(method):
            return to_jsonable(method())
    return repr(obj)


def iso_utc(unix: Optional[float] = None) -> str:
    """ISO-8601 UTC timestamp (second precision) for ``unix`` / now."""
    if unix is None:
        unix = time.time()
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(unix))


def git_describe(root: Optional[Path] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the repo, None outside git."""
    root = root or Path(__file__).resolve().parents[3]
    key = str(root)
    if key not in _git_describe_cache:
        try:
            out = subprocess.run(
                ["git", "describe", "--always", "--dirty"],
                cwd=root, capture_output=True, text=True, timeout=5,
            )
            _git_describe_cache[key] = (
                out.stdout.strip() if out.returncode == 0 else None
            )
        except (OSError, subprocess.SubprocessError):
            _git_describe_cache[key] = None
    return _git_describe_cache[key]


def _slug(text: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "-_." else "-" for ch in text
    ) or "unnamed"


def build_run_manifest(result: "RunResult",
                       extra: Optional[Mapping] = None) -> dict:
    """The JSON payload describing one ``run_query`` outcome."""
    spans = result.spans
    wall_s = spans.wall_s if spans is not None else None
    created_unix = time.time()
    manifest = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": "run",
        "scheme": result.scheme,
        "query": result.query,
        "created_unix": created_unix,
        "created": iso_utc(created_unix),
        "git": git_describe(),
        "wall_s": wall_s,
        "cycles": result.cycles,
        "ns": result.ns,
        "bus_utilization": result.bus_utilization,
        "selected_records": result.selected_records,
        "result": to_jsonable(result.result),
        "plan": (to_jsonable(result.plan.to_dict())
                 if result.plan is not None else None),
        "config": to_jsonable(result.config),
        "core_stats": to_jsonable(result.core_stats),
        "memory_stats": to_jsonable(result.memory_stats),
        "power": to_jsonable(result.power),
        "metrics": to_jsonable(result.metrics),
        "spans": spans.to_dict() if spans is not None else None,
    }
    if extra:
        manifest.update(to_jsonable(extra))
    return manifest


class ArtifactWriter:
    """Writes JSON / JSONL artifacts into one directory."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.written: list = []

    def write_json(self, name: str, payload: object) -> Path:
        path = self.directory / name
        with open(path, "w") as fh:
            json.dump(to_jsonable(payload), fh, indent=2, sort_keys=True)
            fh.write("\n")
        self.written.append(path)
        return path

    def write_run(self, result: "RunResult",
                  tracer: "Optional[CommandTracer]" = None,
                  timeline: "Optional[TimelineRecorder]" = None,
                  extra: Optional[Mapping] = None) -> Path:
        """Write the run manifest (and the trace / timeline exports,
        when they were recorded)."""
        stem = f"run-{_slug(result.scheme)}-{_slug(result.query)}"
        path = self.write_json(f"{stem}.json", build_run_manifest(
            result, extra=extra
        ))
        if tracer is not None and tracer.events:
            self.write_trace(tracer, f"{stem}.trace.jsonl")
        if timeline is not None:
            self.write_timeline(timeline, stem)
        return path

    def write_trace(self, tracer: "CommandTracer", name: str) -> Path:
        path = self.directory / name
        tracer.export_jsonl(path)
        self.written.append(path)
        return path

    def write_timeline(self, timeline: "TimelineRecorder",
                       stem: str) -> Path:
        """Write the Chrome trace-event JSON (Perfetto-loadable) plus the
        per-command JSONL next to it; returns the trace-event path."""
        path = self.write_json(
            f"{stem}.timeline.json", timeline.to_chrome_trace()
        )
        jsonl = self.directory / f"{stem}.timeline.jsonl"
        timeline.export_jsonl(jsonl)
        self.written.append(jsonl)
        return path
