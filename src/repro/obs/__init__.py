"""Unified observability layer.

One :class:`Observation` bundles everything a run can record:

* a :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  fixed-bucket histograms) -- cheap enough to stay on by default and the
  single source the power model and harnesses read from,
* a :class:`~repro.obs.spans.SpanProfiler` tagging the run's phases,
* an always-on ring buffer of the last issued DRAM commands (stall
  forensics), optionally upgraded to a full
  :class:`~repro.sim.trace.CommandTracer`,
* an always-on :class:`~repro.obs.stalls.StallAttributor` accounting
  every core cycle to busy / a stall-taxonomy reason,
* an optional :class:`~repro.obs.timeline.TimelineRecorder` capturing
  the full command/row/bus/refresh timeline for Perfetto export,
* an optional artifacts directory where the run manifest (and trace /
  timeline exports) are written as JSON / JSONL.

``run_query(..., observe=Observation(...))`` threads the bundle through
the stack; calling ``run_query`` with no observation still gets default
metrics, spans and the stall ring.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import List, Optional, Tuple

from .artifacts import (
    MANIFEST_SCHEMA_VERSION,
    ArtifactWriter,
    build_run_manifest,
    git_describe,
    to_jsonable,
)
from .diagnostics import (
    RECENT_EVENTS,
    SimulationStallError,
    StallReport,
    build_stall_report,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import Span, SpanProfiler
from .stalls import (
    STALL_REASONS,
    StallAttributor,
    merge_breakdown,
    render_stall_report,
)
from .timeline import (
    TIMELINE_SCHEMA_VERSION,
    TimelineRecorder,
    validate_chrome_trace,
)

__all__ = [
    "ArtifactWriter",
    "Counter",
    "Gauge",
    "Histogram",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "Observation",
    "RECENT_EVENTS",
    "STALL_REASONS",
    "SimulationStallError",
    "Span",
    "SpanProfiler",
    "StallAttributor",
    "StallReport",
    "TIMELINE_SCHEMA_VERSION",
    "TimelineRecorder",
    "build_run_manifest",
    "build_stall_report",
    "git_describe",
    "merge_breakdown",
    "render_stall_report",
    "to_jsonable",
    "validate_chrome_trace",
]


class Observation:
    """Instrumentation bundle for one ``run_query`` invocation."""

    def __init__(
        self,
        trace: bool = False,
        keep_trace_events: bool = True,
        artifacts_dir: "Optional[str | Path]" = None,
        ring_size: int = RECENT_EVENTS,
        timeline: bool = False,
    ) -> None:
        self.registry = MetricsRegistry()
        self.profiler = SpanProfiler()
        #: request a full CommandTracer (the runner attaches it)
        self.trace = trace
        self.keep_trace_events = keep_trace_events
        self.tracer = None  # set by the runner when trace=True
        #: request a TimelineRecorder (the runner attaches it); off by
        #: default so the controller's guarded hooks stay no-ops
        self.timeline = timeline
        self.timeline_recorder = None  # set by the runner when timeline=True
        #: always-on cycle accounting: controller waits + per-core
        #: busy/blocked intervals -> the per-run stall breakdown
        self.stalls = StallAttributor()
        self.artifacts_dir = artifacts_dir
        #: last-N issued commands, always on, for stall forensics
        self.ring: "deque[Tuple[int, str, int, int, int]]" = deque(
            maxlen=ring_size
        )
        #: manifest path once artifacts were written
        self.manifest_path: Optional[Path] = None

    # The hot-path command observer: one tuple append per issued DRAM
    # command (commands are orders of magnitude rarer than kernel events).
    def observe_command(self, cycle, command, request) -> None:
        if request is not None:
            self.ring.append((
                cycle, command.value, request.addr.rank,
                request.addr.bank, request.addr.row,
            ))
        else:
            self.ring.append((cycle, command.value, -1, -1, -1))

    def recent_events(self, n: int = RECENT_EVENTS) -> List[Tuple]:
        """Last-``n`` commands, preferring the full tracer when attached."""
        if self.tracer is not None and self.tracer.events:
            return [
                (e.cycle, e.command, e.rank, e.bank, e.row)
                for e in self.tracer.events[-n:]
            ]
        return list(self.ring)[-n:]
