"""Unified observability layer.

One :class:`Observation` bundles everything a run can record:

* a :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  fixed-bucket histograms) -- cheap enough to stay on by default and the
  single source the power model and harnesses read from,
* a :class:`~repro.obs.spans.SpanProfiler` tagging the run's phases,
* an always-on ring buffer of the last issued DRAM commands (stall
  forensics), optionally upgraded to a full
  :class:`~repro.sim.trace.CommandTracer`,
* an optional artifacts directory where the run manifest (and trace)
  are written as JSON / JSONL.

``run_query(..., observe=Observation(...))`` threads the bundle through
the stack; calling ``run_query`` with no observation still gets default
metrics, spans and the stall ring.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import List, Optional, Tuple

from .artifacts import (
    MANIFEST_SCHEMA_VERSION,
    ArtifactWriter,
    build_run_manifest,
    git_describe,
    to_jsonable,
)
from .diagnostics import (
    RECENT_EVENTS,
    SimulationStallError,
    StallReport,
    build_stall_report,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import Span, SpanProfiler

__all__ = [
    "ArtifactWriter",
    "Counter",
    "Gauge",
    "Histogram",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "Observation",
    "RECENT_EVENTS",
    "SimulationStallError",
    "Span",
    "SpanProfiler",
    "StallReport",
    "build_run_manifest",
    "build_stall_report",
    "git_describe",
    "to_jsonable",
]


class Observation:
    """Instrumentation bundle for one ``run_query`` invocation."""

    def __init__(
        self,
        trace: bool = False,
        keep_trace_events: bool = True,
        artifacts_dir: "Optional[str | Path]" = None,
        ring_size: int = RECENT_EVENTS,
    ) -> None:
        self.registry = MetricsRegistry()
        self.profiler = SpanProfiler()
        #: request a full CommandTracer (the runner attaches it)
        self.trace = trace
        self.keep_trace_events = keep_trace_events
        self.tracer = None  # set by the runner when trace=True
        self.artifacts_dir = artifacts_dir
        #: last-N issued commands, always on, for stall forensics
        self.ring: "deque[Tuple[int, str, int, int, int]]" = deque(
            maxlen=ring_size
        )
        #: manifest path once artifacts were written
        self.manifest_path: Optional[Path] = None

    # The hot-path command observer: one tuple append per issued DRAM
    # command (commands are orders of magnitude rarer than kernel events).
    def observe_command(self, cycle, command, request) -> None:
        if request is not None:
            self.ring.append((
                cycle, command.value, request.addr.rank,
                request.addr.bank, request.addr.row,
            ))
        else:
            self.ring.append((cycle, command.value, -1, -1, -1))

    def recent_events(self, n: int = RECENT_EVENTS) -> List[Tuple]:
        """Last-``n`` commands, preferring the full tracer when attached."""
        if self.tracer is not None and self.tracer.events:
            return [
                (e.cycle, e.command, e.rank, e.bank, e.row)
                for e in self.tracer.events[-n:]
            ]
        return list(self.ring)[-n:]
