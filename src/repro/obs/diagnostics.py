"""Stall diagnostics: evidence-carrying failures for wedged simulations.

When a run dies -- cores never finish, the memory system fails to drain,
or the event safety valve trips -- a bare one-line error discards all the
state that explains *why*.  :func:`build_stall_report` snapshots the
machine at the moment of death (per-bank open-row and timing state,
controller queue occupancies, MSHR and writeback backlogs, per-core
progress, the last-N issued commands) and :class:`SimulationStallError`
carries that report to the caller, rendered into the exception message
and available structurally as ``exc.report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernel import SimulationError

#: how many trailing trace events a report keeps
RECENT_EVENTS = 64


@dataclass
class StallReport:
    """Snapshot of a simulation at the moment it was declared stuck."""

    reason: str
    cycle: int
    scheme: str = ""
    query: str = ""
    pending_kernel_events: int = 0
    cores: List[Dict[str, object]] = field(default_factory=list)
    read_queue: int = 0
    read_queue_capacity: int = 0
    write_queue: int = 0
    write_queue_capacity: int = 0
    oldest_requests: List[Dict[str, object]] = field(default_factory=list)
    mshr_lines: int = 0
    pending_writebacks: int = 0
    outstanding_writes: int = 0
    banks: List[Dict[str, object]] = field(default_factory=list)
    recent_events: List[Tuple] = field(default_factory=list)

    @property
    def unfinished_cores(self) -> List[int]:
        return [c["core_id"] for c in self.cores if not c.get("finished")]

    def render(self) -> str:
        lines = [
            f"stall at cycle {self.cycle}"
            + (f" ({self.scheme}/{self.query})" if self.scheme else ""),
            f"reason: {self.reason}",
            f"kernel: {self.pending_kernel_events} events still queued",
            f"queues: read {self.read_queue}/{self.read_queue_capacity}, "
            f"write {self.write_queue}/{self.write_queue_capacity}, "
            f"MSHR {self.mshr_lines} lines, "
            f"{self.pending_writebacks} pending writebacks, "
            f"{self.outstanding_writes} outstanding writes",
        ]
        for core in self.cores:
            lines.append(
                "core {core_id}: pc {pc}/{ops}, {inflight} in flight, "
                "{state}".format(
                    state="finished" if core.get("finished") else "STALLED",
                    **{k: core[k]
                       for k in ("core_id", "pc", "ops", "inflight")},
                )
            )
        if self.oldest_requests:
            lines.append("oldest queued requests:")
            for req in self.oldest_requests:
                lines.append(
                    "  {type} rank{rank}/bank{bank} row {row} "
                    "(queued at {arrival})".format(**req)
                )
        open_banks = [b for b in self.banks if b["open_row"] is not None]
        if open_banks:
            lines.append("open banks:")
            for b in open_banks:
                lines.append(
                    "  rank{rank}/bank{bank}: row {open_row} "
                    "(next act/rd/wr/pre = {next_act}/{next_read}/"
                    "{next_write}/{next_pre})".format(**b)
                )
        else:
            lines.append("open banks: none (all precharged)")
        if self.recent_events:
            lines.append(f"last {len(self.recent_events)} commands:")
            for cycle, cmd, rank, bank, row in self.recent_events:
                lines.append(
                    f"  t={cycle} {cmd} rank{rank}/bank{bank} row {row}"
                )
        else:
            lines.append("no command trace captured")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        from .artifacts import to_jsonable

        return to_jsonable(
            {f: getattr(self, f) for f in (
                "reason", "cycle", "scheme", "query",
                "pending_kernel_events", "cores", "read_queue",
                "read_queue_capacity", "write_queue",
                "write_queue_capacity", "oldest_requests", "mshr_lines",
                "pending_writebacks", "outstanding_writes", "banks",
                "recent_events",
            )}
        )


class SimulationStallError(SimulationError):
    """A simulation stalled; ``report`` holds the full diagnostics."""

    def __init__(self, report: StallReport) -> None:
        super().__init__(report.render())
        self.report = report


def _bank_snapshot(rank_id: int, bank_id: int, bank) -> Dict[str, object]:
    open_row = bank.open_row
    return {
        "rank": rank_id,
        "bank": bank_id,
        "open_row": (
            None if open_row is None
            else f"{open_row[0].value}:{open_row[1]}"
        ),
        "next_act": bank.next_act,
        "next_read": bank.next_read,
        "next_write": bank.next_write,
        "next_pre": bank.next_pre,
        "activations": bank.activations,
        "row_hits": bank.row_hits,
        "row_conflicts": bank.row_conflicts,
    }


def build_stall_report(
    reason: str,
    kernel,
    system,
    cores: Sequence = (),
    scheme: str = "",
    query: str = "",
    recent_events: Optional[Sequence[Tuple]] = None,
) -> StallReport:
    """Snapshot kernel/system/core state into a :class:`StallReport`.

    Works on the live objects of :mod:`repro.sim`; all access is
    duck-typed so this module stays import-cycle-free.
    """
    controller = system.controller
    cfg = controller.config
    oldest = []
    for request in (controller.read_queue + controller.write_queue)[:8]:
        oldest.append({
            "type": request.type.value,
            "rank": request.addr.rank,
            "bank": request.addr.bank,
            "row": request.addr.row,
            "arrival": request.arrival,
        })
    banks = [
        _bank_snapshot(rank_id, bank_id, bank)
        for rank_id, rank in enumerate(controller.channel.ranks)
        for bank_id, bank in enumerate(rank.banks)
    ]
    events = list(recent_events or [])[-RECENT_EVENTS:]
    state = system.debug_state()
    return StallReport(
        reason=reason,
        cycle=kernel.now,
        scheme=scheme,
        query=query,
        pending_kernel_events=kernel.pending(),
        cores=[core.debug_state() for core in cores],
        read_queue=state["read_queue"],
        read_queue_capacity=cfg.read_queue_capacity,
        write_queue=state["write_queue"],
        write_queue_capacity=cfg.write_queue_capacity,
        oldest_requests=oldest,
        mshr_lines=state["mshr_lines"],
        pending_writebacks=state["pending_writebacks"],
        outstanding_writes=state["outstanding_writes"],
        banks=banks,
        recent_events=events,
    )
