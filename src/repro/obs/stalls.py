"""Cycle-accounting stall attribution.

Every simulated core cycle between ``run()`` and the core's last
completion is classified into exactly one bucket, so that per-core

    busy + attributed stalls == finish_cycle - start_cycle

holds *by construction* (the conservation is enforced by a tier-1 test,
not merely reported).  Three cooperating pieces feed the accounting:

* :class:`CoreStallLog` -- each core records its own busy intervals
  (issue bandwidth + compute) and blocked intervals (MLP slots
  exhausted, controller queue backpressure) as it executes.  Intervals
  are coalesced on append, so a million-op stream costs a handful of
  tuples, not a tuple per op.
* :class:`StallLedger` -- the memory controller annotates every
  scheduling *wait* (it woke up, could not issue, and went back to
  sleep until cycle T) with the timing constraint that blocked it:
  tRCD / tRP / tRAS waits, tFAW-or-tRRD activation throttling, CCD or
  data/command-bus conflicts, write-queue drains, refresh blackouts and
  SAM's tMOD_IO mode switches.  Cycles where the controller *issued* a
  command leave no ledger entry and therefore classify as
  ``dram_service`` (the memory system was making progress).
* :class:`StallAttributor` -- owns one ledger plus one log per core and
  overlays the ledger onto each core's memory-blocked windows to
  produce the per-core reason breakdown.

The reason names are plain strings; :mod:`repro.dram.controller` imports
only these constants (this module imports nothing from the rest of the
package, so no cycle forms).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

# ---------------------------------------------------------------------------
# Reason taxonomy
# ---------------------------------------------------------------------------

#: core was issuing ops or executing compute (not a stall)
BUSY = "busy"
#: controller queue rejected the core's request (backpressure retry)
QUEUE_FULL = "queue_full"
#: ACT issued, waiting out tRCD before the column command
TRCD = "trcd"
#: bank precharging, waiting out tRP before the next ACT
TRP = "trp"
#: row must stay open (tRAS) / column path recovery (tRTP, tWR) before PRE
TRAS = "tras"
#: activation pacing: tFAW window or tRRD spacing
TFAW = "tfaw"
#: CAS-to-CAS (tCCD) or command/data-bus occupancy conflict
CCD_BUS = "ccd_bus"
#: reads held back while the write queue drains (incl. tWTR turnaround)
WRITE_DRAIN = "write_drain"
#: refresh blackout (tRFC) or refresh-driven precharging
REFRESH = "refresh"
#: SAM I/O mode switch: MRS issue plus the tMOD_IO stall
MODE_SWITCH = "mode_switch"
#: the controller was actively issuing / data was in flight on the bus
DRAM_SERVICE = "dram_service"
#: subarray-level conflict under SALP: shared row-logic tRA pacing,
#: SA_SEL designation switch, or waiting on another subarray's state
SUBARRAY = "subarray"

#: every bucket a breakdown may contain, in report order
STALL_REASONS = (
    BUSY, DRAM_SERVICE, TRCD, TRP, TRAS, TFAW, CCD_BUS, WRITE_DRAIN,
    REFRESH, MODE_SWITCH, SUBARRAY, QUEUE_FULL,
)

#: block kinds a core records (QUEUE_FULL passes through; MEM_WAIT is
#: sub-attributed against the controller ledger)
MEM_WAIT = "mem"


class CoreStallLog:
    """Busy / blocked interval recorder for one core.

    The core calls :meth:`note_busy` when it schedules a catch-up to its
    local issue clock, :meth:`open_block` when an op handler could not
    make progress, and :meth:`close_block` on re-entry.  Appends coalesce
    with the previous interval when contiguous.
    """

    __slots__ = ("core_id", "busy", "blocks", "_open_start", "_open_reason")

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self.busy: List[List[int]] = []  # [start, end]
        self.blocks: List[List[object]] = []  # [start, end, reason]
        self._open_start: Optional[int] = None
        self._open_reason: str = MEM_WAIT

    def note_busy(self, start: int, end: int) -> None:
        if end <= start:
            return
        if self.busy and self.busy[-1][1] >= start:
            if end > self.busy[-1][1]:
                self.busy[-1][1] = end
            return
        self.busy.append([start, end])

    def open_block(self, now: int, reason: str) -> None:
        if self._open_start is None:
            self._open_start = now
            self._open_reason = reason

    def close_block(self, now: int) -> None:
        start = self._open_start
        if start is None:
            return
        self._open_start = None
        if now <= start:
            return
        blocks = self.blocks
        if (blocks and blocks[-1][1] == start
                and blocks[-1][2] == self._open_reason):
            blocks[-1][1] = now
        else:
            blocks.append([start, now, self._open_reason])

    @property
    def busy_cycles(self) -> int:
        return sum(end - start for start, end in self.busy)


class StallLedger:
    """Time-ordered, non-overlapping controller wait intervals.

    The controller appends in simulation-time order; a newly submitted
    request can wake the controller *inside* a previously recorded wait,
    in which case the stale tail is truncated (the earlier wait ended the
    moment the controller re-evaluated).
    """

    __slots__ = ("entries", "_starts")

    def __init__(self) -> None:
        self.entries: List[List[object]] = []  # [start, end, reason]
        #: entry start times, maintained in lockstep with ``entries`` so
        #: :meth:`overlay` can bisect without rebuilding the index
        #: (rebuilding made each overlay O(n), i.e. attribution quadratic)
        self._starts: List[int] = []

    def note(self, start: int, end: int, reason: str) -> None:
        if end <= start:
            return
        entries = self.entries
        starts = self._starts
        while entries and entries[-1][0] >= start:
            entries.pop()
            starts.pop()
        if entries and entries[-1][1] > start:
            entries[-1][1] = start
        if entries and entries[-1][1] == start and entries[-1][2] == reason:
            entries[-1][1] = end
            return
        entries.append([start, end, reason])
        starts.append(start)

    def overlay(self, start: int, end: int) -> Dict[str, int]:
        """Partition ``[start, end)`` into reason -> cycles.  Gaps (the
        controller was issuing, idle, or data was in flight) count as
        ``dram_service``."""
        out: Dict[str, int] = {}
        if end <= start:
            return out
        covered = 0
        entries = self.entries
        i = bisect_right(self._starts, start) - 1
        if i < 0:
            i = 0
        for entry in entries[i:]:
            e_start, e_end, reason = entry
            if e_start >= end:
                break
            lo = max(start, e_start)
            hi = min(end, e_end)
            if hi > lo:
                out[reason] = out.get(reason, 0) + (hi - lo)
                covered += hi - lo
        gap = (end - start) - covered
        if gap:
            out[DRAM_SERVICE] = out.get(DRAM_SERVICE, 0) + gap
        return out

    def overlay_windows(
        self, windows: List[Tuple[int, int]], out: Dict[str, int]
    ) -> None:
        """Accumulate ``overlay`` results for many windows into ``out``.

        ``windows`` must be disjoint and time-ordered (a core's blocked
        intervals are, by construction), which lets one monotone walk of
        the ledger serve every window: O(entries + windows) per core
        instead of a bisect-plus-rescan per window.
        """
        entries = self.entries
        n = len(entries)
        i = 0
        total_gap = 0
        for start, end in windows:
            if end <= start:
                continue
            while i < n and entries[i][1] <= start:
                i += 1
            covered = 0
            j = i
            while j < n:
                e_start, e_end, reason = entries[j]
                if e_start >= end:
                    break
                lo = start if e_start < start else e_start
                hi = end if e_end > end else e_end
                if hi > lo:
                    out[reason] = out.get(reason, 0) + (hi - lo)
                    covered += hi - lo
                if e_end > end:
                    # entry straddles this window's end; it may also
                    # overlap the next window, so leave the cursor on it
                    break
                j += 1
            i = j
            total_gap += (end - start) - covered
        if total_gap:
            out[DRAM_SERVICE] = out.get(DRAM_SERVICE, 0) + total_gap


class StallAttributor:
    """One ledger + one log per core; produces the per-core breakdown."""

    def __init__(self) -> None:
        self.ledger = StallLedger()
        self.core_logs: Dict[int, CoreStallLog] = {}

    def core_log(self, core_id: int) -> CoreStallLog:
        log = self.core_logs.get(core_id)
        if log is None:
            log = CoreStallLog(core_id)
            self.core_logs[core_id] = log
        return log

    def attribute(self, cores) -> Dict[int, Dict[str, int]]:
        """Per-core ``{reason: cycles}``; includes ``total`` (the core's
        start->finish window) so conservation is checkable downstream."""
        out: Dict[int, Dict[str, int]] = {}
        for core in cores:
            log = self.core_logs.get(core.core_id)
            finish = (core.finish_cycle if core.finish_cycle is not None
                      else core.start_cycle)
            total = max(0, finish - core.start_cycle)
            breakdown: Dict[str, int] = {BUSY: 0}
            if log is not None:
                log.close_block(finish)  # a core may end mid-block
                breakdown[BUSY] = log.busy_cycles
                mem_windows: List[Tuple[int, int]] = []
                for start, end, reason in log.blocks:
                    if reason == MEM_WAIT:
                        mem_windows.append((start, end))
                    else:
                        breakdown[reason] = (
                            breakdown.get(reason, 0) + (end - start)
                        )
                if mem_windows:
                    # one monotone sweep of the ledger per core instead
                    # of a bisect + rescan per blocked interval
                    self.ledger.overlay_windows(mem_windows, breakdown)
            accounted = sum(breakdown.values())
            if accounted != total:
                # by-construction this should be zero; surfaced (never
                # silently absorbed) so the conservation test can bite
                breakdown["unaccounted"] = total - accounted
            breakdown["total"] = total
            out[core.core_id] = breakdown
        return out


def merge_breakdown(
    per_core: Dict[int, Dict[str, int]]
) -> Dict[str, int]:
    """Sum the per-core breakdowns into one machine-wide dict."""
    merged: Dict[str, int] = {}
    for breakdown in per_core.values():
        for reason, cycles in breakdown.items():
            merged[reason] = merged.get(reason, 0) + cycles
    return merged


def render_stall_report(per_core: Dict[int, Dict[str, int]]) -> str:
    """Top-down text table: one row per reason, one column per core."""
    if not per_core:
        return "(no cores)"
    cores = sorted(per_core)
    reasons = [r for r in STALL_REASONS
               if any(per_core[c].get(r) for c in cores)]
    extra = sorted(
        {r for c in cores for r in per_core[c]}
        - set(reasons) - {"total"}
    )
    reasons += extra
    merged = merge_breakdown(per_core)
    grand_total = sum(per_core[c].get("total", 0) for c in cores) or 1
    header = "reason".ljust(14) + "".join(
        f"core{c}".rjust(12) for c in cores
    ) + "total".rjust(12) + "share".rjust(8)
    lines = [header]
    for reason in reasons:
        row = reason.ljust(14)
        for c in cores:
            row += f"{per_core[c].get(reason, 0):12d}"
        total = merged.get(reason, 0)
        row += f"{total:12d}{total / grand_total:8.1%}"
        lines.append(row)
    row = "total".ljust(14)
    for c in cores:
        row += f"{per_core[c].get('total', 0):12d}"
    row += f"{grand_total:12d}{'':8}"
    lines.append(row)
    return "\n".join(lines)
