"""Phase-span profiler: nested time spans over a simulation run.

A :class:`SpanProfiler` tags the phases of a run (allocate -> build ->
execute -> flush/drain) with nested :class:`Span` records.  Every span
carries *two* clocks:

* host wall-time (``perf_counter``), which is what the allocate/build
  phases consume, and
* the simulated kernel clock in memory cycles (via the profiler's
  ``clock`` callable), which is what the execute/drain phases consume.

Synthetic spans can be attached after the fact (per-core activity and
per-bank busy windows are only known once the run finishes) with
:meth:`SpanProfiler.add`.  :meth:`SpanProfiler.render` prints a
flamegraph-style indented text summary; :meth:`Span.to_dict` feeds the
JSON run manifest.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One named interval, possibly with children."""

    name: str
    start_cycle: int = 0
    end_cycle: Optional[int] = None
    wall_start: Optional[float] = None
    wall_end: Optional[float] = None
    meta: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        if self.end_cycle is None:
            return 0
        return max(0, self.end_cycle - self.start_cycle)

    @property
    def wall_s(self) -> float:
        if self.wall_start is None or self.wall_end is None:
            return 0.0
        return max(0.0, self.wall_end - self.wall_start)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "cycles": self.cycles,
            "wall_s": self.wall_s,
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class SpanProfiler:
    """Builds a span tree; also usable as plain begin/end bracket pairs."""

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        #: returns the current simulated time; swap in ``kernel.now`` once
        #: a kernel exists (spans opened earlier read cycle 0).
        self.clock: Callable[[], int] = clock or (lambda: 0)
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # ------------------------------------------------------------ recording

    def begin(self, name: str, **meta: object) -> Span:
        span = Span(
            name,
            start_cycle=self.clock(),
            wall_start=time.perf_counter(),
            meta=meta,
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Optional[Span] = None) -> None:
        if not self._stack:
            raise RuntimeError("no open span to end")
        top = self._stack.pop()
        if span is not None and span is not top:
            raise RuntimeError(
                f"span nesting error: closing {span.name!r} "
                f"but {top.name!r} is open"
            )
        top.end_cycle = self.clock()
        top.wall_end = time.perf_counter()

    @contextmanager
    def span(self, name: str, **meta: object) -> Iterator[Span]:
        opened = self.begin(name, **meta)
        try:
            yield opened
        finally:
            self.end(opened)

    def add(
        self,
        parent: Optional[Span],
        name: str,
        start_cycle: int,
        end_cycle: int,
        **meta: object,
    ) -> Span:
        """Attach a synthetic (cycles-only) span, e.g. a per-bank busy
        window reconstructed after the run."""
        span = Span(name, start_cycle=start_cycle, end_cycle=end_cycle,
                    meta=meta)
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        return span

    # ------------------------------------------------------------- reading

    @property
    def root(self) -> Optional[Span]:
        return self.roots[0] if self.roots else None

    def to_dict(self) -> List[Dict[str, object]]:
        return [r.to_dict() for r in self.roots]

    def render(self, width: int = 32) -> str:
        """Flamegraph-style text: indentation is depth, bar length is the
        span's share of its root (wall time when known, cycles for
        synthetic spans)."""
        if not self.roots:
            return "(no spans)"
        lines = [
            f"{'span'.ljust(34)} {'share'.ljust(width)}"
            f" {'wall':>9} {'cycles':>12}"
        ]

        def frac_of(span: Span, root: Span) -> float:
            if span.wall_start is not None and root.wall_s > 0:
                return span.wall_s / root.wall_s
            if root.cycles > 0:
                return span.cycles / root.cycles
            return 0.0

        def visit(span: Span, root: Span, depth: int) -> None:
            frac = min(1.0, frac_of(span, root))
            bar = "#" * int(round(frac * width))
            label = ("  " * depth + span.name)[:34]
            wall = f"{span.wall_s * 1e3:8.1f}ms" if span.wall_start \
                else " " * 10
            lines.append(
                f"{label.ljust(34)} {bar.ljust(width)}"
                f" {wall:>9} {span.cycles:>12}"
            )
            for child in span.children:
                visit(child, root, depth + 1)

        for root in self.roots:
            visit(root, root, 0)
        return "\n".join(lines)
