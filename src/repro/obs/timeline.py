"""Cycle-level timeline recording and Chrome trace-event export.

A :class:`TimelineRecorder` attaches to one memory controller (plus its
channel) and turns the run into *lanes* a human can scrub through in
Perfetto / ``chrome://tracing``:

* every issued command as a timestamped instant event on its bank lane
  (rank / bank / sub-rank spelled out),
* bank **row-open lifetimes** as spans (ACT -> PRE, including the
  refresh-path and closed-page implicit precharges the plain command
  observer never sees),
* **data-bus occupancy** spans per pin group (full-width vs sub-rank
  lanes),
* **refresh blackouts** (REF -> +tRFC) and **mode-switch windows**
  (MRS -> +tMOD_IO) on the rank lanes,
* **read/write queue depth** samples as counter tracks, and
* per-core busy / stall spans contributed by the runner from the
  :mod:`repro.obs.stalls` logs.

Recording is strictly opt-in: the controller's ``timeline`` hook is
``None`` by default and every call site is guarded, so full-speed runs
pay nothing.  Exports: :meth:`to_chrome_trace` (the Chrome trace-event
JSON Perfetto loads), :meth:`export_jsonl` (one event object per line,
next to the :class:`~repro.sim.trace.CommandTracer` output) and
:meth:`report` (terminal per-bank utilization / row-hit-rate tables).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: bump when the exported trace layout changes incompatibly
TIMELINE_SCHEMA_VERSION = 1

#: Chrome trace-event process ids, one per lane family
_PID_CORES = 1
_PID_BANKS = 2
_PID_BUS = 3
_PID_RANKS = 4


class TimelineRecorder:
    """Records one run's command-level timeline (opt-in, guarded hooks)."""

    def __init__(self, controller) -> None:
        self.controller = controller
        self.timing = controller.timing
        #: instant command events: (cycle, cmd, rank, bank, row, subrank)
        self.events: List[Tuple[int, str, int, int, int, Optional[int]]] = []
        #: closed row-open spans: (rank, bank, start, end, kind, row)
        self.row_spans: List[Tuple[int, int, int, int, str, int]] = []
        self._open_rows: Dict[Tuple[int, int], Tuple[int, str, int]] = {}
        #: data-bus bursts: (lane, start, end, cmd, rank)
        self.bus_spans: List[Tuple[str, int, int, str, int]] = []
        #: refresh blackouts: (rank, start, end)
        self.refresh_spans: List[Tuple[int, int, int]] = []
        #: I/O mode switches: (rank, start, end, mode)
        self.mode_spans: List[Tuple[int, int, int, str]] = []
        #: queue-depth samples: (cycle, read_depth, write_depth)
        self.queue_samples: List[Tuple[int, int, int]] = []
        #: per-core activity spans: (core, start, end, kind)
        self.core_spans: List[Tuple[int, int, int, str]] = []
        self.end_cycle: int = 0
        self._last_depths: Tuple[int, int] = (-1, -1)
        self._chained_channel_observer = None

    # ----------------------------------------------------------- attaching

    def attach(self) -> "TimelineRecorder":
        """Install on the controller and chain the channel observer."""
        self.controller.timeline = self
        channel = self.controller.channel
        self._chained_channel_observer = channel.observer
        channel.observer = self._observe_burst
        return self

    def detach(self) -> None:
        if self.controller.timeline is self:
            self.controller.timeline = None
        channel = self.controller.channel
        if channel.observer == self._observe_burst:
            channel.observer = self._chained_channel_observer

    # ------------------------------------------------------------ recording

    def on_command(self, cycle, command, request, implicit: bool = False,
                   rank: Optional[int] = None,
                   bank: Optional[int] = None) -> None:
        """Controller hook; mirrors the protocol checker's signature so
        refresh-path precharges and implicit (auto-)precharges are seen."""
        if request is not None:
            rank = request.addr.rank
            bank = request.addr.bank
            row = request.addr.row
            subrank = request.subrank
        else:
            rank = -1 if rank is None else rank
            bank = -1 if bank is None else bank
            row = -1
            subrank = None
        name = command.value
        self.events.append((cycle, name, rank, bank, row, subrank))
        if cycle > self.end_cycle:
            self.end_cycle = cycle

        if name in ("ACT", "ACT_COL"):
            kind, row_index = request.row_id()
            self._open_rows[(rank, bank)] = (cycle, kind.value, row_index)
        elif name == "PRE":
            opened = self._open_rows.pop((rank, bank), None)
            if opened is not None:
                start, kind, row_index = opened
                self.row_spans.append(
                    (rank, bank, start, max(cycle, start), kind, row_index)
                )
        elif name == "REF":
            self.refresh_spans.append(
                (rank, cycle, cycle + self.timing.tRFC)
            )
        elif name == "MRS":
            mode = request.io_mode.value if request is not None else "?"
            self.mode_spans.append(
                (rank, cycle, cycle + self.timing.tMOD_IO, mode)
            )

        depths = (len(self.controller.read_queue),
                  len(self.controller.write_queue))
        if depths != self._last_depths:
            self._last_depths = depths
            self.queue_samples.append((cycle, depths[0], depths[1]))

    def _observe_burst(self, now, cmd, rank, subrank, data_start,
                       data_end) -> None:
        if self._chained_channel_observer is not None:
            self._chained_channel_observer(
                now, cmd, rank, subrank, data_start, data_end
            )
        lane = "bus" if subrank is None else f"bus/sub{subrank}"
        self.bus_spans.append((lane, data_start, data_end, cmd.value, rank))
        if data_end > self.end_cycle:
            self.end_cycle = data_end

    def add_core_span(self, core_id: int, start: int, end: int,
                      kind: str) -> None:
        """Attach a per-core busy/stall span (from the stall logs)."""
        if end > start:
            self.core_spans.append((core_id, start, end, kind))

    def finalize(self, end_cycle: int) -> None:
        """Close any still-open row spans at the end of the run."""
        self.end_cycle = max(self.end_cycle, end_cycle)
        for (rank, bank), (start, kind, row_index) in sorted(
            self._open_rows.items()
        ):
            self.row_spans.append(
                (rank, bank, start, self.end_cycle, kind, row_index)
            )
        self._open_rows.clear()

    # ------------------------------------------------------------ summaries

    def digest(self) -> Dict[str, object]:
        """Small machine-readable summary (sweep points carry this in
        their metrics instead of the full event list)."""
        return {
            "schema_version": TIMELINE_SCHEMA_VERSION,
            "events": len(self.events),
            "row_spans": len(self.row_spans),
            "bus_spans": len(self.bus_spans),
            "refresh_spans": len(self.refresh_spans),
            "mode_spans": len(self.mode_spans),
            "queue_samples": len(self.queue_samples),
            "end_cycle": self.end_cycle,
        }

    def bank_table(self) -> List[Dict[str, object]]:
        """Per-bank utilization and row-hit-rate rows."""
        open_cycles: Dict[Tuple[int, int], int] = {}
        for rank, bank, start, end, _kind, _row in self.row_spans:
            key = (rank, bank)
            open_cycles[key] = open_cycles.get(key, 0) + (end - start)
        total = max(1, self.end_cycle)
        rows = []
        for rank_id, rank in enumerate(self.controller.channel.ranks):
            for bank_id, bank in enumerate(rank.banks):
                refs = bank.row_hits + bank.row_misses + bank.row_conflicts
                if not refs and (rank_id, bank_id) not in open_cycles:
                    continue
                opened = open_cycles.get((rank_id, bank_id), 0)
                rows.append({
                    "rank": rank_id,
                    "bank": bank_id,
                    "activations": bank.activations,
                    "open_cycles": opened,
                    "open_fraction": opened / total,
                    "row_hits": bank.row_hits,
                    "row_misses": bank.row_misses,
                    "row_conflicts": bank.row_conflicts,
                    "hit_rate": bank.row_hits / refs if refs else 0.0,
                })
        return rows

    def bus_busy_cycles(self) -> Dict[str, int]:
        """Busy cycles per bus lane (sub-rank lanes overlap in time)."""
        busy: Dict[str, int] = {}
        for lane, start, end, _cmd, _rank in self.bus_spans:
            busy[lane] = busy.get(lane, 0) + (end - start)
        return busy

    def report(self) -> str:
        """Terminal tables: per-bank utilization + row hit rates, bus
        lane occupancy, refresh/mode-switch counts."""
        total = max(1, self.end_cycle)
        lines = [
            f"timeline: {len(self.events)} commands over "
            f"{self.end_cycle} cycles "
            f"({self.timing.ns(self.end_cycle) / 1000:.1f} us)",
            "",
            "bank        acts   open%  hits  misses  confl  hit-rate",
        ]
        for row in self.bank_table():
            lines.append(
                f"rank{row['rank']}/bank{row['bank']:<3d}"
                f"{row['activations']:>6d}"
                f"{row['open_fraction']:>8.1%}"
                f"{row['row_hits']:>6d}{row['row_misses']:>8d}"
                f"{row['row_conflicts']:>7d}"
                f"{row['hit_rate']:>10.1%}"
            )
        busy = self.bus_busy_cycles()
        if busy:
            lines.append("")
            for lane in sorted(busy):
                lines.append(
                    f"{lane:<12s} busy {busy[lane]:>8d} cycles "
                    f"({busy[lane] / total:.1%})"
                )
        if self.refresh_spans or self.mode_spans:
            lines.append("")
            lines.append(
                f"refresh windows: {len(self.refresh_spans)}, "
                f"mode switches: {len(self.mode_spans)}"
            )
        return "\n".join(lines)

    # -------------------------------------------------------------- exports

    def _us(self, cycle: int) -> float:
        """Cycle -> microseconds (the trace-event timestamp unit)."""
        return cycle * self.timing.tck_ns / 1000.0

    def to_chrome_trace(self) -> Dict[str, object]:
        """The Chrome trace-event JSON object (Perfetto-loadable)."""
        us = self._us
        trace_events: List[Dict[str, object]] = []

        def meta(pid: int, name: str, tid: Optional[int] = None,
                 tname: Optional[str] = None) -> None:
            trace_events.append({
                "ph": "M", "pid": pid, "tid": 0,
                "name": "process_name", "args": {"name": name},
            })
            if tid is not None:
                trace_events.append({
                    "ph": "M", "pid": pid, "tid": tid,
                    "name": "thread_name", "args": {"name": tname},
                })

        def span(pid: int, tid: int, name: str, start: int, end: int,
                 **args: object) -> None:
            trace_events.append({
                "ph": "X", "pid": pid, "tid": tid, "name": name,
                "ts": us(start), "dur": us(max(end, start)) - us(start),
                "cat": "sim", "args": args,
            })

        meta(_PID_CORES, "cores")
        meta(_PID_BANKS, "banks")
        meta(_PID_BUS, "data-bus")
        meta(_PID_RANKS, "ranks")

        core_tids = sorted({c for c, _s, _e, _k in self.core_spans})
        for tid in core_tids:
            meta(_PID_CORES, "cores", tid + 1, f"core{tid}")
        for core, start, end, kind in self.core_spans:
            span(_PID_CORES, core + 1, kind, start, end)

        bank_tids: Dict[Tuple[int, int], int] = {}

        def bank_tid(rank: int, bank: int) -> int:
            key = (rank, bank)
            if key not in bank_tids:
                tid = len(bank_tids) + 1
                bank_tids[key] = tid
                meta(_PID_BANKS, "banks", tid, f"rank{rank}/bank{bank}")
            return bank_tids[key]

        for rank, bank, start, end, kind, row_index in self.row_spans:
            span(_PID_BANKS, bank_tid(rank, bank),
                 f"{kind} {row_index} open", start, end,
                 rank=rank, bank=bank, row=row_index, kind=kind)
        for cycle, cmd, rank, bank, row, subrank in self.events:
            event: Dict[str, object] = {
                "ph": "i", "s": "t", "cat": "cmd", "name": cmd,
                "ts": us(cycle),
                "pid": _PID_BANKS if bank >= 0 else _PID_RANKS,
                "tid": bank_tid(rank, bank) if bank >= 0
                else max(0, rank) + 1,
                "args": {"cycle": cycle, "rank": rank, "bank": bank,
                         "row": row},
            }
            if subrank is not None:
                event["args"]["subrank"] = subrank
            trace_events.append(event)

        bus_tids: Dict[str, int] = {}
        for lane, start, end, cmd, rank in self.bus_spans:
            if lane not in bus_tids:
                tid = len(bus_tids) + 1
                bus_tids[lane] = tid
                meta(_PID_BUS, "data-bus", tid, lane)
            span(_PID_BUS, bus_tids[lane], f"{cmd} burst", start, end,
                 rank=rank)

        for rank_id in range(len(self.controller.channel.ranks)):
            meta(_PID_RANKS, "ranks", rank_id + 1, f"rank{rank_id}")
        for rank, start, end in self.refresh_spans:
            span(_PID_RANKS, rank + 1, "refresh (tRFC)", start, end)
        for rank, start, end, mode in self.mode_spans:
            span(_PID_RANKS, rank + 1, f"MRS -> {mode}", start, end,
                 mode=mode)

        for cycle, reads, writes in self.queue_samples:
            trace_events.append({
                "ph": "C", "pid": _PID_RANKS, "tid": 0,
                "name": "queue depth", "ts": us(cycle),
                "args": {"read": reads, "write": writes},
            })

        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": {
                "schema_version": TIMELINE_SCHEMA_VERSION,
                "timing": self.timing.name,
                "tck_ns": self.timing.tck_ns,
                "end_cycle": self.end_cycle,
            },
        }

    def export_jsonl(self, path: "str | Path") -> Path:
        """One command event object per line (the CommandTracer format
        plus the sub-rank lane)."""
        path = Path(path)
        with open(path, "w") as fh:
            for cycle, cmd, rank, bank, row, subrank in self.events:
                fh.write(json.dumps({
                    "cycle": cycle, "command": cmd, "rank": rank,
                    "bank": bank, "row": row, "subrank": subrank,
                }, sort_keys=True))
                fh.write("\n")
        return path


def validate_chrome_trace(payload: object) -> List[str]:
    """Check ``payload`` against the Chrome trace-event schema rules
    Perfetto enforces; returns a list of problems (empty = valid).

    Rules covered: a ``traceEvents`` list of objects; every event has a
    string ``ph``; duration events carry numeric non-negative ``ts`` and
    ``dur`` plus ``pid``/``tid``/``name``; instants carry ``ts`` and a
    valid scope; counters carry numeric ``args``; metadata events name a
    known metadata kind.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"{where}: missing ph")
            continue
        if ph == "M":
            if ev.get("name") not in (
                "process_name", "process_labels", "process_sort_index",
                "thread_name", "thread_sort_index",
            ):
                problems.append(f"{where}: unknown metadata {ev.get('name')!r}")
            continue
        if not isinstance(ev.get("ts"), (int, float)) or ev["ts"] < 0:
            problems.append(f"{where}: bad ts {ev.get('ts')!r}")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: bad pid {ev.get('pid')!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
            if not isinstance(ev.get("name"), str):
                problems.append(f"{where}: X event without a name")
            if not isinstance(ev.get("tid"), int):
                problems.append(f"{where}: bad tid {ev.get('tid')!r}")
        elif ph == "i":
            if ev.get("s", "t") not in ("t", "p", "g"):
                problems.append(f"{where}: bad instant scope {ev.get('s')!r}")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"{where}: counter args must be numeric")
        elif ph not in ("B", "E", "b", "e", "n", "s", "t", "f"):
            problems.append(f"{where}: unsupported ph {ph!r}")
    return problems
