"""Metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per run is the canonical read path for every
number a simulation produces.  The cycle-level hot loops keep accumulating
into their plain dataclass fields (``CommandStats``, ``SystemStats``, the
core counters) because attribute increments are the cheapest thing pure
Python can do; at the end of a run the runner *publishes* those structs
into the registry under stable, namespaced metric names
(``dram.reads``, ``core.hits``, ``sim.cycles`` ...), and everything
downstream -- the power model, the harnesses, the artifact writer -- reads
from the registry rather than from scattered structs.

Histograms use fixed upper bounds chosen at creation time so ``observe``
is a short loop with no allocation; they are cheap enough to leave on by
default (one observation per DRAM column command, not per kernel event).
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram; bucket ``i`` counts values ``<= bounds[i]``,
    with one implicit overflow bucket at the end."""

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.total += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding the
        q-th observation (the last finite bound for the overflow bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.total:
            return 0.0
        rank = q * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return float(
                    self.bounds[min(i, len(self.bounds) - 1)]
                )
        return float(self.bounds[-1])

    def as_dict(self) -> Dict[str, object]:
        buckets = {f"le_{b:g}": c
                   for b, c in zip(self.bounds, self.counts)}
        buckets["overflow"] = self.counts[-1]
        return {
            "type": "histogram",
            "total": self.total,
            "sum": self.sum,
            "mean": self.mean,
            "buckets": buckets,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, n={self.total})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name -> metric store with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------ accessors

    def _get_or_create(self, name: str, kind: type, *args) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float]) -> Histogram:
        return self._get_or_create(name, Histogram, bounds)

    def set_ratio(self, name: str, numerator: float,
                  denominator: float) -> Gauge:
        """Gauge ``name`` set to ``numerator / denominator`` (0 when the
        denominator is 0).  For derived rates like events-per-simulated-
        cycle, where a bare division would need a guard at every call
        site."""
        gauge = self.gauge(name)
        gauge.set(numerator / denominator if denominator else 0.0)
        return gauge

    # -------------------------------------------------------------- reading

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (histograms return their mean)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.mean
        return metric.value

    def as_dict(self) -> Dict[str, object]:
        """Flat snapshot: scalars for counters/gauges, dicts for
        histograms.  This is what lands in run manifests."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.as_dict()
            else:
                out[name] = metric.value
        return out

    # ------------------------------------------------------------ publishing

    def publish_struct(self, prefix: str, struct: object,
                       only: Optional[Iterable[str]] = None) -> None:
        """Publish every numeric field of a stats dataclass (or mapping)
        as ``<prefix>.<field>`` counters."""
        if is_dataclass(struct) and not isinstance(struct, type):
            items = [(f.name, getattr(struct, f.name))
                     for f in fields(struct)]
        elif isinstance(struct, Mapping):
            items = list(struct.items())
        else:
            raise TypeError(f"cannot publish {type(struct).__name__}")
        wanted = set(only) if only is not None else None
        for key, value in items:
            if wanted is not None and key not in wanted:
                continue
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            self.counter(f"{prefix}.{key}").inc(value)

    def render(self) -> str:
        """Aligned ``name  value`` table for terminal output."""
        if not self._metrics:
            return "(no metrics)"
        rows = []
        for name, value in self.as_dict().items():
            if isinstance(value, dict):  # histogram
                rows.append(
                    (name, f"n={value['total']} mean={value['mean']:.1f}")
                )
            elif isinstance(value, float):
                rows.append((name, f"{value:.6g}"))
            else:
                rows.append((name, str(value)))
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name.ljust(width)}  {val}"
                         for name, val in rows)
