"""Query-plan IR: logical operator trees and costed physical plans.

The planning pipeline mirrors a conventional database engine, scaled to
the paper's query subset:

* a :class:`LogicalPlan` is the scheme-independent operator tree built
  straight from a :class:`~repro.imdb.query.Query` (what the query
  *means*);
* a :class:`PhysicalPlan` is the scheme-specific, costed realization the
  :class:`~repro.imdb.planner.Planner` chooses: every operator carries
  its access mode (strided gathers vs plain loads vs whole-record reads),
  the effective gather factor, its sector/line footprints and an
  estimated burst cost -- the quantities behind the paper's Figure 15
  row-vs-column crossover;
* :mod:`repro.imdb.lowering` turns a physical plan into per-core memory
  op streams without re-deriving any of those decisions.

Physical nodes are frozen: a plan can be hashed, pickled into sweep
workers, embedded in run manifests, and diffed by the
:class:`repro.check.PlanValidator` against the ops actually lowered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .query import (
    AggregateQuery,
    InsertQuery,
    JoinQuery,
    Predicate,
    Query,
    SelectQuery,
    UpdateQuery,
)
from .schema import PREDICATE_RANGE, Table


@dataclass(frozen=True)
class CostModel:
    """CPU work per element, in CPU cycles (converted via the config)."""

    predicate_eval: float = 2.0
    project_field: float = 1.0
    aggregate_value: float = 2.0
    materialize_line: float = 4.0
    hash_build: float = 10.0
    hash_probe: float = 12.0
    insert_line: float = 2.0
    #: execution batch: records processed per operator round.  The default
    #: of one gather group matches the paper's executor (predicate and
    #: projection of a record group are adjacent, giving SAM its row-buffer
    #: hits and charging RC-NVM its per-group field switches).  Larger
    #: batches model column-at-a-time vectorized engines.
    batch_records: int = 8


def selected_mask(table: Table,
                  predicate: Optional[Predicate]) -> np.ndarray:
    """Ground-truth selection mask of ``predicate`` over ``table``."""
    if predicate is None:
        return np.ones(table.n_records, dtype=bool)
    mask = np.ones(table.n_records, dtype=bool)
    for conj in predicate.conjuncts:
        column = table.column(conj.field)
        if conj.op == ">":
            threshold = int(PREDICATE_RANGE * (1.0 - conj.selectivity))
            mask &= column > threshold
        elif conj.op == "<":
            threshold = int(PREDICATE_RANGE * conj.selectivity)
            mask &= column < threshold
        else:  # equality: pick a value hitting ~selectivity
            span = max(1, int(PREDICATE_RANGE * conj.selectivity))
            mask &= column < span  # model: matches the rare key set
    return mask


# --------------------------------------------------------------------------
# Logical plan
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class LogicalNode:
    """One scheme-independent operator: what the query asks for."""

    op: str  # scan | filter | project | aggregate | update | insert | join
    table: str = ""
    fields: Optional[Tuple[int, ...]] = None
    predicate: Optional[Predicate] = None
    detail: Tuple[Tuple[str, object], ...] = ()
    children: Tuple["LogicalNode", ...] = ()

    def walk(self) -> Iterator["LogicalNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(frozen=True)
class LogicalPlan:
    """The operator tree of one query, before any scheme is chosen."""

    query: str
    root: LogicalNode

    def walk(self) -> Iterator[LogicalNode]:
        return self.root.walk()

    def explain(self) -> str:
        return "\n".join(_render_tree(self.root, _logical_label))


def logical_plan(query: Query) -> LogicalPlan:
    """Build the logical operator tree for one query."""
    if isinstance(query, SelectQuery):
        node = LogicalNode("scan", query.table)
        if query.predicate is not None:
            node = LogicalNode("filter", query.table,
                               fields=query.predicate.fields,
                               predicate=query.predicate, children=(node,))
        detail = ()
        if query.limit is not None:
            detail = (("limit", query.limit),)
        node = LogicalNode("project", query.table, fields=query.projected,
                           detail=detail, children=(node,))
        return LogicalPlan(query.name, node)
    if isinstance(query, AggregateQuery):
        node = LogicalNode("scan", query.table)
        if query.predicate is not None:
            node = LogicalNode("filter", query.table,
                               fields=query.predicate.fields,
                               predicate=query.predicate, children=(node,))
        node = LogicalNode("aggregate", query.table, fields=query.fields,
                           detail=(("func", query.func),), children=(node,))
        return LogicalPlan(query.name, node)
    if isinstance(query, UpdateQuery):
        node = LogicalNode("scan", query.table)
        node = LogicalNode("filter", query.table,
                           fields=query.predicate.fields,
                           predicate=query.predicate, children=(node,))
        node = LogicalNode(
            "update", query.table,
            fields=tuple(f for f, _v in query.assignments),
            detail=(("assignments", query.assignments),), children=(node,))
        return LogicalPlan(query.name, node)
    if isinstance(query, InsertQuery):
        node = LogicalNode("insert", query.table,
                           detail=(("n_records", query.n_records),))
        return LogicalPlan(query.name, node)
    if isinstance(query, JoinQuery):
        build = LogicalNode("scan", query.build_table)
        build = LogicalNode("hash-build", query.build_table,
                            fields=(query.key_field,), children=(build,))
        probe = LogicalNode("scan", query.probe_table)
        probe = LogicalNode("hash-probe", query.probe_table,
                            fields=(query.key_field,), children=(probe,))
        node = LogicalNode(
            "join", query.probe_table,
            detail=(("key_field", query.key_field),
                    ("extra_compare_field", query.extra_compare_field)),
            children=(build, probe))
        return LogicalPlan(query.name, node)
    raise TypeError(f"unknown query {query!r}")


# --------------------------------------------------------------------------
# Physical plan
# --------------------------------------------------------------------------

#: access modes an operator can run in
MODES = (
    "strided",   # hardware gather bursts (sload/sstore groups)
    "vector",    # full-line vector loads over a contiguous field run
    "spans",     # per-record loads of the line spans covering the fields
    "fields",    # per-record, per-field loads (scattered placement)
    "rows",      # whole-record reads/writes, line by line
    "stores",    # per-record, per-field stores (non-strided update)
)


@dataclass(frozen=True)
class PhysicalNode:
    """One operator of a chosen physical plan.

    The footprints are record-relative byte quantities: a strided
    operator gathers every ``sector_offsets`` entry across each gather
    group; a plain one loads every ``line_spans`` ``(offset, size)`` pair
    per record.  ``est_bursts`` is the planner's total burst estimate for
    the operator (already scaled by records and selectivity).
    """

    op: str
    table: str = ""
    mode: str = ""
    fields: Tuple[int, ...] = ()
    records: int = 0
    gather: int = 1
    sector_offsets: Tuple[int, ...] = ()
    line_spans: Tuple[Tuple[int, int], ...] = ()
    est_bursts: float = 0.0
    selectivity: float = 1.0
    writes: bool = False
    skip_line: Optional[int] = None
    detail: Tuple[Tuple[str, object], ...] = ()
    children: Tuple["PhysicalNode", ...] = ()

    def walk(self) -> Iterator["PhysicalNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, object]:
        return {
            "op": self.op,
            "table": self.table,
            "mode": self.mode,
            "fields": list(self.fields),
            "records": self.records,
            "gather": self.gather,
            "sector_offsets": list(self.sector_offsets),
            "line_spans": [list(s) for s in self.line_spans],
            "est_bursts": self.est_bursts,
            "selectivity": self.selectivity,
            "writes": self.writes,
            "detail": {k: v for k, v in self.detail},
            "children": [c.to_dict() for c in self.children],
        }


@dataclass(frozen=True)
class PhysicalPlan:
    """A costed, scheme-specific plan, ready for op lowering."""

    scheme: str
    query: str
    mode: str  # overall orientation: "row" or "column"
    root: PhysicalNode
    #: operator batch (records per round), aligned to the gather factor --
    #: the single place the batch size is computed (the partitioner and
    #: the gather grouping both honour it)
    batch_records: int = 8
    logical: Optional[LogicalPlan] = field(default=None, compare=False)

    def walk(self) -> Iterator[PhysicalNode]:
        return self.root.walk()

    def node(self, op: str, table: Optional[str] = None
             ) -> Optional[PhysicalNode]:
        """The unique node with operator ``op`` (and ``table``, if given)."""
        for node in self.walk():
            if node.op == op and (table is None or node.table == table):
                return node
        return None

    @property
    def est_bursts(self) -> float:
        """Total estimated data bursts over all operators."""
        return sum(node.est_bursts for node in self.walk())

    def strided_nodes(self) -> List[PhysicalNode]:
        """Operators lowered to hardware gathers (declared footprints)."""
        return [n for n in self.walk() if n.mode == "strided"]

    def to_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "query": self.query,
            "mode": self.mode,
            "batch_records": self.batch_records,
            "est_bursts": self.est_bursts,
            "root": self.root.to_dict(),
        }

    def explain(self) -> str:
        """The operator tree with per-operator mode, cost and footprint."""
        head = (
            f"PhysicalPlan {self.query} on {self.scheme}: mode={self.mode} "
            f"est_bursts={self.est_bursts:.1f} batch={self.batch_records}"
        )
        return "\n".join([head] + _render_tree(self.root, _physical_label))


# --------------------------------------------------------------------------
# rendering helpers
# --------------------------------------------------------------------------

def _fields_label(fields) -> str:
    if fields is None:
        return "*"
    if len(fields) > 6:
        return (",".join(f"f{f}" for f in fields[:5])
                + f",..(+{len(fields) - 5})")
    return ",".join(f"f{f}" for f in fields)


def _logical_label(node: LogicalNode) -> str:
    parts = [node.op.capitalize() if node.op != "hash-build" else "HashBuild"]
    if node.table:
        parts.append(node.table)
    if node.fields is not None or node.op == "project":
        parts.append(f"fields={_fields_label(node.fields)}")
    for key, value in node.detail:
        parts.append(f"{key}={value}")
    return " ".join(parts)


def _physical_label(node: PhysicalNode) -> str:
    parts = [f"{node.op.capitalize():<11s}", node.table]
    if node.op == "scan":
        parts.append(f"({node.records} records)")
        return " ".join(p for p in parts if p)
    if node.fields or node.op == "project":
        parts.append(f"fields={_fields_label(node.fields or None)}")
    attrs = [f"mode={node.mode}"]
    if node.mode == "strided":
        attrs.append(f"g={node.gather}")
        attrs.append(
            "sectors=" + ",".join(str(o) for o in node.sector_offsets)
        )
    elif node.line_spans:
        attrs.append(
            "spans=" + ",".join(f"{o}+{s}" for o, s in node.line_spans[:4])
            + (",..." if len(node.line_spans) > 4 else "")
        )
    if node.selectivity < 1.0:
        attrs.append(f"sel={node.selectivity:.2f}")
    attrs.append(f"est={node.est_bursts:.1f}")
    parts.append("[" + " ".join(attrs) + "]")
    return " ".join(p for p in parts if p)


def _render_tree(root, label) -> List[str]:
    lines: List[str] = []

    def visit(node, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(label(node))
            child_prefix = ""
        else:
            branch = "└─ " if is_last else "├─ "
            lines.append(prefix + branch + label(node))
            child_prefix = prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(node.children):
            visit(child, child_prefix, i == len(node.children) - 1, False)

    visit(root, "", True, True)
    return lines
