"""A small SQL front end for the benchmark's query subset (Table 3).

Covers exactly the statement shapes the paper evaluates:

* ``SELECT f3, f4 FROM Ta WHERE f10 > 7500 [AND f9 < 5000] [LIMIT 1024]``
* ``SELECT * FROM Tb WHERE f10 > 9900``
* ``SELECT SUM(f9) FROM Ta WHERE f10 > 7500``
* ``SELECT AVG(f1), AVG(f2) FROM Ta WHERE f0 < 2500``
* ``UPDATE Tb SET f3 = 7, f4 = 11 WHERE f10 = 3``
* ``INSERT INTO Ta VALUES 1024``  (bulk: N synthetic records)
* ``SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f9 = Tb.f9
  [AND Ta.f1 > Tb.f1]``

Comparison literals are against the synthetic value domain
``[0, PREDICATE_RANGE)`` and are translated into the selectivities the
executor works with (``f10 > 7500`` keeps 25% of records).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .query import (
    AggregateQuery,
    Conjunct,
    InsertQuery,
    JoinQuery,
    Predicate,
    Query,
    SelectQuery,
    UpdateQuery,
)
from .schema import PREDICATE_RANGE


class SQLError(ValueError):
    """The statement is outside the supported subset (or malformed).

    ``pos`` is the character offset of the offending token within the
    original statement (``None`` when no single position applies).
    """

    def __init__(self, message: str, pos: Optional[int] = None) -> None:
        if pos is not None:
            message = f"{message} (at position {pos})"
        super().__init__(message)
        self.pos = pos


#: One lexed token: ``(kind, value, position)``.
Token = Tuple[str, str, int]

_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<name>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)"
    r"|(?P<number>\d+)"
    r"|(?P<string>'[^']*')"
    r"|(?P<op><=|>=|=|<|>)"
    r"|(?P<punct>[(),*])"
    r")"
)

_KEYWORDS = {
    "select", "from", "where", "and", "limit", "update", "set",
    "insert", "into", "values", "sum", "avg",
}


def _tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            rest = text[pos:]
            if rest.strip() == "":
                break
            at = pos + (len(rest) - len(rest.lstrip()))
            if text[at] == "'":
                raise SQLError("unterminated string literal", pos=at)
            raise SQLError(
                f"cannot tokenize near {text[at:at + 12]!r}", pos=at
            )
        pos = match.end()
        kind = match.lastgroup
        assert kind is not None
        value = match.group(kind)
        at = match.start(kind)
        if kind == "name" and value.lower() in _KEYWORDS:
            kind = "keyword"
        tokens.append((kind, value, at))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------- plumbing

    def peek(self) -> Optional[Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def peek_pos(self) -> int:
        """Offset of the next token (end of statement when exhausted)."""
        token = self.peek()
        return token[2] if token is not None else len(self.text)

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise SQLError("unexpected end of statement", pos=len(self.text))
        self.pos += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token and token[0] == "keyword" and token[1].lower() == word:
            self.pos += 1
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            token = self.peek()
            shown = token[:2] if token is not None else None
            raise SQLError(f"expected {word.upper()} near token {shown}",
                           pos=self.peek_pos())

    def accept_punct(self, char: str) -> bool:
        token = self.peek()
        if token and token[0] == "punct" and token[1] == char:
            self.pos += 1
            return True
        return False

    def done(self) -> bool:
        return self.pos >= len(self.tokens)

    # ------------------------------------------------------------- pieces

    def field(self) -> Tuple[Optional[str], int]:
        """A field reference: ``f10`` or ``Ta.f10``."""
        kind, value, at = self.next()
        if kind != "name":
            raise SQLError(f"expected a field, got {value!r}", pos=at)
        table = None
        if "." in value:
            table, value = value.split(".", 1)
        match = re.fullmatch(r"f(\d+)", value)
        if match is None:
            raise SQLError(f"fields are named f<N>, got {value!r}", pos=at)
        return table, int(match.group(1))

    def number(self, what: str) -> int:
        """An integer literal (with a positioned error otherwise)."""
        kind, literal, at = self.next()
        if kind != "number":
            raise SQLError(f"expected {what}, got {literal!r}", pos=at)
        return int(literal)

    def comparison(self) -> Conjunct:
        _, field = self.field()
        kind, op, at = self.next()
        if kind != "op":
            raise SQLError(f"expected a comparison operator, got {op!r}",
                           pos=at)
        value = self.number("a literal value")
        if op in (">", ">="):
            selectivity = max(0.0, (PREDICATE_RANGE - value) / PREDICATE_RANGE)
            return Conjunct(field, ">", min(1.0, selectivity))
        if op in ("<", "<="):
            return Conjunct(field, "<", min(1.0, value / PREDICATE_RANGE))
        return Conjunct(field, "==", max(1, value) / PREDICATE_RANGE
                        if value < PREDICATE_RANGE else 1.0)

    def where_clause(self) -> Optional[Predicate]:
        if not self.accept_keyword("where"):
            return None
        conjuncts = [self.comparison()]
        while self.accept_keyword("and"):
            conjuncts.append(self.comparison())
        return Predicate(tuple(conjuncts))


def parse(statement: str, name: str = "adhoc") -> Query:
    """Parse one SQL statement into a query plan."""
    p = _Parser(statement)
    if p.accept_keyword("select"):
        return _parse_select(p, name)
    if p.accept_keyword("update"):
        return _parse_update(p, name)
    if p.accept_keyword("insert"):
        return _parse_insert(p, name)
    raise SQLError("statement must start with SELECT, UPDATE or INSERT",
                   pos=p.peek_pos())


def _parse_select(p: _Parser, name: str) -> Query:
    # aggregate?
    if p.accept_keyword("sum"):
        return _parse_aggregate(p, name, "SUM")
    if p.accept_keyword("avg"):
        return _parse_aggregate(p, name, "AVG")

    star = p.accept_punct("*")
    fields: List[Tuple[Optional[str], int]] = []
    if not star:
        fields.append(p.field())
        while p.accept_punct(","):
            fields.append(p.field())
    p.expect_keyword("from")
    kind, table, at = p.next()
    if kind != "name":
        raise SQLError(f"expected a table name, got {table!r}", pos=at)
    if p.accept_punct(","):
        kind, table_b, _at = p.next()
        return _parse_join(p, name, table, table_b, fields)
    predicate = p.where_clause()
    limit = None
    if p.accept_keyword("limit"):
        limit = p.number("a LIMIT count")
    if not p.done():
        raise SQLError(
            f"trailing tokens: {[t[:2] for t in p.tokens[p.pos:]]}",
            pos=p.peek_pos(),
        )
    projected = None if star else tuple(f for _t, f in fields)
    prefers = "row" if star and predicate is None else (
        "row" if star and limit is not None else "column"
    )
    return SelectQuery(name, table, projected, predicate, limit, prefers)


def _parse_aggregate(p: _Parser, name: str, func: str) -> AggregateQuery:
    fields = []
    while True:
        if not p.accept_punct("("):
            raise SQLError("aggregate function needs parentheses",
                           pos=p.peek_pos())
        _, field = p.field()
        fields.append(field)
        if not p.accept_punct(")"):
            raise SQLError("unclosed aggregate parenthesis",
                           pos=p.peek_pos())
        if not p.accept_punct(","):
            break
        nxt = p.next()
        if nxt[0] != "keyword" or nxt[1].upper() != func:
            raise SQLError("mixed aggregate functions are not supported",
                           pos=nxt[2])
    p.expect_keyword("from")
    _, table, _at = p.next()
    predicate = p.where_clause()
    return AggregateQuery(name, table, func, tuple(fields), predicate)


def _parse_update(p: _Parser, name: str) -> UpdateQuery:
    kind, table, _at = p.next()
    p.expect_keyword("set")
    assignments = []
    while True:
        _, field = p.field()
        kind, op, at = p.next()
        if (kind, op) != ("op", "="):
            raise SQLError("assignments use '='", pos=at)
        value = p.number("a literal value")
        assignments.append((field, value))
        if not p.accept_punct(","):
            break
    predicate = p.where_clause()
    if predicate is None:
        raise SQLError("UPDATE requires a WHERE clause", pos=p.peek_pos())
    return UpdateQuery(name, table, tuple(assignments), predicate)


def _parse_insert(p: _Parser, name: str) -> InsertQuery:
    p.expect_keyword("into")
    _, table, _at = p.next()
    p.expect_keyword("values")
    n = 0
    token = p.peek()
    if token and token[0] == "number":
        n = int(p.next()[1])
    elif token and token[:2] == ("punct", "("):
        # a literal tuple: one record; count tuples
        n = 0
        while p.accept_punct("("):
            depth = 1
            while depth:
                tok = p.next()
                if tok[:2] == ("punct", "("):
                    depth += 1
                elif tok[:2] == ("punct", ")"):
                    depth -= 1
            n += 1
            if not p.accept_punct(","):
                break
    return InsertQuery(name, table, n_records=n)


def _parse_join(p: _Parser, name: str, table_a: str, table_b: str,
                fields) -> JoinQuery:
    if not p.accept_keyword("where"):
        raise SQLError("joins need a WHERE clause with the key equality",
                       pos=p.peek_pos())
    key_field = None
    extra = None
    while True:
        ta, fa = p.field()
        kind, op, at = p.next()
        tb, fb = p.field()
        if fa != fb or {ta, tb} != {table_a, table_b}:
            raise SQLError(
                "join comparisons must relate the same field of both tables",
                pos=at,
            )
        if op == "=":
            key_field = fa
        elif op == ">":
            extra = fa
        else:
            raise SQLError(f"unsupported join comparison {op!r}", pos=at)
        if not p.accept_keyword("and"):
            break
    if key_field is None:
        raise SQLError("joins need an equality key", pos=p.peek_pos())
    by_table = {t: f for t, f in fields}
    if set(by_table) != {table_a, table_b}:
        raise SQLError("project one field from each joined table")
    # the narrow table is hashed (build side)
    return JoinQuery(
        name,
        build_table=table_b,
        probe_table=table_a,
        key_field=key_field,
        extra_compare_field=extra,
        project_probe=by_table[table_a],
        project_build=by_table[table_b],
    )
