"""Query plans for the benchmark of Table 3.

The grammar is the small subset of SQL the paper evaluates: filtered
selects (with projection lists or ``*``), single-field aggregates, updates,
bulk inserts, equi-joins, and the parametric arithmetic/aggregate queries
of Figure 15.  Every query carries a ``prefers`` hint ("row" or "column")
that drives the paper's "ideal" series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class Conjunct:
    """One comparison in a WHERE clause.

    ``selectivity`` is the fraction of records the comparison keeps; the
    executor resolves it to a concrete threshold against the table data.
    ``op`` is one of ``>``, ``<``, ``==``.
    """

    field: int
    op: str
    selectivity: float

    def __post_init__(self) -> None:
        if self.op not in (">", "<", "=="):
            raise ValueError(f"unsupported comparison {self.op!r}")
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError("selectivity must be within [0, 1]")


@dataclass(frozen=True)
class Predicate:
    """A conjunction of comparisons (AND)."""

    conjuncts: Tuple[Conjunct, ...]

    @staticmethod
    def where(field: int, op: str, selectivity: float) -> "Predicate":
        return Predicate((Conjunct(field, op, selectivity),))

    @property
    def fields(self) -> Tuple[int, ...]:
        return tuple(c.field for c in self.conjuncts)


@dataclass(frozen=True)
class SelectQuery:
    """SELECT <fields|*> FROM <table> [WHERE ...] [LIMIT n]."""

    name: str
    table: str
    projected: Optional[Tuple[int, ...]]  # None means '*'
    predicate: Optional[Predicate]
    limit: Optional[int] = None
    prefers: str = "column"


@dataclass(frozen=True)
class AggregateQuery:
    """SELECT FUNC(f), ... FROM <table> [WHERE ...]."""

    name: str
    table: str
    func: str  # SUM or AVG
    fields: Tuple[int, ...]
    predicate: Optional[Predicate]
    prefers: str = "column"

    def __post_init__(self) -> None:
        if self.func not in ("SUM", "AVG"):
            raise ValueError(f"unsupported aggregate {self.func!r}")


@dataclass(frozen=True)
class UpdateQuery:
    """UPDATE <table> SET f=v,... WHERE ..."""

    name: str
    table: str
    assignments: Tuple[Tuple[int, int], ...]  # (field, new value)
    predicate: Predicate
    prefers: str = "column"


@dataclass(frozen=True)
class InsertQuery:
    """Bulk INSERT INTO <table> VALUES ... (one record per row)."""

    name: str
    table: str
    n_records: int
    prefers: str = "row"


@dataclass(frozen=True)
class JoinQuery:
    """SELECT a.fa, b.fb FROM a, b WHERE a.key = b.key [AND a.f > b.f]."""

    name: str
    build_table: str  # hashed side (the narrow table)
    probe_table: str
    key_field: int
    extra_compare_field: Optional[int]  # Q7's Ta.f1 > Tb.f1
    project_probe: int  # field projected from the probe side
    project_build: int  # field projected from the build side
    prefers: str = "column"


Query = Union[SelectQuery, AggregateQuery, UpdateQuery, InsertQuery, JoinQuery]
