"""Cost-based planner: query + scheme -> costed :class:`PhysicalPlan`.

This module owns every access-mode decision the executor used to make
inline: the effective gather factor under DRAM-row constraints, the
sector/line footprint geometry, the batch size, and the row-vs-strided
cost comparison behind the paper's Figure 15 crossover.  The planner
enumerates the candidate access modes per operator, estimates burst
costs, and emits a frozen :class:`PhysicalPlan` that
:mod:`repro.imdb.lowering` turns into memory ops without re-deriving
anything.

The stride decision (`stride_worthwhile`) keeps the exact arithmetic of
the original executor heuristic -- the decomposed per-operator estimates
(`est_bursts`) are for EXPLAIN output and the ideal-envelope planner
choice, never for the mode decision itself, so plans (and therefore
simulated cycles) are bit-identical to the pre-IR executor.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.scheme import AccessScheme, Placement
from ..sim.config import SystemConfig
from .plan import (
    CostModel,
    LogicalPlan,
    PhysicalNode,
    PhysicalPlan,
    logical_plan,
    selected_mask,
)
from .query import (
    AggregateQuery,
    InsertQuery,
    JoinQuery,
    Query,
    SelectQuery,
    UpdateQuery,
)
from .schema import Table


def join_matches(build: Table, probe: Table, key: int,
                 extra: Optional[int]) -> Tuple[int, np.ndarray]:
    """Ground-truth hash join: (match count, probe-side match mask)."""
    build_keys: Dict[int, List[int]] = {}
    for i, value in enumerate(build.column(key)):
        build_keys.setdefault(int(value), []).append(i)
    matches = 0
    probe_match = np.zeros(probe.n_records, dtype=bool)
    for i, value in enumerate(probe.column(key)):
        for j in build_keys.get(int(value), ()):
            if extra is None or (
                probe.values[i, extra] > build.values[j, extra]
            ):
                matches += 1
                probe_match[i] = True
    return matches, probe_match


class Planner:
    """Chooses the physical plan for one scheme over placed tables."""

    def __init__(
        self,
        scheme: AccessScheme,
        config: SystemConfig,
        tables: Dict[str, Table],
        placements: Dict[str, Placement],
        cost: Optional[CostModel] = None,
    ) -> None:
        self.scheme = scheme
        self.config = config
        self.tables = tables
        self.placements = placements
        self.cost = cost or CostModel()
        self.line_bytes = scheme.geometry.cacheline_bytes

    # ------------------------------------------------------ cost primitives

    def batch_records(self) -> int:
        """Records per operator round, aligned down to the gather factor.

        The single source of truth for the batch size: the partitioner's
        chunking and the gather grouping both honour it."""
        g = self.scheme.gather_factor
        return max(g, self.cost.batch_records // g * g)

    def effective_gather(self, table: Table) -> int:
        """Elements one gather burst actually covers for field scans.

        Row-constrained gathers (SAM-IO/en sub-row stride, GS-DRAM
        intra-row shift) cannot cross a DRAM row: huge records leave
        fewer (eventually one) field elements per row."""
        g = self.scheme.gather_factor
        if not self.scheme.gather_within_row:
            return g
        row_bytes = self.scheme.geometry.row_bytes
        per_row = max(1, row_bytes // max(1, table.schema.record_bytes))
        return max(1, min(g, per_row))

    def sector_offsets(self, table: Table,
                       fields: Sequence[int]) -> List[int]:
        """Distinct sector-aligned record offsets covering ``fields``."""
        sb = self.scheme.sector_bytes
        offsets = sorted(
            {
                (table.schema.field_offset(f) // sb) * sb
                for f in fields
            }
        )
        return offsets

    def line_spans(self, table: Table,
                   fields: Sequence[int]) -> List[Tuple[int, int]]:
        """Per touched line: (first offset, read size) covering the fields
        that fall into that line of the record."""
        fb = table.schema.field_bytes
        by_line: Dict[int, List[int]] = {}
        for f in fields:
            off = table.schema.field_offset(f)
            by_line.setdefault(off // self.line_bytes, []).append(off)
        spans = []
        for line_index in sorted(by_line):
            offs = sorted(by_line[line_index])
            first = offs[0]
            last_end = offs[-1] + fb
            spans.append((first, last_end - first))
        return spans

    def candidate_costs(
        self,
        table: Table,
        pred_fields: Sequence[int],
        proj_fields: Optional[Sequence[int]],
        selectivity: float,
    ) -> Tuple[float, float]:
        """(column cost, row cost) in estimated bursts per record.

        The exact arithmetic of the original mode heuristic -- the
        comparison is last-ulp sensitive, so the expressions are kept
        verbatim rather than rebuilt from the per-operator estimates.
        """
        g_eff = self.effective_gather(table)
        g = self.scheme.gather_factor
        pred_sectors = len(self.sector_offsets(table, pred_fields))
        lines = max(1, table.schema.record_bytes // self.line_bytes)
        # SALP overlaps precharge/activation across subarrays, so the
        # serialized row-conflict component of a row-wise plan shrinks.
        # Applied only when non-1.0: the guard keeps the last-ulp
        # sensitive arithmetic below bit-identical for existing schemes.
        derate = self.scheme.salp_row_derate
        if proj_fields is None:
            # SELECT *: projection is a row read either way; the choice
            # only covers the predicate scan
            col_cost = pred_sectors / g_eff
            row_cost = 1.0
            if derate != 1.0:
                row_cost *= derate
            return col_cost, row_cost
        proj_sectors = len(self.sector_offsets(table, proj_fields))
        p_any = min(1.0, selectivity * g)
        col_cost = (pred_sectors + proj_sectors * p_any) / g_eff
        pred_lines = len(self.line_spans(table, pred_fields)) if (
            pred_fields
        ) else 0
        proj_lines = len(self.line_spans(table, proj_fields))
        row_cost = max(1, pred_lines) + selectivity * min(
            lines, proj_lines
        )
        if derate != 1.0:
            row_cost *= derate
        return col_cost, row_cost

    def stride_worthwhile(
        self,
        table: Table,
        pred_fields: Sequence[int],
        proj_fields: Optional[Sequence[int]],
        selectivity: float,
    ) -> bool:
        """Mode choice: strided (column) access vs plain row-wise loads.

        A SAM-class system can serve a query either way, so the planner
        compares estimated bursts per record -- the paper's Figure 15
        shows exactly this behaviour: at full projectivity the designs
        converge to the row store.
        """
        if not self.scheme.supports_stride:
            return False
        col_cost, row_cost = self.candidate_costs(
            table, pred_fields, proj_fields, selectivity
        )
        return col_cost < row_cost

    # ------------------------------------------------------- node builders

    def _plain_mode(self, placement: Placement) -> str:
        if getattr(placement, "field_runs_contiguous", False):
            return "vector"
        if placement.contiguous_records:
            return "spans"
        return "fields"

    def _access_node(
        self,
        op: str,
        table_name: str,
        table: Table,
        fields: Sequence[int],
        records: int,
        selectivity: float = 1.0,
        force_plain: bool = False,
        writes: bool = False,
        children: Tuple[PhysicalNode, ...] = (),
        detail: Tuple[Tuple[str, object], ...] = (),
    ) -> PhysicalNode:
        """One field-access operator: strided gathers if the scheme can
        stride (and the cost gate didn't veto it), plain loads otherwise."""
        placement = self.placements[table_name]
        if self.scheme.supports_stride and not force_plain:
            offsets = tuple(self.sector_offsets(table, fields))
            g_eff = self.effective_gather(table)
            per_record = len(offsets) / g_eff
            return PhysicalNode(
                op, table_name, "strided", tuple(fields), records,
                gather=self.scheme.gather_factor,
                sector_offsets=offsets,
                est_bursts=per_record * records * selectivity
                * (2 if writes else 1),
                selectivity=selectivity, writes=writes,
                children=children, detail=detail,
            )
        mode = self._plain_mode(placement)
        if mode == "vector":
            fb = table.schema.field_bytes
            per_line = self.line_bytes // fb
            spans: Tuple[Tuple[int, int], ...] = ()
            per_record = len(set(fields)) / per_line
        elif mode == "spans":
            spans = tuple(self.line_spans(table, fields))
            per_record = float(len(spans))
        else:
            fb = table.schema.field_bytes
            spans = tuple(
                (table.schema.field_offset(f), fb) for f in sorted(fields)
            )
            per_record = float(len(spans))
        return PhysicalNode(
            op, table_name, mode, tuple(fields), records,
            line_spans=spans,
            est_bursts=per_record * records * selectivity
            * (2 if writes else 1),
            selectivity=selectivity, writes=writes,
            children=children, detail=detail,
        )

    def _record_node(
        self,
        op: str,
        table_name: str,
        table: Table,
        records: int,
        selectivity: float = 1.0,
        writes: bool = False,
        skip_line: Optional[int] = None,
        children: Tuple[PhysicalNode, ...] = (),
        detail: Tuple[Tuple[str, object], ...] = (),
    ) -> PhysicalNode:
        """Whole-record access: line-by-line on contiguous placements,
        field-by-field on scattered ones (why the pure column store
        collapses on row-preferring queries)."""
        placement = self.placements[table_name]
        rb = table.schema.record_bytes
        if placement.contiguous_records:
            per_record = float(max(1, (rb + self.line_bytes - 1)
                                   // self.line_bytes))
        else:
            per_record = float(table.schema.n_fields)
        return PhysicalNode(
            op, table_name, "rows", (), records,
            est_bursts=per_record * records * selectivity,
            selectivity=selectivity, writes=writes, skip_line=skip_line,
            children=children, detail=detail,
        )

    def _scan_node(self, table_name: str, records: int) -> PhysicalNode:
        return PhysicalNode("scan", table_name, "", (), records)

    # ------------------------------------------------------------ planning

    def plan(
        self,
        query: Query,
        selected: Optional[np.ndarray] = None,
        probe_match: Optional[np.ndarray] = None,
    ) -> PhysicalPlan:
        """The chosen physical plan for ``query`` under this scheme.

        ``selected``/``probe_match`` are the ground-truth masks when the
        caller (the executor) already computed them; left ``None``, the
        planner derives them itself (the EXPLAIN path).
        """
        logical = logical_plan(query)
        if isinstance(query, SelectQuery):
            root, mode = self._plan_select(query, selected)
        elif isinstance(query, AggregateQuery):
            root, mode = self._plan_aggregate(query, selected)
        elif isinstance(query, UpdateQuery):
            root, mode = self._plan_update(query, selected)
        elif isinstance(query, InsertQuery):
            root, mode = self._plan_insert(query)
        elif isinstance(query, JoinQuery):
            root, mode = self._plan_join(query, probe_match)
        else:
            raise TypeError(f"unknown query {query!r}")
        return PhysicalPlan(
            scheme=self.scheme.name,
            query=query.name,
            mode=mode,
            root=root,
            batch_records=self.batch_records(),
            logical=logical,
        )

    # ------------------------------------------------------------- SELECT

    def _plan_select(self, query: SelectQuery,
                     selected: Optional[np.ndarray]):
        table = self.tables[query.table]
        if selected is None:
            selected = selected_mask(table, query.predicate)
        n = table.n_records
        if query.limit is not None:
            n = min(n, query.limit)
            selected = selected.copy()
            selected[n:] = False
        pred_fields = list(query.predicate.fields) if query.predicate else []
        detail = ((("limit", query.limit),) if query.limit is not None
                  else ())

        row_mode = query.prefers == "row" or (
            query.predicate is None and query.projected is None
        )
        node = self._scan_node(query.table, n)
        if row_mode:
            if pred_fields:
                node = self._row_filter_node(query.table, table,
                                             pred_fields, n, (node,))
                pred_line = (
                    table.schema.field_offset(pred_fields[0])
                    // self.line_bytes
                )
                sel_frac = float(selected[:n].mean()) if n else 0.0
                node = self._record_node(
                    "materialize", query.table, table, n,
                    selectivity=sel_frac, skip_line=pred_line,
                    children=(node,), detail=detail,
                )
            else:
                node = self._record_node(
                    "materialize", query.table, table, n,
                    children=(node,), detail=detail,
                )
            return node, "row"

        sel_frac = float(selected[:n].mean()) if n else 0.0
        plain = not self.stride_worthwhile(
            table, pred_fields, query.projected, sel_frac
        )
        if pred_fields:
            node = self._access_node(
                "filter", query.table, table, pred_fields, n,
                force_plain=plain, children=(node,),
            )
        if query.projected is None:
            # SELECT *: the projection is whole-record reads of the
            # selected records regardless of mode
            node = self._record_node(
                "materialize", query.table, table, n,
                selectivity=sel_frac, children=(node,), detail=detail,
            )
        else:
            node = self._access_node(
                "project", query.table, table, list(query.projected), n,
                selectivity=sel_frac, force_plain=plain,
                children=(node,), detail=detail,
            )
        return node, "column"

    def _row_filter_node(self, table_name: str, table: Table,
                         pred_fields: List[int], records: int,
                         children) -> PhysicalNode:
        """Row-mode predicate scan: the fields are read per record, in
        predicate order (scattered placements pay one load per field)."""
        placement = self.placements[table_name]
        if placement.contiguous_records:
            spans = tuple(self.line_spans(table, pred_fields))
            mode = "spans"
        else:
            fb = table.schema.field_bytes
            spans = tuple(
                (table.schema.field_offset(f), fb) for f in pred_fields
            )
            mode = "fields"
        return PhysicalNode(
            "filter", table_name, mode, tuple(pred_fields), records,
            line_spans=spans, est_bursts=float(len(spans)) * records,
            children=children,
        )

    # ---------------------------------------------------------- AGGREGATE

    def _plan_aggregate(self, query: AggregateQuery,
                        selected: Optional[np.ndarray]):
        table = self.tables[query.table]
        if selected is None:
            selected = selected_mask(table, query.predicate)
        n = table.n_records
        pred_fields = list(query.predicate.fields) if query.predicate else []
        sel_frac = float(selected.mean())
        plain = not self.stride_worthwhile(
            table, pred_fields, list(query.fields), sel_frac
        )
        node = self._scan_node(query.table, n)
        if pred_fields:
            node = self._access_node(
                "filter", query.table, table, pred_fields, n,
                force_plain=plain, children=(node,),
            )
        node = self._access_node(
            "aggregate", query.table, table, list(query.fields), n,
            selectivity=sel_frac, force_plain=plain, children=(node,),
            detail=(("func", query.func),),
        )
        return node, "column"

    # ------------------------------------------------------------- UPDATE

    def _plan_update(self, query: UpdateQuery,
                     selected: Optional[np.ndarray]):
        table = self.tables[query.table]
        if selected is None:
            selected = selected_mask(table, query.predicate)
        n = table.n_records
        pred_fields = list(query.predicate.fields)
        write_fields = [f for f, _v in query.assignments]
        sel_frac = float(selected.mean())
        node = self._scan_node(query.table, n)
        # the predicate scan is never cost-gated for updates: a
        # stride-capable scheme always gathers it
        node = self._access_node(
            "filter", query.table, table, pred_fields, n, children=(node,),
        )
        if self.scheme.supports_stride:
            # sload the target sectors, patch, sstore them back
            node = self._access_node(
                "update", query.table, table, write_fields, n,
                selectivity=sel_frac, writes=True, children=(node,),
            )
        else:
            fb = table.schema.field_bytes
            spans = tuple(
                (table.schema.field_offset(f), fb) for f in write_fields
            )
            node = PhysicalNode(
                "update", query.table, "stores", tuple(write_fields), n,
                line_spans=spans,
                est_bursts=float(len(spans)) * n * sel_frac,
                selectivity=sel_frac, writes=True, children=(node,),
            )
        return node, "column"

    # ------------------------------------------------------------- INSERT

    def _plan_insert(self, query: InsertQuery):
        table = self.tables[query.table]
        key = f"{query.table}+insert"
        placement = self.placements[key]
        n = query.n_records or table.n_records
        n = min(n, placement.table.n_records)
        node = self._record_node(
            "insert", key, table, n, writes=True,
            detail=(("base_table", query.table),),
        )
        return node, "row"

    # --------------------------------------------------------------- JOIN

    def _plan_join(self, query: JoinQuery,
                   probe_match: Optional[np.ndarray]):
        build = self.tables[query.build_table]
        probe = self.tables[query.probe_table]
        key = query.key_field
        extra = query.extra_compare_field
        if probe_match is None:
            _matches, probe_match = join_matches(build, probe, key, extra)
        match_frac = float(probe_match.mean()) if probe.n_records else 0.0

        build_fields = [key, query.project_build]
        if extra is not None:
            build_fields.append(extra)
        probe_fields = [key] + ([extra] if extra is not None else [])

        build_node = self._access_node(
            "hash-build", query.build_table, build, build_fields,
            build.n_records, children=(self._scan_node(
                query.build_table, build.n_records),),
        )
        probe_node = self._access_node(
            "hash-probe", query.probe_table, probe, probe_fields,
            probe.n_records, children=(self._scan_node(
                query.probe_table, probe.n_records),),
        )
        project = self._access_node(
            "project", query.probe_table, probe, [query.project_probe],
            probe.n_records, selectivity=match_frac,
            children=(probe_node,),
        )
        root = PhysicalNode(
            "join", query.probe_table, "", (), probe.n_records,
            detail=(("key_field", key),
                    ("extra_compare_field", extra)),
            children=(build_node, project),
        )
        return root, "column"


# --------------------------------------------------------------------------
# EXPLAIN entry point (CLI / tests)
# --------------------------------------------------------------------------

def plan_for(
    scheme,
    query: Query,
    tables: Dict[str, Table],
    config: Optional[SystemConfig] = None,
    cost: Optional[CostModel] = None,
    gather_factor: Optional[int] = None,
) -> PhysicalPlan:
    """Plan ``query`` for ``scheme`` (a name or an ``AccessScheme``)
    without running a simulation -- the EXPLAIN path."""
    from ..core.registry import make_scheme
    from ..sim.config import SystemConfig as _Config
    from ..sim.runner import allocate_placements

    if isinstance(scheme, str):
        scheme = make_scheme(scheme, gather_factor=gather_factor)
    config = config or _Config()
    placements = allocate_placements(scheme, tables)
    planner = Planner(scheme, config, tables, placements, cost)
    return planner.plan(query)


def ideal_choice(
    query: Query,
    tables: Dict[str, Table],
    config: Optional[SystemConfig] = None,
    cost: Optional[CostModel] = None,
) -> Tuple[str, Dict[str, float]]:
    """The ideal-envelope planner decision: plan the query under the two
    pure layouts and pick the cheaper estimate.

    Returns (winning scheme name, per-scheme estimated bursts).  This is
    the modeled replacement for the old oracle ``query.prefers`` lookup.
    """
    estimates = {
        name: plan_for(name, query, tables, config=config,
                       cost=cost).est_bursts
        for name in ("baseline", "column-store")
    }
    winner = min(sorted(estimates), key=lambda name: estimates[name])
    return winner, estimates
