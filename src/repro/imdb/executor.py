"""Query execution: query plan -> per-core memory-op streams + results.

The executor is the software half of the paper's system support: it knows
the scheme's strided granularity, aligns the database accordingly (Section
5.4.1) and emits ``sload``/``sstore`` groups for stride-capable designs, or
plain loads/stores otherwise.  It also *computes the actual query answer*
from the table data, so correctness of every scheme's access plan is
checkable: a plan that skips data the query needs would produce the wrong
answer in tests.

Mode selection mirrors the paper's evaluation: column-preferring queries
(Q1-Q12, the Figure 15 sweeps) use strided accesses on stride-capable
schemes and field-wise loads otherwise; row-preferring queries (Qs1-Qs6)
scan records in row order on every design -- there the layouts, not the
access modes, make the difference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.scheme import AccessScheme, Placement
from ..cpu.ops import Compute, GatherLoad, GatherStore, Load, MemOp, Store
from ..sim.config import SystemConfig
from .query import (
    AggregateQuery,
    InsertQuery,
    JoinQuery,
    Predicate,
    Query,
    SelectQuery,
    UpdateQuery,
)
from .schema import PREDICATE_RANGE, Table


@dataclass(frozen=True)
class CostModel:
    """CPU work per element, in CPU cycles (converted via the config)."""

    predicate_eval: float = 2.0
    project_field: float = 1.0
    aggregate_value: float = 2.0
    materialize_line: float = 4.0
    hash_build: float = 10.0
    hash_probe: float = 12.0
    insert_line: float = 2.0
    #: execution batch: records processed per operator round.  The default
    #: of one gather group matches the paper's executor (predicate and
    #: projection of a record group are adjacent, giving SAM its row-buffer
    #: hits and charging RC-NVM its per-group field switches).  Larger
    #: batches model column-at-a-time vectorized engines.
    batch_records: int = 8


@dataclass
class ExecutorOutput:
    """Per-core op streams plus the ground-truth result."""

    ops_per_core: List[List[MemOp]]
    result: object
    selected_records: int = 0

    @property
    def total_ops(self) -> int:
        return sum(len(ops) for ops in self.ops_per_core)


class QueryExecutor:
    """Lowers queries for one scheme over one set of placed tables."""

    def __init__(
        self,
        scheme: AccessScheme,
        config: SystemConfig,
        tables: Dict[str, Table],
        placements: Dict[str, Placement],
        cost: Optional[CostModel] = None,
    ) -> None:
        self.scheme = scheme
        self.config = config
        self.tables = tables
        self.placements = placements
        self.cost = cost or CostModel()
        self.line_bytes = scheme.geometry.cacheline_bytes

    # ------------------------------------------------------------- helpers

    def _cycles(self, cpu_cycles: float) -> float:
        return self.config.compute_cycles(cpu_cycles)

    def _partition(self, n: int,
                   placement: Optional[Placement] = None
                   ) -> List[List[Tuple[int, int]]]:
        """Round-robin chunk assignment: core ``c`` processes chunks
        ``c, c + cores, c + 2*cores, ...`` (static interleaved scheduling,
        the usual parallel-scan decomposition; contiguous partitions would
        put every core on the same bank in lockstep whenever the partition
        size resonates with the bank interleave).  Chunks are split into
        operator batches; the chunk size honours the placement's
        partition granularity so vertical layouts keep workers on
        separate banks."""
        cores = self.config.cores
        g = self.scheme.gather_factor
        batch = max(g, self.cost.batch_records // g * g)
        chunk = batch
        if placement is not None:
            gran = placement.partition_granularity
            chunk = max(batch, (gran + batch - 1) // batch * batch)
        parts: List[List[Tuple[int, int]]] = [[] for _ in range(cores)]
        index = 0
        for cs in range(0, n, chunk):
            ce = min(n, cs + chunk)
            core = index % cores
            for bs in range(cs, ce, batch):
                parts[core].append((bs, min(ce, bs + batch)))
            index += 1
        return parts

    def _groups(self, start: int, end: int):
        g = self.scheme.gather_factor
        for gs in range(start, end, g):
            yield gs, min(end, gs + g)

    @staticmethod
    def _coalesce(segments):
        """Merge adjacent (start, end) segments into maximal runs."""
        merged: List[Tuple[int, int]] = []
        for bs, be in segments:
            if merged and merged[-1][1] == bs:
                merged[-1] = (merged[-1][0], be)
            else:
                merged.append((bs, be))
        return merged

    def _batches(self, start: int, end: int):
        """Vectorized-execution batches (aligned to the gather factor)."""
        g = self.scheme.gather_factor
        batch = max(g, self.cost.batch_records // g * g)
        for bs in range(start, end, batch):
            yield bs, min(end, bs + batch)

    def _effective_gather(self, table: Table) -> int:
        """Elements one gather burst actually covers for field scans.

        Row-constrained gathers (SAM-IO/en sub-row stride, GS-DRAM
        intra-row shift) cannot cross a DRAM row: huge records leave
        fewer (eventually one) field elements per row."""
        g = self.scheme.gather_factor
        if not self.scheme.gather_within_row:
            return g
        row_bytes = self.scheme.geometry.row_bytes
        per_row = max(1, row_bytes // max(1, table.schema.record_bytes))
        return max(1, min(g, per_row))

    def _stride_worthwhile(
        self,
        table: Table,
        pred_fields: Sequence[int],
        proj_fields: Optional[Sequence[int]],
        selectivity: float,
    ) -> bool:
        """Mode choice: strided (column) access vs plain row-wise loads.

        A SAM-class system can serve a query either way, so the executor
        compares estimated bursts per record -- the paper's Figure 15
        shows exactly this behaviour: at full projectivity the designs
        converge to the row store.
        """
        if not self.scheme.supports_stride:
            return False
        g_eff = self._effective_gather(table)
        g = self.scheme.gather_factor
        pred_sectors = len(self._sector_offsets(table, pred_fields))
        lines = max(1, table.schema.record_bytes // self.line_bytes)
        if proj_fields is None:
            # SELECT *: projection is a row read either way; the choice
            # only covers the predicate scan
            col_cost = pred_sectors / g_eff
            row_cost = 1.0
            return col_cost < row_cost
        proj_sectors = len(self._sector_offsets(table, proj_fields))
        p_any = min(1.0, selectivity * g)
        col_cost = (pred_sectors + proj_sectors * p_any) / g_eff
        pred_lines = len(self._line_spans(table, pred_fields)) if (
            pred_fields
        ) else 0
        proj_lines = len(self._line_spans(table, proj_fields))
        row_cost = max(1, pred_lines) + selectivity * min(
            lines, proj_lines
        )
        return col_cost < row_cost

    def _sector_offsets(self, table: Table, fields: Sequence[int]) -> List[int]:
        """Distinct sector-aligned record offsets covering ``fields``."""
        sb = self.scheme.sector_bytes
        offsets = sorted(
            {
                (table.schema.field_offset(f) // sb) * sb
                for f in fields
            }
        )
        return offsets

    def _line_spans(self, table: Table,
                    fields: Sequence[int]) -> List[Tuple[int, int]]:
        """Per touched line: (first offset, read size) covering the fields
        that fall into that line of the record."""
        fb = table.schema.field_bytes
        by_line: Dict[int, List[int]] = {}
        for f in fields:
            off = table.schema.field_offset(f)
            by_line.setdefault(off // self.line_bytes, []).append(off)
        spans = []
        for line_index in sorted(by_line):
            offs = sorted(by_line[line_index])
            first = offs[0]
            last_end = offs[-1] + fb
            spans.append((first, last_end - first))
        return spans

    def _selected(self, table: Table,
                  predicate: Optional[Predicate]) -> np.ndarray:
        if predicate is None:
            return np.ones(table.n_records, dtype=bool)
        mask = np.ones(table.n_records, dtype=bool)
        for conj in predicate.conjuncts:
            column = table.column(conj.field)
            if conj.op == ">":
                threshold = int(PREDICATE_RANGE * (1.0 - conj.selectivity))
                mask &= column > threshold
            elif conj.op == "<":
                threshold = int(PREDICATE_RANGE * conj.selectivity)
                mask &= column < threshold
            else:  # equality: pick a value hitting ~selectivity
                span = max(1, int(PREDICATE_RANGE * conj.selectivity))
                mask &= column < span  # model: matches the rare key set
        return mask

    # ----------------------------------------------------- field-wise scans

    def _emit_field_access(
        self,
        ops: List[MemOp],
        placement: Placement,
        table: Table,
        bs: int,
        be: int,
        fields: Sequence[int],
        selected: Optional[np.ndarray],
        write_fields: Optional[Sequence[int]] = None,
        force_plain: bool = False,
    ) -> None:
        """Access ``fields`` of records [bs, be), column-at-a-time.

        Field-major order across the whole batch: every gather (or load)
        stream for one field finishes before the next field starts, the
        vectorized execution style that amortizes RC-NVM's column-to-column
        switches over a batch instead of paying one per record group.
        ``selected`` skips record groups with no selected member (the
        hardware still gathers whole groups).
        """
        if self.scheme.supports_stride and not force_plain:
            for offset in self._sector_offsets(table, fields):
                for gs, ge in self._groups(bs, be):
                    if selected is not None and not selected[gs:ge].any():
                        continue
                    ops.append(
                        GatherLoad(
                            [placement.addr_of(r, offset)
                             for r in range(gs, ge)]
                        )
                    )
            if write_fields:
                for offset in self._sector_offsets(table, write_fields):
                    for gs, ge in self._groups(bs, be):
                        if (selected is not None
                                and not selected[gs:ge].any()):
                            continue
                        ops.append(
                            GatherStore(
                                [placement.addr_of(r, offset)
                                 for r in range(gs, ge)]
                            )
                        )
            return
        if getattr(placement, "field_runs_contiguous", False):
            # Pure column store: a field's values are consecutive, so the
            # scan uses full-line vector loads (8 records per load).
            fb = table.schema.field_bytes
            per_line = self.line_bytes // fb
            for f in sorted(set(fields)):
                off = table.schema.field_offset(f)
                for cs in range(bs, be, per_line):
                    ce = min(be, cs + per_line)
                    if selected is not None and not selected[cs:ce].any():
                        continue
                    ops.append(
                        Load(placement.addr_of(cs, off), fb * (ce - cs))
                    )
            if write_fields:
                for f in sorted(set(write_fields)):
                    off = table.schema.field_offset(f)
                    for cs in range(bs, be, per_line):
                        ce = min(be, cs + per_line)
                        if (selected is not None
                                and not selected[cs:ce].any()):
                            continue
                        ops.append(
                            Store(placement.addr_of(cs, off),
                                  fb * (ce - cs))
                        )
                write_fields = None
        if placement.contiguous_records:
            spans = self._line_spans(table, fields)
        elif getattr(placement, "field_runs_contiguous", False):
            spans = []  # handled by the vector loads above
        else:
            fb = table.schema.field_bytes
            spans = [
                (table.schema.field_offset(f), fb) for f in sorted(fields)
            ]
        for offset, size in spans:
            for r in range(bs, be):
                if selected is not None and not selected[r]:
                    continue
                ops.append(Load(placement.addr_of(r, offset), size))
        if write_fields:
            fb = table.schema.field_bytes
            for f in write_fields:
                off = table.schema.field_offset(f)
                for r in range(bs, be):
                    if selected is not None and not selected[r]:
                        continue
                    ops.append(Store(placement.addr_of(r, off), fb))

    def _emit_record_read(
        self,
        ops: List[MemOp],
        placement: Placement,
        table: Table,
        record: int,
        skip_line: Optional[int] = None,
    ) -> None:
        """Row-mode read of one whole record.

        Contiguous placements read line by line; a column-major placement
        must touch every field region separately -- the reason the pure
        column store collapses on row-preferring queries.
        """
        rb = table.schema.record_bytes
        if placement.contiguous_records:
            for offset in range(0, rb, self.line_bytes):
                if (skip_line is not None
                        and offset // self.line_bytes == skip_line):
                    continue
                size = min(self.line_bytes, rb - offset)
                ops.append(Load(placement.addr_of(record, offset), size))
            return
        fb = table.schema.field_bytes
        for f in range(table.schema.n_fields):
            off = table.schema.field_offset(f)
            if skip_line is not None and off // self.line_bytes == skip_line:
                continue
            ops.append(Load(placement.addr_of(record, off), fb))

    # ------------------------------------------------------------ dispatch

    def build(self, query: Query) -> ExecutorOutput:
        if isinstance(query, SelectQuery):
            return self._build_select(query)
        if isinstance(query, AggregateQuery):
            return self._build_aggregate(query)
        if isinstance(query, UpdateQuery):
            return self._build_update(query)
        if isinstance(query, InsertQuery):
            return self._build_insert(query)
        if isinstance(query, JoinQuery):
            return self._build_join(query)
        raise TypeError(f"unknown query {query!r}")

    # --------------------------------------------------------------- SELECT

    def _build_select(self, query: SelectQuery) -> ExecutorOutput:
        table = self.tables[query.table]
        placement = self.placements[query.table]
        selected = self._selected(table, query.predicate)
        n = table.n_records
        if query.limit is not None:
            n = min(n, query.limit)
            selected = selected.copy()
            selected[n:] = False
        ops_per_core: List[List[MemOp]] = []

        if query.prefers == "row" or (
            query.predicate is None and query.projected is None
        ):
            ops_per_core = self._row_mode_select(
                table, placement, query, selected, n
            )
        else:
            ops_per_core = self._column_mode_select(
                table, placement, query, selected, n
            )

        rows = np.flatnonzero(selected[:n])
        if query.projected is None:
            result = (len(rows), int(table.values[rows].sum()) if len(rows)
                      else 0)
        else:
            cols = list(query.projected)
            data = table.values[np.ix_(rows, cols)] if len(rows) else None
            result = (
                len(rows),
                int(data.sum()) if data is not None else 0,
            )
        return ExecutorOutput(ops_per_core, result, int(len(rows)))

    def _column_mode_select(self, table, placement, query, selected, n):
        pred_fields = list(query.predicate.fields) if query.predicate else []
        sel_frac = float(selected[:n].mean()) if n else 0.0
        plain = not self._stride_worthwhile(
            table, pred_fields, query.projected, sel_frac
        )
        ops_per_core = []
        for segments in self._partition(n, placement):
            ops: List[MemOp] = []
            for bs, be in segments:
                size = be - bs
                if pred_fields:
                    self._emit_field_access(
                        ops, placement, table, bs, be, pred_fields, None,
                        force_plain=plain,
                    )
                    ops.append(
                        Compute(
                            self._cycles(self.cost.predicate_eval * size)
                        )
                    )
                nsel = int(selected[bs:be].sum())
                if nsel == 0:
                    continue
                if query.projected is None:
                    # SELECT *: fall back to row reads of selected records
                    for r in range(bs, be):
                        if selected[r]:
                            self._emit_record_read(ops, placement, table, r)
                    lines = table.schema.record_bytes // self.line_bytes
                    ops.append(
                        Compute(
                            self._cycles(
                                self.cost.materialize_line
                                * max(1, lines) * nsel
                            )
                        )
                    )
                else:
                    self._emit_field_access(
                        ops, placement, table, bs, be,
                        list(query.projected), selected,
                        force_plain=plain,
                    )
                    ops.append(
                        Compute(
                            self._cycles(
                                self.cost.project_field
                                * nsel * len(query.projected)
                            )
                        )
                    )
            ops_per_core.append(ops)
        return ops_per_core

    def _row_mode_select(self, table, placement, query, selected, n):
        pred_fields = list(query.predicate.fields) if query.predicate else []
        pred_line = (
            table.schema.field_offset(pred_fields[0]) // self.line_bytes
            if pred_fields
            else None
        )
        lines = max(1, table.schema.record_bytes // self.line_bytes)
        ops_per_core = []
        for segments in self._partition(n, placement):
            ops: List[MemOp] = []
            for r in (r for bs, be in segments for r in range(bs, be)):
                if pred_fields:
                    if placement.contiguous_records:
                        spans = self._line_spans(table, pred_fields)
                    else:
                        fb = table.schema.field_bytes
                        spans = [
                            (table.schema.field_offset(f), fb)
                            for f in pred_fields
                        ]
                    for offset, size in spans:
                        ops.append(Load(placement.addr_of(r, offset), size))
                    ops.append(
                        Compute(self._cycles(self.cost.predicate_eval))
                    )
                    if not selected[r]:
                        continue
                    self._emit_record_read(
                        ops, placement, table, r, skip_line=pred_line
                    )
                else:
                    self._emit_record_read(ops, placement, table, r)
                ops.append(
                    Compute(
                        self._cycles(self.cost.materialize_line * lines)
                    )
                )
            ops_per_core.append(ops)
        return ops_per_core

    # ------------------------------------------------------------ AGGREGATE

    def _build_aggregate(self, query: AggregateQuery) -> ExecutorOutput:
        table = self.tables[query.table]
        placement = self.placements[query.table]
        selected = self._selected(table, query.predicate)
        pred_fields = list(query.predicate.fields) if query.predicate else []
        ops_per_core = []
        sel_frac = float(selected.mean())
        plain = not self._stride_worthwhile(
            table, pred_fields, list(query.fields), sel_frac
        )
        for segments in self._partition(table.n_records, placement):
            ops: List[MemOp] = []
            # Aggregates process each field independently over the whole
            # chunk (field-at-a-time): this is what relieves RC-NVM's
            # column-to-column switching in Figure 15(g)/(h).
            for bs, be in self._coalesce(segments):
                size = be - bs
                if pred_fields:
                    self._emit_field_access(
                        ops, placement, table, bs, be, pred_fields, None,
                        force_plain=plain,
                    )
                    ops.append(
                        Compute(self._cycles(self.cost.predicate_eval * size))
                    )
                nsel = int(selected[bs:be].sum())
                if nsel == 0:
                    continue
                self._emit_field_access(
                    ops, placement, table, bs, be, list(query.fields),
                    selected, force_plain=plain,
                )
                ops.append(
                    Compute(
                        self._cycles(
                            self.cost.aggregate_value
                            * nsel * len(query.fields)
                        )
                    )
                )
            ops_per_core.append(ops)
        rows = np.flatnonzero(selected)
        sums = {
            f: int(table.column(f)[rows].sum()) if len(rows) else 0
            for f in query.fields
        }
        if query.func == "AVG" and len(rows):
            result = {f: sums[f] / len(rows) for f in query.fields}
        else:
            result = sums
        return ExecutorOutput(ops_per_core, result, int(len(rows)))

    # --------------------------------------------------------------- UPDATE

    def _build_update(self, query: UpdateQuery) -> ExecutorOutput:
        table = self.tables[query.table]
        placement = self.placements[query.table]
        selected = self._selected(table, query.predicate)
        pred_fields = list(query.predicate.fields)
        write_fields = [f for f, _v in query.assignments]
        ops_per_core = []
        for segments in self._partition(table.n_records, placement):
            ops: List[MemOp] = []
            for bs, be in segments:
                size = be - bs
                self._emit_field_access(
                    ops, placement, table, bs, be, pred_fields, None
                )
                ops.append(
                    Compute(self._cycles(self.cost.predicate_eval * size))
                )
                nsel = int(selected[bs:be].sum())
                if nsel == 0:
                    continue
                if self.scheme.supports_stride:
                    # sload the target sectors, patch, sstore them back
                    self._emit_field_access(
                        ops, placement, table, bs, be,
                        write_fields, selected, write_fields=write_fields,
                    )
                else:
                    fb = table.schema.field_bytes
                    for f in write_fields:
                        off = table.schema.field_offset(f)
                        for r in range(bs, be):
                            if not selected[r]:
                                continue
                            ops.append(
                                Store(placement.addr_of(r, off), fb)
                            )
                ops.append(
                    Compute(
                        self._cycles(
                            self.cost.project_field * nsel
                            * len(write_fields)
                        )
                    )
                )
            ops_per_core.append(ops)
        rows = np.flatnonzero(selected)
        for f, v in query.assignments:
            table.values[rows, f] = v
        return ExecutorOutput(ops_per_core, int(len(rows)), int(len(rows)))

    # --------------------------------------------------------------- INSERT

    def _build_insert(self, query: InsertQuery) -> ExecutorOutput:
        table = self.tables[query.table]
        key = f"{query.table}+insert"
        placement = self.placements[key]
        n = query.n_records or table.n_records
        n = min(n, placement.table.n_records)
        rb = table.schema.record_bytes
        lines = max(1, rb // self.line_bytes)
        ops_per_core = []
        for segments in self._partition(n, placement):
            ops: List[MemOp] = []
            for r in (r for bs, be in segments for r in range(bs, be)):
                if placement.contiguous_records:
                    for offset in range(0, rb, self.line_bytes):
                        size = min(self.line_bytes, rb - offset)
                        ops.append(
                            Store(placement.addr_of(r, offset), size)
                        )
                else:
                    fb = table.schema.field_bytes
                    for f in range(table.schema.n_fields):
                        off = table.schema.field_offset(f)
                        ops.append(
                            Store(placement.addr_of(r, off), fb)
                        )
                ops.append(
                    Compute(self._cycles(self.cost.insert_line * lines))
                )
            ops_per_core.append(ops)
        return ExecutorOutput(ops_per_core, n, n)

    # ----------------------------------------------------------------- JOIN

    def _build_join(self, query: JoinQuery) -> ExecutorOutput:
        build = self.tables[query.build_table]
        probe = self.tables[query.probe_table]
        build_pl = self.placements[query.build_table]
        probe_pl = self.placements[query.probe_table]
        key = query.key_field
        extra = query.extra_compare_field

        # ground truth: hash join on the key
        build_keys: Dict[int, List[int]] = {}
        for i, value in enumerate(build.column(key)):
            build_keys.setdefault(int(value), []).append(i)
        matches = 0
        probe_match = np.zeros(probe.n_records, dtype=bool)
        for i, value in enumerate(probe.column(key)):
            for j in build_keys.get(int(value), ()):
                if extra is None or (
                    probe.values[i, extra] > build.values[j, extra]
                ):
                    matches += 1
                    probe_match[i] = True

        build_fields = [key, query.project_build]
        if extra is not None:
            build_fields.append(extra)
        probe_fields = [key] + ([extra] if extra is not None else [])

        ops_per_core = []
        build_parts = self._partition(build.n_records, build_pl)
        probe_parts = self._partition(probe.n_records, probe_pl)
        for core in range(self.config.cores):
            ops: List[MemOp] = []
            # build phase (each core hashes its slice of the build table)
            for bs, be in build_parts[core]:
                self._emit_field_access(
                    ops, build_pl, build, bs, be, build_fields, None
                )
                ops.append(
                    Compute(self._cycles(self.cost.hash_build * (be - bs)))
                )
            # probe phase
            for bs, be in probe_parts[core]:
                self._emit_field_access(
                    ops, probe_pl, probe, bs, be, probe_fields, None
                )
                ops.append(
                    Compute(self._cycles(self.cost.hash_probe * (be - bs)))
                )
                nsel = int(probe_match[bs:be].sum())
                if nsel:
                    self._emit_field_access(
                        ops, probe_pl, probe, bs, be,
                        [query.project_probe], probe_match,
                    )
                    ops.append(
                        Compute(self._cycles(self.cost.project_field * nsel))
                    )
            ops_per_core.append(ops)
        return ExecutorOutput(ops_per_core, matches, matches)
