"""Query execution: plan -> lower -> per-core op streams + results.

The executor is now a thin orchestrator over the planning IR:

* :mod:`repro.imdb.plan` defines the logical/physical plan nodes,
* :mod:`repro.imdb.planner` chooses the access mode per operator
  (strided vs plain, the paper's Figure 15 crossover) and costs it,
* :mod:`repro.imdb.lowering` turns the chosen plan into memory ops.

What stays here is the part simulation cannot outsource: the *ground
truth*.  The executor computes the actual query answer from the table
data (and applies updates/inserts), so correctness of every scheme's
access plan is checkable -- a plan that skips data the query needs would
produce the wrong answer in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.scheme import AccessScheme, Placement
from ..cpu.ops import MemOp
from ..sim.config import SystemConfig
from .lowering import Lowering
from .plan import CostModel, PhysicalPlan, selected_mask
from .planner import Planner, join_matches
from .query import (
    AggregateQuery,
    InsertQuery,
    JoinQuery,
    Query,
    SelectQuery,
    UpdateQuery,
)
from .schema import Table

__all__ = ["CostModel", "ExecutorOutput", "QueryExecutor"]


@dataclass
class ExecutorOutput:
    """Per-core op streams, the chosen plan, and the ground-truth result."""

    ops_per_core: List[List[MemOp]]
    result: object
    selected_records: int = 0
    plan: Optional[PhysicalPlan] = None

    @property
    def total_ops(self) -> int:
        return sum(len(ops) for ops in self.ops_per_core)


class QueryExecutor:
    """Plans and lowers queries for one scheme over one set of placed
    tables, and computes the ground-truth answers."""

    def __init__(
        self,
        scheme: AccessScheme,
        config: SystemConfig,
        tables: Dict[str, Table],
        placements: Dict[str, Placement],
        cost: Optional[CostModel] = None,
    ) -> None:
        self.scheme = scheme
        self.config = config
        self.tables = tables
        self.placements = placements
        self.cost = cost or CostModel()
        self.line_bytes = scheme.geometry.cacheline_bytes
        self.planner = Planner(scheme, config, tables, placements, self.cost)
        self.lowering = Lowering(scheme, config, tables, placements,
                                 self.cost)

    # ------------------------------------------------------------ dispatch

    def build(self, query: Query) -> ExecutorOutput:
        if isinstance(query, SelectQuery):
            return self._build_select(query)
        if isinstance(query, AggregateQuery):
            return self._build_aggregate(query)
        if isinstance(query, UpdateQuery):
            return self._build_update(query)
        if isinstance(query, InsertQuery):
            return self._build_insert(query)
        if isinstance(query, JoinQuery):
            return self._build_join(query)
        raise TypeError(f"unknown query {query!r}")

    # --------------------------------------------------------------- SELECT

    def _build_select(self, query: SelectQuery) -> ExecutorOutput:
        table = self.tables[query.table]
        selected = selected_mask(table, query.predicate)
        n = table.n_records
        if query.limit is not None:
            n = min(n, query.limit)
            selected = selected.copy()
            selected[n:] = False

        plan = self.planner.plan(query, selected=selected)
        ops_per_core = self.lowering.lower(query, plan, selected=selected)

        rows = np.flatnonzero(selected[:n])
        if query.projected is None:
            result = (len(rows), int(table.values[rows].sum()) if len(rows)
                      else 0)
        else:
            cols = list(query.projected)
            data = table.values[np.ix_(rows, cols)] if len(rows) else None
            result = (
                len(rows),
                int(data.sum()) if data is not None else 0,
            )
        return ExecutorOutput(ops_per_core, result, int(len(rows)), plan)

    # ------------------------------------------------------------ AGGREGATE

    def _build_aggregate(self, query: AggregateQuery) -> ExecutorOutput:
        table = self.tables[query.table]
        selected = selected_mask(table, query.predicate)

        plan = self.planner.plan(query, selected=selected)
        ops_per_core = self.lowering.lower(query, plan, selected=selected)

        rows = np.flatnonzero(selected)
        sums = {
            f: int(table.column(f)[rows].sum()) if len(rows) else 0
            for f in query.fields
        }
        if query.func == "AVG" and len(rows):
            result = {f: sums[f] / len(rows) for f in query.fields}
        else:
            result = sums
        return ExecutorOutput(ops_per_core, result, int(len(rows)), plan)

    # --------------------------------------------------------------- UPDATE

    def _build_update(self, query: UpdateQuery) -> ExecutorOutput:
        table = self.tables[query.table]
        selected = selected_mask(table, query.predicate)

        plan = self.planner.plan(query, selected=selected)
        ops_per_core = self.lowering.lower(query, plan, selected=selected)

        rows = np.flatnonzero(selected)
        for f, v in query.assignments:
            table.values[rows, f] = v
        return ExecutorOutput(ops_per_core, int(len(rows)), int(len(rows)),
                              plan)

    # --------------------------------------------------------------- INSERT

    def _build_insert(self, query: InsertQuery) -> ExecutorOutput:
        plan = self.planner.plan(query)
        ops_per_core = self.lowering.lower(query, plan)
        n = plan.node("insert").records
        return ExecutorOutput(ops_per_core, n, n, plan)

    # ----------------------------------------------------------------- JOIN

    def _build_join(self, query: JoinQuery) -> ExecutorOutput:
        build = self.tables[query.build_table]
        probe = self.tables[query.probe_table]
        matches, probe_match = join_matches(
            build, probe, query.key_field, query.extra_compare_field
        )

        plan = self.planner.plan(query, probe_match=probe_match)
        ops_per_core = self.lowering.lower(
            query, plan, probe_match=probe_match
        )
        return ExecutorOutput(ops_per_core, matches, matches, plan)
