"""In-memory database workload: schemas, queries, executor."""

from .executor import CostModel, ExecutorOutput, QueryExecutor
from .queries import (
    aggregate_query,
    all_queries,
    arithmetic_query,
    by_name,
    q_queries,
    qs_queries,
)
from .query import (
    AggregateQuery,
    Conjunct,
    InsertQuery,
    JoinQuery,
    Predicate,
    Query,
    SelectQuery,
    UpdateQuery,
)
from .schema import FIELD_BYTES, PREDICATE_RANGE, TA, TB, Table, TableSchema
from .sql import SQLError, parse

__all__ = [
    "CostModel",
    "ExecutorOutput",
    "QueryExecutor",
    "aggregate_query",
    "all_queries",
    "arithmetic_query",
    "by_name",
    "q_queries",
    "qs_queries",
    "AggregateQuery",
    "Conjunct",
    "InsertQuery",
    "JoinQuery",
    "Predicate",
    "Query",
    "SelectQuery",
    "UpdateQuery",
    "FIELD_BYTES",
    "PREDICATE_RANGE",
    "TA",
    "TB",
    "Table",
    "TableSchema",
    "SQLError",
    "parse",
]
