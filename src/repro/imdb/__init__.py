"""In-memory database workload: schemas, queries, planner, executor."""

from .executor import CostModel, ExecutorOutput, QueryExecutor
from .lowering import Lowering
from .plan import (
    LogicalNode,
    LogicalPlan,
    PhysicalNode,
    PhysicalPlan,
    logical_plan,
    selected_mask,
)
from .planner import Planner, ideal_choice, join_matches, plan_for
from .queries import (
    aggregate_query,
    all_queries,
    arithmetic_query,
    by_name,
    q_queries,
    qs_queries,
)
from .query import (
    AggregateQuery,
    Conjunct,
    InsertQuery,
    JoinQuery,
    Predicate,
    Query,
    SelectQuery,
    UpdateQuery,
)
from .schema import FIELD_BYTES, PREDICATE_RANGE, TA, TB, Table, TableSchema
from .sql import SQLError, parse

__all__ = [
    "CostModel",
    "ExecutorOutput",
    "QueryExecutor",
    "Lowering",
    "LogicalNode",
    "LogicalPlan",
    "PhysicalNode",
    "PhysicalPlan",
    "Planner",
    "ideal_choice",
    "join_matches",
    "logical_plan",
    "plan_for",
    "selected_mask",
    "aggregate_query",
    "all_queries",
    "arithmetic_query",
    "by_name",
    "q_queries",
    "qs_queries",
    "AggregateQuery",
    "Conjunct",
    "InsertQuery",
    "JoinQuery",
    "Predicate",
    "Query",
    "SelectQuery",
    "UpdateQuery",
    "FIELD_BYTES",
    "PREDICATE_RANGE",
    "TA",
    "TB",
    "Table",
    "TableSchema",
    "SQLError",
    "parse",
]
