"""Op lowering: :class:`PhysicalPlan` -> per-core memory-op streams.

The lowering layer is the software half of the paper's system support:
it knows the scheme's strided granularity, aligns work to the database
placement (Section 5.4.1) and emits ``sload``/``sstore`` groups for
stride-capable designs, or plain loads/stores otherwise.  It makes *no*
decisions: every access mode, footprint and batch size is read off the
physical plan the :class:`~repro.imdb.planner.Planner` chose, which is
what lets the :class:`repro.check.PlanValidator` diff the emitted
requests against the plan's declared footprints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.scheme import AccessScheme, Placement
from ..cpu.ops import Compute, GatherLoad, GatherStore, Load, MemOp, Store
from ..sim.config import SystemConfig
from .plan import CostModel, PhysicalNode, PhysicalPlan
from .query import (
    AggregateQuery,
    InsertQuery,
    JoinQuery,
    Query,
    SelectQuery,
    UpdateQuery,
)
from .schema import Table


class Lowering:
    """Lowers physical plans for one scheme over one set of placements."""

    def __init__(
        self,
        scheme: AccessScheme,
        config: SystemConfig,
        tables: Dict[str, Table],
        placements: Dict[str, Placement],
        cost: Optional[CostModel] = None,
    ) -> None:
        self.scheme = scheme
        self.config = config
        self.tables = tables
        self.placements = placements
        self.cost = cost or CostModel()
        self.line_bytes = scheme.geometry.cacheline_bytes

    # ------------------------------------------------------------- helpers

    def _cycles(self, cpu_cycles: float) -> float:
        return self.config.compute_cycles(cpu_cycles)

    def partition(self, n: int, batch: int,
                  placement: Optional[Placement] = None
                  ) -> List[List[Tuple[int, int]]]:
        """Round-robin chunk assignment: core ``c`` processes chunks
        ``c, c + cores, c + 2*cores, ...`` (static interleaved scheduling,
        the usual parallel-scan decomposition; contiguous partitions would
        put every core on the same bank in lockstep whenever the partition
        size resonates with the bank interleave).  Chunks are split into
        operator batches; the chunk size honours the placement's
        partition granularity so vertical layouts keep workers on
        separate banks."""
        cores = self.config.cores
        chunk = batch
        if placement is not None:
            gran = placement.partition_granularity
            chunk = max(batch, (gran + batch - 1) // batch * batch)
        parts: List[List[Tuple[int, int]]] = [[] for _ in range(cores)]
        index = 0
        for cs in range(0, n, chunk):
            ce = min(n, cs + chunk)
            core = index % cores
            for bs in range(cs, ce, batch):
                parts[core].append((bs, min(ce, bs + batch)))
            index += 1
        return parts

    def _groups(self, start: int, end: int):
        g = self.scheme.gather_factor
        for gs in range(start, end, g):
            yield gs, min(end, gs + g)

    @staticmethod
    def coalesce(segments):
        """Merge adjacent (start, end) segments into maximal runs."""
        merged: List[Tuple[int, int]] = []
        for bs, be in segments:
            if merged and merged[-1][1] == bs:
                merged[-1] = (merged[-1][0], be)
            else:
                merged.append((bs, be))
        return merged

    # ----------------------------------------------------- field-wise scans

    def _field_access(
        self,
        ops: List[MemOp],
        placement: Placement,
        table: Table,
        bs: int,
        be: int,
        node: PhysicalNode,
        selected: Optional[np.ndarray],
    ) -> None:
        """Access ``node``'s fields for records [bs, be), column-at-a-time.

        Field-major order across the whole batch: every gather (or load)
        stream for one field finishes before the next field starts, the
        vectorized execution style that amortizes RC-NVM's column-to-column
        switches over a batch instead of paying one per record group.
        ``selected`` skips record groups with no selected member (the
        hardware still gathers whole groups).
        """
        if node.mode == "strided":
            for offset in node.sector_offsets:
                for gs, ge in self._groups(bs, be):
                    if selected is not None and not selected[gs:ge].any():
                        continue
                    ops.append(
                        GatherLoad(
                            [placement.addr_of(r, offset)
                             for r in range(gs, ge)]
                        )
                    )
            if node.writes:
                for offset in node.sector_offsets:
                    for gs, ge in self._groups(bs, be):
                        if (selected is not None
                                and not selected[gs:ge].any()):
                            continue
                        ops.append(
                            GatherStore(
                                [placement.addr_of(r, offset)
                                 for r in range(gs, ge)]
                            )
                        )
            return
        if node.mode == "vector":
            # Pure column store: a field's values are consecutive, so the
            # scan uses full-line vector loads (8 records per load).
            fb = table.schema.field_bytes
            per_line = self.line_bytes // fb
            for f in sorted(set(node.fields)):
                off = table.schema.field_offset(f)
                for cs in range(bs, be, per_line):
                    ce = min(be, cs + per_line)
                    if selected is not None and not selected[cs:ce].any():
                        continue
                    ops.append(
                        Load(placement.addr_of(cs, off), fb * (ce - cs))
                    )
            return
        if node.mode == "stores":
            for offset, size in node.line_spans:
                for r in range(bs, be):
                    if selected is not None and not selected[r]:
                        continue
                    ops.append(Store(placement.addr_of(r, offset), size))
            return
        # "spans" / "fields": per-record loads of the declared spans
        for offset, size in node.line_spans:
            for r in range(bs, be):
                if selected is not None and not selected[r]:
                    continue
                ops.append(Load(placement.addr_of(r, offset), size))

    def _record_read(
        self,
        ops: List[MemOp],
        placement: Placement,
        table: Table,
        record: int,
        skip_line: Optional[int] = None,
    ) -> None:
        """Row-mode read of one whole record.

        Contiguous placements read line by line; a column-major placement
        must touch every field region separately -- the reason the pure
        column store collapses on row-preferring queries.
        """
        rb = table.schema.record_bytes
        if placement.contiguous_records:
            for offset in range(0, rb, self.line_bytes):
                if (skip_line is not None
                        and offset // self.line_bytes == skip_line):
                    continue
                size = min(self.line_bytes, rb - offset)
                ops.append(Load(placement.addr_of(record, offset), size))
            return
        fb = table.schema.field_bytes
        for f in range(table.schema.n_fields):
            off = table.schema.field_offset(f)
            if skip_line is not None and off // self.line_bytes == skip_line:
                continue
            ops.append(Load(placement.addr_of(record, off), fb))

    # ------------------------------------------------------------ dispatch

    def lower(
        self,
        query: Query,
        plan: PhysicalPlan,
        selected: Optional[np.ndarray] = None,
        probe_match: Optional[np.ndarray] = None,
    ) -> List[List[MemOp]]:
        """Per-core op streams realizing ``plan`` for ``query``."""
        if isinstance(query, SelectQuery):
            if plan.mode == "row":
                return self._lower_select_row(query, plan, selected)
            return self._lower_select_column(query, plan, selected)
        if isinstance(query, AggregateQuery):
            return self._lower_aggregate(query, plan, selected)
        if isinstance(query, UpdateQuery):
            return self._lower_update(query, plan, selected)
        if isinstance(query, InsertQuery):
            return self._lower_insert(query, plan)
        if isinstance(query, JoinQuery):
            return self._lower_join(query, plan, probe_match)
        raise TypeError(f"unknown query {query!r}")

    # --------------------------------------------------------------- SELECT

    def _lower_select_column(self, query: SelectQuery, plan: PhysicalPlan,
                             selected: np.ndarray) -> List[List[MemOp]]:
        table = self.tables[query.table]
        placement = self.placements[query.table]
        filter_node = plan.node("filter")
        out_node = plan.node("project") or plan.node("materialize")
        n = out_node.records
        ops_per_core = []
        for segments in self.partition(n, plan.batch_records, placement):
            ops: List[MemOp] = []
            for bs, be in segments:
                size = be - bs
                if filter_node is not None:
                    self._field_access(
                        ops, placement, table, bs, be, filter_node, None
                    )
                    ops.append(
                        Compute(
                            self._cycles(self.cost.predicate_eval * size)
                        )
                    )
                nsel = int(selected[bs:be].sum())
                if nsel == 0:
                    continue
                if query.projected is None:
                    # SELECT *: fall back to row reads of selected records
                    for r in range(bs, be):
                        if selected[r]:
                            self._record_read(ops, placement, table, r)
                    lines = table.schema.record_bytes // self.line_bytes
                    ops.append(
                        Compute(
                            self._cycles(
                                self.cost.materialize_line
                                * max(1, lines) * nsel
                            )
                        )
                    )
                else:
                    self._field_access(
                        ops, placement, table, bs, be, out_node, selected
                    )
                    ops.append(
                        Compute(
                            self._cycles(
                                self.cost.project_field
                                * nsel * len(query.projected)
                            )
                        )
                    )
            ops_per_core.append(ops)
        return ops_per_core

    def _lower_select_row(self, query: SelectQuery, plan: PhysicalPlan,
                          selected: np.ndarray) -> List[List[MemOp]]:
        table = self.tables[query.table]
        placement = self.placements[query.table]
        filter_node = plan.node("filter")
        mat_node = plan.node("materialize")
        n = mat_node.records
        lines = max(1, table.schema.record_bytes // self.line_bytes)
        ops_per_core = []
        for segments in self.partition(n, plan.batch_records, placement):
            ops: List[MemOp] = []
            for r in (r for bs, be in segments for r in range(bs, be)):
                if filter_node is not None:
                    for offset, size in filter_node.line_spans:
                        ops.append(Load(placement.addr_of(r, offset), size))
                    ops.append(
                        Compute(self._cycles(self.cost.predicate_eval))
                    )
                    if not selected[r]:
                        continue
                    self._record_read(
                        ops, placement, table, r,
                        skip_line=mat_node.skip_line,
                    )
                else:
                    self._record_read(ops, placement, table, r)
                ops.append(
                    Compute(
                        self._cycles(self.cost.materialize_line * lines)
                    )
                )
            ops_per_core.append(ops)
        return ops_per_core

    # ------------------------------------------------------------ AGGREGATE

    def _lower_aggregate(self, query: AggregateQuery, plan: PhysicalPlan,
                         selected: np.ndarray) -> List[List[MemOp]]:
        table = self.tables[query.table]
        placement = self.placements[query.table]
        filter_node = plan.node("filter")
        agg_node = plan.node("aggregate")
        ops_per_core = []
        for segments in self.partition(table.n_records, plan.batch_records, placement):
            ops: List[MemOp] = []
            # Aggregates process each field independently over the whole
            # chunk (field-at-a-time): this is what relieves RC-NVM's
            # column-to-column switching in Figure 15(g)/(h).
            for bs, be in self.coalesce(segments):
                size = be - bs
                if filter_node is not None:
                    self._field_access(
                        ops, placement, table, bs, be, filter_node, None
                    )
                    ops.append(
                        Compute(self._cycles(self.cost.predicate_eval * size))
                    )
                nsel = int(selected[bs:be].sum())
                if nsel == 0:
                    continue
                self._field_access(
                    ops, placement, table, bs, be, agg_node, selected
                )
                ops.append(
                    Compute(
                        self._cycles(
                            self.cost.aggregate_value
                            * nsel * len(query.fields)
                        )
                    )
                )
            ops_per_core.append(ops)
        return ops_per_core

    # --------------------------------------------------------------- UPDATE

    def _lower_update(self, query: UpdateQuery, plan: PhysicalPlan,
                      selected: np.ndarray) -> List[List[MemOp]]:
        table = self.tables[query.table]
        placement = self.placements[query.table]
        filter_node = plan.node("filter")
        write_node = plan.node("update")
        write_fields = [f for f, _v in query.assignments]
        ops_per_core = []
        for segments in self.partition(table.n_records, plan.batch_records, placement):
            ops: List[MemOp] = []
            for bs, be in segments:
                size = be - bs
                self._field_access(
                    ops, placement, table, bs, be, filter_node, None
                )
                ops.append(
                    Compute(self._cycles(self.cost.predicate_eval * size))
                )
                nsel = int(selected[bs:be].sum())
                if nsel == 0:
                    continue
                # strided: sload the target sectors, patch, sstore them
                # back; otherwise per-field stores of selected records
                self._field_access(
                    ops, placement, table, bs, be, write_node, selected
                )
                ops.append(
                    Compute(
                        self._cycles(
                            self.cost.project_field * nsel
                            * len(write_fields)
                        )
                    )
                )
            ops_per_core.append(ops)
        return ops_per_core

    # --------------------------------------------------------------- INSERT

    def _lower_insert(self, query: InsertQuery,
                      plan: PhysicalPlan) -> List[List[MemOp]]:
        table = self.tables[query.table]
        insert_node = plan.node("insert")
        placement = self.placements[insert_node.table]
        n = insert_node.records
        rb = table.schema.record_bytes
        lines = max(1, rb // self.line_bytes)
        ops_per_core = []
        for segments in self.partition(n, plan.batch_records, placement):
            ops: List[MemOp] = []
            for r in (r for bs, be in segments for r in range(bs, be)):
                if placement.contiguous_records:
                    for offset in range(0, rb, self.line_bytes):
                        size = min(self.line_bytes, rb - offset)
                        ops.append(
                            Store(placement.addr_of(r, offset), size)
                        )
                else:
                    fb = table.schema.field_bytes
                    for f in range(table.schema.n_fields):
                        off = table.schema.field_offset(f)
                        ops.append(
                            Store(placement.addr_of(r, off), fb)
                        )
                ops.append(
                    Compute(self._cycles(self.cost.insert_line * lines))
                )
            ops_per_core.append(ops)
        return ops_per_core

    # ----------------------------------------------------------------- JOIN

    def _lower_join(self, query: JoinQuery, plan: PhysicalPlan,
                    probe_match: np.ndarray) -> List[List[MemOp]]:
        build = self.tables[query.build_table]
        probe = self.tables[query.probe_table]
        build_pl = self.placements[query.build_table]
        probe_pl = self.placements[query.probe_table]
        build_node = plan.node("hash-build")
        probe_node = plan.node("hash-probe")
        project_node = plan.node("project")

        ops_per_core = []
        build_parts = self.partition(build.n_records, plan.batch_records, build_pl)
        probe_parts = self.partition(probe.n_records, plan.batch_records, probe_pl)
        for core in range(self.config.cores):
            ops: List[MemOp] = []
            # build phase (each core hashes its slice of the build table)
            for bs, be in build_parts[core]:
                self._field_access(
                    ops, build_pl, build, bs, be, build_node, None
                )
                ops.append(
                    Compute(self._cycles(self.cost.hash_build * (be - bs)))
                )
            # probe phase
            for bs, be in probe_parts[core]:
                self._field_access(
                    ops, probe_pl, probe, bs, be, probe_node, None
                )
                ops.append(
                    Compute(self._cycles(self.cost.hash_probe * (be - bs)))
                )
                nsel = int(probe_match[bs:be].sum())
                if nsel:
                    self._field_access(
                        ops, probe_pl, probe, bs, be, project_node,
                        probe_match,
                    )
                    ops.append(
                        Compute(self._cycles(self.cost.project_field * nsel))
                    )
            ops_per_core.append(ops)
        return ops_per_core
