"""The benchmark queries of Table 3.

Q1-Q12 come from the RC-NVM benchmark (all prefer a column store); Qs1-Qs6
are the paper's supplements that prefer a row store.  Selectivities follow
Section 6.1: 25% for the ``f10 > x`` filters, "mostly false" (~1%) for Q2,
equality matches (~1%) for the updates.  Q9/Q10's two-conjunct filters use
50% per conjunct so the conjunction also keeps 25%.
"""

from __future__ import annotations

from typing import Dict, List

from .query import (
    AggregateQuery,
    InsertQuery,
    JoinQuery,
    Predicate,
    Query,
    SelectQuery,
    UpdateQuery,
)

_P25 = Predicate.where(10, ">", 0.25)
_P_RARE = Predicate.where(10, ">", 0.01)
_P_EQ = Predicate.where(10, "==", 0.01)


def _two_conjuncts(f1: int, f2: int) -> Predicate:
    return Predicate(
        (
            Predicate.where(f1, ">", 0.5).conjuncts[0],
            Predicate.where(f2, "<", 0.5).conjuncts[0],
        )
    )


def q_queries() -> List[Query]:
    """Q1-Q12: the column-store-friendly half of the benchmark."""
    return [
        SelectQuery("Q1", "Ta", (3, 4), _P25),
        SelectQuery("Q2", "Tb", None, _P_RARE),
        AggregateQuery("Q3", "Ta", "SUM", (9,), _P25),
        AggregateQuery("Q4", "Tb", "SUM", (9,), _P25),
        AggregateQuery("Q5", "Ta", "AVG", (1,), _P25),
        AggregateQuery("Q6", "Tb", "AVG", (1,), _P25),
        JoinQuery(
            "Q7",
            build_table="Tb",
            probe_table="Ta",
            key_field=9,
            extra_compare_field=1,
            project_probe=3,
            project_build=4,
        ),
        JoinQuery(
            "Q8",
            build_table="Tb",
            probe_table="Ta",
            key_field=9,
            extra_compare_field=None,
            project_probe=3,
            project_build=4,
        ),
        SelectQuery("Q9", "Ta", (3, 4), _two_conjuncts(1, 9)),
        SelectQuery("Q10", "Ta", (3, 4), _two_conjuncts(1, 2)),
        UpdateQuery("Q11", "Tb", ((3, 7), (4, 11)), _P_EQ),
        UpdateQuery("Q12", "Tb", ((9, 13),), _P_EQ),
    ]


def qs_queries() -> List[Query]:
    """Qs1-Qs6: the row-store-friendly supplements."""
    return [
        SelectQuery("Qs1", "Ta", None, None, limit=1024, prefers="row"),
        SelectQuery("Qs2", "Tb", None, None, limit=1024, prefers="row"),
        SelectQuery("Qs3", "Ta", None, _P25, prefers="row"),
        SelectQuery("Qs4", "Tb", None, _P25, prefers="row"),
        InsertQuery("Qs5", "Ta", n_records=0, prefers="row"),  # 0 = whole-table
        InsertQuery("Qs6", "Tb", n_records=0, prefers="row"),
    ]


def all_queries() -> List[Query]:
    return q_queries() + qs_queries()


def by_name() -> Dict[str, Query]:
    return {q.name: q for q in all_queries()}


def arithmetic_query(
    projected_fields: int,
    selectivity: float,
    n_table_fields: int = 128,
    seed: int = 7,
) -> SelectQuery:
    """Figure 15's arithmetic query: SELECT fi + fj + ... FROM Ta WHERE
    f0 < x, with ``projected_fields`` chosen in a fixed pseudo-random
    pattern (the paper projects fields "in a random manner")."""
    import random

    rng = random.Random(seed)
    candidates = [f for f in range(1, n_table_fields)]
    fields = tuple(sorted(rng.sample(candidates,
                                     min(projected_fields,
                                         len(candidates)))))
    return SelectQuery(
        f"Arith[p={projected_fields},s={selectivity:.2f}]",
        "Ta",
        fields,
        Predicate.where(0, "<", selectivity),
    )


def aggregate_query(
    projected_fields: int,
    selectivity: float,
    n_table_fields: int = 128,
    seed: int = 7,
) -> AggregateQuery:
    """Figure 15's aggregate query: SELECT AVG(fi), ..., AVG(fj)."""
    import random

    rng = random.Random(seed)
    candidates = [f for f in range(1, n_table_fields)]
    fields = tuple(sorted(rng.sample(candidates,
                                     min(projected_fields,
                                         len(candidates)))))
    return AggregateQuery(
        f"Aggr[p={projected_fields},s={selectivity:.2f}]",
        "Ta",
        "AVG",
        fields,
        Predicate.where(0, "<", selectivity),
    )
