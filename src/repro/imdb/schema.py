"""Table schemas and synthetic data (Section 6.1).

The paper's benchmark uses two tables: a wide table *Ta* with 128 fields
and a narrow table *Tb* with 16 fields, every field 8 bytes (records of
1KB and 128B).  Field ``f10`` drives most predicates; its values are drawn
uniformly so a threshold hits any target selectivity exactly in
expectation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

FIELD_BYTES = 8
#: predicate fields are drawn uniformly from [0, PREDICATE_RANGE)
PREDICATE_RANGE = 10_000


@dataclass(frozen=True)
class TableSchema:
    """Shape of one relational table."""

    name: str
    n_fields: int
    field_bytes: int = FIELD_BYTES

    @property
    def record_bytes(self) -> int:
        return self.n_fields * self.field_bytes

    def field_offset(self, field: int) -> int:
        if not 0 <= field < self.n_fields:
            raise IndexError(f"field {field} out of range for {self.name}")
        return field * self.field_bytes


#: Table 3's schemas.
TA = TableSchema("Ta", n_fields=128)
TB = TableSchema("Tb", n_fields=16)


class Table:
    """A materialized table: values as an (n_records, n_fields) array."""

    def __init__(self, schema: TableSchema, n_records: int,
                 seed: int = 0) -> None:
        if n_records <= 0:
            raise ValueError("a table needs at least one record")
        self.schema = schema
        self.n_records = n_records
        rng = np.random.default_rng(seed)
        self.values = rng.integers(
            0, PREDICATE_RANGE, size=(n_records, schema.n_fields),
            dtype=np.int64,
        )

    def selectivity_threshold(self, selectivity: float) -> int:
        """Threshold x such that ``field > x`` selects ~``selectivity``."""
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError("selectivity must be in [0, 1]")
        return int(round(PREDICATE_RANGE * (1.0 - selectivity)))

    def column(self, field: int) -> np.ndarray:
        return self.values[:, field]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Table {self.schema.name} records={self.n_records} "
            f"fields={self.schema.n_fields}>"
        )
