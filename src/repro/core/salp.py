"""SALP access schemes: subarray-level parallelism on stock layouts.

Kim et al., "A Case for Exploiting Subarray-Level Parallelism (SALP) in
DRAM" (ISCA'12) overlap the precharge of one subarray with the
activation of another inside the same bank.  These schemes keep the
baseline row-store layout and stock x4 interface -- all the benefit
comes from the memory controller driving the subarray state machine
(``salp_mode``), which makes bank conflicts between requests landing in
*different* subarrays nearly as cheap as bank-level parallelism:

* :class:`SALP1Scheme` -- SALP-1: an ACT to a different subarray needs
  only the shared row-logic re-arm delay (tRA) instead of waiting out
  the previous subarray's full tRP.  Requires per-subarray precharge
  wiring only (~0.15% area).
* :class:`SALP2Scheme` -- SALP-2: two subarrays activated concurrently,
  the newer one owning the shared global sense amplifiers; additionally
  overlaps tRAS/write-recovery with the next activation.
* :class:`MASAScheme` -- MASA: many activated subarrays with an explicit
  ``SA_SEL`` designation switch before column commands, exposing full
  subarray-level bank parallelism.
* :class:`SAMEnMASAScheme` -- SAM-en's stride hardware composed with a
  MASA controller: strided (column) traffic uses SAM's mappings while
  row-wise traffic (and the bank conflicts SAM-en cannot remap away)
  benefits from subarray overlap.

Area figures follow the paper's Table 6 (fractions of DRAM die area:
SALP-1 ~0.15%, SALP-2 ~0.25%, MASA ~0.36%); all stay below the 0.5%
threshold where the model starts scaling array latencies.

The ``salp_row_derate`` values feed the query planner's row-path cost:
row-wise scans hit serialized row conflicts, which SALP overlaps, so the
effective per-line cost of a row plan drops (the derates approximate the
ISCA'12 speedups on conflict-heavy workloads: ~13% SALP-1, ~20% SALP-2,
~30% MASA).
"""

from __future__ import annotations

from ..area.overhead import AreaReport
from .placements import RowMajorPlacement
from .sam import SAMEnScheme
from .scheme import AccessScheme, Placement, SchemeTraits, TablePlacement


class _SALPBase(AccessScheme):
    """Shared shape of the pure-SALP schemes: baseline layout and
    interface, no stride hardware, a modified memory controller."""

    def __init__(self, geometry=None) -> None:
        super().__init__(geometry, gather_factor=1)

    @property
    def traits(self) -> SchemeTraits:
        return SchemeTraits(
            needs_db_alignment=False,
            needs_isa_extension=False,
            needs_sector_cache=False,
            modifies_memory_controller=True,
            # MASA's SA_SEL is a new command; SALP-1/2 reuse the stock set
            modifies_command_interface=self.salp_mode == "masa",
        )

    def placement(self, table: TablePlacement) -> Placement:
        return RowMajorPlacement(table, self)


class SALP1Scheme(_SALPBase):
    """SALP-1: overlapped precharge via per-subarray precharge wiring."""

    name = "salp1"
    salp_mode = "salp1"
    salp_row_derate = 0.87

    @property
    def area(self) -> AreaReport:
        return AreaReport("salp1", 0.0, 0.0015, extra_metal_layers=0)


class SALP2Scheme(_SALPBase):
    """SALP-2: two concurrently activated subarrays (designated latch)."""

    name = "salp2"
    salp_mode = "salp2"
    salp_row_derate = 0.80

    @property
    def area(self) -> AreaReport:
        return AreaReport("salp2", 0.0, 0.0025, extra_metal_layers=0)


class MASAScheme(_SALPBase):
    """MASA: many activated subarrays, SA_SEL designation switching."""

    name = "masa"
    salp_mode = "masa"
    salp_row_derate = 0.70

    @property
    def area(self) -> AreaReport:
        return AreaReport("masa", 0.0, 0.0036, extra_metal_layers=0)


class SAMEnMASAScheme(SAMEnScheme):
    """SAM-en's stride mappings on a MASA (subarray-parallel) controller.

    The stride path is exactly SAM-en's; the controller additionally
    overlaps precharge/activation across subarrays, which helps the
    row-wise fraction of mixed plans and the bank conflicts between
    independent queries' regions.  Area adds MASA's subarray wiring on
    top of SAM-en's stride logic.
    """

    name = "SAM-en+masa"
    salp_mode = "masa"
    salp_row_derate = 0.70

    @property
    def area(self) -> AreaReport:
        base = super().area
        return AreaReport(
            "SAM-en+masa",
            base.wiring_fraction,
            base.logic_fraction + 0.0036,
            extra_metal_layers=base.extra_metal_layers,
            storage_fraction=base.storage_fraction,
        )
