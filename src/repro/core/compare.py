"""Qualitative comparison matrix (Table 1).

Each cell is derived from the scheme objects' traits and models rather
than hard-coded, so the matrix stays consistent with the implementation.
Symbols follow the paper: ``v`` good/unmodified, ``o`` fair/slightly
modified, ``x`` poor/modified.
"""

from __future__ import annotations

from typing import Dict

from .registry import make_scheme
from .scheme import AccessScheme

GOOD, FAIR, POOR = "v", "o", "x"

#: Table 1 row labels in paper order.
ROWS = (
    "Database Alignment",
    "ISA Extension",
    "Sector Cache or MDA Cache",
    "Memory Controller",
    "Command Interface",
    "Critical-Word-First",
    "Performance",
    "Power Consumption",
    "Area Overhead",
    "Reliability",
    "Mode Switch Delay",
)

#: Table 1 column order.
COLUMNS = (
    "RC-NVM-bit",
    "RC-NVM-wd",
    "GS-DRAM",
    "SAM-sub",
    "SAM-IO",
    "SAM-en",
)


def _performance_grade(scheme: AccessScheme) -> str:
    """Performance: NVM substrate is poor; SAM-sub's per-gather column
    activation is fair; row-gather designs are good."""
    if scheme.traits.substrate == "NVM":
        return POOR
    if scheme.name == "SAM-sub":
        return FAIR
    return GOOD


def _power_grade(scheme: AccessScheme) -> str:
    cfg = scheme.power_config
    if cfg.rram:
        return FAIR  # great on read, poor on write
    if cfg.stride_internal_bursts > 1:
        return FAIR  # SAM-IO moves unused data internally
    return GOOD


def _area_grade(scheme: AccessScheme) -> str:
    silicon = scheme.area.silicon_fraction
    if silicon >= 0.10 or scheme.area.extra_metal_layers:
        return POOR
    if silicon >= 0.02:
        return FAIR
    return GOOD


def _reliability_grade(scheme: AccessScheme) -> str:
    return GOOD if scheme.traits.ecc_compatible else POOR


def _mode_switch_grade(scheme: AccessScheme) -> str:
    return FAIR if scheme.traits.mode_switch_delay else GOOD


def grade(scheme: AccessScheme) -> Dict[str, str]:
    """One Table 1 column for ``scheme``."""
    t = scheme.traits
    # The first three rows are checkmarks in the paper for every design:
    # all of them need aligned records, an ISA hook and a sector/MDA cache.
    return {
        "Database Alignment": GOOD,
        "ISA Extension": GOOD,
        "Sector Cache or MDA Cache": GOOD,
        "Memory Controller": POOR if t.modifies_memory_controller else GOOD,
        "Command Interface": POOR if t.modifies_command_interface else GOOD,
        "Critical-Word-First": GOOD if t.critical_word_first else POOR,
        "Performance": _performance_grade(scheme),
        "Power Consumption": _power_grade(scheme),
        "Area Overhead": _area_grade(scheme),
        "Reliability": _reliability_grade(scheme),
        "Mode Switch Delay": _mode_switch_grade(scheme),
    }


def comparison_matrix() -> Dict[str, Dict[str, str]]:
    """The full Table 1: column name -> {row label -> symbol}."""
    return {name: grade(make_scheme(name)) for name in COLUMNS}


def render_table() -> str:
    """ASCII rendering of Table 1 for reports and examples."""
    matrix = comparison_matrix()
    width = max(len(r) for r in ROWS) + 2
    col_width = max(len(c) for c in COLUMNS) + 2
    lines = [" " * width + "".join(c.ljust(col_width) for c in COLUMNS)]
    for row in ROWS:
        cells = "".join(
            matrix[c][row].ljust(col_width) for c in COLUMNS
        )
        lines.append(row.ljust(width) + cells)
    return "\n".join(lines)
