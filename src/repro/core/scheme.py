"""Access-scheme abstraction.

An :class:`AccessScheme` bundles everything that distinguishes one design
of the paper's evaluation (baseline, SAM-sub/IO/en, GS-DRAM(-ecc),
RC-NVM-bit/wd, ideal):

* a *placement* -- where a table's records live in physical memory
  (Section 5.4.1's alignment strategies drive row hits and bank conflicts),
* *request lowering* -- how loads, stores, strided loads (``sload``) and
  strided stores (``sstore``) become memory-controller requests,
* *traits* -- the qualitative properties of Table 1 (ECC compatibility,
  critical-word-first, interface modifications, ...),
* the memory technology (timing preset, scaled by area overhead per
  Section 6.1) and the power configuration.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..area.overhead import AreaReport
from ..dram.address import AddressMapper
from ..dram.commands import IOMode, Request, RequestType, RowKind
from ..dram.geometry import Geometry
from ..dram.timing import TimingParams, preset
from ..power.model import PowerConfig


@dataclass(frozen=True)
class SchemeTraits:
    """The qualitative comparison axes of Table 1."""

    needs_db_alignment: bool = True
    needs_isa_extension: bool = True
    needs_sector_cache: bool = True
    modifies_memory_controller: bool = False
    modifies_command_interface: bool = False
    critical_word_first: bool = True
    ecc_compatible: bool = True
    mode_switch_delay: bool = False  # pays tRTR on stride entry/exit
    substrate: str = "DRAM"  # or "NVM"


@dataclass
class GatherPlan:
    """What one strided access does.

    ``requests`` go to the memory controller (usually one burst; embedded
    ECC schemes add more).  ``fills`` list the ``(line_addr, sector_mask)``
    pairs the cache installs when the plan completes.
    """

    requests: List[Request]
    fills: List[Tuple[int, int]] = field(default_factory=list)


class AccessScheme(abc.ABC):
    """Base class for all evaluated designs."""

    #: overridden by subclasses
    name: str = "abstract"

    #: True when one gather burst can only cover elements inside a single
    #: DRAM row (SAM-IO/en sub-row stride, GS-DRAM intra-row shift); the
    #: executor derates the effective gather factor for huge records.
    gather_within_row: bool = False

    #: False for fine-granularity (sub-ranked) designs whose fetches bring
    #: only the requested sectors instead of the whole 64B line.
    fetch_fills_whole_line: bool = True

    #: name of a forced base-timing preset; set only on clones produced by
    #: :meth:`with_timing` (substrate-swap studies), never mutated in place
    timing_override: Optional[str] = None

    #: subarray-level-parallelism mode the memory controller runs in:
    #: "none" (the default one-open-row banks), "salp1", "salp2" or
    #: "masa" (Kim et al., ISCA'12).  Orthogonal to the stride mapping,
    #: so SAM schemes can compose with it (e.g. SAM-en+masa).
    salp_mode: str = "none"

    #: planner row-path cost multiplier under SALP: overlapped
    #: precharge/activation makes row-wise plans cheaper per line touched
    #: (< 1.0 for SALP schemes, exactly 1.0 otherwise -- the planner only
    #: applies a non-1.0 derate, keeping existing schemes' cost
    #: arithmetic bit-identical)
    salp_row_derate: float = 1.0

    #: optional gather-plan observer, called as
    #: ``(kind, element_addrs, plan)`` with ``kind`` in {"read", "write"}
    #: once per *admitted* plan (repro.check.PlanValidator hook).  Set it
    #: only on a private copy of the scheme -- shared instances must stay
    #: observer-free so parallel sweeps don't cross-talk.
    plan_observer = None

    def __init__(
        self,
        geometry: Optional[Geometry] = None,
        gather_factor: int = 8,
    ) -> None:
        self.geometry = geometry or Geometry()
        self.mapper = AddressMapper(self.geometry)
        self.gather_factor = gather_factor

    # ------------------------------------------------------------ metadata

    @property
    @abc.abstractmethod
    def traits(self) -> SchemeTraits:
        """Table 1 row for this design."""

    @property
    @abc.abstractmethod
    def area(self) -> AreaReport:
        """Silicon/storage overhead (Figure 14(c))."""

    @property
    def supports_stride(self) -> bool:
        """True when the design accelerates strided accesses in hardware."""
        return self.gather_factor > 1

    @property
    def sector_bytes(self) -> int:
        """Size of one strided element (= one cache sector)."""
        line = self.geometry.cacheline_bytes
        return line // self.gather_factor if self.supports_stride else line // 4

    @property
    def sectors_per_line(self) -> int:
        return self.geometry.cacheline_bytes // self.sector_bytes

    def base_timing(self) -> TimingParams:
        """Device timing of the design's native substrate (subclass hook)."""
        return preset("DDR4-2400")

    def with_timing(self, timing_name: str) -> "AccessScheme":
        """A clone of this scheme whose base timing is forced to the named
        preset (substrate-swap studies, Figure 14(a)).  The receiver is
        left untouched, so a shared scheme instance stays immutable across
        sweep points -- a prerequisite for parallel sweep execution."""
        preset(timing_name)  # fail fast on unknown presets
        clone = copy.copy(self)
        clone.timing_override = timing_name
        return clone

    @property
    def timing(self) -> TimingParams:
        """Device timing, with array latencies scaled by area overhead
        (Section 6.1: latency grows proportionally to the core area)."""
        if self.timing_override is not None:
            base = preset(self.timing_override)
        else:
            base = self.base_timing()
        overhead = self.area.silicon_fraction
        if overhead < 0.005:
            return base
        return base.scaled(f"{base.name}+{self.name}", 1.0 + overhead)

    @property
    def power_config(self) -> PowerConfig:
        return PowerConfig(name=self.name)

    # ------------------------------------------------------------ placement

    @abc.abstractmethod
    def placement(self, table: "TablePlacement") -> "Placement":
        """Bind a table's records to physical addresses."""

    # ------------------------------------------------------------- lowering

    def lower_read(self, line_addr: int) -> List[Request]:
        """A regular 64B demand read.  Designs that keep the default data
        layout deliver the critical word first (early restart)."""
        return [
            Request(
                addr=self.mapper.decode(line_addr),
                type=RequestType.READ,
                early_restart=self.traits.critical_word_first,
            )
        ]

    def lower_write(self, line_addr: int) -> List[Request]:
        """A regular 64B writeback / streaming store."""
        return [
            Request(
                addr=self.mapper.decode(line_addr),
                type=RequestType.WRITE,
                critical=False,
            )
        ]

    def lower_gather_read(
        self, element_addrs: Sequence[int]
    ) -> Optional[GatherPlan]:
        """A strided load group; None when the design has no stride mode."""
        return None

    def lower_gather_write(
        self, element_addrs: Sequence[int]
    ) -> Optional[GatherPlan]:
        """A strided store group; None when unsupported."""
        return None

    # -------------------------------------------------------------- helpers

    def _sector_fill(self, element_addr: int) -> Tuple[int, int]:
        """(line_addr, sector_mask) for one strided element."""
        line = self.mapper.line_address(element_addr)
        offset = element_addr - line
        sector = offset // self.sector_bytes
        return line, 1 << sector

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


@dataclass(frozen=True)
class TablePlacement:
    """Static shape of one table region in memory."""

    base: int  # row-aligned physical base address
    record_bytes: int
    n_records: int

    def __post_init__(self) -> None:
        if self.base % 64:
            raise ValueError("table base must be cacheline aligned")
        if self.record_bytes <= 0 or self.n_records <= 0:
            raise ValueError("empty table placement")


class Placement(abc.ABC):
    """Maps (record, byte offset) to a flat physical address."""

    #: True when consecutive bytes of one record are physically contiguous
    #: (at least within a cacheline) -- multi-field loads may then be
    #: merged into one span.  Column-major placements scatter fields into
    #: separate regions and must load field by field.
    contiguous_records = True

    def __init__(self, table: TablePlacement, scheme: AccessScheme) -> None:
        self.table = table
        self.scheme = scheme

    @abc.abstractmethod
    def addr_of(self, record: int, offset: int) -> int:
        """Physical address of byte ``offset`` of ``record``."""

    @property
    def partition_granularity(self) -> int:
        """Smallest record chunk that keeps parallel workers on separate
        banks (vertical placements stack a whole group in one bank)."""
        return self.scheme.gather_factor

    def gather_group(self, record: int) -> Tuple[int, int]:
        """(first record, size) of the stride group containing ``record``."""
        g = self.scheme.gather_factor
        return (record - record % g, min(g, self.table.n_records))

    def element_addrs(self, first_record: int, count: int,
                      offset: int) -> List[int]:
        """Addresses of one field slice across a gather group."""
        return [
            self.addr_of(first_record + i, offset) for i in range(count)
        ]

    @property
    def footprint(self) -> int:
        """Bytes of address space the table occupies."""
        return self.table.record_bytes * self.table.n_records
