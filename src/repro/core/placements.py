"""Concrete data placements (Figure 11, Section 5.4.1).

The placement decides which DRAM rows and banks a scan touches, which is
where the performance differences between the designs come from:

* :class:`RowMajorPlacement` -- records packed consecutively.  Whole-record
  scans stream within rows (row hits); field scans touch one line per
  record.  Used by the baseline, GS-DRAM and SAM-IO / SAM-en (whose stride
  groups are *sub-rows* of one DRAM row, so row-friendly queries are
  unaffected).
* :class:`ColumnMajorPlacement` -- one region per field.  The column-store
  half of the "ideal" design.
* :class:`VerticalPlacement` -- stride groups stacked across consecutive
  rows of the *same bank* (SAM-sub's column-wise subarrays; RC-NVM's
  row/column symmetry with a much larger group).  Field gathers activate a
  column-wise subarray; consecutive whole-record reads hop rows in one
  bank and pay activation churn -- the Qs-query degradation of Figure 12.
* :class:`SegmentPlacement` -- GS-DRAM's cacheline-sized segment alignment
  (Figure 11(b)): records are split into 64B segments, and segment *s* of
  every record lives in region *s*.
"""

from __future__ import annotations

from typing import Tuple

from ..dram.address import DecodedAddress
from .scheme import AccessScheme, Placement, TablePlacement


class RowMajorPlacement(Placement):
    """Records stored back to back: ``base + record * record_bytes``."""

    def addr_of(self, record: int, offset: int) -> int:
        if not 0 <= record < self.table.n_records:
            raise IndexError(f"record {record} out of range")
        if not 0 <= offset < self.table.record_bytes:
            raise IndexError(f"offset {offset} out of range")
        return self.table.base + record * self.table.record_bytes + offset


class ColumnMajorPlacement(Placement):
    """One contiguous region per field (pure column store).

    ``field_bytes`` is the fixed field width (8B in the paper's tables);
    byte ``offset`` of a record belongs to field ``offset // field_bytes``.
    """

    contiguous_records = False
    #: a field's values for consecutive records are physically consecutive,
    #: so scans can use full-line vector loads
    field_runs_contiguous = True

    def __init__(self, table: TablePlacement, scheme: AccessScheme,
                 field_bytes: int = 8) -> None:
        super().__init__(table, scheme)
        if table.record_bytes % field_bytes:
            raise ValueError("record size must be a multiple of field size")
        self.field_bytes = field_bytes
        self.fields = table.record_bytes // field_bytes

    def addr_of(self, record: int, offset: int) -> int:
        if not 0 <= record < self.table.n_records:
            raise IndexError(f"record {record} out of range")
        field_index, within = divmod(offset, self.field_bytes)
        region = self.table.base + field_index * (
            self.table.n_records * self.field_bytes
        )
        return region + record * self.field_bytes + within


class VerticalPlacement(Placement):
    """Stride groups stacked across rows of one bank.

    Record ``r`` belongs to group ``r // group``; within the group, member
    ``m = r % group`` lives in the ``m``-th row of the group's row set, at
    the same intra-row offset.  A column-wise (ACT_COL) access then gathers
    one field from all members at once.  ``group`` is the scheme's gather
    factor for SAM-sub and a full subarray's worth of rows for RC-NVM
    (records aligned over a KB-magnitude space, Section 5.4.1).
    """

    def __init__(self, table: TablePlacement, scheme: AccessScheme,
                 group: int) -> None:
        super().__init__(table, scheme)
        if group < 2:
            raise ValueError("vertical placement needs a group of >= 2")
        self.group = group
        g = scheme.geometry
        self.row_bytes = g.row_bytes
        self.records_per_row = max(1, self.row_bytes // table.record_bytes)
        # rows per bank-sweep: addresses are encoded through the mapper so
        # that member m of a group lands in row (group_row_base + m) of the
        # same bank.
        self.mapper = scheme.mapper
        base_decoded = self.mapper.decode(table.base)
        self.base_row = base_decoded.row
        self.base_bank = base_decoded.bank
        self.base_rank = base_decoded.rank

    @property
    def partition_granularity(self) -> int:
        return self.group

    def gather_group(self, record: int) -> Tuple[int, int]:
        first = record - record % self.group
        size = min(self.group, self.table.n_records - first)
        return first, size

    def addr_of(self, record: int, offset: int) -> int:
        if not 0 <= record < self.table.n_records:
            raise IndexError(f"record {record} out of range")
        if not 0 <= offset < self.table.record_bytes:
            raise IndexError(f"offset {offset} out of range")
        group_id, member = divmod(record, self.group)
        # Groups tile across banks first (bank-level parallelism for
        # streaming scans), then along the row, then into the next band of
        # `group` rows.
        slots_per_row = self.records_per_row
        g = self.scheme.geometry
        banks = g.banks
        ranks = g.ranks
        slot, within_band = divmod(group_id, banks * ranks)
        band, column_slot = divmod(slot, slots_per_row)
        bank = (self.base_bank + within_band) % banks
        rank = (self.base_rank + within_band // banks) % ranks
        row = self.base_row + band * self.group + member
        row %= g.rows_per_bank
        byte_in_row = column_slot * self.table.record_bytes + offset
        column, within_line = divmod(byte_in_row, g.cacheline_bytes)
        return self.mapper.encode(
            DecodedAddress(
                channel=0,
                rank=rank,
                bank=bank,
                row=row,
                column=column,
                offset=within_line,
            )
        )


class SegmentPlacement(Placement):
    """GS-DRAM's segment-major layout (Figure 11(b)).

    Records are cut into 64B segments; segment ``s`` of all records forms
    one contiguous region.  Field gathers stay within one region (and one
    DRAM row per group); whole-record reads fan out over
    ``record_bytes / 64`` regions.
    """

    def __init__(self, table: TablePlacement, scheme: AccessScheme) -> None:
        super().__init__(table, scheme)
        line = scheme.geometry.cacheline_bytes
        self.segment_bytes = line
        self.segments = max(1, table.record_bytes // line)
        # records smaller than a line stay row-major within their region
        self.small_record = table.record_bytes < line

    def addr_of(self, record: int, offset: int) -> int:
        if not 0 <= record < self.table.n_records:
            raise IndexError(f"record {record} out of range")
        if not 0 <= offset < self.table.record_bytes:
            raise IndexError(f"offset {offset} out of range")
        if self.small_record:
            return self.table.base + record * self.table.record_bytes + offset
        segment, within = divmod(offset, self.segment_bytes)
        region = self.table.base + segment * (
            self.table.n_records * self.segment_bytes
        )
        return region + record * self.segment_bytes + within
