"""Scheme registry: name -> factory for every evaluated design."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..dram.geometry import Geometry
from .baseline import BaselineScheme, ColumnStoreScheme
from .gs_dram import GSDRAMEccScheme, GSDRAMScheme
from .rc_nvm import RCNVMBitScheme, RCNVMWordScheme
from .salp import MASAScheme, SALP1Scheme, SALP2Scheme, SAMEnMASAScheme
from .sam import SAMEnScheme, SAMIOScheme, SAMSubScheme
from .scheme import AccessScheme
from .subrank import SubRankScheme

_FACTORIES: Dict[str, Callable[..., AccessScheme]] = {
    "baseline": BaselineScheme,
    "column-store": ColumnStoreScheme,
    "SAM-sub": SAMSubScheme,
    "SAM-IO": SAMIOScheme,
    "SAM-en": SAMEnScheme,
    "GS-DRAM": GSDRAMScheme,
    "GS-DRAM-ecc": GSDRAMEccScheme,
    "RC-NVM-bit": RCNVMBitScheme,
    "RC-NVM-wd": RCNVMWordScheme,
    "sub-rank": SubRankScheme,
    "salp1": SALP1Scheme,
    "salp2": SALP2Scheme,
    "masa": MASAScheme,
    "SAM-en+masa": SAMEnMASAScheme,
}

#: Designs without strided-access hardware: a ``gather_factor`` is
#: meaningless for them and :func:`make_scheme` rejects non-default ones.
#: (The pure SALP schemes keep the stock interface; SAM-en+masa composes
#: MASA with SAM-en's stride hardware and stays stride-capable.)
_NO_STRIDE = frozenset({
    "baseline", "column-store", "sub-rank", "salp1", "salp2", "masa",
})

#: The designs of the SALP interaction sweep (``repro salp``): the three
#: SALP flavours alone, SAM-en alone, and the composed design.
SALP_DESIGNS = (
    "salp1",
    "salp2",
    "masa",
    "SAM-en",
    "SAM-en+masa",
)

#: The designs plotted in Figure 12, in the paper's legend order.
FIGURE12_DESIGNS = (
    "RC-NVM-bit",
    "RC-NVM-wd",
    "GS-DRAM",
    "GS-DRAM-ecc",
    "SAM-sub",
    "SAM-IO",
    "SAM-en",
)


def available_schemes() -> List[str]:
    return sorted(_FACTORIES)


def make_scheme(
    name: str,
    geometry: Optional[Geometry] = None,
    gather_factor: Optional[int] = None,
) -> AccessScheme:
    """Instantiate a design by name.

    ``gather_factor`` sets the strided granularity for stride-capable
    designs: 8 elements/burst at the 4-bit SSC-DSD granularity (the
    default of Figure 12), 4 at 8-bit SSC, 2 at 16-bit.  Designs without
    strided hardware (``baseline``, ``column-store``, ``sub-rank``)
    reject any non-default gather factor instead of silently ignoring it.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; available: {available_schemes()}"
        ) from None
    if name in _NO_STRIDE:
        if gather_factor not in (None, 1):
            raise ValueError(
                f"scheme {name!r} has no strided access hardware and "
                f"cannot honor gather_factor={gather_factor}; omit the "
                f"gather factor (or pass 1) for "
                f"{sorted(_NO_STRIDE)}"
            )
        return factory(geometry)
    if gather_factor is None:
        return factory(geometry)
    return factory(geometry, gather_factor=gather_factor)
