"""GS-DRAM (gather-scatter DRAM) and its embedded-ECC variant.

GS-DRAM drives different rows in different chips from one modified row
address, returning a cacheline's worth of strided fields per access
(Section 3.3.1).  It needs the segment alignment of Figure 11(b), modifies
the memory controller and command interface, and -- crucially -- cannot
keep chipkill (or SEC-DED) codewords intact on strided accesses:

* :class:`GSDRAMScheme` runs unprotected (fast but ``ecc_compatible``
  False -- the reliability comparisons key off this trait).
* :class:`GSDRAMEccScheme` adds embedded ECC (ECC bits stored in the data
  pages, per the paper's enhancement): every data gather needs an ECC
  gather, regular reads carry a 12.5% ECC-traffic tax, and one strided
  write updates multiple ECC codewords (the "five ECC updates" of Section
  3.3.1), modelled as read-modify-write traffic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from ..area.overhead import AreaReport, gs_dram_area, gs_dram_ecc_area
from ..dram.commands import Request, RequestType
from ..power.model import PowerConfig
from .placements import SegmentPlacement
from .scheme import (
    AccessScheme,
    GatherPlan,
    Placement,
    SchemeTraits,
    TablePlacement,
)


class GSDRAMScheme(AccessScheme):
    """GS-DRAM without ECC: the raw gather-scatter design."""

    name = "GS-DRAM"
    gather_within_row = True

    def __init__(self, geometry=None, gather_factor: int = 8) -> None:
        super().__init__(geometry, gather_factor)

    @property
    def traits(self) -> SchemeTraits:
        return SchemeTraits(
            modifies_memory_controller=True,
            modifies_command_interface=True,
            critical_word_first=False,  # words concentrated on few chips
            ecc_compatible=False,
        )

    @property
    def area(self) -> AreaReport:
        return gs_dram_area()

    @property
    def power_config(self) -> PowerConfig:
        return PowerConfig(name=self.name)

    def placement(self, table: TablePlacement) -> Placement:
        return SegmentPlacement(table, self)

    def _gather(self, element_addrs: Sequence[int],
                req_type: RequestType) -> GatherPlan:
        """Group elements by DRAM row; one access per row-resident group
        (the intra-row shift cannot cross a row)."""
        by_row: Dict[tuple, List[int]] = defaultdict(list)
        for addr in element_addrs:
            d = self.mapper.decode(addr)
            by_row[(d.rank, d.bank, d.row)].append(addr)
        requests = []
        fills = []
        for addrs in by_row.values():
            first = self.mapper.decode(addrs[0])
            requests.append(
                Request(
                    addr=first,
                    type=req_type,
                    gather=len(addrs),
                    critical=req_type is RequestType.READ,
                    internal_bursts=self._extra_internal(),
                )
            )
            requests.extend(self._ecc_requests(first, req_type))
            for addr in addrs:
                fills.append(self._sector_fill(addr))
        return GatherPlan(requests, fills)

    def _extra_internal(self) -> int:
        return 0

    def _ecc_requests(self, decoded, req_type) -> List[Request]:
        return []

    def lower_gather_read(
        self, element_addrs: Sequence[int]
    ) -> Optional[GatherPlan]:
        return self._gather(element_addrs, RequestType.READ)

    def lower_gather_write(
        self, element_addrs: Sequence[int]
    ) -> Optional[GatherPlan]:
        return self._gather(element_addrs, RequestType.WRITE)


class GSDRAMEccScheme(GSDRAMScheme):
    """GS-DRAM with embedded ECC (the fair-comparison variant).

    The embedded code restores protection but costs bandwidth:

    * every gather is followed by a same-shape ECC gather,
    * every 8th regular line read fetches the covering ECC line,
    * every write updates scattered ECC words: modelled as one extra read
      plus one extra write per strided write, and per 8th regular write.
    """

    name = "GS-DRAM-ecc"

    _ECC_LINES_PER_DATA_LINE = 8  # 8B of ECC per 64B line

    def __init__(self, geometry=None, gather_factor: int = 8) -> None:
        super().__init__(geometry, gather_factor)
        self._read_counter = 0
        self._write_counter = 0

    @property
    def traits(self) -> SchemeTraits:
        return SchemeTraits(
            modifies_memory_controller=True,
            modifies_command_interface=True,
            critical_word_first=False,
            ecc_compatible=True,  # restored via embedded ECC
        )

    @property
    def area(self) -> AreaReport:
        return gs_dram_ecc_area()

    def _ecc_line_for(self, decoded) -> "Request":
        """The ECC line covering a data line: same row, companion column
        (embedded in the same page, Section 6.2)."""
        companion = decoded.__class__(
            channel=decoded.channel,
            rank=decoded.rank,
            bank=decoded.bank,
            row=decoded.row,
            column=decoded.column ^ 1,
            offset=0,
        )
        return companion

    def _ecc_requests(self, decoded, req_type) -> List[Request]:
        ecc_addr = self._ecc_line_for(decoded)
        requests = [
            Request(addr=ecc_addr, type=RequestType.READ, critical=True)
        ]
        if req_type is RequestType.WRITE:
            # scattered ECC updates: read-modify-write of the ECC words
            requests.append(
                Request(addr=ecc_addr, type=RequestType.WRITE, critical=False)
            )
        return requests

    def lower_read(self, line_addr: int) -> List[Request]:
        requests = super().lower_read(line_addr)
        self._read_counter += 1
        if self._read_counter % self._ECC_LINES_PER_DATA_LINE == 0:
            decoded = self.mapper.decode(line_addr)
            requests.append(
                Request(
                    addr=self._ecc_line_for(decoded),
                    type=RequestType.READ,
                    critical=True,
                )
            )
        return requests

    def lower_write(self, line_addr: int) -> List[Request]:
        requests = super().lower_write(line_addr)
        self._write_counter += 1
        if self._write_counter % self._ECC_LINES_PER_DATA_LINE == 0:
            decoded = self.mapper.decode(line_addr)
            ecc_addr = self._ecc_line_for(decoded)
            requests.append(
                Request(addr=ecc_addr, type=RequestType.READ, critical=False)
            )
            requests.append(
                Request(addr=ecc_addr, type=RequestType.WRITE, critical=False)
            )
        return requests
