"""RC-NVM: dual-addressing crossbar memory (Section 3.3.2).

RC-NVM exchanges wordlines and bitlines on demand, so one bank serves both
row-wise and column-wise accesses -- but the two directions share the
array, so switching between a row and a column (or between two different
columns, e.g. when a query moves to a new field) conflicts in the bank.
Records are aligned over a KB-magnitude vertical span (Section 5.4.1), so
row-friendly scans hop rows of one bank.

* :class:`RCNVMWordScheme` ("RC-NVM-wd"): the reshaped 2K x 2K square
  subarray with word-level symmetry -- ~33% area, one column-row per field
  that *stays open* across consecutive gathers of the same field.
* :class:`RCNVMBitScheme` ("RC-NVM-bit"): bit-level symmetry -- each field
  gather must collect sub-fields with extra internal column operations
  (``internal_bursts``), but only ~15% area.

Both run on the RRAM timing preset (slow activation, very slow writes).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..area.overhead import AreaReport, rc_nvm_bit_area, rc_nvm_wd_area
from ..dram.commands import Request, RequestType, RowKind
from ..dram.timing import TimingParams, preset
from ..power.model import PowerConfig
from .placements import VerticalPlacement
from .scheme import (
    AccessScheme,
    GatherPlan,
    Placement,
    SchemeTraits,
    TablePlacement,
)

#: Records are aligned across this many rows of one bank ("a much larger
#: N, in the magnitude of KB" -- 64 rows of 1KB records span a 64KB
#: alignment unit).  Also the span over which an open column-row is
#: reused by consecutive gathers of the same field.
RC_NVM_GROUP_ROWS = 64


class _RCNVMBase(AccessScheme):
    """Shared RC-NVM behaviour; subclasses set symmetry granularity."""

    #: extra internal column operations per gather (bit-level collection)
    internal_per_gather = 0

    def __init__(self, geometry=None, gather_factor: int = 8) -> None:
        super().__init__(geometry, gather_factor)

    def base_timing(self) -> TimingParams:
        return preset("RRAM")

    @property
    def traits(self) -> SchemeTraits:
        # dual addressing is selected through a mode bit as well
        return SchemeTraits(substrate="NVM", mode_switch_delay=True)

    @property
    def power_config(self) -> PowerConfig:
        return PowerConfig(name=self.name, rram=True)

    def placement(self, table: TablePlacement) -> Placement:
        group = min(RC_NVM_GROUP_ROWS, max(self.gather_factor,
                                           table.n_records))
        return VerticalPlacement(table, self, group=group)

    def _column_row_id(self, decoded) -> int:
        """Column-rows are per (vertical region, field column) and remain
        open across consecutive gathers of the same field."""
        region = decoded.row - decoded.row % RC_NVM_GROUP_ROWS
        field_column = decoded.column * (
            self.geometry.cacheline_bytes // self.sector_bytes
        ) + decoded.offset // self.sector_bytes
        return (region << (self.mapper.column_bits + 4)) | field_column

    def _gather(self, element_addrs: Sequence[int],
                req_type: RequestType) -> GatherPlan:
        first = self.mapper.decode(element_addrs[0])
        synthetic = first.__class__(
            channel=first.channel,
            rank=first.rank,
            bank=first.bank,
            row=self._column_row_id(first),
            column=first.column,
            offset=first.offset,
        )
        request = Request(
            addr=synthetic,
            type=req_type,
            row_kind=RowKind.COLUMN,
            gather=len(element_addrs),
            internal_bursts=self.internal_per_gather,
            critical=req_type is RequestType.READ,
        )
        fills = [self._sector_fill(a) for a in element_addrs]
        return GatherPlan([request], fills)

    def lower_gather_read(
        self, element_addrs: Sequence[int]
    ) -> Optional[GatherPlan]:
        return self._gather(element_addrs, RequestType.READ)

    def lower_gather_write(
        self, element_addrs: Sequence[int]
    ) -> Optional[GatherPlan]:
        return self._gather(element_addrs, RequestType.WRITE)


class RCNVMWordScheme(_RCNVMBase):
    """RC-NVM with the reshaped square subarray (word-level symmetry)."""

    name = "RC-NVM-wd"
    internal_per_gather = 0

    @property
    def area(self) -> AreaReport:
        return rc_nvm_wd_area()


class RCNVMBitScheme(_RCNVMBase):
    """RC-NVM with bit-level crossbar symmetry: every field is collected
    from multiple bit-columns (extra internal bursts per gather)."""

    name = "RC-NVM-bit"
    # Collecting one word from bit-level columns takes several internal
    # column operations; 4 per gather (3 extra) reproduces the paper's
    # ~25% gap between RC-NVM-bit and RC-NVM-wd on Q queries.
    internal_per_gather = 3

    @property
    def area(self) -> AreaReport:
        return rc_nvm_bit_area()
