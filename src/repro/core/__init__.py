"""The paper's contribution: the SAM designs and their comparators."""

from .baseline import BaselineScheme, ColumnStoreScheme
from .compare import comparison_matrix, grade, render_table
from .gs_dram import GSDRAMEccScheme, GSDRAMScheme
from .placements import (
    ColumnMajorPlacement,
    RowMajorPlacement,
    SegmentPlacement,
    VerticalPlacement,
)
from .rc_nvm import RCNVMBitScheme, RCNVMWordScheme
from .registry import FIGURE12_DESIGNS, available_schemes, make_scheme
from .sam import SAMEnScheme, SAMIOScheme, SAMSubScheme
from .scheme import (
    AccessScheme,
    GatherPlan,
    Placement,
    SchemeTraits,
    TablePlacement,
)

__all__ = [
    "BaselineScheme",
    "ColumnStoreScheme",
    "comparison_matrix",
    "grade",
    "render_table",
    "GSDRAMEccScheme",
    "GSDRAMScheme",
    "ColumnMajorPlacement",
    "RowMajorPlacement",
    "SegmentPlacement",
    "VerticalPlacement",
    "RCNVMBitScheme",
    "RCNVMWordScheme",
    "FIGURE12_DESIGNS",
    "available_schemes",
    "make_scheme",
    "SAMEnScheme",
    "SAMIOScheme",
    "SAMSubScheme",
    "AccessScheme",
    "GatherPlan",
    "Placement",
    "SchemeTraits",
    "TablePlacement",
]
