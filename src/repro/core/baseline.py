"""Commodity-DRAM baseline and the per-query "ideal" stores.

* :class:`BaselineScheme` -- unmodified DDR4 with a row-store layout: the
  normalization target of every figure.
* :class:`ColumnStoreScheme` -- unmodified DDR4 with a pure column-store
  layout.  Together with the baseline it forms the paper's "ideal" series:
  whichever store the query prefers (column for Q queries, row for Qs).
"""

from __future__ import annotations

from ..area.overhead import AreaReport
from .placements import ColumnMajorPlacement, RowMajorPlacement
from .scheme import AccessScheme, Placement, SchemeTraits, TablePlacement

_UNMODIFIED = AreaReport("baseline", 0.0, 0.0, extra_metal_layers=0)


class BaselineScheme(AccessScheme):
    """Row-store on stock DDR4: no stride hardware, no extra cost."""

    name = "baseline"

    def __init__(self, geometry=None) -> None:
        super().__init__(geometry, gather_factor=1)

    @property
    def traits(self) -> SchemeTraits:
        return SchemeTraits(
            needs_db_alignment=False,
            needs_isa_extension=False,
            needs_sector_cache=False,
        )

    @property
    def area(self) -> AreaReport:
        return _UNMODIFIED

    def placement(self, table: TablePlacement) -> Placement:
        return RowMajorPlacement(table, self)


class ColumnStoreScheme(AccessScheme):
    """Column-store on stock DDR4 (the Q-query half of "ideal")."""

    name = "column-store"

    def __init__(self, geometry=None, field_bytes: int = 8) -> None:
        super().__init__(geometry, gather_factor=1)
        self.field_bytes = field_bytes

    @property
    def traits(self) -> SchemeTraits:
        return SchemeTraits(
            needs_db_alignment=False,
            needs_isa_extension=False,
            needs_sector_cache=False,
        )

    @property
    def area(self) -> AreaReport:
        return _UNMODIFIED

    def placement(self, table: TablePlacement) -> Placement:
        return ColumnMajorPlacement(table, self, self.field_bytes)
