"""Sub-ranked fine-granularity memory (AGMS/DGMS class, Section 1).

The paper's introduction dismisses adaptive/dynamic-granularity memory
systems for strided workloads: they split a rank into sub-ranks so one
access fetches a *fraction* of a line from one sub-rank, letting several
accesses share the bus -- great for random fine-grained accesses, but
"ineffective for strided memory accesses whose data tend to reside in the
same sub-rank".

This scheme makes that argument quantitative.  The rank is split into
four sub-ranks of four data chips; a fine-grained access moves one 16B
sector over a quarter of the data pins in a full burst duration.  The
sub-rank serving address ``a`` is ``(a / 16) mod 4`` -- so a fixed-stride
field scan whose stride is a multiple of 64B (any power-of-two record
size) lands *every* element in the same sub-rank and serializes, while
random sub-line reads spread over all four and overlap.

Chipkill caveat: four chips cannot host an 18-symbol SSC codeword, so
fine-granularity accesses run with weaker protection -- another reason
the paper's design goals rule this class out (``ecc_compatible`` False).
"""

from __future__ import annotations

from typing import List

from ..area.overhead import AreaReport
from ..dram.commands import Request, RequestType
from ..dram.geometry import DEFAULT_GEOMETRY
from .placements import RowMajorPlacement
from .scheme import (
    AccessScheme,
    GatherPlan,
    Placement,
    SchemeTraits,
    TablePlacement,
)

#: sub-ranks per rank (4 data chips each; the channel's bus-occupancy
#: accounting weighs sub-rank transfers by the same fraction)
SUBRANKS = DEFAULT_GEOMETRY.subranks
#: bytes one fine-grained access returns
SUBRANK_CHUNK = 16


class SubRankScheme(AccessScheme):
    """AGMS/DGMS-style sub-ranked memory with 16B access granularity."""

    name = "sub-rank"

    def __init__(self, geometry=None) -> None:
        # no gather hardware: gather_factor 1 (strided loads fall back)
        super().__init__(geometry, gather_factor=1)

    fetch_fills_whole_line = False  # fetches bring only requested sectors

    @property
    def traits(self) -> SchemeTraits:
        return SchemeTraits(
            needs_db_alignment=False,
            needs_isa_extension=False,
            modifies_memory_controller=True,
            critical_word_first=True,
            ecc_compatible=False,  # 4 chips cannot carry an SSC codeword
        )

    @property
    def area(self) -> AreaReport:
        # per-sub-rank control/registering, one-time
        return AreaReport("sub-rank", 0.0, 0.01, extra_metal_layers=0)

    def placement(self, table: TablePlacement) -> Placement:
        return RowMajorPlacement(table, self)

    @staticmethod
    def subrank_of(addr: int) -> int:
        """The sub-rank holding the 16B chunk at ``addr``."""
        return (addr // SUBRANK_CHUNK) % SUBRANKS

    def lower_read_sectors(self, line_addr: int,
                           sector_mask: int) -> List[Request]:
        """Fetch only the requested 16B sectors, one sub-rank access each."""
        requests = []
        for sector in range(4):
            if not (sector_mask >> sector) & 1:
                continue
            addr = line_addr + sector * SUBRANK_CHUNK
            requests.append(
                Request(
                    addr=self.mapper.decode(addr),
                    type=RequestType.READ,
                    subrank=self.subrank_of(addr),
                )
            )
        return requests or self.lower_read(line_addr)

    def lower_read(self, line_addr: int) -> List[Request]:
        """A full-line read is four sub-rank accesses (they overlap on
        the bus when they come from different sub-ranks -- here they do,
        since a line spans all four)."""
        return [
            Request(
                addr=self.mapper.decode(line_addr + s * SUBRANK_CHUNK),
                type=RequestType.READ,
                subrank=s,
            )
            for s in range(SUBRANKS)
        ]

    def lower_write(self, line_addr: int) -> List[Request]:
        return [
            Request(
                addr=self.mapper.decode(line_addr + s * SUBRANK_CHUNK),
                type=RequestType.WRITE,
                subrank=s,
                critical=False,
            )
            for s in range(SUBRANKS)
        ]
