"""The SAM designs (Section 4).

All three designs gather ``gather_factor`` strided elements per burst
(4 at the 8-bit SSC granularity, 8 at the 4-bit SSC-DSD granularity,
2 at 16-bit -- Figure 14(b)), and all keep chipkill codewords intact.
They differ in *where* the gather happens:

* :class:`SAMSubScheme` gathers in the array via column-wise subarrays
  (ACT_COL).  Every gather opens a fresh column-wise subarray, and record
  groups are stacked vertically across rows of one bank, so row-friendly
  queries pay activation churn.
* :class:`SAMIOScheme` gathers in the I/O buffers of one open row (stride
  I/O modes, MRS-switched): near-zero area, but it internally moves four
  bursts per gather (power) and stores data transposed (no critical word
  first).
* :class:`SAMEnScheme` is SAM-IO plus fine-grained activation (power back
  to x4 class) and the 2-D I/O buffer (default layout restored).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from ..area.overhead import AreaReport, sam_en_area, sam_io_area, sam_sub_area
from ..dram.commands import IOMode, Request, RequestType, RowKind
from ..power.model import PowerConfig
from .placements import RowMajorPlacement, VerticalPlacement
from .scheme import (
    AccessScheme,
    GatherPlan,
    Placement,
    SchemeTraits,
    TablePlacement,
)


class _SAMRowGatherMixin:
    """Shared lowering for SAM-IO / SAM-en: gathers live inside one DRAM
    row (sub-row stride), grouped per row; leftovers fall back to regular
    reads."""

    gather_within_row = True

    def _gather(
        self,
        element_addrs: Sequence[int],
        req_type: RequestType,
    ) -> GatherPlan:
        by_row: Dict[tuple, List[int]] = defaultdict(list)
        for addr in element_addrs:
            decoded = self.mapper.decode(addr)
            by_row[(decoded.rank, decoded.bank, decoded.row)].append(addr)
        requests: List[Request] = []
        fills = []
        for addrs in by_row.values():
            first = self.mapper.decode(addrs[0])
            if len(addrs) >= 2:
                requests.append(
                    Request(
                        addr=first,
                        type=req_type,
                        io_mode=IOMode.STRIDE,
                        gather=len(addrs),
                        critical=req_type is RequestType.READ,
                    )
                )
            else:
                requests.append(
                    Request(
                        addr=first,
                        type=req_type,
                        critical=req_type is RequestType.READ,
                    )
                )
            for addr in addrs:
                fills.append(self._sector_fill(addr))
        return GatherPlan(requests, fills)

    def lower_gather_read(
        self, element_addrs: Sequence[int]
    ) -> Optional[GatherPlan]:
        return self._gather(element_addrs, RequestType.READ)

    def lower_gather_write(
        self, element_addrs: Sequence[int]
    ) -> Optional[GatherPlan]:
        # A strided element is a whole chipkill codeword, so a strided
        # store needs no read-modify-write (Section 4.1).
        return self._gather(element_addrs, RequestType.WRITE)


class SAMIOScheme(_SAMRowGatherMixin, AccessScheme):
    """SAM-IO: stride I/O modes over the common-die buffers."""

    name = "SAM-IO"

    def __init__(self, geometry=None, gather_factor: int = 8) -> None:
        super().__init__(geometry, gather_factor)

    @property
    def traits(self) -> SchemeTraits:
        return SchemeTraits(
            critical_word_first=False,  # transposed layout (Figure 4(c))
            mode_switch_delay=True,
        )

    @property
    def area(self) -> AreaReport:
        return sam_io_area()

    @property
    def power_config(self) -> PowerConfig:
        # Internally fetches all four I/O buffers per gather.
        return PowerConfig(
            name=self.name,
            stride_internal_bursts=4,
            stride_act_fraction=1.0,
        )

    def placement(self, table: TablePlacement) -> Placement:
        return RowMajorPlacement(table, self)


class SAMEnScheme(_SAMRowGatherMixin, AccessScheme):
    """SAM-en: SAM-IO plus two *independent* enhancement options
    (Section 4.3); both are on by default, as in the paper:

    * ``fine_grained_activation`` (Option 1): activate only the mats that
      hold useful data -- restores x4-class energy.
    * ``two_d_buffer`` (Option 2): a second serializer set reads the I/O
      buffers column-wise -- keeps the default data layout and
      critical-word-first.
    """

    name = "SAM-en"

    def __init__(
        self,
        geometry=None,
        gather_factor: int = 8,
        fine_grained_activation: bool = True,
        two_d_buffer: bool = True,
    ) -> None:
        super().__init__(geometry, gather_factor)
        self.fine_grained_activation = fine_grained_activation
        self.two_d_buffer = two_d_buffer

    @property
    def traits(self) -> SchemeTraits:
        return SchemeTraits(
            # option 2 restores the default layout / critical-word-first;
            # without it SAM-en degenerates to SAM-IO's transposed layout
            critical_word_first=self.two_d_buffer,
            mode_switch_delay=True,
        )

    @property
    def area(self) -> AreaReport:
        return sam_en_area()

    @property
    def power_config(self) -> PowerConfig:
        if self.fine_grained_activation:
            # Option 1: only the useful mats are activated and only useful
            # data moves to the buffers.
            return PowerConfig(
                name=self.name,
                stride_internal_bursts=1,
                stride_act_fraction=0.25,
            )
        return PowerConfig(
            name=self.name,
            stride_internal_bursts=4,  # SAM-IO's internal movement
            stride_act_fraction=1.0,
        )

    def placement(self, table: TablePlacement) -> Placement:
        return RowMajorPlacement(table, self)


class SAMSubScheme(AccessScheme):
    """SAM-sub: column-wise subarrays built from helper flip-flops."""

    name = "SAM-sub"

    def __init__(self, geometry=None, gather_factor: int = 8) -> None:
        super().__init__(geometry, gather_factor)

    @property
    def traits(self) -> SchemeTraits:
        # SAM-sub extends the mode registers with one stride bit
        # (Section 5.3), so it shares the mode-switch-delay mark.
        return SchemeTraits(critical_word_first=True, mode_switch_delay=True)

    @property
    def area(self) -> AreaReport:
        return sam_sub_area()

    @property
    def power_config(self) -> PowerConfig:
        # +2% background from the extra decoding and sense-amp logic
        # (Section 6.1); gathers fetch only useful data.
        return PowerConfig(
            name=self.name,
            background_scale=1.02,
            stride_internal_bursts=1,
            stride_act_fraction=1.0,
        )

    def placement(self, table: TablePlacement) -> Placement:
        return VerticalPlacement(table, self, group=self.gather_factor)

    def _column_row_id(self, decoded) -> int:
        """Synthetic open-row identity for a column-wise subarray.

        The global column buffer holds a single gather's worth, so each
        (row band, intra-row position) pair is its own column-row: gathers
        do not hit in an open buffer, which is why SAM-sub trails SAM-IO /
        SAM-en (Section 6.2).
        """
        band = decoded.row - decoded.row % self.gather_factor
        return (band << self.mapper.column_bits) | decoded.column

    def _gather(self, element_addrs: Sequence[int],
                req_type: RequestType) -> GatherPlan:
        first = self.mapper.decode(element_addrs[0])
        synthetic = first.__class__(
            channel=first.channel,
            rank=first.rank,
            bank=first.bank,
            row=self._column_row_id(first),
            column=first.column,
            offset=first.offset,
        )
        request = Request(
            addr=synthetic,
            type=req_type,
            row_kind=RowKind.COLUMN,
            gather=len(element_addrs),
            critical=req_type is RequestType.READ,
        )
        fills = [self._sector_fill(a) for a in element_addrs]
        return GatherPlan([request], fills)

    def lower_gather_read(
        self, element_addrs: Sequence[int]
    ) -> Optional[GatherPlan]:
        return self._gather(element_addrs, RequestType.READ)

    def lower_gather_write(
        self, element_addrs: Sequence[int]
    ) -> Optional[GatherPlan]:
        return self._gather(element_addrs, RequestType.WRITE)
