"""CPU front end: scan cores, memory-op streams, sload/sstore ISA hooks."""

from . import isa
from .core import Core, CoreConfig
from .ops import Compute, GatherLoad, GatherStore, Load, MemOp, Store

__all__ = [
    "isa",
    "Core",
    "CoreConfig",
    "Compute",
    "GatherLoad",
    "GatherStore",
    "Load",
    "MemOp",
    "Store",
]
