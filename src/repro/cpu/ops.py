"""Memory-operation stream: what a query executor hands to a core.

The executor lowers a query plan into a per-core sequence of these ops.
Addresses are physical (the scheme's placement already applied).  Strided
ops carry the element addresses of one gather group -- the hardware
realization (one stride-mode burst, a column-subarray access, a GS-DRAM
gather, or plain loads on the baseline) is decided by the scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class Compute:
    """CPU work between memory operations, in memory-clock cycles."""

    cycles: int


@dataclass(frozen=True)
class Load:
    """A demand load of ``size`` bytes (must not cross a cacheline)."""

    addr: int
    size: int = 8


@dataclass(frozen=True)
class Store:
    """A store of ``size`` bytes (write-allocate unless a full line)."""

    addr: int
    size: int = 8


@dataclass(frozen=True)
class GatherLoad:
    """``sload``: one strided load group (Section 5.1.2)."""

    element_addrs: tuple

    def __init__(self, element_addrs) -> None:
        object.__setattr__(self, "element_addrs", tuple(element_addrs))


@dataclass(frozen=True)
class GatherStore:
    """``sstore``: one strided store group."""

    element_addrs: tuple

    def __init__(self, element_addrs) -> None:
        object.__setattr__(self, "element_addrs", tuple(element_addrs))


MemOp = Union[Compute, Load, Store, GatherLoad, GatherStore]
