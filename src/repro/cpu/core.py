"""Bounded-MLP scan core.

The paper's workloads are memory-bound table scans; the cores' job in the
simulation is to (a) issue memory operations at a realistic rate, (b)
overlap a bounded number of outstanding misses (memory-level parallelism),
and (c) charge the CPU work between memory operations.  This matches how
memory-system papers drive their evaluations: the interesting contention
is in the memory system, not the pipeline.

A core walks its operation stream in order.  Cache hits cost only issue
bandwidth; misses occupy one of ``mlp`` slots until the fill returns.
Stores go through the write path of the memory system (write-allocate for
partial lines, streaming for full lines) and do not occupy miss slots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..kernel import Kernel
from ..obs.stalls import MEM_WAIT, QUEUE_FULL
from .ops import Compute, GatherLoad, GatherStore, Load, MemOp, Store


@dataclass(frozen=True)
class CoreConfig:
    """Per-core knobs (Table 2: 4 cores, 4 GHz on a 1.2 GHz memory clock)."""

    mlp: int = 8  # outstanding demand misses
    issue_cycles: float = 0.3  # memory cycles of issue bandwidth per op
    retry_interval: int = 8  # cycles between retries when backpressured


class Core:
    """One core executing a memory-operation stream."""

    def __init__(
        self,
        kernel: Kernel,
        core_id: int,
        system: "MemorySystem",
        config: CoreConfig | None = None,
    ) -> None:
        self.kernel = kernel
        self.core_id = core_id
        self.system = system
        self.config = config or CoreConfig()
        self._ops: List[MemOp] = []
        self._pc = 0
        self._inflight = 0
        self._ready_time = 0.0  # local issue clock, in memory cycles
        self._done = False
        self._advance_scheduled = False
        #: optional obs.stalls.CoreStallLog; when attached, every cycle
        #: between run() and the last completion lands in exactly one
        #: busy/blocked interval (the stall attributor relies on that)
        self.stall_log = None
        # Statistics
        self.loads = 0
        self.stores = 0
        self.gathers = 0
        self.hits = 0
        self.misses = 0
        #: backpressure retries scheduled (queue-full re-attempts on the
        #: ``retry_interval`` grid; MLP-exhausted waits are event-driven
        #: -- a completion reschedules the core -- and never count here)
        self.retries = 0
        # Activity window in memory cycles (span profiling)
        self.start_cycle = 0
        self.finish_cycle: int | None = None

    # ------------------------------------------------------------------ API

    def run(self, ops: Sequence[MemOp]) -> None:
        """Load an operation stream and start executing."""
        self._ops = list(ops)
        self._pc = 0
        self._done = not self._ops
        self._ready_time = float(self.kernel.now)
        self.start_cycle = self.kernel.now
        self._schedule_advance(self.kernel.now)

    @property
    def finished(self) -> bool:
        return self._done and self._inflight == 0

    def debug_state(self) -> dict:
        """Progress snapshot for stall diagnostics."""
        return {
            "core_id": self.core_id,
            "pc": self._pc,
            "ops": len(self._ops),
            "inflight": self._inflight,
            "retries": self.retries,
            "ready_time": self._ready_time,
            "finished": self.finished,
        }

    # ------------------------------------------------------------ execution

    def _schedule_advance(self, when: int) -> None:
        if self._advance_scheduled:
            return
        self._advance_scheduled = True
        self.kernel.schedule_at(max(when, self.kernel.now), self._advance)

    def _advance(self) -> None:
        self._advance_scheduled = False
        now = self.kernel.now
        self._ready_time = max(self._ready_time, float(now))
        if self.stall_log is not None:
            self.stall_log.close_block(now)
        while self._pc < len(self._ops):
            if self._ready_time > now:
                self._catch_up(now)
                return
            op = self._ops[self._pc]
            if isinstance(op, Compute):
                self._ready_time += op.cycles
                self._pc += 1
                continue
            if isinstance(op, Load):
                if not self._do_load(op):
                    self._note_blocked(now)
                    return
                continue
            if isinstance(op, GatherLoad):
                if not self._do_gather_load(op):
                    self._note_blocked(now)
                    return
                continue
            if isinstance(op, Store):
                if not self._do_store(op):
                    self._note_blocked(now)
                    return
                continue
            if isinstance(op, GatherStore):
                if not self._do_gather_store(op):
                    self._note_blocked(now)
                    return
                continue
            raise TypeError(f"unknown op {op!r}")
        if self._ready_time > now:
            # trailing compute: the core is busy until its local clock
            # catches up, so the run must not end before then
            self._catch_up(now)
            return
        self._done = True
        if self._inflight == 0:
            self.finish_cycle = now
        elif self.stall_log is not None:
            # op stream exhausted, misses still draining
            self.stall_log.open_block(now, MEM_WAIT)
        self.system.core_may_be_done(self)

    def _catch_up(self, now: int) -> None:
        """Sleep until the fractional issue clock catches up; that whole
        window is busy time (issue bandwidth / compute)."""
        wake = math.ceil(self._ready_time)
        if self.stall_log is not None:
            self.stall_log.note_busy(now, wake)
        self._schedule_advance(wake)

    def _note_blocked(self, now: int) -> None:
        """A handler made no progress.  Only ``_retry_later`` schedules an
        advance from inside a handler, so a pending schedule distinguishes
        queue backpressure from an exhausted-MLP wait."""
        if self.stall_log is not None:
            reason = QUEUE_FULL if self._advance_scheduled else MEM_WAIT
            self.stall_log.open_block(now, reason)

    # --------------------------------------------------------- op handlers

    def _retry_later(self) -> bool:
        # Queue-full backpressure keeps the fixed retry grid in both
        # scheduling modes.  An event-driven wake at the exact cycle a
        # slot frees would submit at a *different* kernel instant than
        # the polling grid does, changing same-cycle submit order, queue
        # append order, and therefore FR-FCFS FCFS tie-breaks -- the
        # cycle-exactness the event-wheel equivalence suite locks down
        # forbids it.  A failed attempt is also not skippable: its cache
        # lookups touch shared LRU state other cores interleave with.
        self.retries += 1
        self._schedule_advance(self.kernel.now + self.config.retry_interval)
        return False

    def _do_load(self, op: Load) -> bool:
        self.loads += 1
        line, mask = self.system.sectorize(op.addr, op.size)
        result = self.system.lookup(self.core_id, line, mask)
        if result.missing_mask == 0:
            self.hits += 1
            self._ready_time += self.config.issue_cycles
            self._pc += 1
            return True
        self.misses += 1
        if self._inflight >= self.config.mlp:
            return False  # a completion will reschedule us
        if not self.system.issue_fetch(
            self.core_id, line, result.missing_mask, self._on_fill
        ):
            self.loads -= 1
            self.misses -= 1
            return self._retry_later()
        self._inflight += 1
        self._ready_time += self.config.issue_cycles
        self._pc += 1
        return True

    def _do_gather_load(self, op: GatherLoad) -> bool:
        self.gathers += 1
        if self.system.gather_cached(self.core_id, op.element_addrs):
            self.hits += 1
            self._ready_time += self.config.issue_cycles
            self._pc += 1
            return True
        self.misses += 1
        if self._inflight >= self.config.mlp:
            return False
        if not self.system.issue_gather(
            self.core_id, op.element_addrs, self._on_fill
        ):
            self.gathers -= 1
            self.misses -= 1
            return self._retry_later()
        self._inflight += 1
        self._ready_time += self.config.issue_cycles
        self._pc += 1
        return True

    def _do_store(self, op: Store) -> bool:
        self.stores += 1
        line, mask = self.system.sectorize(op.addr, op.size)
        full_line = op.size >= self.system.line_bytes
        if full_line:
            if not self.system.issue_store_line(self.core_id, line):
                self.stores -= 1
                return self._retry_later()
            self._ready_time += self.config.issue_cycles
            self._pc += 1
            return True
        if self.system.write_hit(self.core_id, line, mask):
            self._ready_time += self.config.issue_cycles
            self._pc += 1
            return True
        # write-allocate: fetch for ownership, then mark dirty
        if self._inflight >= self.config.mlp:
            self.stores -= 1
            return False
        if not self.system.issue_fetch(
            self.core_id, line, mask, self._make_rfo_callback(line, mask)
        ):
            self.stores -= 1
            return self._retry_later()
        self._inflight += 1
        self._ready_time += self.config.issue_cycles
        self._pc += 1
        return True

    def _do_gather_store(self, op: GatherStore) -> bool:
        self.stores += 1
        if not self.system.issue_gather_store(self.core_id, op.element_addrs):
            self.stores -= 1
            return self._retry_later()
        self._ready_time += self.config.issue_cycles
        self._pc += 1
        return True

    # ---------------------------------------------------------- completions

    def _on_fill(self) -> None:
        self._inflight -= 1
        self._schedule_advance(self.kernel.now)
        if self.finished:
            self.finish_cycle = self.kernel.now
            self.system.core_may_be_done(self)

    def _make_rfo_callback(self, line: int, mask: int):
        def _done() -> None:
            self.system.write_hit(self.core_id, line, mask)
            self._on_fill()

        return _done
