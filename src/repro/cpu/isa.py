"""The ``sload`` / ``sstore`` ISA extension (Section 5.1.2).

Two instructions inform the memory controller to enter stride mode via the
C/A bus:

    sload  reg, addr
    sstore reg, addr

We model them as a tiny fixed-width encoding so the software stack
(executor -> core -> controller) exercises a realistic decode path, and so
tests can check round-tripping.  Encoding (64 bits):

    [63:56] opcode   (0x5A sload, 0x5B sstore)
    [55:48] register (0..255)
    [47: 0] address  (48-bit physical address)
"""

from __future__ import annotations

from dataclasses import dataclass

OPCODE_SLOAD = 0x5A
OPCODE_SSTORE = 0x5B

_ADDR_MASK = (1 << 48) - 1


@dataclass(frozen=True)
class StrideInstruction:
    """A decoded sload/sstore."""

    opcode: int
    register: int
    address: int

    @property
    def is_load(self) -> bool:
        return self.opcode == OPCODE_SLOAD

    @property
    def mnemonic(self) -> str:
        return "sload" if self.is_load else "sstore"


def encode(mnemonic: str, register: int, address: int) -> int:
    """Encode an sload/sstore into its 64-bit form."""
    opcode = {"sload": OPCODE_SLOAD, "sstore": OPCODE_SSTORE}.get(mnemonic)
    if opcode is None:
        raise ValueError(f"unknown stride mnemonic {mnemonic!r}")
    if not 0 <= register < 256:
        raise ValueError(f"register {register} out of range")
    if not 0 <= address <= _ADDR_MASK:
        raise ValueError(f"address {address:#x} exceeds 48 bits")
    return (opcode << 56) | (register << 48) | address


def decode(word: int) -> StrideInstruction:
    """Decode a 64-bit instruction word; raises on unknown opcodes."""
    opcode = (word >> 56) & 0xFF
    if opcode not in (OPCODE_SLOAD, OPCODE_SSTORE):
        raise ValueError(f"not a stride instruction (opcode {opcode:#x})")
    register = (word >> 48) & 0xFF
    address = word & _ADDR_MASK
    return StrideInstruction(opcode, register, address)
