"""IDD-based DRAM / RRAM power modelling (Micron power-calculator style)."""

from .idd import DDR4_X4, DDR4_X16_CLASS, IDDValues
from .model import PowerBreakdown, PowerConfig, PowerModel

__all__ = [
    "DDR4_X4",
    "DDR4_X16_CLASS",
    "IDDValues",
    "PowerBreakdown",
    "PowerConfig",
    "PowerModel",
]
