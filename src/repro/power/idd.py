"""IDD current tables (Micron-power-calculator style, Section 6.1).

Values approximate a Micron 8Gb DDR4-2400 x4 device datasheet.  The stride
modes of SAM-IO behave like a x16 device internally (all four I/O buffers
filled per column access), so they draw x16-class burst current; SAM-en's
fine-grained activation restores x4-class behaviour and trims activation
energy (Option 1 of Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IDDValues:
    """Per-chip currents in milliamps at VDD."""

    name: str
    vdd: float  # volts
    idd0: float  # ACT-PRE cycling
    idd2n: float  # precharge standby
    idd3n: float  # active standby
    idd4r: float  # burst read
    idd4w: float  # burst write
    idd5: float  # refresh

    def background_mw(self, active: bool = True) -> float:
        """Standby power of one chip in milliwatts."""
        return (self.idd3n if active else self.idd2n) * self.vdd


#: x4 DDR4-2400 8Gb device.
DDR4_X4 = IDDValues(
    name="DDR4-x4",
    vdd=1.2,
    idd0=58.0,
    idd2n=44.0,
    idd3n=52.0,
    idd4r=145.0,
    idd4w=135.0,
    idd5=255.0,
)

#: x16-class currents -- what a common-die chip draws when all four I/O
#: buffers are engaged (SAM-IO stride mode).  Calibrated so a stride-mode
#: read stream draws ~1.8x the baseline's power (Section 6.2).
DDR4_X16_CLASS = IDDValues(
    name="DDR4-x16-class",
    vdd=1.2,
    idd0=65.0,
    idd2n=46.0,
    idd3n=55.0,
    idd4r=180.0,
    idd4w=170.0,
    idd5=255.0,
)
