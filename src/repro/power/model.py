"""Energy accounting over a controller's :class:`CommandStats`.

Follows the Micron power-calculator structure the paper uses (Section 6.1):

* background power  -- standby current integrated over the run,
* ACT energy        -- per activate/precharge pair,
* RD/WR energy      -- burst currents during data movement, split into the
  array-to-buffer (internal) part and the I/O part, because SAM-IO's
  gathers move four bursts internally for every burst on the pins.

Per-design adjustments mirror the paper: SAM-sub carries +2% background
(extra decoding and sense-amp logic); SAM-en's fine-grained activation
scales stride-mode activation and internal-burst energy down to the useful
fraction; RRAM has near-zero background but expensive writes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..dram.controller import CommandStats
from ..dram.geometry import Geometry
from ..dram.timing import TimingParams
from .idd import DDR4_X4, DDR4_X16_CLASS, IDDValues


@dataclass(frozen=True)
class PowerConfig:
    """Technology + design specific energy knobs."""

    name: str = "dram"
    idd: IDDValues = DDR4_X4
    idd_stride: IDDValues = DDR4_X16_CLASS
    background_scale: float = 1.0  # SAM-sub: 1.02
    #: internal bursts moved per stride-mode gather (SAM-IO: 4; SAM-en: 1)
    stride_internal_bursts: int = 1
    #: activation-energy fraction in stride mode (SAM-en fine-grained: 0.25)
    stride_act_fraction: float = 1.0
    #: RRAM-style overrides (None means "use IDD model").  Crossbar reads
    #: pay half-select sneak currents, writes pay long SET/RESET pulses;
    #: background is near zero (non-volatile, no refresh).
    rram: bool = False
    rram_read_pj_per_bit: float = 15.0
    rram_write_pj_per_bit: float = 40.0
    rram_background_mw_per_chip: float = 1.0


@dataclass
class PowerBreakdown:
    """Energy (nanojoules) and average power (milliwatts) by component."""

    background_nj: float = 0.0
    act_nj: float = 0.0
    rdwr_nj: float = 0.0
    elapsed_ns: float = 0.0

    @property
    def total_nj(self) -> float:
        return self.background_nj + self.act_nj + self.rdwr_nj

    def power_mw(self, component: str = "total") -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        nj = {
            "background": self.background_nj,
            "act": self.act_nj,
            "rdwr": self.rdwr_nj,
            "total": self.total_nj,
        }[component]
        return nj / self.elapsed_ns * 1e3  # nJ/ns == W; report mW

    @property
    def total_mw(self) -> float:
        return self.power_mw("total")


class PowerModel:
    """Turns command counts into energy, Micron-calculator style."""

    def __init__(
        self,
        config: PowerConfig,
        timing: TimingParams,
        geometry: Geometry | None = None,
    ) -> None:
        self.config = config
        self.timing = timing
        self.geometry = geometry or Geometry()

    # ------------------------------------------------------ per-event costs

    def act_energy_nj(self, stride: bool = False) -> float:
        """One rank-level activate/precharge pair across all chips."""
        cfg = self.config
        if cfg.rram:
            # crossbar row "activation" is part of the read/write pulse
            return 0.2
        t = self.timing
        idd = cfg.idd
        trc_ns = t.ns(t.tRAS + t.tRP)
        # (IDD0 - IDD3N) integrated over tRC, per chip
        per_chip_nj = (idd.idd0 - idd.idd3n) * idd.vdd * trc_ns * 1e-3
        energy = per_chip_nj * self.geometry.chips
        if stride:
            energy *= cfg.stride_act_fraction
        return energy

    def burst_energy_nj(self, write: bool, stride: bool = False,
                        internal_only: bool = False) -> float:
        """One 8-beat burst: (IDD4 - IDD3N) over tBL across all chips.

        ``internal_only`` prices the array-to-buffer movement without pin
        I/O (the extra internal bursts of SAM-IO gathers and the
        RC-NVM-bit sub-field collections); it is charged at ~35% of a full
        burst, the array/datapath share of IDD4 without output drivers and
        termination.
        """
        cfg = self.config
        t = self.timing
        bl_ns = t.ns(t.tBL)
        if cfg.rram:
            bits = self.geometry.data_bus_bits * self.geometry.burst_length
            pj = (cfg.rram_write_pj_per_bit if write
                  else cfg.rram_read_pj_per_bit) * bits
            energy = pj * 1e-3
        else:
            idd = cfg.idd_stride if stride else cfg.idd
            amps = idd.idd4w if write else idd.idd4r
            per_chip_nj = (amps - idd.idd3n) * idd.vdd * bl_ns * 1e-3
            energy = per_chip_nj * self.geometry.chips
        if internal_only:
            energy *= 0.35
        return energy

    def background_power_mw(self) -> float:
        cfg = self.config
        if cfg.rram:
            per_chip = cfg.rram_background_mw_per_chip
        else:
            per_chip = cfg.idd.background_mw(active=True)
        chips = self.geometry.chips * self.geometry.ranks
        return per_chip * chips * cfg.background_scale

    # ---------------------------------------------------------- aggregation

    def evaluate_registry(self, registry,
                          elapsed_cycles: int) -> PowerBreakdown:
        """Evaluate from a :class:`repro.obs.metrics.MetricsRegistry`.

        The runner publishes the controller's command counts under
        ``dram.<field>`` before pricing energy, making the registry the
        single source the power model reads from.
        """
        stats = CommandStats(**{
            f.name: int(registry.value(f"dram.{f.name}", 0))
            for f in fields(CommandStats)
        })
        return self.evaluate(stats, elapsed_cycles)

    def evaluate(self, stats: CommandStats, elapsed_cycles: int) -> PowerBreakdown:
        """Total energy for a run summarised by ``stats``."""
        cfg = self.config
        out = PowerBreakdown()
        out.elapsed_ns = self.timing.ns(elapsed_cycles)
        out.background_nj = self.background_power_mw() * out.elapsed_ns * 1e-3

        regular_acts = stats.acts
        stride_acts = stats.col_acts
        out.act_nj += regular_acts * self.act_energy_nj(stride=False)
        out.act_nj += stride_acts * self.act_energy_nj(stride=True)

        stride_reads = stats.stride_mode_reads
        regular_reads = stats.reads - stride_reads
        out.rdwr_nj += regular_reads * self.burst_energy_nj(write=False)
        # A stride-mode gather: one burst on the pins at stride-class
        # current, plus the internal-only bursts the design fetches but
        # does not transmit.
        out.rdwr_nj += stride_reads * self.burst_energy_nj(
            write=False, stride=True
        )
        extra_internal = max(0, cfg.stride_internal_bursts - 1)
        out.rdwr_nj += (
            stride_reads
            * extra_internal
            * self.burst_energy_nj(write=False, stride=True,
                                   internal_only=True)
        )
        out.rdwr_nj += stats.writes * self.burst_energy_nj(write=True)
        # request-declared extra internal bursts (RC-NVM-bit, embedded ECC)
        out.rdwr_nj += stats.internal_bursts * self.burst_energy_nj(
            write=False, internal_only=True
        )
        # refresh: IDD5 over tRFC
        if not cfg.rram and self.timing.tRFC:
            idd = cfg.idd
            per_ref = (
                (idd.idd5 - idd.idd3n)
                * idd.vdd
                * self.timing.ns(self.timing.tRFC)
                * 1e-3
                * self.geometry.chips
            )
            out.act_nj += stats.refreshes * per_ref
        return out
