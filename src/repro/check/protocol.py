"""JEDEC-style timing-protocol checker.

A :class:`TimingProtocolChecker` observes every command the controller
issues (via the controller's ``checker`` hook and the channel's
data-burst observer) and replays it against an independent shadow state
machine built from nothing but :class:`~repro.dram.timing.TimingParams`
and :class:`~repro.dram.geometry.Geometry`.  Any command that arrives
earlier than the timing rules allow raises (or records) a structured
:class:`ProtocolViolation` carrying the offending rule and a window of
the most recent commands.

The rulebook is deliberately the *model's* contract, which relaxes JEDEC
in two documented places:

* tCCD applies per chip set: same-bank CAS->CAS must respect tCCD_L (plus
  any internal-burst tail), CAS->CAS on the same rank's same chips (full
  width vs. anything, or the same sub-rank) must respect tCCD_S, but
  cross-rank and cross-sub-rank CAS are different physical chips and are
  constrained only by the shared data pins.
* REF may follow the last precharge immediately (the model folds tRP into
  the post-refresh tRFC blackout).

Everything else is checked strictly: tRCD, tRP, tRAS, tRRD_S/L, tFAW,
tRFC blackouts, tRTP, tWR, tWTR, tMOD_IO stalls, I/O-mode agreement,
row-buffer discipline (no ACT on an open bank, no CAS to a closed or
wrong row, no PRE on a closed bank), one command per command-bus cycle,
and data-bus/sub-bus (pin-group) occupancy: bursts on the same pin group
must never overlap and must respect the tRTR / tRTW bubbles, which also
caps concurrent sub-rank transfers at the physical pin count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..dram.commands import Command, IOMode, Request, RequestType, RowKind
from ..dram.geometry import Geometry
from ..dram.timing import TimingParams

#: "never happened" sentinel for shadow timestamps
_NEVER = -(1 << 40)

#: commands kept in the violation window
_WINDOW = 32


@dataclass(frozen=True)
class CommandRecord:
    """One observed command, as kept in the violation window."""

    cycle: int
    command: str
    rank: int
    bank: int
    row: Optional[Tuple[str, int]] = None
    subrank: Optional[int] = None
    implicit: bool = False

    def as_tuple(self) -> tuple:
        return (self.cycle, self.command, self.rank, self.bank,
                self.row, self.subrank, self.implicit)


@dataclass(frozen=True)
class ProtocolViolation:
    """A timing-rule violation with the offending command window."""

    rule: str
    cycle: int
    command: str
    rank: int
    bank: int
    message: str
    window: Tuple[tuple, ...] = ()

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "cycle": self.cycle,
            "command": self.command,
            "rank": self.rank,
            "bank": self.bank,
            "message": self.message,
            "window": [list(r) for r in self.window],
        }

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"[{self.rule}] cycle {self.cycle}: {self.command} "
                f"rank{self.rank}/bank{self.bank}: {self.message}")


class ProtocolError(Exception):
    """Raised in strict mode when a timing rule is violated."""

    def __init__(self, violation: ProtocolViolation) -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass
class _BankShadow:
    open_row: Optional[Tuple[RowKind, int]] = None
    act_at: int = _NEVER
    pre_at: int = _NEVER
    cas_at: int = _NEVER  # last RD or WR
    cas_tail: int = 0  # internal-burst tail of the last CAS
    rd_at: int = _NEVER
    rd_tail: int = 0
    wr_at: int = _NEVER
    wr_tail: int = 0
    # --- SALP (subarray) extension; unused when salp == "none" ---
    #: per-subarray shadows (an instance per touched subarray; the
    #: per-row rules -- tRP/tRCD/tRAS/tRTP/tWR, row-buffer discipline --
    #: then apply to the subarray and the fields above carry only the
    #: shared column-path state)
    subs: Dict[int, "_BankShadow"] = field(default_factory=dict)
    #: last ACT to *any* subarray of this bank (tRA pacing)
    bank_act_at: int = _NEVER
    #: subarray currently driving the global sense amps
    designated: Optional[int] = None
    #: last SA_SEL (designation-switch pacing and CAS gating)
    sa_sel_at: int = _NEVER


@dataclass
class _RankShadow:
    io_mode: IOMode = IOMode.X4
    acts: Deque[int] = field(default_factory=lambda: deque(maxlen=4))
    last_act_at: int = _NEVER
    last_act_group: int = -1
    wtr_until: int = _NEVER  # write-to-read turnaround
    blackout_until: int = _NEVER  # refresh tRFC window
    mrs_until: int = _NEVER  # tMOD_IO stall
    #: last CAS per chip set: None = full width, int = that sub-rank
    cas_by_chipset: Dict[Optional[int], int] = field(default_factory=dict)


#: last data burst on a pin group: (start, end, rank, req_type)
_Burst = Tuple[int, int, int, RequestType]


class TimingProtocolChecker:
    """Replays issued commands against an independent shadow state.

    ``strict=True`` raises :class:`ProtocolError` on the first violation
    (the mode ``--check`` runs use); ``strict=False`` collects violations
    in :attr:`violations` (the fuzzer's mode).  When a ``registry`` is
    given, ``check.commands``, ``check.violations`` and per-rule
    ``check.violation.<rule>`` counters are maintained.
    """

    def __init__(
        self,
        timing: TimingParams,
        geometry: Optional[Geometry] = None,
        registry=None,
        strict: bool = True,
        max_violations: int = 256,
        salp: str = "none",
    ) -> None:
        self.timing = timing
        self.geometry = geometry or Geometry()
        self.registry = registry
        self.strict = strict
        #: subarray-level-parallelism mode; must match the checked
        #: controller's.  Under SALP the row rules apply per subarray and
        #: the tRA / tSA_SEL / capacity / designation rules activate.
        self.salp = salp
        #: in collect mode, abort anyway once this many violations piled
        #: up -- a corrupted timing table can livelock the controller into
        #: producing violations forever (ACT/PRE thrash when tRAS < tRCD)
        self.max_violations = max_violations
        self.violations: List[ProtocolViolation] = []
        self.commands_seen = 0
        self.window: Deque[CommandRecord] = deque(maxlen=_WINDOW)
        self._banks = [
            [_BankShadow() for _ in range(self.geometry.banks)]
            for _ in range(self.geometry.ranks)
        ]
        self._ranks = [_RankShadow() for _ in range(self.geometry.ranks)]
        self._last_command_at = _NEVER  # command bus (explicit commands)
        self._bus_full: Optional[_Burst] = None
        self._bus_group: Dict[int, _Burst] = {}
        #: window computed for the CAS just seen, consumed by on_data_burst
        self._pending_burst: Optional[Tuple[int, int, int, Optional[int]]] \
            = None
        self._controller = None

    # ------------------------------------------------------------ attaching

    def attach(self, controller) -> "TimingProtocolChecker":
        """Install this checker on a live controller (command hook plus
        the channel's data-burst observer)."""
        self._controller = controller
        controller.checker = self
        controller.channel.observer = self.on_data_burst
        return self

    # ------------------------------------------------------------ reporting

    def _violate(self, rule: str, cycle: int, command: Command, rank: int,
                 bank: int, message: str) -> None:
        violation = ProtocolViolation(
            rule=rule,
            cycle=cycle,
            command=command.value,
            rank=rank,
            bank=bank,
            message=message,
            window=tuple(r.as_tuple() for r in self.window),
        )
        self.violations.append(violation)
        if self.registry is not None:
            self.registry.counter("check.violations").inc()
            self.registry.counter(f"check.violation.{rule}").inc()
        if self.strict or len(self.violations) >= self.max_violations:
            raise ProtocolError(violation)

    def _require(self, ok: bool, rule: str, cycle: int, command: Command,
                 rank: int, bank: int, message: str) -> None:
        if not ok:
            self._violate(rule, cycle, command, rank, bank, message)

    # ----------------------------------------------------------- subarrays

    @property
    def _capacity(self) -> int:
        """Concurrently-activated-subarray limit of the SALP mode."""
        if self.salp == "salp2":
            return 2
        if self.salp == "masa":
            return self.geometry.subarrays_per_bank
        return 1

    def _sub_id_of(self, row) -> Optional[int]:
        """Subarray a row-carrying command targets (None outside SALP).
        Mirrors the controller's deterministic row->subarray fold, so the
        two derive the same operand independently."""
        if self.salp == "none" or row is None:
            return None
        g = self.geometry
        return (row[1] // g.rows_per_subarray) % g.subarrays_per_bank

    def _sub_shadow(self, bk: _BankShadow, sub_id: int) -> _BankShadow:
        sub = bk.subs.get(sub_id)
        if sub is None:
            sub = _BankShadow()
            bk.subs[sub_id] = sub
        return sub

    # ----------------------------------------------------------- observing

    def on_command(
        self,
        cycle: int,
        command: Command,
        request: Optional[Request] = None,
        *,
        rank: Optional[int] = None,
        bank: Optional[int] = None,
        row=None,
        subrank: Optional[int] = None,
        io_mode: Optional[IOMode] = None,
        internal_bursts: int = 0,
        implicit: bool = False,
        subarray: Optional[int] = None,
    ) -> None:
        """Check one issued command.

        The controller passes the ``request`` being served; hand-built
        test streams pass ``rank`` / ``bank`` / ``row`` / ... directly.
        ``implicit`` marks the closed-page auto-precharge, which rides on
        its CAS instead of occupying the command bus (and may carry a
        future timestamp).  ``subarray`` is the PRE operand under SALP
        (a precharge names the subarray it closes; row-carrying commands
        imply theirs through the row index).
        """
        if request is not None:
            rank = request.addr.rank
            bank = request.addr.bank
            subrank = request.subrank
            io_mode = request.io_mode
            internal_bursts = request.internal_bursts
            if row is None and command is not Command.MRS:
                row = request.row_id()
        if rank is None:
            raise TypeError("on_command needs a request or an explicit rank")
        if bank is None:
            bank = -1
        if isinstance(row, int):
            row = (RowKind.ROW, row)
        if io_mode is None:
            io_mode = IOMode.X4

        self.commands_seen += 1
        if self.registry is not None:
            self.registry.counter("check.commands").inc()
        self.window.append(CommandRecord(
            cycle=cycle,
            command=command.value,
            rank=rank,
            bank=bank,
            row=(row[0].value, row[1]) if row is not None else None,
            subrank=subrank,
            implicit=implicit,
        ))

        if not 0 <= rank < self.geometry.ranks:
            self._violate("rank-range", cycle, command, rank, bank,
                          f"rank {rank} outside 0..{self.geometry.ranks - 1}")
            return
        rk = self._ranks[rank]
        bk = self._banks[rank][bank] if 0 <= bank < self.geometry.banks \
            else None
        if command is not Command.REF and bk is None:
            self._violate("bank-range", cycle, command, rank, bank,
                          f"bank {bank} outside 0..{self.geometry.banks - 1}")
            return

        if not implicit:
            self._require(
                cycle > self._last_command_at, "command-bus", cycle,
                command, rank, bank,
                f"command bus carries one command per cycle; previous "
                f"command at {self._last_command_at}",
            )
            self._last_command_at = max(self._last_command_at, cycle)
            self._check_shadow_sync(cycle, command, rank, bank, bk)

        if command in (Command.ACT, Command.ACT_COL):
            self._on_act(cycle, command, rank, bank, rk, bk, row)
        elif command in (Command.RD, Command.WR):
            self._on_cas(cycle, command, rank, bank, rk, bk, row,
                         subrank, io_mode, internal_bursts)
        elif command is Command.PRE:
            self._on_pre(cycle, rank, bank, rk, bk, implicit, subarray)
        elif command is Command.REF:
            self._on_ref(cycle, rank, rk)
        elif command is Command.MRS:
            self._on_mrs(cycle, rank, bank, rk, io_mode)
        elif command is Command.SA_SEL:
            self._on_sa_sel(cycle, rank, bank, rk, bk, row)
        else:  # pragma: no cover - future command kinds
            self._violate("unknown-command", cycle, command, rank, bank,
                          f"checker does not model {command}")

    def _check_shadow_sync(self, cycle, command, rank, bank, bk) -> None:
        """Cross-validate the shadow row state against the live bank."""
        if self._controller is None or bk is None:
            return
        actual = self._controller.channel.ranks[rank].banks[bank]
        if self.salp != "none":
            shadow_open = {
                sub_id: sub.open_row
                for sub_id, sub in bk.subs.items()
                if sub.open_row is not None
            }
            actual_open = {
                sub_id: actual.subarrays[sub_id].open_row
                for sub_id in actual.open_subs
            }
            if shadow_open != actual_open \
                    or bk.designated != actual.designated:
                self._violate(
                    "shadow-divergence", cycle, command, rank, bank,
                    f"checker believes open={shadow_open} "
                    f"designated={bk.designated}, controller bank state "
                    f"is {actual.snapshot()}",
                )
                # resync to avoid cascades
                for sub_id, sub in bk.subs.items():
                    sub.open_row = actual_open.get(sub_id)
                for sub_id, open_row in actual_open.items():
                    self._sub_shadow(bk, sub_id).open_row = open_row
                bk.designated = actual.designated
            return
        if actual.open_row != bk.open_row:
            self._violate(
                "shadow-divergence", cycle, command, rank, bank,
                f"checker believes open_row={bk.open_row}, controller bank "
                f"state is {actual.snapshot()}",
            )
            bk.open_row = actual.open_row  # resync to avoid cascades

    # ------------------------------------------------------------ row rules

    def _on_act(self, cycle, command, rank, bank, rk, bk, row) -> None:
        t = self.timing
        if row is None:
            self._violate("act-without-row", cycle, command, rank, bank,
                          "ACT carries no row")
            return
        sub_id = self._sub_id_of(row)
        if sub_id is None:
            target = bk
        else:
            # SALP: the row-buffer rules apply to the target subarray;
            # the bank adds the shared row-logic (tRA) and capacity rules
            target = self._sub_shadow(bk, sub_id)
            open_subs = [i for i, s in bk.subs.items()
                         if s.open_row is not None]
            self._require(
                len(open_subs) < self._capacity or sub_id in open_subs,
                "salp-capacity", cycle, command, rank, bank,
                f"ACT on subarray {sub_id} with {open_subs} already open "
                f"({self.salp} allows {self._capacity})",
            )
            self._require(
                cycle >= bk.bank_act_at + t.tRA, "tRA", cycle, command,
                rank, bank,
                f"ACT at {cycle} < bank ACT@{bk.bank_act_at} + "
                f"tRA({t.tRA})",
            )
        self._require(target.open_row is None, "act-on-open", cycle,
                      command, rank, bank,
                      f"{'subarray ' + str(sub_id) if sub_id is not None else 'bank'} "
                      f"already has {target.open_row} open")
        self._require(cycle >= target.pre_at + t.tRP, "tRP", cycle, command,
                      rank, bank,
                      f"ACT at {cycle} < PRE@{target.pre_at} + tRP({t.tRP})")
        self._require(cycle >= rk.blackout_until, "tRFC", cycle, command,
                      rank, bank,
                      f"ACT at {cycle} inside refresh blackout "
                      f"(until {rk.blackout_until})")
        self._require(cycle >= rk.mrs_until, "tMOD_IO", cycle, command,
                      rank, bank,
                      f"ACT at {cycle} inside MRS stall "
                      f"(until {rk.mrs_until})")
        group = bank // self.geometry.banks_per_group
        if rk.last_act_at > _NEVER:
            spacing = (t.tRRD_L if group == rk.last_act_group
                       else t.tRRD_S)
            self._require(
                cycle >= rk.last_act_at + spacing, "tRRD", cycle, command,
                rank, bank,
                f"ACT at {cycle} < ACT@{rk.last_act_at} + "
                f"tRRD({spacing})",
            )
        if len(rk.acts) == 4:
            self._require(
                cycle >= rk.acts[0] + t.tFAW, "tFAW", cycle, command,
                rank, bank,
                f"fifth ACT at {cycle} inside the four-activate window "
                f"opened at {rk.acts[0]} (tFAW={t.tFAW})",
            )
        target.open_row = row
        target.act_at = cycle
        if sub_id is not None:
            bk.bank_act_at = cycle
            bk.designated = sub_id  # the newest ACT owns the global SAs
        rk.last_act_at = cycle
        rk.last_act_group = group
        rk.acts.append(cycle)

    def _on_pre(self, cycle, rank, bank, rk, bk, implicit,
                sub_id=None) -> None:
        t = self.timing
        command = Command.PRE
        if self.salp != "none":
            if sub_id is None:
                # hand-built streams may omit the operand; a PRE with
                # exactly one open subarray is still unambiguous
                open_subs = [i for i, s in bk.subs.items()
                             if s.open_row is not None]
                sub_id = open_subs[0] if len(open_subs) == 1 else \
                    (bk.designated if bk.designated is not None else 0)
            target = self._sub_shadow(bk, sub_id)
        else:
            target = bk
        self._require(target.open_row is not None, "pre-on-closed", cycle,
                      command, rank, bank,
                      "PRE on an already-closed "
                      + ("subarray " + str(sub_id) if sub_id is not None
                         else "bank"))
        self._require(cycle >= target.act_at + t.tRAS, "tRAS", cycle,
                      command, rank, bank,
                      f"PRE at {cycle} < ACT@{target.act_at} "
                      f"+ tRAS({t.tRAS})")
        self._require(
            cycle >= target.rd_at + t.tRTP + target.rd_tail, "tRTP", cycle,
            command, rank, bank,
            f"PRE at {cycle} < RD@{target.rd_at} + tRTP({t.tRTP}) "
            f"+ tail({target.rd_tail})",
        )
        wr_ready = target.wr_at + t.CWL + t.tBL + t.tWR + target.wr_tail
        self._require(
            cycle >= wr_ready, "tWR", cycle, command, rank, bank,
            f"PRE at {cycle} < WR@{target.wr_at} + CWL + tBL + tWR "
            f"(ready {wr_ready})",
        )
        if not implicit:
            self._require(cycle >= rk.blackout_until, "tRFC", cycle,
                          command, rank, bank,
                          f"PRE at {cycle} inside refresh blackout "
                          f"(until {rk.blackout_until})")
        target.open_row = None
        target.pre_at = max(target.pre_at, cycle)
        if sub_id is not None and bk.designated == sub_id:
            bk.designated = None

    def _on_ref(self, cycle, rank, rk) -> None:
        t = self.timing
        command = Command.REF
        open_banks = [
            i for i, bk in enumerate(self._banks[rank])
            if bk.open_row is not None
            or any(s.open_row is not None for s in bk.subs.values())
        ]
        self._require(not open_banks, "ref-open-bank", cycle, command,
                      rank, -1,
                      f"REF with banks {open_banks} still open")
        self._require(cycle >= rk.blackout_until, "tRFC", cycle, command,
                      rank, -1,
                      f"REF at {cycle} inside previous refresh blackout "
                      f"(until {rk.blackout_until})")
        for bk in self._banks[rank]:
            bk.open_row = None
            bk.designated = None
            for sub in bk.subs.values():
                sub.open_row = None
        rk.blackout_until = max(rk.blackout_until, cycle + t.tRFC)

    # --------------------------------------------------------- column rules

    def _on_cas(self, cycle, command, rank, bank, rk, bk, row, subrank,
                io_mode, internal_bursts) -> None:
        t = self.timing
        req_type = (RequestType.READ if command is Command.RD
                    else RequestType.WRITE)
        sub_id = self._sub_id_of(row)
        if sub_id is None:
            target = bk
        else:
            # SALP: the open-row and tRCD rules bind the target subarray;
            # tCCD spacing binds the bank's shared column path, and the
            # target must own the global sense amps
            target = self._sub_shadow(bk, sub_id)
            self._require(
                bk.designated == sub_id, "cas-undesignated", cycle,
                command, rank, bank,
                f"column command to subarray {sub_id} but subarray "
                f"{bk.designated} drives the global sense amps",
            )
            self._require(
                cycle >= bk.sa_sel_at + t.tSA_SEL, "tSA_SEL", cycle,
                command, rank, bank,
                f"CAS at {cycle} < SA_SEL@{bk.sa_sel_at} + "
                f"tSA_SEL({t.tSA_SEL})",
            )
        if target.open_row is None:
            self._violate("cas-on-closed", cycle, command, rank, bank,
                          "column command with no open row")
        elif row is not None and target.open_row != row:
            self._violate(
                "cas-row-mismatch", cycle, command, rank, bank,
                f"column command needs {row} but {target.open_row} is open",
            )
        self._require(cycle >= target.act_at + t.tRCD, "tRCD", cycle,
                      command, rank, bank,
                      f"CAS at {cycle} < ACT@{target.act_at} "
                      f"+ tRCD({t.tRCD})")
        self._require(
            cycle >= bk.cas_at + t.tCCD_L + bk.cas_tail, "tCCD_L", cycle,
            command, rank, bank,
            f"CAS at {cycle} < CAS@{bk.cas_at} + tCCD_L({t.tCCD_L}) "
            f"+ tail({bk.cas_tail})",
        )
        # tCCD_S on shared chips: a full-width CAS uses every chip of the
        # rank, a sub-rank CAS only its own chip set.
        if subrank is None:
            chipsets = list(rk.cas_by_chipset)
        else:
            chipsets = [cs for cs in rk.cas_by_chipset
                        if cs is None or cs == subrank]
        for chipset in chipsets:
            self._require(
                cycle >= rk.cas_by_chipset[chipset] + t.tCCD_S, "tCCD_S",
                cycle, command, rank, bank,
                f"CAS at {cycle} < same-chip CAS@"
                f"{rk.cas_by_chipset[chipset]} + tCCD_S({t.tCCD_S})",
            )
        if command is Command.RD:
            self._require(cycle >= rk.wtr_until, "tWTR", cycle, command,
                          rank, bank,
                          f"RD at {cycle} inside write-to-read turnaround "
                          f"(until {rk.wtr_until})")
        self._require(cycle >= rk.blackout_until, "tRFC", cycle, command,
                      rank, bank,
                      f"CAS at {cycle} inside refresh blackout "
                      f"(until {rk.blackout_until})")
        self._require(cycle >= rk.mrs_until, "tMOD_IO", cycle, command,
                      rank, bank,
                      f"CAS at {cycle} inside MRS stall "
                      f"(until {rk.mrs_until})")
        if io_mode is not rk.io_mode:
            self._violate(
                "io-mode", cycle, command, rank, bank,
                f"request needs {io_mode.value} but the rank is in "
                f"{rk.io_mode.value}",
            )
        self._check_data_bus(cycle, command, rank, bank, req_type, subrank)

        tail = internal_bursts * t.tCCD_L
        bk.cas_at = cycle  # shared column path, whatever the subarray
        bk.cas_tail = tail
        if command is Command.RD:
            target.rd_at = cycle
            target.rd_tail = tail
        else:
            target.wr_at = cycle
            target.wr_tail = tail
            rk.wtr_until = max(rk.wtr_until,
                               cycle + t.CWL + t.tBL + t.tWTR)
        rk.cas_by_chipset[subrank] = cycle

    # --------------------------------------------------------- subarray rules

    def _on_sa_sel(self, cycle, rank, bank, rk, bk, row) -> None:
        t = self.timing
        command = Command.SA_SEL
        self._require(self.salp == "masa", "sa-sel-mode", cycle, command,
                      rank, bank,
                      f"SA_SEL only exists under MASA (mode is "
                      f"{self.salp!r})")
        if self.salp == "none":
            return  # no subarray state to update
        sub_id = self._sub_id_of(row)
        if sub_id is None:
            self._violate("sa-sel-without-row", cycle, command, rank, bank,
                          "SA_SEL carries no row to derive its subarray")
            return
        sub = self._sub_shadow(bk, sub_id)
        self._require(sub.open_row is not None, "sa-sel-on-closed", cycle,
                      command, rank, bank,
                      f"SA_SEL designating closed subarray {sub_id}")
        self._require(cycle >= bk.sa_sel_at + t.tSA_SEL, "tSA_SEL", cycle,
                      command, rank, bank,
                      f"SA_SEL at {cycle} < SA_SEL@{bk.sa_sel_at} + "
                      f"tSA_SEL({t.tSA_SEL})")
        self._require(cycle >= rk.blackout_until, "tRFC", cycle, command,
                      rank, bank,
                      f"SA_SEL at {cycle} inside refresh blackout "
                      f"(until {rk.blackout_until})")
        bk.designated = sub_id
        bk.sa_sel_at = cycle

    def _check_data_bus(self, cycle, command, rank, bank, req_type,
                        subrank) -> None:
        """Per-pin-group burst windows: no overlap, tRTR/tRTW bubbles.
        Because each pin group is checked separately, this also proves
        sub-bus occupancy never exceeds the physical pin count."""
        t = self.timing
        latency = t.CL if command is Command.RD else t.CWL
        start = cycle + latency
        end = start + t.tBL
        if subrank is not None and not (
            0 <= subrank < self.geometry.subranks
        ):
            self._violate(
                "subrank-range", cycle, command, rank, bank,
                f"sub-rank {subrank} outside "
                f"0..{self.geometry.subranks - 1}",
            )
            return
        if subrank is None:
            previous = [self._bus_full] + list(self._bus_group.values())
        else:
            previous = [self._bus_full, self._bus_group.get(subrank)]
        for prev in previous:
            if prev is None:
                continue
            p_start, p_end, p_rank, p_type = prev
            gap = 0
            gap_rule = None
            if p_rank != rank and t.tRTR > gap:
                gap, gap_rule = t.tRTR, "tRTR"
            if p_type != req_type and t.tRTW > gap:
                gap, gap_rule = t.tRTW, "tRTW"
            if start < p_end:
                self._violate(
                    "data-bus-overlap", cycle, command, rank, bank,
                    f"burst [{start}, {end}) overlaps burst "
                    f"[{p_start}, {p_end}) on the same pins",
                )
            elif start < p_end + gap:
                self._violate(
                    gap_rule, cycle, command, rank, bank,
                    f"burst at {start} follows a "
                    f"{'different-rank' if gap_rule == 'tRTR' else 'turnaround'} "
                    f"burst ending {p_end} without the {gap}-cycle bubble",
                )
        burst: _Burst = (start, end, rank, req_type)
        if subrank is None:
            self._bus_full = burst
        else:
            self._bus_group[subrank] = burst
        self._pending_burst = (start, end, rank, subrank)

    def on_data_burst(self, now: int, cmd: Command, rank: int,
                      subrank: Optional[int], data_start: int,
                      data_end: int) -> None:
        """Channel-side hook: cross-validate the data window the channel
        actually booked against the one the checker computed from its own
        (trusted) timing table."""
        expected = self._pending_burst
        self._pending_burst = None
        if expected is None:
            self._violate("data-window-mismatch", now, cmd, rank, -1,
                          "data burst without a matching column command")
            return
        e_start, e_end, e_rank, e_subrank = expected
        if (data_start, data_end, rank, subrank) != \
                (e_start, e_end, e_rank, e_subrank):
            self._violate(
                "data-window-mismatch", now, cmd, rank, -1,
                f"channel booked [{data_start}, {data_end}) on "
                f"rank{rank}/sub{subrank}, checker expected "
                f"[{e_start}, {e_end}) on rank{e_rank}/sub{e_subrank}",
            )

    # ------------------------------------------------------------ mode rules

    def _on_mrs(self, cycle, rank, bank, rk, io_mode) -> None:
        t = self.timing
        command = Command.MRS
        self._require(cycle >= rk.blackout_until, "tRFC", cycle, command,
                      rank, bank,
                      f"MRS at {cycle} inside refresh blackout "
                      f"(until {rk.blackout_until})")
        self._require(cycle >= rk.mrs_until, "tMOD_IO", cycle, command,
                      rank, bank,
                      f"MRS at {cycle} inside previous MRS stall "
                      f"(until {rk.mrs_until})")
        self._require(cycle >= rk.wtr_until, "mrs-busy", cycle, command,
                      rank, bank,
                      f"MRS at {cycle} before in-flight writes complete "
                      f"(until {rk.wtr_until})")
        if self._bus_full is not None:
            self._require(
                cycle >= self._bus_full[1], "mrs-during-burst", cycle,
                command, rank, bank,
                f"MRS at {cycle} while the full-width bus is busy until "
                f"{self._bus_full[1]}",
            )
        rk.io_mode = io_mode
        rk.mrs_until = max(rk.mrs_until, cycle + t.tMOD_IO)

    # -------------------------------------------------------------- summary

    def summary(self) -> dict:
        """Machine-readable result of the checking session."""
        by_rule: Dict[str, int] = {}
        for v in self.violations:
            by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
        return {
            "commands": self.commands_seen,
            "violations": len(self.violations),
            "by_rule": by_rule,
        }
