"""Correctness tooling: protocol checker, data oracle, trace fuzzer.

``repro.check`` validates the simulator against two independent contracts:

* the *timing* contract -- :class:`TimingProtocolChecker` observes every
  controller command and asserts the JEDEC-style constraints (tRCD, tRP,
  tRAS, tCCD, tFAW, tRFC, tWR, bus occupancy, ...), raising a structured
  :class:`ProtocolViolation` with the offending command window;
* the *data* contract -- :class:`PlanValidator` differentially re-derives
  every gather plan's request and fill sets, and :class:`DataOracle`
  checks strided gathers bit for bit through the functional datapath,
  including transposed-codeword ECC layouts and SSC-DSD symbols.

:func:`run_fuzz` drives both with seeded random configs x traces and
shrinks any failure to a minimal JSON reproducer (``repro check fuzz``).
"""

from .fuzz import (
    DEFAULT_SCHEMES,
    SALP_SCHEMES,
    CaseResult,
    FuzzCase,
    FuzzReport,
    case_from_json,
    case_to_json,
    generate_case,
    replay,
    run_case,
    run_fuzz,
    shrink,
)
from .oracle import (
    DataOracle,
    FunctionalMemory,
    KernelOracle,
    OracleError,
    OracleMismatch,
    PlanValidator,
    reference_line,
)
from .protocol import (
    CommandRecord,
    ProtocolError,
    ProtocolViolation,
    TimingProtocolChecker,
)

__all__ = [
    "DEFAULT_SCHEMES",
    "SALP_SCHEMES",
    "CaseResult",
    "CommandRecord",
    "DataOracle",
    "FunctionalMemory",
    "FuzzCase",
    "FuzzReport",
    "KernelOracle",
    "OracleError",
    "OracleMismatch",
    "PlanValidator",
    "ProtocolError",
    "ProtocolViolation",
    "TimingProtocolChecker",
    "case_from_json",
    "case_to_json",
    "generate_case",
    "reference_line",
    "replay",
    "run_case",
    "run_fuzz",
    "shrink",
]
