"""Randomized trace fuzzing for the protocol checker and data oracle.

``repro check fuzz`` generates seeded random (scheme, placement, trace)
cases, runs each one against a real :class:`MemoryController` with the
:class:`~repro.check.protocol.TimingProtocolChecker` attached (fed the
*truth* timing table) and the plan/data oracles enabled, and reports any
protocol violation or oracle mismatch.  Failures are shrunk with a
delta-debugging pass to a minimal op sequence and written out as a JSON
reproducer that ``repro check replay`` (or :func:`replay`) re-runs.

Timing-table corruption can be injected on the controller side only
(``inject={"tRCD": 1}``) to prove the checker catches a simulator whose
tables drift from the device contract -- the acceptance test for the
whole subsystem.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.registry import _NO_STRIDE, make_scheme
from ..core.scheme import TablePlacement
from ..dram.commands import Request
from ..dram.controller import ControllerConfig, MemoryController
from ..dram.geometry import Geometry
from ..kernel import Kernel, SimulationError
from .oracle import DataOracle, FunctionalMemory, OracleMismatch, PlanValidator
from .protocol import ProtocolError, ProtocolViolation, TimingProtocolChecker

#: schemes every fuzz run covers by default (the six designs the issue's
#: acceptance criterion names; the rest can be opted in via --schemes)
DEFAULT_SCHEMES: Tuple[str, ...] = (
    "baseline",
    "SAM-sub",
    "SAM-IO",
    "SAM-en",
    "GS-DRAM",
    "RC-NVM-wd",
)

#: the subarray-parallel designs, fuzzed via ``--schemes`` (or the CI
#: smoke / equivalence tests).  Kept out of DEFAULT_SCHEMES so the
#: default case stream -- and every seeded reproducer derived from it --
#: stays byte-stable across the SALP landing.
SALP_SCHEMES: Tuple[str, ...] = ("salp1", "salp2", "masa", "SAM-en+masa")

_LINE = 64
#: step budget per case: orders of magnitude above any healthy trace
#: (the whole 200-case default run issues ~10k commands) but small enough
#: that a livelocked controller under corrupted tables fails fast
_MAX_DRAIN_EVENTS = 300_000
#: tight refresh interval used (on BOTH the controller and the checker)
#: by refresh-exercising cases, so short traces still cross tREFI
_FUZZ_TREFI = 400
_FUZZ_TRFC = 60


@dataclass(frozen=True)
class FuzzCase:
    """One fully deterministic fuzz input."""

    seed: int
    index: int
    scheme: str
    gather_factor: int
    record_bytes: int
    n_records: int
    refresh: bool
    #: ops: ("sload"|"sstore", first_record, offset) |
    #:      ("load"|"store", record, offset) |
    #:      ("irr", (record, ...), offset)
    ops: Tuple[Tuple, ...]
    #: controller-side timing-table corruption, e.g. (("tRCD", 1),)
    inject: Tuple[Tuple[str, int], ...] = ()

    def describe(self) -> str:
        tag = f"+{dict(self.inject)}" if self.inject else ""
        return (
            f"case {self.seed}/{self.index}: {self.scheme} g{self.gather_factor} "
            f"{len(self.ops)} ops{tag}"
        )


@dataclass
class CaseResult:
    """Outcome of one case."""

    case: FuzzCase
    violations: List[ProtocolViolation] = field(default_factory=list)
    mismatches: List[OracleMismatch] = field(default_factory=list)
    commands: int = 0
    submitted: int = 0
    completed: int = 0
    cycles: int = 0

    @property
    def failed(self) -> bool:
        return bool(self.violations or self.mismatches)

    def signature(self) -> Optional[str]:
        """Stable label of the first failure, used to steer shrinking."""
        if self.violations:
            return f"protocol:{self.violations[0].rule}"
        if self.mismatches:
            return f"oracle:{self.mismatches[0].kind}"
        return None


@dataclass
class FuzzReport:
    """Outcome of a whole fuzz run."""

    seed: int
    cases: int = 0
    commands: int = 0
    failures: List[CaseResult] = field(default_factory=list)
    reproducer_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> dict:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "commands": self.commands,
            "failures": len(self.failures),
            "first_failure": (
                self.failures[0].signature() if self.failures else None
            ),
            "reproducer": self.reproducer_path,
        }


# ------------------------------------------------------------- generation


def generate_case(
    seed: int,
    index: int,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    inject: Tuple[Tuple[str, int], ...] = (),
) -> FuzzCase:
    """Deterministically generate case ``index`` of stream ``seed``."""
    rng = random.Random(f"{seed}/{index}")
    scheme_name = rng.choice(list(schemes))
    gather_factor = rng.choice((4, 8))
    sector = _LINE // gather_factor
    record_bytes = rng.choice((sector, 2 * sector, _LINE, 2 * _LINE, 256))
    n_records = rng.randrange(4, 48) * gather_factor
    refresh = rng.random() < 0.25
    n_groups = n_records // gather_factor
    sectors_per_record = max(1, record_bytes // sector)

    def offset() -> int:
        return sector * rng.randrange(sectors_per_record)

    ops: List[Tuple] = []
    for _ in range(rng.randrange(8, 32)):
        roll = rng.random()
        if roll < 0.45:
            ops.append(
                ("sload", gather_factor * rng.randrange(n_groups), offset())
            )
        elif roll < 0.60:
            ops.append(
                ("sstore", gather_factor * rng.randrange(n_groups), offset())
            )
        elif roll < 0.75:
            # irregular gather: randomly scattered records, one field
            count = rng.randrange(2, gather_factor + 1)
            records = tuple(
                rng.randrange(n_records) for _ in range(count)
            )
            ops.append(("irr", records, offset()))
        elif roll < 0.90:
            ops.append(("load", rng.randrange(n_records), offset()))
        else:
            ops.append(("store", rng.randrange(n_records), offset()))
    return FuzzCase(
        seed=seed,
        index=index,
        scheme=scheme_name,
        gather_factor=gather_factor,
        record_bytes=record_bytes,
        n_records=n_records,
        refresh=refresh,
        ops=tuple(ops),
        inject=tuple(inject),
    )


# -------------------------------------------------------------- execution


def _pump(kernel: Kernel, mc: MemoryController,
          request: Request) -> None:
    """Advance the simulation until the controller can accept ``request``."""
    stepped = 0
    while not mc.can_accept(request):
        if not kernel.step():
            raise SimulationError(
                "controller queue full but no events pending"
            )
        stepped += 1
        if stepped > _MAX_DRAIN_EVENTS:
            raise SimulationError("fuzz case wedged waiting for a slot")


def run_case(case: FuzzCase, registry=None,
             oracle_data: bool = True,
             readiness_index: bool = True,
             event_wheel: bool = True,
             stall_ledger=None,
             on_command=None) -> CaseResult:
    """Execute one case with checker + oracles attached (collect mode).

    ``readiness_index`` toggles the controller's incremental FR-FCFS
    readiness index against the full-recompute reference scheduler,
    ``event_wheel`` toggles memoized event-wheel wake-ups against the
    plain polling reference, ``stall_ledger`` (an
    :class:`~repro.obs.stalls.StallLedger`) captures the controller's
    wait attribution, and ``on_command`` (``(cycle, command, request)``)
    observes the issued command stream -- together they let the
    equivalence tests replay one fuzzed trace through both scheduler
    variants and diff streams, cycles and ledgers.
    """
    # non-stride schemes reject a gather factor; the case's factor only
    # shapes the generated trace for them
    scheme = make_scheme(
        case.scheme,
        gather_factor=(case.gather_factor
                       if case.scheme not in _NO_STRIDE else None),
    )
    geometry = scheme.geometry
    truth = scheme.timing
    if case.refresh:
        truth = replace(truth, tREFI=_FUZZ_TREFI, tRFC=_FUZZ_TRFC)
    corrupted = replace(truth, **dict(case.inject)) if case.inject else truth

    kernel = Kernel()
    mc = MemoryController(
        kernel, corrupted, geometry,
        ControllerConfig(refresh_enabled=case.refresh,
                         readiness_index=readiness_index,
                         event_wheel=event_wheel),
        salp=scheme.salp_mode,
    )
    if on_command is not None:
        mc.observer = on_command
    if stall_ledger is not None:
        mc.stall_ledger = stall_ledger
    checker = TimingProtocolChecker(
        truth, geometry, registry=registry, strict=False,
        salp=scheme.salp_mode,
    ).attach(mc)
    validator = PlanValidator(scheme, registry=registry, strict=False)

    table = TablePlacement(
        base=0, record_bytes=case.record_bytes, n_records=case.n_records
    )
    placement = scheme.placement(table)
    result = CaseResult(case=case)

    def _done(request, _time) -> None:
        result.completed += 1

    def _submit_all(requests: Sequence[Request]) -> None:
        for request in requests:
            request.on_complete = _done
            _pump(kernel, mc, request)
            mc.submit(request)
            result.submitted += 1

    def _gather(kind: str, elements: Sequence[int]) -> None:
        lower = (
            scheme.lower_gather_read
            if kind == "read"
            else scheme.lower_gather_write
        )
        plan = lower(elements)
        if plan is None:
            # no stride hardware: per-element demand traffic
            for addr in elements:
                line = scheme.mapper.line_address(addr)
                _submit_all(
                    scheme.lower_read(line)
                    if kind == "read"
                    else scheme.lower_write(line)
                )
            return
        validator.on_plan(kind, elements, plan)
        _submit_all(plan.requests)

    try:
        for op in case.ops:
            kind = op[0]
            if kind in ("sload", "sstore"):
                first, off = op[1], op[2]
                count = min(case.gather_factor, case.n_records - first)
                elements = placement.element_addrs(first, count, off)
                _gather("read" if kind == "sload" else "write", elements)
            elif kind == "irr":
                records, off = op[1], op[2]
                elements = [placement.addr_of(r, off) for r in records]
                _gather("read", elements)
            else:
                addr = placement.addr_of(op[1], op[2])
                line = scheme.mapper.line_address(addr)
                if kind == "load":
                    _submit_all(scheme.lower_read(line))
                else:
                    _submit_all(scheme.lower_write(line))
        drained = 0
        while kernel.step():
            drained += 1
            if drained > _MAX_DRAIN_EVENTS:
                raise SimulationError("fuzz case failed to drain")
        if not mc.idle():  # pragma: no cover - controller invariant
            raise SimulationError("queues non-empty after event drain")
    except ProtocolError:
        # collect mode hit max_violations: the case has failed loudly
        # enough; its violations are already recorded on the checker
        pass
    except SimulationError as exc:
        result.mismatches.append(OracleMismatch(
            "simulation-error", case.scheme, str(exc)
        ))

    if oracle_data and not case.inject:
        _run_data_oracle(case, result)

    result.violations.extend(checker.violations)
    result.mismatches.extend(validator.mismatches)
    result.commands = checker.commands_seen
    result.cycles = kernel.now
    if result.completed != result.submitted:
        result.mismatches.append(OracleMismatch(
            "lost-requests", case.scheme,
            f"{result.submitted} requests submitted but only "
            f"{result.completed} completed",
        ))
    return result


def _run_data_oracle(case: FuzzCase, result: CaseResult) -> None:
    """Bit-exact datapath / codeword checks derived from the case rng.

    Line contents come from a :class:`FunctionalMemory` (some lines
    written with random data, the rest at their deterministic reference
    pattern), so the datapath gather is compared against what the
    functional model says a software strided read returns.
    """
    rng = random.Random(f"{case.seed}/{case.index}/data")
    oracle = DataOracle(strict=False)
    memory = FunctionalMemory()
    bank = rng.randrange(16)
    row = rng.randrange(256)
    columns = rng.sample(range(128), 4)
    line_addrs = [_LINE * (128 * row + c) for c in columns]
    for addr in line_addrs:
        if rng.random() < 0.5:  # half written, half at reference pattern
            memory.write_line(
                addr, bytes(rng.randrange(256) for _ in range(_LINE))
            )
    lines = [memory.read_line(addr) for addr in line_addrs]
    for layout in ("default", "transposed"):
        oracle.check_line_roundtrip(layout, bank, row, columns[0], lines[0])
        oracle.check_gather(layout, bank, row, columns, rng.randrange(4),
                            lines)
        oracle.check_gather(
            layout, bank, row, columns, rng.randrange(4), lines,
            faulty_chip=rng.randrange(16),
            fault_mask=rng.randrange(1, 1 << 16),
        )
    data = bytes(rng.randrange(256) for _ in range(32))
    single = [0] * 36
    single[rng.randrange(36)] = rng.randrange(1, 256)
    oracle.check_dsd(data, single)
    double = [0] * 36
    for chip in rng.sample(range(36), 2):
        double[chip] = rng.randrange(1, 256)
    oracle.check_dsd(data, double)
    result.mismatches.extend(oracle.mismatches)


# -------------------------------------------------------------- shrinking


def shrink(case: FuzzCase,
           fails: Optional[Callable[[FuzzCase], bool]] = None) -> FuzzCase:
    """Delta-debug ``case.ops`` down to a minimal failing sequence.

    ``fails`` defaults to "re-running reproduces the same first-failure
    signature"."""
    if fails is None:
        target = run_case(case).signature()
        if target is None:
            return case

        def fails(trial: FuzzCase) -> bool:
            return run_case(trial).signature() == target

    ops = list(case.ops)
    chunk = max(1, len(ops) // 2)
    while chunk >= 1:
        i = 0
        while i < len(ops):
            trial_ops = ops[:i] + ops[i + chunk:]
            if trial_ops and fails(replace(case, ops=tuple(trial_ops))):
                ops = trial_ops
            else:
                i += chunk
        chunk //= 2
    minimal = replace(case, ops=tuple(ops))
    if minimal.refresh:
        trial = replace(minimal, refresh=False)
        if fails(trial):
            minimal = trial
    return minimal


# ------------------------------------------------------------ persistence


def case_to_json(case: FuzzCase, result: Optional[CaseResult] = None) -> dict:
    payload = dataclasses.asdict(case)
    payload["ops"] = [list(op) for op in case.ops]
    payload["inject"] = [list(pair) for pair in case.inject]
    if result is not None:
        payload["failure"] = {
            "signature": result.signature(),
            "violations": [v.to_dict() for v in result.violations[:8]],
            "mismatches": [m.to_dict() for m in result.mismatches[:8]],
        }
    return payload


def case_from_json(payload: dict) -> FuzzCase:
    ops = tuple(
        tuple(tuple(part) if isinstance(part, list) else part
              for part in op)
        for op in payload["ops"]
    )
    inject = tuple((name, value) for name, value in payload.get("inject", []))
    return FuzzCase(
        seed=payload["seed"],
        index=payload["index"],
        scheme=payload["scheme"],
        gather_factor=payload["gather_factor"],
        record_bytes=payload["record_bytes"],
        n_records=payload["n_records"],
        refresh=payload["refresh"],
        ops=ops,
        inject=inject,
    )


def replay(path) -> CaseResult:
    """Re-run a JSON reproducer written by :func:`run_fuzz`."""
    payload = json.loads(Path(path).read_text())
    return run_case(case_from_json(payload))


# --------------------------------------------------------------- top level


def run_fuzz(
    seed: int,
    cases: int,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    inject: Tuple[Tuple[str, int], ...] = (),
    artifacts_dir=None,
    registry=None,
    progress: Optional[Callable[[str], None]] = None,
    shrink_failures: bool = True,
) -> FuzzReport:
    """Run ``cases`` seeded cases; shrink and persist the first failure."""
    report = FuzzReport(seed=seed)
    for index in range(cases):
        case = generate_case(seed, index, schemes, inject)
        result = run_case(case, registry=registry)
        report.cases += 1
        report.commands += result.commands
        if not result.failed:
            continue
        report.failures.append(result)
        if len(report.failures) == 1:
            minimal = shrink(case) if shrink_failures else case
            minimal_result = run_case(minimal)
            if not minimal_result.failed:  # pragma: no cover - paranoia
                minimal, minimal_result = case, result
            out_dir = Path(artifacts_dir) if artifacts_dir else Path(".")
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / f"fuzz-failure-{seed}-{index}.json"
            path.write_text(json.dumps(
                case_to_json(minimal, minimal_result), indent=2
            ))
            report.reproducer_path = str(path)
            if progress:
                progress(
                    f"FAIL {case.describe()} -> {result.signature()} "
                    f"(reproducer: {path}, {len(minimal.ops)} ops after "
                    f"shrinking from {len(case.ops)})"
                )
        if progress and len(report.failures) > 1:
            progress(f"FAIL {case.describe()} -> {result.signature()}")
    if progress:
        progress(
            f"fuzz: {report.cases} cases, {report.commands} commands, "
            f"{len(report.failures)} failures"
        )
    return report
