"""Differential data oracle.

Three layers of "is the data right?" checking, all independent of the
timing simulator:

* :class:`FunctionalMemory` -- a pure-python functional model of the
  module's contents.  Every line has a deterministic reference pattern
  (:func:`reference_line`) until written, so the expected bytes of *any*
  strided gather are computable without running the simulator.
* :class:`PlanValidator` -- a differential re-derivation of request
  lowering.  It hooks the scheme's ``plan_observer`` and, for every
  gather plan the memory system admits, independently recomputes the
  expected request multiset (row-grouped SAM-IO/en gathers, SAM-sub /
  RC-NVM synthetic column-rows, GS-DRAM row groups plus embedded-ECC
  companions) and the exact (line, sector) fill set, then compares.
* :class:`DataOracle` -- bit-exact datapath checks: strided gathers
  through :class:`~repro.dram.datapath.RankDatapath` must return the
  same bytes a software strided read would load, chipkill codewords must
  stay intact under both the default and the transposed (Figure 4(c))
  layout including a corrected chip failure, and SSC-DSD codewords
  (4-bit-chip symbols grouped to GF(256)) must round-trip with
  single-chip correct / double-chip detect behaviour.
"""

from __future__ import annotations

import hashlib
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.scheme import AccessScheme, GatherPlan
from ..dram.datapath import RankDatapath
from ..dram.geometry import Geometry
from ..ecc.chipkill import ChipAlignedSSC, SSCDSDCodec

_LINE_BYTES = 64


def reference_line(line_addr: int) -> bytes:
    """Deterministic 64B content of an unwritten line."""
    return hashlib.blake2b(
        line_addr.to_bytes(8, "little"), digest_size=_LINE_BYTES
    ).digest()


class FunctionalMemory:
    """Sparse functional model of the module contents."""

    def __init__(self) -> None:
        self._lines: Dict[int, bytes] = {}

    def read_line(self, line_addr: int) -> bytes:
        return self._lines.get(line_addr, reference_line(line_addr))

    def write_line(self, line_addr: int, data: bytes) -> None:
        if len(data) != _LINE_BYTES:
            raise ValueError(f"a line is {_LINE_BYTES} bytes")
        self._lines[line_addr] = bytes(data)

    def read(self, addr: int, size: int) -> bytes:
        """Expected bytes of ``[addr, addr + size)`` (may span lines)."""
        out = b""
        while size > 0:
            line_addr = addr - addr % _LINE_BYTES
            offset = addr - line_addr
            take = min(size, _LINE_BYTES - offset)
            out += self.read_line(line_addr)[offset : offset + take]
            addr += take
            size -= take
        return out

    def write(self, addr: int, data: bytes) -> None:
        """Write arbitrary bytes (read-modify-write at line granularity)."""
        while data:
            line_addr = addr - addr % _LINE_BYTES
            offset = addr - line_addr
            take = min(len(data), _LINE_BYTES - offset)
            line = bytearray(self.read_line(line_addr))
            line[offset : offset + take] = data[:take]
            self._lines[line_addr] = bytes(line)
            addr += take
            data = data[take:]

    def expected_gather(self, element_addrs: Sequence[int],
                        sector_bytes: int) -> bytes:
        """The bytes a strided gather of ``element_addrs`` must return."""
        return b"".join(
            self.read(addr, sector_bytes) for addr in element_addrs
        )


@dataclass(frozen=True)
class OracleMismatch:
    """One divergence between the oracle and the simulator."""

    kind: str  # e.g. "plan-requests", "fills", "gather-data", "dsd"
    scheme: str
    message: str
    detail: tuple = ()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "scheme": self.scheme,
            "message": self.message,
            "detail": [list(d) if isinstance(d, tuple) else d
                       for d in self.detail],
        }

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.kind}] {self.scheme}: {self.message}"


class OracleError(Exception):
    """Raised in strict mode on the first oracle mismatch."""

    def __init__(self, mismatch: OracleMismatch) -> None:
        super().__init__(str(mismatch))
        self.mismatch = mismatch


class _MismatchCollector:
    def __init__(self, registry=None, strict: bool = True) -> None:
        self.registry = registry
        self.strict = strict
        self.mismatches: List[OracleMismatch] = []

    def _mismatch(self, kind: str, scheme: str, message: str,
                  detail: tuple = ()) -> None:
        m = OracleMismatch(kind=kind, scheme=scheme, message=message,
                           detail=detail)
        self.mismatches.append(m)
        if self.registry is not None:
            self.registry.counter("check.oracle_mismatches").inc()
        if self.strict:
            raise OracleError(m)


#: request signature compared between the scheme's plan and the oracle's
#: independent re-derivation
_Sig = Tuple


def _request_sig(request) -> _Sig:
    return (
        request.type.value,
        request.addr.rank,
        request.addr.bank,
        request.row_kind.value,
        request.addr.row,
        request.addr.column,
        request.io_mode.value,
        request.gather,
        request.internal_bursts,
        request.subrank,
        request.critical,
    )


class PlanValidator(_MismatchCollector):
    """Differential check of one scheme's gather lowering.

    Install with :meth:`attach` on a *private copy* of the scheme (the
    runner copies before attaching, so shared scheme instances stay
    observer-free).  ``on_plan`` fires once per admitted gather plan.
    """

    #: scheme families whose lowering the oracle re-derives
    _SAM_ROW = ("SAM-IO", "SAM-en", "SAM-en+masa")
    _GS = ("GS-DRAM", "GS-DRAM-ecc")
    _RC_NVM = {"RC-NVM-wd": 0, "RC-NVM-bit": 3}
    _RC_NVM_GROUP_ROWS = 64

    def __init__(self, scheme: AccessScheme, registry=None,
                 strict: bool = True) -> None:
        super().__init__(registry, strict)
        self.scheme = scheme
        self.plans_seen = 0

    def attach(self) -> "PlanValidator":
        self.scheme.plan_observer = self.on_plan
        return self

    # ------------------------------------------- plan-vs-lowering footprint

    def check_lowered_ops(self, plan, ops_per_core, placements) -> None:
        """Static diff of lowered gathers against the physical plan.

        The plan's strided operators declare their footprints (sector
        offsets x gather groups over the operator's records); every
        ``GatherLoad``/``GatherStore`` the lowering emitted must be one
        of those declared gathers (skipping groups is fine -- selection
        masks prune them -- inventing one is not).
        """
        from ..cpu.ops import GatherLoad, GatherStore

        g = self.scheme.gather_factor
        admitted_reads = set()
        admitted_writes = set()
        for node in plan.strided_nodes():
            placement = placements[node.table]
            for offset in node.sector_offsets:
                for gs in range(0, node.records, g):
                    ge = min(node.records, gs + g)
                    group = tuple(
                        placement.addr_of(r, offset) for r in range(gs, ge)
                    )
                    admitted_reads.add(group)
                    if node.writes:
                        admitted_writes.add(group)
        for ops in ops_per_core:
            for op in ops:
                if isinstance(op, GatherStore):
                    admitted, kind = admitted_writes, "write"
                elif isinstance(op, GatherLoad):
                    admitted, kind = admitted_reads, "read"
                else:
                    continue
                if self.registry is not None:
                    self.registry.counter("check.lowered_gathers").inc()
                if tuple(op.element_addrs) not in admitted:
                    self._mismatch(
                        "plan-footprint", self.scheme.name,
                        f"lowered {kind} gather of "
                        f"{len(op.element_addrs)} elements at "
                        f"{[hex(a) for a in op.element_addrs[:4]]}... is "
                        f"outside every footprint the physical plan for "
                        f"{plan.query} declared",
                        detail=(tuple(op.element_addrs),),
                    )

    # ------------------------------------------------------------- checking

    def on_plan(self, kind: str, element_addrs: Sequence[int],
                plan: GatherPlan) -> None:
        """``kind`` is ``"read"`` or ``"write"``."""
        self.plans_seen += 1
        if self.registry is not None:
            self.registry.counter("check.plans").inc()
        scheme = self.scheme
        self._check_fills(kind, element_addrs, plan)
        expected = self._expected_requests(kind, element_addrs)
        if expected is None:
            self._mismatch(
                "plan-unexpected", scheme.name,
                f"scheme {scheme.name} produced a gather plan but the "
                f"oracle knows no stride lowering for it",
            )
            return
        actual = Counter(_request_sig(r) for r in plan.requests)
        if actual != Counter(expected):
            missing = list((Counter(expected) - actual).elements())
            extra = list((actual - Counter(expected)).elements())
            self._mismatch(
                "plan-requests", scheme.name,
                f"{kind} gather of {len(element_addrs)} elements lowered "
                f"to the wrong requests (missing {missing}, "
                f"extra {extra})",
                detail=(tuple(element_addrs),),
            )

    def _check_fills(self, kind, element_addrs, plan) -> None:
        scheme = self.scheme
        expected = []
        for addr in element_addrs:
            line = addr - addr % _LINE_BYTES
            sector = (addr - line) // scheme.sector_bytes
            if not 0 <= sector < scheme.sectors_per_line:
                self._mismatch(
                    "fills", scheme.name,
                    f"element {addr:#x} maps to sector {sector} outside "
                    f"the line",
                    detail=(tuple(element_addrs),),
                )
                return
            expected.append((line, 1 << sector))
        if Counter(plan.fills) != Counter(expected):
            self._mismatch(
                "fills", scheme.name,
                f"{kind} gather fills {sorted(plan.fills)} do not cover "
                f"the requested elements (expected {sorted(expected)})",
                detail=(tuple(element_addrs),),
            )

    # -------------------------------------------- independent re-derivation

    def _expected_requests(self, kind: str,
                           element_addrs: Sequence[int]):
        scheme = self.scheme
        name = scheme.name
        type_value = "READ" if kind == "read" else "WRITE"
        critical = kind == "read"
        if name in self._SAM_ROW:
            return self._expected_sam_row(type_value, critical,
                                          element_addrs)
        if name == "SAM-sub":
            return self._expected_sam_sub(type_value, critical,
                                          element_addrs)
        if name in self._GS:
            return self._expected_gs(type_value, critical, element_addrs,
                                     ecc=(name == "GS-DRAM-ecc"))
        if name in self._RC_NVM:
            return self._expected_rc_nvm(type_value, critical,
                                         element_addrs,
                                         self._RC_NVM[name])
        return None

    def _by_row(self, element_addrs):
        groups = defaultdict(list)
        for addr in element_addrs:
            d = self.scheme.mapper.decode(addr)
            groups[(d.rank, d.bank, d.row)].append(addr)
        return groups

    def _expected_sam_row(self, type_value, critical, element_addrs):
        out = []
        for addrs in self._by_row(element_addrs).values():
            first = self.scheme.mapper.decode(addrs[0])
            if len(addrs) >= 2:
                out.append((type_value, first.rank, first.bank, "row",
                            first.row, first.column, "Sx4", len(addrs),
                            0, None, critical))
            else:
                out.append((type_value, first.rank, first.bank, "row",
                            first.row, first.column, "x4", 1, 0, None,
                            critical))
        return out

    def _expected_sam_sub(self, type_value, critical, element_addrs):
        mapper = self.scheme.mapper
        first = mapper.decode(element_addrs[0])
        band = first.row - first.row % self.scheme.gather_factor
        synthetic = (band << mapper.column_bits) | first.column
        return [(type_value, first.rank, first.bank, "column", synthetic,
                 first.column, "x4", len(element_addrs), 0, None,
                 critical)]

    def _expected_gs(self, type_value, critical, element_addrs, ecc):
        out = []
        for addrs in self._by_row(element_addrs).values():
            first = self.scheme.mapper.decode(addrs[0])
            out.append((type_value, first.rank, first.bank, "row",
                        first.row, first.column, "x4", len(addrs), 0,
                        None, critical))
            if ecc:
                companion = first.column ^ 1
                out.append(("READ", first.rank, first.bank, "row",
                            first.row, companion, "x4", 1, 0, None,
                            True))
                if type_value == "WRITE":
                    out.append(("WRITE", first.rank, first.bank, "row",
                                first.row, companion, "x4", 1, 0, None,
                                False))
        return out

    def _expected_rc_nvm(self, type_value, critical, element_addrs,
                         internal):
        scheme = self.scheme
        mapper = scheme.mapper
        first = mapper.decode(element_addrs[0])
        region = first.row - first.row % self._RC_NVM_GROUP_ROWS
        field_column = first.column * (
            scheme.geometry.cacheline_bytes // scheme.sector_bytes
        ) + first.offset // scheme.sector_bytes
        synthetic = (region << (mapper.column_bits + 4)) | field_column
        return [(type_value, first.rank, first.bank, "column", synthetic,
                 first.column, "x4", len(element_addrs), internal, None,
                 critical)]


class KernelOracle(_MismatchCollector):
    """Differential check of a generated kernel's lowered op streams.

    A :class:`~repro.workloads.kernels.KernelWorkload` carries its own
    ground truth: the generator's program-order element accesses and the
    expected-bytes digest over the functional memory's reference
    content.  This oracle re-derives both *independently of the
    lowering* -- it flattens whatever ops the build emitted back to
    element granularity and diffs them against the generator's access
    multiset, so a lowering that drops, duplicates or mis-addresses an
    element (or chunks a gather beyond the scheme's gather factor, or
    emits stride ops on a design without stride hardware) is caught
    before a single cycle is simulated.
    """

    def __init__(self, registry=None, strict: bool = True) -> None:
        super().__init__(registry, strict)
        self.ops_checked = 0

    def check_build(self, workload, scheme: AccessScheme, build,
                    placements) -> None:
        from ..cpu.ops import GatherLoad, GatherStore, Load, Store

        name = scheme.name
        g = scheme.gather_factor
        emitted: Counter = Counter()
        for ops in build.ops_per_core:
            for op in ops:
                self.ops_checked += 1
                if self.registry is not None:
                    self.registry.counter("check.kernel_ops").inc()
                if isinstance(op, (GatherLoad, GatherStore)):
                    kind = "read" if isinstance(op, GatherLoad) else "write"
                    if not scheme.supports_stride:
                        self._mismatch(
                            "kernel-gather", name,
                            f"{kind} gather emitted for {workload.name} "
                            f"but {name} has no stride hardware",
                            detail=(tuple(op.element_addrs),),
                        )
                        continue
                    if not 1 <= len(op.element_addrs) <= g:
                        self._mismatch(
                            "kernel-gather", name,
                            f"{kind} gather of {len(op.element_addrs)} "
                            f"elements exceeds the gather factor {g}",
                            detail=(tuple(op.element_addrs),),
                        )
                        continue
                    for addr in op.element_addrs:
                        emitted[(kind, addr, scheme.sector_bytes)] += 1
                elif isinstance(op, (Load, Store)):
                    kind = "read" if isinstance(op, Load) else "write"
                    emitted[(kind, op.addr, op.size)] += 1
        strided_elems = set()
        if scheme.supports_stride:
            for gkind, array, elems, _elem, strided in (
                workload.program().groups
            ):
                if not strided:
                    continue
                placement = placements[array]
                for record, offset in elems:
                    strided_elems.add(
                        (gkind, placement.addr_of(record, offset))
                    )
        expected: Counter = Counter()
        for kind, addr, size in workload.accesses(placements):
            # stride hardware fetches whole sectors; plain accesses fetch
            # the element itself
            if (kind, addr) in strided_elems:
                size = scheme.sector_bytes
            expected[(kind, addr, size)] += 1
        if emitted != expected:
            missing = list((expected - emitted).elements())[:4]
            extra = list((emitted - expected).elements())[:4]
            self._mismatch(
                "kernel-accesses", name,
                f"lowered ops of {workload.name} do not cover the "
                f"generator's element accesses (missing {missing}, "
                f"extra {extra})",
            )
        expected_result = workload.expected_result(placements)
        if build.result != expected_result:
            self._mismatch(
                "kernel-result", name,
                f"build result {build.result!r} differs from the "
                f"generator's expected-bytes model {expected_result!r}",
            )

class DataOracle(_MismatchCollector):
    """Bit-exact datapath and codeword checks.

    These exercise the *functional* half of the design claims: a strided
    gather returns exactly the software-visible bytes, under both storage
    layouts, with the chipkill codeword intact -- even after a whole-chip
    failure -- and SSC-DSD keeps its correct/detect contract.
    """

    def __init__(self, geometry: Optional[Geometry] = None, registry=None,
                 strict: bool = True) -> None:
        super().__init__(registry, strict)
        self.geometry = geometry or Geometry()
        self.checks_run = 0

    def _count(self) -> None:
        self.checks_run += 1
        if self.registry is not None:
            self.registry.counter("check.oracle_checks").inc()

    def check_gather(
        self,
        layout: str,
        bank: int,
        row: int,
        columns: Sequence[int],
        sector: int,
        lines: Sequence[bytes],
        faulty_chip: Optional[int] = None,
        fault_mask: int = 0,
    ) -> None:
        """One strided gather, bit for bit.

        Writes four ``lines`` (with chip-aligned SSC parity) into the
        datapath, optionally corrupts one chip, gathers ``sector`` and
        asserts every element decodes to exactly the software-expected
        16 bytes.  ``layout='transposed'`` is SAM-IO's Figure 4(c)
        codeword; ``'default'`` is SAM-en's 2-D buffer path.
        """
        self._count()
        scheme_name = f"datapath/{layout}"
        datapath = RankDatapath(self.geometry, layout)
        codec = ChipAlignedSSC(layout)
        for column, line in zip(columns, lines):
            parity = b"".join(
                codec.encode_sectors(
                    [line[16 * s : 16 * (s + 1)] for s in range(4)]
                )
            )
            datapath.write_line(bank, row, column, line, parity)
        if faulty_chip is not None and fault_mask:
            datapath.data_chips[faulty_chip].row(bank, row)[
                columns[sector % len(columns)]
            ] ^= fault_mask
        gathered = datapath.gather_sectors(bank, row, list(columns),
                                           sector, with_parity=True)
        for j, (data, parity) in enumerate(gathered):
            expected = lines[j][16 * sector : 16 * (sector + 1)]
            report = codec.decode_sector(data, parity)
            if report.detected_uncorrectable:
                self._mismatch(
                    "gather-data", scheme_name,
                    f"element {j} of gather (bank {bank}, row {row}, "
                    f"sector {sector}) came back uncorrectable",
                    detail=(tuple(columns),),
                )
            elif report.data != expected:
                self._mismatch(
                    "gather-data", scheme_name,
                    f"element {j} of gather (bank {bank}, row {row}, "
                    f"sector {sector}) returned "
                    f"{report.data.hex()} != expected {expected.hex()}",
                    detail=(tuple(columns),),
                )

    def check_line_roundtrip(self, layout: str, bank: int, row: int,
                             column: int, line: bytes) -> None:
        """A regular write + logical read must return the stored line."""
        self._count()
        datapath = RankDatapath(self.geometry, layout)
        datapath.write_line(bank, row, column, line)
        got = datapath.read_line_logical(bank, row, column)
        if got != line:
            self._mismatch(
                "line-roundtrip", f"datapath/{layout}",
                f"line at (bank {bank}, row {row}, column {column}) "
                f"read back {got.hex()} != {line.hex()}",
            )

    def check_dsd(self, data: bytes,
                  chip_masks: Sequence[int]) -> None:
        """SSC-DSD (RS(36,32) over grouped 4-bit-chip symbols): a single
        corrupted chip must be corrected bit-exactly, two must be
        detected (never silently miscorrected)."""
        self._count()
        codec = SSCDSDCodec()
        if len(data) != codec.data_bytes or len(chip_masks) != codec.n:
            raise ValueError("check_dsd wants 32 data bytes and 36 masks")
        parity = codec.encode(data)
        bad_data = bytes(b ^ chip_masks[i] for i, b in enumerate(data))
        bad_parity = bytes(
            b ^ chip_masks[codec.data_bytes + i]
            for i, b in enumerate(parity)
        )
        n_faulty = sum(1 for m in chip_masks if m)
        report = codec.decode(bad_data, bad_parity)
        if n_faulty <= 1:
            if report.detected_uncorrectable or report.data != data:
                self._mismatch(
                    "dsd", "SSC-DSD",
                    f"{n_faulty}-chip fault not corrected bit-exactly",
                    detail=(tuple(chip_masks),),
                )
        elif n_faulty == 2:
            if not report.detected_uncorrectable and report.data != data:
                self._mismatch(
                    "dsd", "SSC-DSD",
                    "double-chip fault silently miscorrected",
                    detail=(tuple(chip_masks),),
                )
