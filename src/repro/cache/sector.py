"""Set-associative sector cache (Section 5.1.1).

SAM returns strided data as sectors of a cacheline (one chipkill codeword
each), so the cache tracks validity and dirtiness per sector: a line may be
resident with only the sectors a strided load brought in.  Regular fills
validate all sectors.  Sector count is configurable (4 x 16B under SSC,
8 x 8B under SSC-DSD).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


def full_mask(sectors: int) -> int:
    return (1 << sectors) - 1


@dataclass
class LineState:
    """Residency state of one cached line."""

    valid_mask: int = 0
    dirty_mask: int = 0


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    partial_hits: int = 0  # line present but some requested sectors invalid
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class Eviction:
    """A victim line pushed out by a fill."""

    line_addr: int
    dirty_mask: int


class SectorCache:
    """One cache level with per-sector valid/dirty bits and LRU sets."""

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        line_bytes: int = 64,
        sectors: int = 4,
        name: str = "cache",
    ) -> None:
        if size_bytes % (ways * line_bytes):
            raise ValueError("cache size must divide into ways * line size")
        self.name = name
        self.line_bytes = line_bytes
        self.sectors = sectors
        self.sector_bytes = line_bytes // sectors
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        # each set: OrderedDict line_addr -> LineState, LRU first
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    # ------------------------------------------------------------- helpers

    def _set_for(self, line_addr: int) -> OrderedDict:
        index = (line_addr // self.line_bytes) % self.num_sets
        return self._sets[index]

    def sector_mask_for(self, addr: int, size: int) -> int:
        """Mask of sectors covering ``[addr, addr + size)`` within a line."""
        if size <= 0:
            raise ValueError("size must be positive")
        offset = addr % self.line_bytes
        if offset + size > self.line_bytes:
            raise ValueError("access crosses a line boundary")
        first = offset // self.sector_bytes
        last = (offset + size - 1) // self.sector_bytes
        mask = 0
        for s in range(first, last + 1):
            mask |= 1 << s
        return mask

    # -------------------------------------------------------------- access

    def lookup(self, line_addr: int, sector_mask: int) -> Tuple[bool, int]:
        """Probe without filling.

        Returns ``(hit, missing_mask)``: hit is True when every requested
        sector is valid; ``missing_mask`` lists the sectors that must be
        fetched.  Updates LRU on any touch of a resident line.
        """
        self.stats.accesses += 1
        cache_set = self._set_for(line_addr)
        state = cache_set.get(line_addr)
        if state is None:
            self.stats.misses += 1
            return False, sector_mask
        cache_set.move_to_end(line_addr)
        missing = sector_mask & ~state.valid_mask
        if missing:
            self.stats.misses += 1
            self.stats.partial_hits += 1
            return False, missing
        self.stats.hits += 1
        return True, 0

    def mark_dirty(self, line_addr: int, sector_mask: int) -> bool:
        """Set dirty bits on a resident line; returns False if not present."""
        state = self._set_for(line_addr).get(line_addr)
        if state is None or (state.valid_mask & sector_mask) != sector_mask:
            return False
        state.dirty_mask |= sector_mask
        return True

    def fill(self, line_addr: int, sector_mask: int,
             dirty: bool = False) -> Optional[Eviction]:
        """Install sectors of a line, evicting LRU if needed."""
        cache_set = self._set_for(line_addr)
        state = cache_set.get(line_addr)
        evicted = None
        if state is None:
            if len(cache_set) >= self.ways:
                victim_addr, victim = cache_set.popitem(last=False)
                self.stats.evictions += 1
                if victim.dirty_mask:
                    self.stats.writebacks += 1
                evicted = Eviction(victim_addr, victim.dirty_mask)
            state = LineState()
            cache_set[line_addr] = state
        state.valid_mask |= sector_mask
        if dirty:
            state.dirty_mask |= sector_mask
        cache_set.move_to_end(line_addr)
        return evicted

    def invalidate(self, line_addr: int) -> Optional[Eviction]:
        """Drop a line; returns its dirty state for writeback."""
        cache_set = self._set_for(line_addr)
        state = cache_set.pop(line_addr, None)
        if state is None:
            return None
        if state.dirty_mask:
            self.stats.writebacks += 1
        return Eviction(line_addr, state.dirty_mask)

    def resident(self, line_addr: int) -> bool:
        return line_addr in self._set_for(line_addr)

    def occupancy(self) -> Dict[str, int]:
        """Resident/dirty line counts (observability snapshots)."""
        lines = 0
        dirty = 0
        for cache_set in self._sets:
            lines += len(cache_set)
            for state in cache_set.values():
                if state.dirty_mask:
                    dirty += 1
        return {
            "lines": lines,
            "dirty_lines": dirty,
            "capacity_lines": self.num_sets * self.ways,
        }

    def flush(self) -> List[Eviction]:
        """Empty the cache, returning all dirty victims."""
        out = []
        for cache_set in self._sets:
            for line_addr, state in cache_set.items():
                if state.dirty_mask:
                    out.append(Eviction(line_addr, state.dirty_mask))
                    self.stats.writebacks += 1
            cache_set.clear()
        return out
