"""Sector cache hierarchy (valid/dirty bits per 16B chipkill codeword)."""

from .hierarchy import CacheHierarchy, HierarchyConfig, LookupResult
from .sector import CacheStats, Eviction, SectorCache, full_mask

__all__ = [
    "CacheHierarchy",
    "HierarchyConfig",
    "LookupResult",
    "CacheStats",
    "Eviction",
    "SectorCache",
    "full_mask",
]
