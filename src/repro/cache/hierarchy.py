"""Three-level cache hierarchy (Table 2: L1 32KB, L2 256KB, LLC 8MB).

The hierarchy is functional (hit/miss classification + inclusive fills);
latencies are charged by the CPU model.  All levels are sector caches so
SAM's strided fills stay at sector granularity end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .sector import Eviction, SectorCache


@dataclass(frozen=True)
class HierarchyConfig:
    l1_bytes: int = 32 * 1024
    l1_ways: int = 8
    l2_bytes: int = 256 * 1024
    l2_ways: int = 8
    llc_bytes: int = 8 * 1024 * 1024
    llc_ways: int = 8
    line_bytes: int = 64
    sectors: int = 4
    l1_latency: int = 1  # memory-controller cycles
    l2_latency: int = 4
    llc_latency: int = 12


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a hierarchy probe."""

    level: Optional[int]  # 1, 2, 3 for a hit; None for full miss
    latency: int  # cycles spent probing (hit latency of deepest probe)
    missing_mask: int  # sectors to fetch from memory (0 on hit)
    writebacks: Tuple[int, ...] = ()  # dirty victim line addrs to write back


class CacheHierarchy:
    """L1 -> L2 -> LLC, inclusive on fill paths, LRU everywhere."""

    def __init__(self, config: HierarchyConfig | None = None,
                 per_core_l1: int = 1) -> None:
        self.config = config or HierarchyConfig()
        c = self.config
        self.l1 = [
            SectorCache(c.l1_bytes, c.l1_ways, c.line_bytes, c.sectors,
                        name=f"L1[{i}]")
            for i in range(per_core_l1)
        ]
        self.l2 = SectorCache(c.l2_bytes, c.l2_ways, c.line_bytes, c.sectors,
                              name="L2")
        self.llc = SectorCache(c.llc_bytes, c.llc_ways, c.line_bytes,
                               c.sectors, name="LLC")

    # --------------------------------------------------------------- reads

    def lookup(self, core: int, line_addr: int,
               sector_mask: int) -> LookupResult:
        """Probe L1 -> L2 -> LLC; fill upper levels on a lower-level hit."""
        c = self.config
        l1 = self.l1[core % len(self.l1)]
        hit, missing = l1.lookup(line_addr, sector_mask)
        if hit:
            return LookupResult(1, c.l1_latency, 0)
        hit2, missing2 = self.l2.lookup(line_addr, missing)
        if hit2:
            self._fill_upper(l1, None, line_addr, missing)
            return LookupResult(2, c.l2_latency, 0)
        hit3, missing3 = self.llc.lookup(line_addr, missing2)
        if hit3:
            self._fill_upper(l1, self.l2, line_addr, missing)
            return LookupResult(3, c.llc_latency, 0)
        return LookupResult(None, c.llc_latency, missing3)

    def fill_from_memory(self, core: int, line_addr: int,
                         sector_mask: int) -> List[Eviction]:
        """Install fetched sectors in all levels; returns dirty victims."""
        l1 = self.l1[core % len(self.l1)]
        evictions = []
        for cache in (self.llc, self.l2, l1):
            victim = cache.fill(line_addr, sector_mask)
            if victim is not None and victim.dirty_mask:
                evictions.append(victim)
        return evictions

    # -------------------------------------------------------------- writes

    def write(self, core: int, line_addr: int,
              sector_mask: int) -> LookupResult:
        """Write-allocate, write-back: marks sectors dirty when resident,
        otherwise reports the sectors to fetch (read-for-ownership)."""
        result = self.lookup(core, line_addr, sector_mask)
        if result.level is not None:
            self._dirty_all(core, line_addr, sector_mask)
        return result

    def complete_write_fill(self, core: int, line_addr: int,
                            sector_mask: int) -> List[Eviction]:
        """Fill after a write miss, marking the written sectors dirty."""
        evictions = self.fill_from_memory(core, line_addr, sector_mask)
        self._dirty_all(core, line_addr, sector_mask)
        return evictions

    # ------------------------------------------------------------ internals

    def _fill_upper(self, l1: SectorCache, l2: Optional[SectorCache],
                    line_addr: int, sector_mask: int) -> None:
        if l2 is not None:
            l2.fill(line_addr, sector_mask)
        l1.fill(line_addr, sector_mask)

    def _dirty_all(self, core: int, line_addr: int, sector_mask: int) -> None:
        l1 = self.l1[core % len(self.l1)]
        for cache in (l1, self.l2, self.llc):
            if cache.resident(line_addr):
                cache.fill(line_addr, sector_mask, dirty=True)

    def occupancy(self) -> dict:
        """Per-level residency snapshot, keyed by cache name."""
        out = {cache.name: cache.occupancy() for cache in self.l1}
        out["L2"] = self.l2.occupancy()
        out["LLC"] = self.llc.occupancy()
        return out

    def flush_dirty(self) -> List[Eviction]:
        """Flush every level; dirty LLC lines become writebacks."""
        for cache in self.l1:
            cache.flush()
        self.l2.flush()
        return [e for e in self.llc.flush() if e.dirty_mask]
