"""Memory commands and request/response types.

A :class:`Request` is what the access-scheme layer hands to the memory
controller: a read or write of one burst (64B of data plus parity) at a
decoded address.  Gather (strided) requests are ordinary column accesses on
the bus but carry metadata that the controller uses for I/O-mode switching
(SAM), column-wise activation (SAM-sub / RC-NVM) and energy accounting.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from .address import DecodedAddress


class Command(enum.Enum):
    """DRAM command set used by the controller."""

    ACT = "ACT"  # activate a row (row-wise)
    ACT_COL = "ACT_COL"  # activate a column-wise subarray (SAM-sub / RC-NVM)
    PRE = "PRE"  # precharge
    RD = "RD"  # burst read
    WR = "WR"  # burst write
    REF = "REF"  # refresh (per rank)
    MRS = "MRS"  # mode-register set (I/O mode switch for SAM)
    SA_SEL = "SA_SEL"  # MASA: re-designate the globally connected subarray


class RequestType(enum.Enum):
    READ = "READ"
    WRITE = "WRITE"


class IOMode(enum.Enum):
    """Chip I/O configurations (Figure 7).

    ``X4`` is the regular server mode.  ``STRIDE`` stands for the Sx4_n
    family: the controller only needs to know whether the rank is in regular
    or stride mode, because switching between two Sx4_n lanes is also an MRS
    with the same delay.
    """

    X4 = "x4"
    X8 = "x8"
    X16 = "x16"
    STRIDE = "Sx4"


class RowKind(enum.Enum):
    """Direction of the open 'row' in a bank."""

    ROW = "row"  # regular row-wise activation
    COLUMN = "column"  # column-wise subarray activation (SAM-sub / RC-NVM)


_request_ids = itertools.count()


@dataclass
class Request:
    """One burst-granularity memory request.

    Attributes:
        addr: decoded device coordinates of the accessed line.
        type: read or write.
        io_mode: I/O mode the rank must be in to serve this request.
        row_kind: whether the access opens a row-wise row or a column-wise
            subarray (the latter only for SAM-sub / RC-NVM gathers).
        gather: number of strided elements this burst returns (1 for a
            regular access; 4 or 8 for SAM/GS-DRAM gathers).  Used only for
            statistics -- the bus occupancy is one burst either way.
        internal_bursts: extra internal column operations required to
            assemble the transfer (RC-NVM-bit collects a field from several
            bit-level column accesses; embedded-ECC schemes add line reads).
            Each extra internal burst occupies the bank column path (tCCD)
            but not the channel data bus.
        critical: True for demand reads the CPU blocks on.
        early_restart: critical-word-first -- the waiting load is released
            when its word arrives instead of at the end of the burst.
            Designs with transposed/concentrated layouts (SAM-IO, GS-DRAM)
            cannot use it (Section 5.4.1).
        subrank: sub-rank index for fine-granularity designs (AGMS/DGMS):
            the transfer uses only that sub-rank's chips and occupies one
            quarter of the data bus, so transfers from *different*
            sub-ranks overlap in time.  None means a full-width transfer.
        on_complete: callback invoked as ``on_complete(request, time)`` when
            the data transfer finishes.
    """

    addr: DecodedAddress
    type: RequestType
    io_mode: IOMode = IOMode.X4
    row_kind: RowKind = RowKind.ROW
    gather: int = 1
    internal_bursts: int = 0
    critical: bool = True
    early_restart: bool = False
    subrank: Optional[int] = None
    on_complete: Optional[Callable[["Request", int], None]] = None
    #: id of the core that demanded this request (None for cache
    #: writebacks and other requests no core is waiting on); used for
    #: queue-full diagnostics and timeline lanes
    source_core: Optional[int] = None
    # Bookkeeping (filled by the controller)
    req_id: int = field(default_factory=lambda: next(_request_ids))
    arrival: int = -1
    issue_time: int = -1
    finish_time: int = -1
    #: controller readiness-index entry: (bank_version, rank_version,
    #: subarray_version, command, earliest, reason, bus_kind, bus_sig,
    #: req_type, (rank, bank_group)).  Scheduling cache only -- never part
    #: of the request's identity or serialized form.
    _sched_cache: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )
    #: direct references to the RankState/BankState/SubarrayState this
    #: request's fixed address decodes to, filled by the controller at
    #: submit so the scheduler scan skips the ranks[...]/banks[...]
    #: indexing (the subarray is the whole bank in the degenerate
    #: single-subarray configuration)
    _rank: Optional[object] = field(default=None, repr=False, compare=False)
    _bank: Optional[object] = field(default=None, repr=False, compare=False)
    _sub: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def is_read(self) -> bool:
        return self.type is RequestType.READ

    @property
    def is_gather(self) -> bool:
        return self.gather > 1

    def row_id(self) -> tuple:
        """The (kind, row-or-column index) this request needs open."""
        return (self.row_kind, self.addr.row)

    def bank_key(self) -> tuple:
        return (self.addr.channel, self.addr.rank, self.addr.bank)
