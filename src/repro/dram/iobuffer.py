"""Functional model of the DRAM chip I/O path (Figures 3, 7, 8, 9).

A x4 DDR4 chip built on the common die contains four 32-bit I/O buffers
(128 bits total -- the x16 configuration's worth), sixteen drivers, and a
serializer per driver.  Regular x4 operation uses one buffer and four
drivers; SAM's stride modes (``Sx4_n``) fill all four buffers in one column
access and transmit lane ``n`` of each buffer through the four bonded DQ
pins.

This module is *functional*, not timed: it moves actual bits so that the
gather semantics of SAM-IO, SAM-en (2-D buffer) and the fine-granularity
(4-bit symbol) extension can be verified end to end against plain strided
reads of the memory image.  Timing lives in :mod:`repro.dram.controller`.

Conventions
-----------
* A per-chip *block* is the 32 bits a x4 chip contributes to one cacheline:
  4 lanes x 8 bits, stored as an int; lane ``l`` is bits ``[8l, 8l+8)``.
* Serialization: in x4 mode, beat ``k`` drives DQ ``l`` with bit ``k`` of
  lane ``l``; a burst is 8 beats, so one burst moves one block.
* A 64B cacheline is distributed over 16 chips so that line bit
  ``64k + 4i + l`` travels on chip ``i``, DQ ``l``, beat ``k`` (the default
  layout of Figure 4(b): one 16B ECC codeword occupies two beats across all
  chips).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .bitmatrix import HAVE_NUMPY, pack_blocks, unpack_blocks

BLOCK_BITS = 32
LANES = 4
LANE_BITS = 8
BEATS = 8
DATA_CHIPS = 16
LINE_BYTES = 64
SECTOR_BYTES = 16
SECTORS_PER_LINE = LINE_BYTES // SECTOR_BYTES

#: bit-matrix tables for the serializers: ``_SPREAD4[n]`` places the four
#: bits of nibble ``n`` at bit 0 of each 8-bit lane of a 32-bit word;
#: ``_COMPRESS4`` is the exact inverse.  One masked shift plus one lookup
#: replaces the per-lane loop of the scalar serializers.
_SPREAD4 = tuple(
    (n & 1)
    | (((n >> 1) & 1) << 8)
    | (((n >> 2) & 1) << 16)
    | (((n >> 3) & 1) << 24)
    for n in range(16)
)
_COMPRESS4 = {v: n for n, v in enumerate(_SPREAD4)}


def lane(block: int, l: int) -> int:
    """Extract lane ``l`` (an 8-bit value) from a 32-bit block."""
    if not 0 <= l < LANES:
        raise ValueError(f"lane index {l} out of range")
    return (block >> (LANE_BITS * l)) & 0xFF


def with_lane(block: int, l: int, value: int) -> int:
    """Return ``block`` with lane ``l`` replaced by ``value``."""
    mask = 0xFF << (LANE_BITS * l)
    return (block & ~mask) | ((value & 0xFF) << (LANE_BITS * l))


def block_column(block: int, n: int) -> int:
    """Column ``n`` of a block: bits ``{2n, 2n+1}`` of each lane (Fig. 8(b)).

    This is the 8-bit per-chip slice of sector ``n`` under the default
    layout -- what the SAM-en z-direction serializer reads.
    """
    if n >= LANES:
        return 0  # the pair shifts out of every 8-bit lane
    # each lane's pair sits at bits {8l+2n, 8l+2n+1}; mask, then fold the
    # four pairs down to bits {2l, 2l+1} (2n <= 6, so pairs never straddle
    # lane boundaries and the folds cannot collide inside the 0xFF mask)
    x = (block >> (2 * n)) & 0x03030303
    return (x | (x >> 6) | (x >> 12) | (x >> 18)) & 0xFF


# --------------------------------------------------------------------------
# Line <-> per-chip block packing (default layout, Figure 4(b))
# --------------------------------------------------------------------------

def _line_bits(line: bytes) -> int:
    if len(line) != LINE_BYTES:
        raise ValueError(f"a cacheline is {LINE_BYTES} bytes, got {len(line)}")
    return int.from_bytes(line, "little")


def _bits_to_line(bits: int) -> bytes:
    return bits.to_bytes(LINE_BYTES, "little")


def pack_line_default_scalar(line: bytes) -> List[int]:
    """Reference implementation of :func:`pack_line_default`."""
    bits = _line_bits(line)
    blocks = [0] * DATA_CHIPS
    for k in range(BEATS):
        beat = (bits >> (64 * k)) & ((1 << 64) - 1)
        for i in range(DATA_CHIPS):
            nibble = (beat >> (4 * i)) & 0xF
            for l in range(LANES):
                if (nibble >> l) & 1:
                    blocks[i] |= 1 << (LANE_BITS * l + k)
    return blocks


def pack_line_default(line: bytes) -> List[int]:
    """Distribute a 64B line over 16 chips in the default layout.

    Line bit ``64k + 4i + l`` becomes chip ``i``, lane ``l``, bit ``k``.
    """
    if HAVE_NUMPY:
        if len(line) != LINE_BYTES:
            raise ValueError(
                f"a cacheline is {LINE_BYTES} bytes, got {len(line)}"
            )
        return pack_blocks(line, "default", DATA_CHIPS)
    return pack_line_default_scalar(line)


def unpack_line_default_scalar(blocks: Sequence[int]) -> bytes:
    """Reference implementation of :func:`unpack_line_default`."""
    if len(blocks) != DATA_CHIPS:
        raise ValueError(f"need {DATA_CHIPS} blocks, got {len(blocks)}")
    bits = 0
    for i, block in enumerate(blocks):
        for l in range(LANES):
            lane_bits = lane(block, l)
            for k in range(BEATS):
                if (lane_bits >> k) & 1:
                    bits |= 1 << (64 * k + 4 * i + l)
    return _bits_to_line(bits)


def unpack_line_default(blocks: Sequence[int]) -> bytes:
    """Inverse of :func:`pack_line_default`."""
    if len(blocks) != DATA_CHIPS:
        raise ValueError(f"need {DATA_CHIPS} blocks, got {len(blocks)}")
    if HAVE_NUMPY:
        return unpack_blocks(blocks, "default", DATA_CHIPS)
    return unpack_line_default_scalar(blocks)


def pack_line_transposed_scalar(line: bytes) -> List[int]:
    """Reference implementation of :func:`pack_line_transposed`."""
    bits = _line_bits(line)
    blocks = [0] * DATA_CHIPS
    for n in range(SECTORS_PER_LINE):
        sector = (bits >> (128 * n)) & ((1 << 128) - 1)
        for i in range(DATA_CHIPS):
            symbol = 0
            for k in range(BEATS):
                if (sector >> (16 * k + i)) & 1:
                    symbol |= 1 << k
            blocks[i] = with_lane(blocks[i], n, symbol)
    return blocks


def pack_line_transposed(line: bytes) -> List[int]:
    """Distribute a 64B line in SAM-IO's transposed layout (Figure 4(c)).

    Lane ``n`` of chip ``i`` holds an 8-bit symbol of sector ``n``: symbol
    bit ``k`` is sector bit ``16k + i``.  One lane is one SSC-variant symbol,
    so a strided (lane-wise) transfer still moves whole codewords.
    """
    if HAVE_NUMPY:
        if len(line) != LINE_BYTES:
            raise ValueError(
                f"a cacheline is {LINE_BYTES} bytes, got {len(line)}"
            )
        return pack_blocks(line, "transposed", DATA_CHIPS)
    return pack_line_transposed_scalar(line)


def unpack_line_transposed_scalar(blocks: Sequence[int]) -> bytes:
    """Reference implementation of :func:`unpack_line_transposed`."""
    if len(blocks) != DATA_CHIPS:
        raise ValueError(f"need {DATA_CHIPS} blocks, got {len(blocks)}")
    bits = 0
    for n in range(SECTORS_PER_LINE):
        for i, block in enumerate(blocks):
            symbol = lane(block, n)
            for k in range(BEATS):
                if (symbol >> k) & 1:
                    bits |= 1 << (128 * n + 16 * k + i)
    return _bits_to_line(bits)


def unpack_line_transposed(blocks: Sequence[int]) -> bytes:
    """Inverse of :func:`pack_line_transposed`."""
    if len(blocks) != DATA_CHIPS:
        raise ValueError(f"need {DATA_CHIPS} blocks, got {len(blocks)}")
    if HAVE_NUMPY:
        return unpack_blocks(blocks, "transposed", DATA_CHIPS)
    return unpack_line_transposed_scalar(blocks)


# --------------------------------------------------------------------------
# Serialization through the I/O path.
#
# The public serializers are table-driven: gathering "bit k of each lane"
# is a mask at 0x01010101 followed by a 16-entry compress lookup, and the
# deserializers spread nibbles back with the inverse table.  The
# ``*_scalar`` versions keep the original per-lane loops as the oracle.
# --------------------------------------------------------------------------

def serialize_x4_scalar(block: int) -> List[int]:
    """Reference implementation of :func:`serialize_x4`."""
    beats = []
    for k in range(BEATS):
        nibble = 0
        for l in range(LANES):
            nibble |= ((lane(block, l) >> k) & 1) << l
        beats.append(nibble)
    return beats


def serialize_x4(block: int) -> List[int]:
    """Regular x4 burst: 8 beats, each a 4-bit value (DQ3..DQ0)."""
    block &= 0xFFFFFFFF  # lane() reads bits 0..31 only
    return [_COMPRESS4[(block >> k) & 0x01010101] for k in range(BEATS)]


def deserialize_x4_scalar(beats: Sequence[int]) -> int:
    """Reference implementation of :func:`deserialize_x4`."""
    if len(beats) != BEATS:
        raise ValueError(f"a burst is {BEATS} beats, got {len(beats)}")
    block = 0
    for k, nibble in enumerate(beats):
        for l in range(LANES):
            if (nibble >> l) & 1:
                block |= 1 << (LANE_BITS * l + k)
    return block


def deserialize_x4(beats: Sequence[int]) -> int:
    """Reassemble a 32-bit block from 8 beats of 4 bits."""
    if len(beats) != BEATS:
        raise ValueError(f"a burst is {BEATS} beats, got {len(beats)}")
    block = 0
    for k, nibble in enumerate(beats):
        block |= _SPREAD4[nibble & 0xF] << k
    return block


def serialize_stride_scalar(buffers: Sequence[int], n: int) -> List[int]:
    """Reference implementation of :func:`serialize_stride`."""
    if len(buffers) != 4:
        raise ValueError("stride mode uses all four I/O buffers")
    beats = []
    lanes = [lane(buf, n) for buf in buffers]
    for k in range(BEATS):
        nibble = 0
        for j in range(4):
            nibble |= ((lanes[j] >> k) & 1) << j
        beats.append(nibble)
    return beats


def serialize_stride(buffers: Sequence[int], n: int) -> List[int]:
    """Stride mode ``Sx4_n`` (Figure 7): DQ ``j`` carries lane ``n`` of
    I/O buffer ``j`` (driver ``4j + n``), one bit per beat."""
    if len(buffers) != 4:
        raise ValueError("stride mode uses all four I/O buffers")
    word = (
        lane(buffers[0], n)
        | (lane(buffers[1], n) << 8)
        | (lane(buffers[2], n) << 16)
        | (lane(buffers[3], n) << 24)
    )
    return [_COMPRESS4[(word >> k) & 0x01010101] for k in range(BEATS)]


def serialize_stride_2d_scalar(buffers: Sequence[int], n: int) -> List[int]:
    """Reference implementation of :func:`serialize_stride_2d`."""
    if len(buffers) != 4:
        raise ValueError("stride mode uses all four I/O buffers")
    beats = []
    columns = [block_column(buf, n) for buf in buffers]
    for k in range(BEATS):
        nibble = 0
        for j in range(4):
            nibble |= ((columns[j] >> k) & 1) << j
        beats.append(nibble)
    return beats


def serialize_stride_2d(buffers: Sequence[int], n: int) -> List[int]:
    """SAM-en 2-D buffer access (Figure 8): the z-direction serializers read
    *column* ``n`` of each buffer, so data stored in the default layout is
    gathered without transposition."""
    if len(buffers) != 4:
        raise ValueError("stride mode uses all four I/O buffers")
    word = (
        block_column(buffers[0], n)
        | (block_column(buffers[1], n) << 8)
        | (block_column(buffers[2], n) << 16)
        | (block_column(buffers[3], n) << 24)
    )
    return [_COMPRESS4[(word >> k) & 0x01010101] for k in range(BEATS)]


def serialize_stride_fine(buffers: Sequence[int], n_pair: int) -> List[int]:
    """Fine-granularity (4-bit symbol) stride access (Figure 9).

    The interleaved MUX aggregates four 4-bit symbols -- the low half of
    lane ``2*n_pair`` from each of the four I/O buffers -- onto two DQs:
    DQ ``j`` (j in {0,1}) sends the symbols of buffers ``2j`` and ``2j+1``
    back to back over the 8-beat burst.  The chip's other two DQ positions
    idle; a second rank fills them at channel level (Figure 9(e)).
    """
    if len(buffers) != 4:
        raise ValueError("stride mode uses all four I/O buffers")
    if n_pair not in (0, 1):
        raise ValueError("n_pair selects one of two lane pairs")
    symbols = [lane(buf, 2 * n_pair) & 0xF for buf in buffers]
    beats = [0] * BEATS
    for dq in range(2):
        stream = []
        for buf_idx in (2 * dq, 2 * dq + 1):
            stream.extend(((symbols[buf_idx] >> b) & 1) for b in range(4))
        for k in range(BEATS):
            beats[k] |= stream[k] << dq
    return beats


def deserialize_stride_fine(beats: Sequence[int]) -> List[int]:
    """Recover the four 4-bit symbols sent by :func:`serialize_stride_fine`."""
    if len(beats) != BEATS:
        raise ValueError(f"a burst is {BEATS} beats, got {len(beats)}")
    symbols = []
    for dq in range(2):
        stream = [(beat >> dq) & 1 for beat in beats]
        for half in range(2):
            symbol = 0
            for b in range(4):
                symbol |= stream[4 * half + b] << b
            symbols.append(symbol)
    # symbols arrive as [dq0-buf0, dq0-buf1, dq1-buf2, dq1-buf3]
    return symbols


@dataclass
class IOModeRegister:
    """The 7-bit I/O mode register of Figure 7.

    One bit per configuration: x4, x8, x16, Sx4_0..Sx4_3.  Exactly one bit
    may be set; the register reports which drivers are enabled.
    """

    mode: str = "x4"

    _DRIVERS = {
        "x4": (0, 1, 2, 3),
        "x8": (0, 1, 2, 3, 4, 5, 6, 7),
        "x16": tuple(range(16)),
        "Sx4_0": (0, 4, 8, 12),
        "Sx4_1": (1, 5, 9, 13),
        "Sx4_2": (2, 6, 10, 14),
        "Sx4_3": (3, 7, 11, 15),
    }

    def set_mode(self, mode: str) -> None:
        if mode not in self._DRIVERS:
            raise ValueError(f"unknown I/O mode {mode!r}")
        self.mode = mode

    @property
    def enabled_drivers(self) -> tuple:
        return self._DRIVERS[self.mode]

    @property
    def is_stride(self) -> bool:
        return self.mode.startswith("Sx4")

    @property
    def stride_lane(self) -> int:
        if not self.is_stride:
            raise ValueError(f"mode {self.mode} is not a stride mode")
        return int(self.mode.split("_")[1])

    @property
    def bits(self) -> int:
        """Encoded register value (one-hot over the 7 modes)."""
        order = ("x4", "x8", "x16", "Sx4_0", "Sx4_1", "Sx4_2", "Sx4_3")
        return 1 << order.index(self.mode)
