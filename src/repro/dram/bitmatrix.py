"""Table-driven bit-matrix engine for the Figure 4 transfer layouts.

Every pack/unpack in the functional datapath is a *fixed permutation* of
bits: data bit ``p`` always lands at chip ``i``, lane ``l``, bit ``k`` for
the same ``(p, i, l, k)`` regardless of the data.  Instead of walking the
triple-nested per-bit loops on every line, we precompute the permutation
once per ``(layout, chip count)`` as an index matrix and move whole lines
with three numpy ops: unpack to a bit vector, gather through the index
matrix, pack back to words.

The scalar loops in :mod:`repro.dram.datapath` and
:mod:`repro.dram.iobuffer` (the ``*_scalar`` functions) remain the
reference oracle; the hypothesis round-trip tests assert bit-for-bit
equality between the two implementations.

Without numpy this module still imports (``HAVE_NUMPY`` is False) and the
callers fall back to the scalar paths.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence

try:  # numpy is an accelerator, never a requirement
    import numpy as np
except ImportError:  # pragma: no cover - the image ships numpy
    np = None

HAVE_NUMPY = np is not None

#: per-chip block geometry (mirrors :mod:`repro.dram.iobuffer`)
LANES = 4
LANE_BITS = 8
BLOCK_BITS = 32


@lru_cache(maxsize=None)
def _pack_index(layout: str, n_chips: int):
    """Index matrix ``idx[i, b]`` = which data bit feeds chip ``i``'s block
    bit ``b`` (``b = 8*lane + beat`` for the default layout, ``8*lane +
    symbol_bit`` for the transposed one)."""
    if layout not in ("default", "transposed"):
        raise ValueError(f"unknown layout {layout!r}")
    idx = np.empty((n_chips, BLOCK_BITS), dtype=np.intp)
    for i in range(n_chips):
        for b in range(BLOCK_BITS):
            hi, lo = b >> 3, b & 7  # (lane, bit-within-lane)
            if layout == "default":
                # data bit 4*n_chips*k + 4i + l -> chip i, lane l, bit k
                idx[i, b] = 4 * n_chips * lo + 4 * i + hi
            else:
                # data bit 8*n_chips*n + n_chips*k + i -> chip i, lane n,
                # bit k (lane n is a symbol of sector n)
                idx[i, b] = 8 * n_chips * hi + n_chips * lo + i
    idx.setflags(write=False)
    return idx


@lru_cache(maxsize=None)
def _unpack_index(layout: str, n_chips: int):
    """Inverse permutation: flat block bit -> data bit position."""
    idx = _pack_index(layout, n_chips).reshape(-1)
    inv = np.empty(idx.size, dtype=np.intp)
    inv[idx] = np.arange(idx.size, dtype=np.intp)
    inv.setflags(write=False)
    return inv


def pack_blocks(data: bytes, layout: str, n_chips: int) -> List[int]:
    """Distribute ``n_chips * 4`` bytes over per-chip 32-bit blocks."""
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8),
                         bitorder="little")
    gathered = bits[_pack_index(layout, n_chips)]
    words = np.packbits(gathered, axis=1, bitorder="little").view("<u4")
    return [int(w) for w in words.ravel()]


def unpack_blocks(blocks: Sequence[int], layout: str, n_chips: int) -> bytes:
    """Inverse of :func:`pack_blocks`."""
    arr = np.asarray(blocks, dtype="<u4").view(np.uint8)
    bits = np.unpackbits(arr, bitorder="little")
    return np.packbits(
        bits[_unpack_index(layout, n_chips)], bitorder="little"
    ).tobytes()
