"""Rank-level functional datapath: 18 chips moving real bits.

This model stores actual data in per-chip blocks and serves regular and
stride-mode bursts through the I/O path of :mod:`repro.dram.iobuffer`.  It
exists to *prove* the gather semantics: a SAM-IO / SAM-en strided transfer
must return, bit for bit, the 16B sectors a software strided read would
load, and must keep every ECC codeword intact (each chip contributes whole
symbols).

Two storage layouts are supported (Section 5.4.1):

* ``default``  -- Figure 4(b): a 16B codeword spans all chips in two beats;
  critical-word-first works; SAM-en gathers via the 2-D buffer.
* ``transposed`` -- Figure 4(c): each lane holds an 8-bit symbol; SAM-IO
  gathers lane-wise; regular reads return a permuted line that the CPU must
  transpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .bitmatrix import HAVE_NUMPY, pack_blocks, unpack_blocks
from .geometry import Geometry
from .iobuffer import (
    BEATS,
    LANES,
    deserialize_x4,
    lane,
    serialize_stride,
    serialize_stride_2d,
    serialize_x4,
    with_lane,
)

Layout = str  # "default" | "transposed"


# --------------------------------------------------------------------------
# Generic packers (parameterized by chip count so parity chips reuse them).
#
# The public names dispatch to the table-driven bit-matrix engine of
# :mod:`repro.dram.bitmatrix`; the ``*_scalar`` versions are the original
# per-bit loops, kept as the reference oracle for the round-trip tests.
# --------------------------------------------------------------------------

def pack_default_scalar(data: bytes, n_chips: int) -> List[int]:
    """Reference implementation of :func:`pack_default`."""
    if len(data) * 8 != n_chips * 32:
        raise ValueError(
            f"{n_chips} chips hold {n_chips * 4} bytes, got {len(data)}"
        )
    bits = int.from_bytes(data, "little")
    per_beat = 4 * n_chips
    blocks = [0] * n_chips
    for k in range(BEATS):
        beat = (bits >> (per_beat * k)) & ((1 << per_beat) - 1)
        for i in range(n_chips):
            nibble = (beat >> (4 * i)) & 0xF
            for l in range(LANES):
                if (nibble >> l) & 1:
                    blocks[i] |= 1 << (8 * l + k)
    return blocks


def pack_default(data: bytes, n_chips: int) -> List[int]:
    """Default layout: data bit ``(4*n_chips)*k + 4i + l`` goes to chip
    ``i``, lane ``l``, bit ``k``."""
    if len(data) * 8 != n_chips * 32:
        raise ValueError(
            f"{n_chips} chips hold {n_chips * 4} bytes, got {len(data)}"
        )
    if HAVE_NUMPY:
        return pack_blocks(data, "default", n_chips)
    return pack_default_scalar(data, n_chips)


def unpack_default_scalar(blocks: Sequence[int], n_chips: int) -> bytes:
    """Reference implementation of :func:`unpack_default`."""
    bits = 0
    per_beat = 4 * n_chips
    for i, block in enumerate(blocks):
        for l in range(LANES):
            lane_bits = lane(block, l)
            for k in range(BEATS):
                if (lane_bits >> k) & 1:
                    bits |= 1 << (per_beat * k + 4 * i + l)
    return bits.to_bytes(n_chips * 4, "little")


def unpack_default(blocks: Sequence[int], n_chips: int) -> bytes:
    if HAVE_NUMPY:
        return unpack_blocks(blocks, "default", n_chips)
    return unpack_default_scalar(blocks, n_chips)


def pack_transposed_scalar(data: bytes, n_chips: int) -> List[int]:
    """Reference implementation of :func:`pack_transposed`."""
    if len(data) * 8 != n_chips * 32:
        raise ValueError(
            f"{n_chips} chips hold {n_chips * 4} bytes, got {len(data)}"
        )
    bits = int.from_bytes(data, "little")
    sector_bits = n_chips * 8
    blocks = [0] * n_chips
    for n in range(LANES):
        sector = (bits >> (sector_bits * n)) & ((1 << sector_bits) - 1)
        for i in range(n_chips):
            symbol = 0
            for k in range(BEATS):
                if (sector >> (n_chips * k + i)) & 1:
                    symbol |= 1 << k
            blocks[i] = with_lane(blocks[i], n, symbol)
    return blocks


def pack_transposed(data: bytes, n_chips: int) -> List[int]:
    """Transposed layout: lane ``n`` of chip ``i`` is a symbol of sector
    ``n``; symbol bit ``k`` is sector bit ``n_chips*k + i``."""
    if len(data) * 8 != n_chips * 32:
        raise ValueError(
            f"{n_chips} chips hold {n_chips * 4} bytes, got {len(data)}"
        )
    if HAVE_NUMPY:
        return pack_blocks(data, "transposed", n_chips)
    return pack_transposed_scalar(data, n_chips)


def unpack_transposed_scalar(blocks: Sequence[int], n_chips: int) -> bytes:
    """Reference implementation of :func:`unpack_transposed`."""
    bits = 0
    sector_bits = n_chips * 8
    for n in range(LANES):
        for i, block in enumerate(blocks):
            symbol = lane(block, n)
            for k in range(BEATS):
                if (symbol >> k) & 1:
                    bits |= 1 << (sector_bits * n + n_chips * k + i)
    return bits.to_bytes(n_chips * 4, "little")


def unpack_transposed(blocks: Sequence[int], n_chips: int) -> bytes:
    if HAVE_NUMPY:
        return unpack_blocks(blocks, "transposed", n_chips)
    return unpack_transposed_scalar(blocks, n_chips)


# --------------------------------------------------------------------------
# Storage
# --------------------------------------------------------------------------

@dataclass
class ChipStorage:
    """One chip's cell array: sparse map of (bank, row) -> column blocks."""

    columns_per_row: int
    rows: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)

    def row(self, bank: int, row: int) -> List[int]:
        key = (bank, row)
        if key not in self.rows:
            self.rows[key] = [0] * self.columns_per_row
        return self.rows[key]


class RankDatapath:
    """Functional model of one rank: 16 data chips + 2 parity chips."""

    def __init__(
        self,
        geometry: Optional[Geometry] = None,
        layout: Layout = "default",
    ) -> None:
        self.geometry = geometry or Geometry()
        if layout not in ("default", "transposed"):
            raise ValueError(f"unknown layout {layout!r}")
        self.layout = layout
        g = self.geometry
        columns = g.chip_row_bits // 32
        self.data_chips = [ChipStorage(columns) for _ in range(g.data_chips)]
        self.parity_chips = [
            ChipStorage(columns) for _ in range(g.parity_chips)
        ]

    # ------------------------------------------------------------- writes

    def write_line(
        self,
        bank: int,
        row: int,
        column: int,
        line: bytes,
        parity: Optional[bytes] = None,
    ) -> None:
        """Store a 64B line (and optionally its 8B chipkill parity)."""
        pack = pack_default if self.layout == "default" else pack_transposed
        blocks = pack(line, self.geometry.data_chips)
        for chip, block in zip(self.data_chips, blocks):
            chip.row(bank, row)[column] = block
        if parity is not None:
            pblocks = pack(parity, self.geometry.parity_chips)
            for chip, block in zip(self.parity_chips, pblocks):
                chip.row(bank, row)[column] = block

    # -------------------------------------------------------------- reads

    def read_line(self, bank: int, row: int, column: int) -> bytes:
        """Regular x4 burst: each chip serializes buffer 0.

        With the transposed layout this returns the line as it appears *on
        the bus* -- a bit-permutation of the stored line (the CPU-side
        transpose cost of SAM-IO, Section 4.2.2).  Use
        :meth:`read_line_logical` for the stored value.
        """
        blocks = [
            deserialize_x4(serialize_x4(chip.row(bank, row)[column]))
            for chip in self.data_chips
        ]
        return unpack_default(blocks, self.geometry.data_chips)

    def read_line_logical(self, bank: int, row: int, column: int) -> bytes:
        """The line as originally written, undoing the storage layout."""
        blocks = [chip.row(bank, row)[column] for chip in self.data_chips]
        unpack = (
            unpack_default if self.layout == "default" else unpack_transposed
        )
        return unpack(blocks, self.geometry.data_chips)

    def read_parity(self, bank: int, row: int, column: int) -> bytes:
        blocks = [chip.row(bank, row)[column] for chip in self.parity_chips]
        unpack = (
            unpack_default if self.layout == "default" else unpack_transposed
        )
        return unpack(blocks, self.geometry.parity_chips)

    # ------------------------------------------------------------- gathers

    def gather_sectors(
        self,
        bank: int,
        row: int,
        columns: Sequence[int],
        sector: int,
        with_parity: bool = False,
    ) -> List[bytes]:
        """One stride-mode burst: sector ``sector`` of four lines.

        ``columns`` are the four line columns filled into the four I/O
        buffers.  Depending on the storage layout, the chips use the plain
        lane-wise serializer (SAM-IO on the transposed layout) or the 2-D
        buffer serializer (SAM-en on the default layout).  Returns four 16B
        sectors, or four ``(sector, parity)`` pairs when ``with_parity`` --
        the full 18-symbol chipkill codeword of each strided element.
        """
        if len(columns) != 4:
            raise ValueError("a stride burst gathers four columns")
        if not 0 <= sector < LANES:
            raise ValueError(f"sector {sector} out of range")
        chips = list(self.data_chips)
        if with_parity:
            chips += list(self.parity_chips)
        # Each chip fills its 4 buffers from the 4 columns, then serializes.
        per_chip_beats = []
        for chip in chips:
            row_blocks = chip.row(bank, row)
            buffers = [row_blocks[c] for c in columns]
            if self.layout == "transposed":
                beats = serialize_stride(buffers, sector)
            else:
                beats = serialize_stride_2d(buffers, sector)
            per_chip_beats.append(beats)
        # DQ position j of every chip carries strided element j.
        n_data = self.geometry.data_chips
        assemble = (
            self._assemble_transposed
            if self.layout == "transposed"
            else self._assemble_default
        )
        results: List = []
        for j in range(4):
            chip_bytes = []
            for beats in per_chip_beats:
                value = 0
                for k in range(BEATS):
                    value |= ((beats[k] >> j) & 1) << k
                chip_bytes.append(value)
            data = assemble(chip_bytes[:n_data])
            if with_parity:
                results.append((data, assemble(chip_bytes[n_data:])))
            else:
                results.append(data)
        return results

    @staticmethod
    def _assemble_transposed(chip_bytes: Sequence[int]) -> bytes:
        """Sector bit ``16k + i`` came from chip ``i`` beat ``k``."""
        n = len(chip_bytes)
        bits = 0
        for i, value in enumerate(chip_bytes):
            for k in range(BEATS):
                if (value >> k) & 1:
                    bits |= 1 << (n * k + i)
        return bits.to_bytes(n, "little")

    @staticmethod
    def _assemble_default(chip_columns: Sequence[int]) -> bytes:
        """Sector bit ``64b + 4i + l`` came from chip ``i`` column-value bit
        ``2l + b`` (the 2-bit blocks of Figure 8(b))."""
        n = len(chip_columns)
        bits = 0
        for i, value in enumerate(chip_columns):
            for l in range(LANES):
                for b in range(2):
                    if (value >> (2 * l + b)) & 1:
                        bits |= 1 << (4 * n * b + 4 * i + l)
        return bits.to_bytes(n, "little")

    def expected_sector(
        self, bank: int, row: int, column: int, sector: int
    ) -> bytes:
        """Ground truth: bytes ``[16*sector, 16*sector+16)`` of the stored
        line -- what a software strided read would load."""
        line = self.read_line_logical(bank, row, column)
        return line[16 * sector : 16 * (sector + 1)]

    def expected_parity_sector(
        self, bank: int, row: int, column: int, sector: int
    ) -> bytes:
        """Ground truth for the 2 parity bytes of codeword ``sector``."""
        parity = self.read_parity(bank, row, column)
        return parity[2 * sector : 2 * (sector + 1)]
