"""Memory organization (Table 2 of the paper).

The simulated module is a server-class DDR4 DIMM: one channel, two ranks,
each rank built from sixteen x4 data chips plus two x4 parity chips (the
SSC/SSC-DSD chipkill organizations of Section 2.3).  Each chip has 16 banks
in 4 bank groups; each bank has 256 subarrays of 512 rows with a 4 Kb local
row buffer per chip, i.e. an 8 KB row per rank.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Geometry:
    """Static organization of the simulated memory module."""

    channels: int = 1
    ranks: int = 2
    bank_groups: int = 4
    banks_per_group: int = 4
    data_chips: int = 16
    parity_chips: int = 2
    chip_io_bits: int = 4  # x4 chips
    subarrays_per_bank: int = 256
    rows_per_subarray: int = 512
    chip_row_bits: int = 4096  # 4 Kb local row buffer per chip
    burst_length: int = 8
    cacheline_bytes: int = 64
    chips_per_subrank: int = 4  # AGMS/DGMS sub-ranking: 4 data chips each

    @property
    def subranks(self) -> int:
        """Sub-ranks per rank for fine-granularity (AGMS/DGMS) designs.
        Each sub-rank drives ``chips_per_subrank / data_chips`` of the
        data pins, so a sub-rank burst occupies that fraction of the bus."""
        return max(1, self.data_chips // self.chips_per_subrank)

    @property
    def banks(self) -> int:
        """Banks per rank."""
        return self.bank_groups * self.banks_per_group

    @property
    def chips(self) -> int:
        """Total chips per rank (data + parity)."""
        return self.data_chips + self.parity_chips

    @property
    def rows_per_bank(self) -> int:
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def row_bytes(self) -> int:
        """Data bytes in one rank-level row (excluding parity chips)."""
        return self.chip_row_bits // 8 * self.data_chips

    @property
    def lines_per_row(self) -> int:
        """64B cachelines per rank-level row."""
        return self.row_bytes // self.cacheline_bytes

    @property
    def data_bus_bits(self) -> int:
        """Data pins across the data chips (64 for 16 x4 chips)."""
        return self.data_chips * self.chip_io_bits

    @property
    def bytes_per_burst(self) -> int:
        """Data bytes moved by one burst (one cacheline)."""
        return self.data_bus_bits * self.burst_length // 8

    @property
    def capacity_bytes(self) -> int:
        """Total data capacity of the module."""
        return (
            self.channels
            * self.ranks
            * self.banks
            * self.rows_per_bank
            * self.row_bytes
        )


#: Default geometry of Table 2.
DEFAULT_GEOMETRY = Geometry()
