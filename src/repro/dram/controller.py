"""Cycle-level memory controller.

One :class:`MemoryController` owns one channel and schedules commands with
the FR-FCFS policy under an open-page row-buffer policy (Table 2).  Writes
are buffered in a write queue (capacity 32) and drained when the queue
crosses a high watermark or when no reads are pending.

SAM support: every request carries the I/O mode it needs (regular ``x4`` or
stride ``Sx4``).  When the targeted rank is in the wrong mode the controller
issues an MRS command first, which stalls the rank for tMOD_IO (= tRTR,
Section 5.3).  Column-wise activations (SAM-sub / RC-NVM) are ACT_COL
commands: they occupy the bank exactly like a row activation but open a
"column row", so row-wise and column-wise accesses to the same bank conflict
in the row buffer -- the effect that degrades SAM-sub and RC-NVM on
row-friendly (Qs) queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..kernel import Kernel
from ..obs.stalls import (
    CCD_BUS,
    MODE_SWITCH,
    REFRESH,
    SUBARRAY,
    TFAW,
    TRAS,
    TRCD,
    TRP,
    WRITE_DRAIN,
)
from .bank import FOREVER
from .channel import ChannelState
from .commands import Command, IOMode, Request, RequestType
from .geometry import Geometry
from .timing import TimingParams


class QueueFullError(RuntimeError):
    """A request was submitted to a full controller queue.

    Callers are expected to consult :meth:`MemoryController.can_accept`
    first, so reaching this is a flow-control bug; the structured fields
    (and the ``controller.queue_full_rejects`` metric) exist so that bug
    is diagnosable instead of a bare string.
    """

    def __init__(self, kind: str, capacity: int, core: Optional[int],
                 cycle: int) -> None:
        who = f"core {core}" if core is not None else "an uncored requester"
        super().__init__(
            f"memory controller {kind} queue full "
            f"(capacity {capacity}) rejecting a request from {who} "
            f"at cycle {cycle}"
        )
        self.kind = kind
        self.capacity = capacity
        self.core = core
        self.cycle = cycle


@dataclass
class ControllerConfig:
    """Scheduling knobs (defaults per Table 2)."""

    write_queue_capacity: int = 32
    write_high_watermark: int = 24
    write_low_watermark: int = 8
    read_queue_capacity: int = 64
    refresh_enabled: bool = True
    #: "open" (Table 2 default) keeps rows open for FR-FCFS row hits;
    #: "closed" auto-precharges after every column command (RDA/WRA).
    page_policy: str = "open"
    #: cache each queued request's (command, earliest, reason) readiness
    #: entry and invalidate it with bank/rank version counters instead of
    #: re-deriving it for every request on every wakeup.  False selects
    #: the old-style full recompute; command streams are identical either
    #: way (enforced by the scheduler-equivalence test).
    readiness_index: bool = True
    #: event-wheel scheduling: after issuing a command the controller
    #: dry-runs the next cycle's scheduler scan while the readiness index
    #: is hot and stashes the decision, so the wake-up one cycle later
    #: replays it in O(1) instead of re-scanning (any intervening submit
    #: invalidates the stash).  The wake-up *event stream* is identical
    #: to polling's by construction -- every scheduling decision happens
    #: at the same kernel instant -- which is what makes command streams,
    #: cycle counts and stall ledgers exactly equal in both modes
    #: (enforced by the event-wheel equivalence suite).  False disables
    #: the dry-run, keeping the plain re-scan as the behavioral
    #: reference oracle.
    event_wheel: bool = True


#: how a readiness entry's earliest time combines with the shared-bus
#: state at lookup time: no bus term (ACT/PRE), the CAS data-bus fit, or
#: the MRS data-bus drain.  Bus state changes on every issue, so folding
#: it into the cached entry would defeat the cache.
_BUS_NONE = 0
_BUS_CAS = 1
_BUS_MRS = 2


@dataclass
class CommandStats:
    """Counts consumed by the power model and the experiment reports."""

    acts: int = 0
    col_acts: int = 0
    reads: int = 0
    writes: int = 0
    gather_reads: int = 0
    gather_writes: int = 0
    stride_mode_reads: int = 0  # reads served in an Sx4 mode (SAM-IO power)
    internal_bursts: int = 0
    precharges: int = 0
    refreshes: int = 0
    mode_switches: int = 0
    sa_sels: int = 0  # MASA subarray re-designations
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    read_latency_total: int = 0
    read_count_for_latency: int = 0

    @property
    def avg_read_latency(self) -> float:
        if not self.read_count_for_latency:
            return 0.0
        return self.read_latency_total / self.read_count_for_latency


class MemoryController:
    """FR-FCFS, open-page controller for a single channel."""

    def __init__(
        self,
        kernel: Kernel,
        timing: TimingParams,
        geometry: Geometry | None = None,
        config: ControllerConfig | None = None,
        channel_id: int = 0,
        salp: str = "none",
    ) -> None:
        self.kernel = kernel
        self.timing = timing
        self.geometry = geometry or Geometry()
        self.config = config or ControllerConfig()
        self.channel_id = channel_id
        #: subarray-level-parallelism mode: "none" (legacy one-open-row
        #: banks), "salp1", "salp2" or "masa"
        self.salp = salp
        self.channel = ChannelState(timing, self.geometry, salp=salp)
        #: optional command observer: called as (cycle, command, request)
        #: on every issued command (request is None for REF).  Used by
        #: repro.sim.trace and the obs ring buffer; keep it None for
        #: full-speed runs.
        self.observer = None
        #: optional repro.check.TimingProtocolChecker (or any object with
        #: its ``on_command`` signature).  Unlike ``observer`` it also sees
        #: refresh-path precharges, REF with the rank spelled out, and the
        #: closed-page auto-precharge (flagged ``implicit`` because it
        #: rides on the CAS instead of occupying the command bus).
        self.checker = None
        #: optional obs.metrics.Histogram observing completed-read latency
        #: in cycles (one observe per RD command when attached)
        self.latency_hist = None
        #: optional obs.timeline.TimelineRecorder; sees the same command
        #: stream as ``checker`` (refresh-path PREs, REF with the rank
        #: spelled out, implicit closed-page precharges)
        self.timeline = None
        #: optional obs.stalls.StallLedger; every scheduling wait is
        #: annotated with the timing constraint that caused it
        self.stall_ledger = None
        #: optional obs.metrics.MetricsRegistry for controller-side
        #: counters (queue_full_rejects)
        self.metrics = None
        #: optional callback fired as ``(request,)`` whenever a request
        #: leaves a queue (a RD/WR issued), i.e. whenever a queue slot
        #: frees.  The memory system uses it to retry blocked writebacks
        #: the moment a slot opens instead of polling on a fixed
        #: interval.
        self.slot_listener = None
        self.read_queue: List[Request] = []
        self.write_queue: List[Request] = []
        self.stats = CommandStats()
        self._draining_writes = False
        self._wakeup_at: Optional[int] = None
        self._wakeup_token = None
        # Event-wheel dry-run state: the full scheduler decision
        # `_peek_wake` derived for the next cycle's wake-up, reusable iff
        # no submit moved the queues since (`_queue_epoch`).  The wake-up
        # event itself is still scheduled -- the wheel never changes
        # *when* the controller wakes relative to polling, only whether
        # the wake-up replays a memoized decision in O(1) or re-runs the
        # FR-FCFS scan.  Keeping the event stream identical to polling's
        # is what makes command streams, cycle counts and stall ledgers
        # match exactly: every scheduling decision happens at the same
        # kernel instant, interleaved identically with core and
        # completion events.
        self._peeked: Optional[tuple] = None
        self._queue_epoch: int = 0
        #: wake-ups that replayed a memoized dry-run decision instead of
        #: re-running the FR-FCFS scan (event-wheel mode only)
        self.peek_hits: int = 0
        self._last_cas_group: Optional[Tuple[int, int]] = None
        # per-wakeup memo of earliest_cas_for_bus results, valid for one
        # data-bus epoch: queued requests overwhelmingly share their
        # (command, rank, subrank) bus signature
        self._bus_memo: dict = {}
        self._bus_memo_version: int = -1
        self._next_refresh = [
            timing.tREFI * (i + 1) // max(1, self.geometry.ranks)
            for i in range(self.geometry.ranks)
        ]

    # ------------------------------------------------------------------ API

    def submit(self, request: Request) -> None:
        """Accept a request.  Raises :class:`QueueFullError` if the relevant
        queue is full; callers should consult :meth:`can_accept` first."""
        if not self.can_accept(request):
            kind = "read" if request.is_read else "write"
            capacity = (
                self.config.read_queue_capacity
                if request.is_read
                else self.config.write_queue_capacity
            )
            if self.metrics is not None:
                self.metrics.counter("controller.queue_full_rejects").inc()
            raise QueueFullError(
                kind, capacity, request.source_core, self.kernel.now
            )
        request.arrival = self.kernel.now
        rank = self.channel.ranks[request.addr.rank]
        request._rank = rank
        bank = rank.banks[request.addr.bank]
        request._bank = bank
        request._sub = bank.sub_for_row(request.row_id()[1])
        if request.is_read:
            self.read_queue.append(request)
        else:
            self.write_queue.append(request)
        self._queue_epoch += 1
        self._schedule_wakeup(self.kernel.now)

    def can_accept(self, request: Request) -> bool:
        if request.is_read:
            return len(self.read_queue) < self.config.read_queue_capacity
        return len(self.write_queue) < self.config.write_queue_capacity

    def idle(self) -> bool:
        return not self.read_queue and not self.write_queue

    # ------------------------------------------------------ scheduling core

    def _schedule_wakeup(self, when: int) -> None:
        when = max(when, self.kernel.now)
        if self._wakeup_at is not None and self._wakeup_at <= when:
            # the pending earlier wake-up stands
            return
        # Supersede by scheduling a fresh, earlier event; the later one
        # stays in the heap and fires stale (the `_wakeup` guard drops
        # it).  Cancelling it would be cheaper but changes behavior: if
        # the controller later re-arms that same time, the lingering
        # event -- the oldest one scheduled for it -- is the one that
        # acts, at its *original* sequence position within the cycle
        # (before any same-cycle events scheduled later).  The stall
        # ledger depends on that ordering, and keeping it identical in
        # both scheduling modes is what makes the event wheel exact.
        self._wakeup_at = when
        self._wakeup_token = self.kernel.schedule_at(when, self._wakeup)

    def _wakeup(self) -> None:
        # Drop stale events: only the event matching the armed time acts.
        # (When an earlier wake-up is scheduled over a pending later one,
        # the later event still fires; acting on it would fork a second
        # self-perpetuating wake-up chain.)  Both scheduling modes rely
        # on this guard -- superseded events are never cancelled.
        if self._wakeup_at != self.kernel.now:
            return
        self._wakeup_at = None
        self._wakeup_token = None
        now = self.kernel.now
        next_time = self._try_issue(now)
        if (next_time is not None and next_time == now + 1
                and self.config.event_wheel):
            # Event wheel: dry-run the next cycle's scheduler scan while
            # the readiness index is hot, so the wake-up at ``now + 1``
            # can replay the decision in O(1) unless a submit lands in
            # between.  The wake-up itself is still scheduled below,
            # exactly as in polling mode.
            self._peek_wake(now + 1)
        if next_time is not None:
            self._schedule_wakeup(next_time)

    def _refresh_due(self, now: int) -> Optional[int]:
        """Rank index whose refresh deadline has passed, if any."""
        if not self.config.refresh_enabled or self.timing.tREFI <= 0:
            return None
        for rank_id, deadline in enumerate(self._next_refresh):
            if now >= deadline:
                return rank_id
        return None

    def _try_issue(self, now: int) -> Optional[int]:
        """Issue at most one command; return the next wake-up time."""
        peeked = self._peeked
        if peeked is not None:
            self._peeked = None
            if peeked[0] == self._queue_epoch and peeked[1] == now:
                # nothing arrived since the dry-run: its decision is
                # exact, replay it without re-running the scan
                self.peek_hits += 1
                if peeked[2] == "issue":
                    return self._issue_peeked(now, peeked)
                _epoch, _when, _kind, draining, reason, wake = peeked
                self._draining_writes = draining
                self._note_wait(now, wake, reason)
                return wake
        if self.channel.next_command > now:
            self._note_wait(now, self.channel.next_command, CCD_BUS)
            return self.channel.next_command

        rank_id = self._refresh_due(now)
        if rank_id is not None:
            wake = self._issue_refresh_step(now, rank_id)
            if wake is not None:
                self._note_wait(now, wake, REFRESH)
            return wake

        queue = self._active_queue()
        if queue is None:
            return self._next_refresh_deadline()

        choice = self._frfcfs_choose(now, queue)
        if choice is None:
            return self._next_refresh_deadline()
        request, command, earliest, reason = choice
        if queue is self.write_queue and self.read_queue:
            # reads are parked behind the drain, whatever the write's own
            # binding constraint is
            reason = WRITE_DRAIN
        if earliest > now:
            wake = min(earliest, self._next_refresh_deadline() or FOREVER)
            self._note_wait(now, wake, reason)
            return wake
        if queue is self.write_queue and self.read_queue:
            self._note_wait(now, now + 1, WRITE_DRAIN)
        self._issue(now, request, command, queue)
        return now + 1 if (self.read_queue or self.write_queue) else None

    def _note_wait(self, start: int, end: int, reason: str) -> None:
        if self.stall_ledger is not None:
            self.stall_ledger.note(start, end, reason)

    def _peek_wake(self, now: int) -> None:
        """Dry-run the scheduler scan the wake-up at ``now`` will perform.

        Pure: no stall notes, no hysteresis commit, no state mutation
        beyond stashing the outcome in ``_peeked`` tagged with the queue
        epoch -- any submit landing before the wake-up invalidates the
        stash and the wake-up re-runs the scan with the arrival, exactly
        as polling would.  Between this dry-run (end of the current
        wake-up) and the wake-up at ``now`` the scan's inputs can only
        change via submits: requests leave queues solely when this
        controller issues, and bank/bus/refresh state mutates solely via
        controller commands.  Outcomes other than a scan decision (bus
        busy, refresh due, idle) are O(1) to recompute, so they are not
        memoized -- the stash stays None and the wake-up takes its normal
        path."""
        self._peeked = None
        if self.channel.next_command > now:
            return
        if self._refresh_due(now) is not None:
            return
        queue, draining = self._pick_queue()
        if queue is None:
            return
        choice = self._frfcfs_choose(now, queue)
        if choice is None:
            return
        request, command, earliest, reason = choice
        drain_note = queue is self.write_queue and bool(self.read_queue)
        if earliest > now:
            if drain_note:
                reason = WRITE_DRAIN
            wake = min(earliest, self._next_refresh_deadline() or FOREVER)
            self._peeked = (
                self._queue_epoch, now, "wait", draining, reason, wake,
            )
        else:
            self._peeked = (
                self._queue_epoch, now, "issue", request, command, queue,
                draining, drain_note,
            )

    def _issue_peeked(self, now: int, peeked: tuple) -> Optional[int]:
        """Issue the command a `_peek_wake` dry-run chose for this cycle."""
        (_epoch, _when, _kind, request, command, queue, draining,
         drain_note) = peeked
        self._draining_writes = draining
        if drain_note:
            self._note_wait(now, now + 1, WRITE_DRAIN)
        self._issue(now, request, command, queue)
        return now + 1 if (self.read_queue or self.write_queue) else None

    def _next_refresh_deadline(self) -> Optional[int]:
        if not self.config.refresh_enabled or self.timing.tREFI <= 0:
            return None
        if self.idle():
            return None  # nothing to do; refresh bookkeeping resumes on submit
        return min(self._next_refresh)

    def _active_queue(self) -> Optional[List[Request]]:
        """Pick the queue to serve, honouring write-drain watermarks."""
        queue, self._draining_writes = self._pick_queue()
        return queue

    def _pick_queue(self) -> Tuple[Optional[List[Request]], bool]:
        """``(queue, draining_after)``: the queue a wake-up would serve and
        the write-drain hysteresis state it would leave behind.  Side-effect
        free so the event-wheel dry-run can evaluate a wake-up without
        committing the drain transition (the hysteresis update is idempotent
        for a given pair of queue lengths, so deferring the commit to the
        real wake-up cannot change any later decision)."""
        cfg = self.config
        draining = self._draining_writes
        if draining:
            if len(self.write_queue) <= cfg.write_low_watermark:
                draining = False
            else:
                return self.write_queue, True
        if len(self.write_queue) >= cfg.write_high_watermark:
            return self.write_queue, True
        if self.read_queue:
            return self.read_queue, draining
        if self.write_queue:
            return self.write_queue, draining
        return None, draining

    def _frfcfs_choose(
        self, now: int, queue: List[Request]
    ) -> Optional[Tuple[Request, Command, int, str]]:
        """FR-FCFS: first ready row-hit column command, else oldest ready
        command; if nothing is ready now, the soonest candidate.

        With the readiness index (the default) each queued request's
        (command, earliest, reason) triple is cached on the request and
        re-derived only when the bank/rank state it reads has moved (the
        version counters); the shared-bus terms, which move on every
        issue, are applied at lookup time via a per-epoch memo.  The
        ``future`` minimum keeps wakeup scheduling exact: the controller
        still sleeps to the soonest candidate, never past it.
        """
        if not self.config.readiness_index:
            return self._frfcfs_choose_recompute(now, queue)
        ready_cas: Optional[Tuple[Request, Command, int, str]] = None
        ready_other: Optional[Tuple[Request, Command, int, str]] = None
        future: Optional[Tuple[Request, Command, int, str]] = None
        last_group = self._last_cas_group
        chan = self.channel
        if self._bus_memo_version != chan.data_version:
            self._bus_memo.clear()
            self._bus_memo_version = chan.data_version
        memo = self._bus_memo
        memo_get = memo.get
        mrs = Command.MRS
        sa_sel = Command.SA_SEL
        for index, request in enumerate(queue):
            rank = request._rank
            bank = request._bank
            sub = request._sub
            entry = request._sched_cache
            if (entry is None or entry[0] != bank.version
                    or entry[1] != rank.version
                    or entry[2] != sub.version):
                terms = self._entry_terms(request, rank, bank)
                addr = request.addr
                if terms[3] == _BUS_CAS:
                    # Pre-resolve the per-epoch memo signature with an int
                    # flag instead of the Command member: tuple hashing
                    # would otherwise go through Python-level
                    # ``Enum.__hash__`` on every lookup.
                    is_rd = terms[0] is Command.RD
                    extra = (
                        (0 if is_rd else 1, addr.rank, request.subrank),
                        RequestType.READ if is_rd else RequestType.WRITE,
                        (addr.rank, addr.bank_group),
                    )
                else:
                    extra = (None, None, (addr.rank, addr.bank_group))
                entry = (bank.version, rank.version, sub.version) \
                    + terms + extra
                request._sched_cache = entry
            command = entry[3]
            if (command is mrs or command is sa_sel) and index > 0:
                # Only the oldest request may flip the rank's I/O mode or
                # the bank's subarray designation; otherwise requests
                # needing different modes (or different subarrays, under
                # MASA) thrash MRS / SA_SEL while waiting out tRCD, each
                # flip pushing the column gates further out.  Skipped
                # candidates are retried whenever the oldest request
                # makes progress.
                continue
            earliest = entry[4]
            reason = entry[5]
            bus_kind = entry[6]
            if bus_kind == _BUS_CAS:
                bus_t = memo_get(entry[7])
                if bus_t is None:
                    bus_t = chan.earliest_cas_for_bus(
                        command, request.addr.rank, entry[8], request.subrank
                    )
                    memo[entry[7]] = bus_t
                if bus_t > earliest:
                    earliest, reason = bus_t, CCD_BUS
            elif bus_kind == _BUS_MRS:
                data_free = chan.data_free
                if data_free > earliest:
                    earliest = data_free
            if earliest <= now:
                if bus_kind == _BUS_CAS:
                    # Bank-group rotation: a CAS to a different bank group
                    # than the previous one runs at tCCD_S instead of
                    # tCCD_L, so prefer it over the oldest ready CAS.
                    group = entry[9]
                    if group != last_group:
                        return (request, command, earliest, reason)
                    if ready_cas is None:
                        ready_cas = (request, command, earliest, reason)
                elif ready_other is None:
                    ready_other = (request, command, earliest, reason)
            elif future is None or earliest < future[2]:
                future = (request, command, earliest, reason)
        if ready_cas is not None:
            return ready_cas
        return ready_other if ready_other is not None else future

    def _frfcfs_choose_recompute(
        self, now: int, queue: List[Request]
    ) -> Optional[Tuple[Request, Command, int, str]]:
        """Old-style scan: re-derive every queued request's next command
        on every wakeup.  Kept as the behavioral reference the readiness
        index is tested against."""
        ready_cas: Optional[Tuple[Request, Command, int, str]] = None
        ready_other: Optional[Tuple[Request, Command, int, str]] = None
        future: Optional[Tuple[Request, Command, int, str]] = None
        for index, request in enumerate(queue):
            command, earliest, reason = self._next_command(now, request)
            if (command is Command.MRS
                    or command is Command.SA_SEL) and index > 0:
                continue
            if earliest <= now:
                if command in (Command.RD, Command.WR):
                    group = (request.addr.rank, request.addr.bank_group)
                    if group != self._last_cas_group:
                        return (request, command, earliest, reason)
                    if ready_cas is None:
                        ready_cas = (request, command, earliest, reason)
                elif ready_other is None:
                    ready_other = (request, command, earliest, reason)
            elif future is None or earliest < future[2]:
                future = (request, command, earliest, reason)
        if ready_cas is not None:
            return ready_cas
        return ready_other if ready_other is not None else future

    @staticmethod
    def _binding(*terms: Tuple[int, str]) -> Tuple[int, str]:
        """Max over ``(time, reason)`` terms; ties keep the earlier term,
        so list the more specific timing reasons first."""
        best_time, best_reason = terms[0]
        for time, reason in terms[1:]:
            if time > best_time:
                best_time, best_reason = time, reason
        return best_time, best_reason

    def _next_command(
        self, now: int, request: Request
    ) -> Tuple[Command, int, str]:
        """The next command ``request`` needs, its earliest issue time, and
        the stall-taxonomy tag of the binding timing constraint (full
        recompute: stateful terms + the shared-bus terms)."""
        rank = self.channel.ranks[request.addr.rank]
        bank = rank.banks[request.addr.bank]
        command, earliest, reason, bus_kind = self._entry_terms(
            request, rank, bank
        )
        bus_floor = max(now, self.channel.next_command)
        if bus_kind == _BUS_MRS:
            # An MRS can issue once the rank's in-flight CAS work is done
            # and the data bus has drained (the switch flips DQ drivers).
            earliest = max(earliest, self.channel.data_free, bus_floor)
            return (command, earliest, reason)
        if bus_kind == _BUS_CAS:
            req_type = (
                RequestType.READ if request.is_read else RequestType.WRITE
            )
            bus_t = self.channel.earliest_cas_for_bus(
                command, request.addr.rank, req_type, request.subrank
            )
            if bus_t > earliest:
                earliest, reason = bus_t, CCD_BUS
        if bus_floor > earliest:
            earliest, reason = bus_floor, CCD_BUS
        return (command, earliest, reason)

    def _entry_terms(
        self, request: Request, rank, bank
    ) -> Tuple[Command, int, str, int]:
        """The stateful half of a readiness entry: the next command
        ``request`` needs, the earliest issue time over the
        subarray/bank/rank constraints, the binding stall tag, and which
        bus term applies at lookup time.  Everything read here is covered
        by ``bank.version``, ``rank.version`` and the request's
        subarray's ``version`` (under SALP one request's readiness also
        depends on *other* subarrays -- precharge victims, designation --
        which is why every bank mutation bumps ``bank.version``), so a
        cached entry stays exact until one of those moves."""
        if rank.ensure_mode(request.io_mode):
            earliest = max(rank.busy_until, rank.next_read, rank.next_write)
            return (Command.MRS, earliest, MODE_SWITCH, _BUS_MRS)
        if self.salp != "none":
            return self._entry_terms_salp(request, rank, bank)

        needed = request.row_id()
        sub = request._sub  # the whole bank in the degenerate configuration
        if sub.open_row == needed:
            cmd = Command.RD if request.is_read else Command.WR
            bank_gate = sub.earliest(cmd)
            rank_gate = rank.earliest_cas(cmd)
            if rank_gate == rank.busy_until:
                rank_tag = REFRESH
            elif rank_gate == rank.next_act_any:
                rank_tag = MODE_SWITCH  # tMOD_IO stalls CAS and ACT alike
            else:
                rank_tag = WRITE_DRAIN  # tWTR write-to-read turnaround
            earliest, reason = self._binding(
                (
                    bank_gate,
                    # the bank CAS gate is tRCD right after an ACT,
                    # tCCD column-path spacing otherwise
                    TRCD
                    if bank_gate <= sub.last_act + self.timing.tRCD
                    else CCD_BUS,
                ),
                (rank_gate, rank_tag),
            )
            return (cmd, earliest, reason, _BUS_CAS)
        if sub.open_row is None:
            cmd = (
                Command.ACT
                if needed[0].value == "row"
                else Command.ACT_COL
            )
            bank_gate = sub.earliest(Command.ACT)
            act_gate = rank.earliest_act(0, request.addr.bank_group)
            if act_gate == rank.busy_until:
                act_tag = REFRESH
            elif act_gate == rank.next_act_any:
                act_tag = MODE_SWITCH
            else:
                act_tag = TFAW  # tFAW window or tRRD spacing
            earliest, reason = self._binding(
                (
                    bank_gate,
                    # post-refresh the bank ACT gate is the tRFC blackout,
                    # post-precharge it is tRP
                    REFRESH if rank.busy_until >= bank_gate else TRP,
                ),
                (act_gate, act_tag),
            )
            return (cmd, earliest, reason, _BUS_NONE)
        # row conflict: precharge first
        earliest, reason = self._binding(
            (sub.earliest(Command.PRE), TRAS),
            (rank.busy_until, REFRESH),
        )
        return (Command.PRE, earliest, reason, _BUS_NONE)

    def _entry_terms_salp(
        self, request: Request, rank, bank
    ) -> Tuple[Command, int, str, int]:
        """SALP readiness terms: the per-subarray gates carry tRP/tRCD/
        tRAS recovery, the bank carries the shared row-logic (tRA) and
        column-path gates, and SALP-2/MASA additionally gate column
        commands on global sense-amp designation."""
        t = self.timing
        needed = request.row_id()
        sub = request._sub
        if sub.open_row == needed:
            if bank.designated == sub.sub_id:
                # column command to the globally connected subarray
                cmd = Command.RD if request.is_read else Command.WR
                if request.is_read:
                    local, shared = sub.next_read, bank.col_next_read
                else:
                    local, shared = sub.next_write, bank.col_next_write
                rank_gate = rank.earliest_cas(cmd)
                if rank_gate == rank.busy_until:
                    rank_tag = REFRESH
                elif rank_gate == rank.next_act_any:
                    rank_tag = MODE_SWITCH
                else:
                    rank_tag = WRITE_DRAIN
                earliest, reason = self._binding(
                    (local, TRCD if local <= sub.last_act + t.tRCD
                     else CCD_BUS),
                    (shared, CCD_BUS),
                    (rank_gate, rank_tag),
                )
                return (cmd, earliest, reason, _BUS_CAS)
            if self.salp == "masa":
                # right row open in an undesignated subarray: switch the
                # global sense-amp connection first
                earliest, reason = self._binding(
                    (bank.next_sa_sel, SUBARRAY),
                    (rank.busy_until, REFRESH),
                )
                return (Command.SA_SEL, earliest, reason, _BUS_NONE)
            # SALP-2 cannot re-connect an undesignated subarray (only an
            # ACT designates): close it and re-activate
            earliest, reason = self._binding(
                (sub.next_pre, TRAS),
                (rank.busy_until, REFRESH),
            )
            return (Command.PRE, earliest, reason, _BUS_NONE)
        if sub.open_row is None:
            victim = bank.pre_victim(sub.sub_id)
            if victim is not None:
                # the bank is at its open-subarray capacity: close the
                # oldest open subarray before activating this one
                vic = bank.subarrays[victim]
                earliest, reason = self._binding(
                    (vic.next_pre, TRAS),
                    (rank.busy_until, REFRESH),
                )
                return (Command.PRE, earliest, reason, _BUS_NONE)
            cmd = (
                Command.ACT
                if needed[0].value == "row"
                else Command.ACT_COL
            )
            act_gate = rank.earliest_act(0, request.addr.bank_group)
            if act_gate == rank.busy_until:
                act_tag = REFRESH
            elif act_gate == rank.next_act_any:
                act_tag = MODE_SWITCH
            else:
                act_tag = TFAW
            earliest, reason = self._binding(
                (sub.next_act,
                 REFRESH if rank.busy_until >= sub.next_act else TRP),
                (bank.next_any_act, SUBARRAY),  # shared row-logic re-arm
                (act_gate, act_tag),
            )
            return (cmd, earliest, reason, _BUS_NONE)
        # row conflict within this subarray: precharge it first
        earliest, reason = self._binding(
            (sub.next_pre, TRAS),
            (rank.busy_until, REFRESH),
        )
        return (Command.PRE, earliest, reason, _BUS_NONE)

    def _pre_target(self, request: Request, bank):
        """The subarray a PRE chosen for ``request`` closes: the
        request's own subarray when it holds an open row (wrong row, or
        right row but undesignated under SALP-2), else the bank's
        capacity victim.  Deterministic re-derivation at issue time is
        safe: any intervening state change bumps ``bank.version`` and
        forces the scheduling entry to be rebuilt."""
        sub = request._sub
        if sub.open_row is not None:
            return sub
        victim = bank.pre_victim(sub.sub_id)
        if victim is not None:
            return bank.subarrays[victim]
        return bank.pre_candidate(self.kernel.now)

    # ------------------------------------------------------------- issuing

    def _issue(
        self, now: int, request: Request, command: Command, queue: List[Request]
    ) -> None:
        rank = request._rank
        bank = request._bank
        pre_sub = None
        if command is Command.PRE and self.salp != "none":
            # resolved before the hooks: the checker needs the PRE's
            # subarray operand (a real SALP PRE names its subarray)
            pre_sub = self._pre_target(request, bank)
        self.channel.occupy_command_bus(now)
        if self.observer is not None:
            self.observer(now, command, request)
        if self.checker is not None:
            self.checker.on_command(
                now, command, request,
                subarray=None if pre_sub is None else pre_sub.sub_id,
            )
        if self.timeline is not None:
            self.timeline.on_command(now, command, request)

        if command is Command.MRS:
            rank.issue_mode_switch(now, request.io_mode)
            self.stats.mode_switches += 1
            return
        if command is Command.SA_SEL:
            bank.issue_sa_sel(now, request._sub)
            self.stats.sa_sels += 1
            return
        if command is Command.PRE:
            bank.issue_pre(now, pre_sub)
            self.stats.precharges += 1
            self.stats.row_conflicts += 1
            bank.row_conflicts += 1
            return
        if command in (Command.ACT, Command.ACT_COL):
            bank.issue_act(now, request.row_id(), request._sub)
            rank.issue_act(now, request.addr.bank_group)
            if command is Command.ACT_COL:
                self.stats.col_acts += 1
            else:
                self.stats.acts += 1
            self.stats.row_misses += 1
            bank.row_misses += 1
            return

        # Column command: the request completes.
        req_type = RequestType.READ if request.is_read else RequestType.WRITE
        if command is Command.RD:
            bank.issue_read(now, request.internal_bursts, request._sub)
            rank.issue_read(now)
        else:
            bank.issue_write(now, request.internal_bursts, request._sub)
            rank.issue_write(now)
        data_end = self.channel.issue_cas(
            now, command, request.addr.rank, req_type, request.subrank
        )
        self._last_cas_group = (request.addr.rank, request.addr.bank_group)
        if self.config.page_policy == "closed":
            # auto-precharge (RDA/WRA): the row closes once tRTP/tWR allow
            salp = self.salp != "none"
            pre_at = request._sub.next_pre if salp \
                else bank.earliest(Command.PRE)
            if self.checker is not None:
                self.checker.on_command(
                    pre_at, Command.PRE, request, implicit=True,
                    subarray=request._sub.sub_id if salp else None,
                )
            if self.timeline is not None:
                self.timeline.on_command(pre_at, Command.PRE, request,
                                         implicit=True)
            bank.issue_pre(pre_at, request._sub if salp else None)
            self.stats.precharges += 1
        self._account_cas(request, command)
        self.stats.row_hits += 1
        bank.row_hits += 1
        queue.remove(request)
        request.issue_time = now
        # critical-word-first: the demanded word lands mid-burst, so the
        # waiting load restarts before the burst completes
        complete_at = data_end
        if request.early_restart and request.is_read and request.critical:
            complete_at = data_end - self.timing.tBL // 2
        request.finish_time = complete_at
        if request.is_read:
            self.stats.read_latency_total += complete_at - request.arrival
            self.stats.read_count_for_latency += 1
            if self.latency_hist is not None:
                self.latency_hist.observe(complete_at - request.arrival)
        if request.on_complete is not None:
            callback = request.on_complete
            self.kernel.schedule_at(
                complete_at, lambda r=request, t=complete_at: callback(r, t)
            )
        if self.slot_listener is not None:
            # a queue slot just freed: let the system wake whoever is
            # backpressured on it (event-wheel replacement for retry polls)
            self.slot_listener(request)

    def _account_cas(self, request: Request, command: Command) -> None:
        s = self.stats
        s.internal_bursts += request.internal_bursts
        if command is Command.RD:
            s.reads += 1
            if request.is_gather:
                s.gather_reads += 1
            if request.io_mode is IOMode.STRIDE:
                s.stride_mode_reads += 1
        else:
            s.writes += 1
            if request.is_gather:
                s.gather_writes += 1

    def _issue_refresh_step(self, now: int, rank_id: int) -> Optional[int]:
        """Progress the pending refresh of ``rank_id`` by one command."""
        rank = self.channel.ranks[rank_id]
        if rank.busy_until > now:
            return rank.busy_until
        if not rank.all_banks_precharged():
            # precharge the first open subarray that is allowed to close
            # (one command per cycle; a SALP bank may take several PREs)
            soonest = FOREVER
            for bank_id, bank in enumerate(rank.banks):
                sub = bank.pre_candidate(now)
                if sub is None:
                    continue
                ready = sub.next_pre
                if ready <= now:
                    self.channel.occupy_command_bus(now)
                    if self.checker is not None:
                        self.checker.on_command(
                            now, Command.PRE, None,
                            rank=rank_id, bank=bank_id,
                            subarray=sub.sub_id if self.salp != "none"
                            else None,
                        )
                    if self.timeline is not None:
                        self.timeline.on_command(now, Command.PRE, None,
                                                 rank=rank_id, bank=bank_id)
                    bank.issue_pre(now, sub)
                    self.stats.precharges += 1
                    return now + 1
                soonest = min(soonest, ready)
            return soonest
        self.channel.occupy_command_bus(now)
        if self.observer is not None:
            self.observer(now, Command.REF, None)
        if self.checker is not None:
            self.checker.on_command(now, Command.REF, None, rank=rank_id)
        if self.timeline is not None:
            self.timeline.on_command(now, Command.REF, None, rank=rank_id)
        rank.issue_refresh(now)
        self.stats.refreshes += 1
        self._next_refresh[rank_id] += self.timing.tREFI
        return now + 1

    def _refresh_step_wake(self, now: int, rank_id: int) -> Optional[int]:
        """Side-effect-free mirror of :meth:`_issue_refresh_step`: the time
        that step would return *without issuing anything*, or ``now`` when
        it would issue a command (PRE or REF) this cycle."""
        rank = self.channel.ranks[rank_id]
        if rank.busy_until > now:
            return rank.busy_until
        if not rank.all_banks_precharged():
            soonest = FOREVER
            for bank in rank.banks:
                sub = bank.pre_candidate(now)
                if sub is None:
                    continue
                if sub.next_pre <= now:
                    return now
                soonest = min(soonest, sub.next_pre)
            return soonest
        return now
