"""Per-bank timing state machine, generic over subarrays.

A bank is N subarrays sharing global structures: the row-address logic
(one ACT at a time, paced by ``tRA``), the global bitlines / column path
(CAS spacing), and -- for SALP-2 / MASA -- the notion of a *designated*
subarray whose local row buffer currently drives the shared global sense
amplifiers.  :class:`SubarrayState` tracks one subarray's open row and
local gates; :class:`BankState` owns the subarrays plus the shared gates
and exposes the scheduling API the controller uses.

Four operating modes (``salp``):

* ``"none"`` -- the degenerate single-subarray configuration: one
  :class:`SubarrayState` backs the whole bank and the legacy field API
  (``open_row`` / ``next_*`` / ``last_act`` properties) delegates to it,
  preserving the original one-open-row semantics exactly.
* ``"salp1"`` -- SALP-1 (Kim et al., ISCA'12): at most one subarray open,
  but a precharge only pays its ``tRP`` *locally*; an ACT to a different
  subarray of the same bank waits only the short shared-logic re-arm
  delay ``tRA``, overlapping the precharge with the next activation.
* ``"salp2"`` -- SALP-2: up to two subarrays activated concurrently; the
  most recently activated one is *designated* (owns the global sense
  amps) and is the only one column commands may target.
* ``"masa"`` -- MASA: any number of subarrays activated; an ``SA_SEL``
  command re-designates which one drives the global bitlines before a
  column command to a non-designated subarray.

The constraints are updated as commands issue; the controller asks the
``earliest``-style accessors before issuing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .commands import Command, RowKind
from .timing import TimingParams

FOREVER = 1 << 60

#: valid ``salp`` operating modes, in increasing capability order
SALP_MODES = ("none", "salp1", "salp2", "masa")


@dataclass
class SubarrayState:
    """Timing state of one subarray: its own open row and local gates.

    In the degenerate ``salp="none"`` configuration one instance backs
    the whole bank, so these fields carry exactly the legacy bank-level
    semantics (``next_read``/``next_write`` double as the column-path
    CAS-spacing gates; under SALP those shared-structure gates live on
    the :class:`BankState` instead and the local ones only carry tRCD).
    """

    timing: TimingParams
    sub_id: int = 0
    open_row: Optional[Tuple[RowKind, int]] = None
    next_act: int = 0
    next_read: int = 0
    next_write: int = 0
    next_pre: int = 0
    last_act: int = -FOREVER
    #: invalidation epoch for the controller's readiness index: bumped on
    #: every mutation of the scheduling-visible state above.  Any new
    #: timing rule that writes those fields outside the issue_* methods
    #: must bump this too, or cached readiness entries go stale (the
    #: scheduler-equivalence test bites).
    version: int = 0

    def is_open(self, row: Tuple[RowKind, int]) -> bool:
        return self.open_row == row

    def earliest(self, cmd: Command) -> int:
        """Earliest cycle this subarray allows ``cmd`` to issue."""
        if cmd in (Command.ACT, Command.ACT_COL):
            return self.next_act
        if cmd is Command.RD:
            return self.next_read
        if cmd is Command.WR:
            return self.next_write
        if cmd is Command.PRE:
            return self.next_pre
        raise ValueError(f"subarray does not gate {cmd}")

    def issue_act(self, now: int, row: Tuple[RowKind, int]) -> None:
        t = self.timing
        self.version += 1
        self.open_row = row
        self.last_act = now
        self.next_read = max(self.next_read, now + t.tRCD)
        self.next_write = max(self.next_write, now + t.tRCD)
        self.next_pre = max(self.next_pre, now + t.tRAS)
        self.next_act = FOREVER  # must precharge before the next ACT

    def issue_read(self, now: int, extra_internal: int = 0) -> None:
        """Account a column read; ``extra_internal`` extends the column
        path occupancy for multi-internal-burst gathers (RC-NVM-bit
        etc.)."""
        t = self.timing
        tail = extra_internal * t.tCCD_L
        self.version += 1
        self.next_read = max(self.next_read, now + t.tCCD_L + tail)
        self.next_write = max(self.next_write, now + t.tCCD_L + tail)
        self.next_pre = max(self.next_pre, now + t.tRTP + tail)

    def issue_write(self, now: int, extra_internal: int = 0) -> None:
        t = self.timing
        tail = extra_internal * t.tCCD_L
        self.version += 1
        self.next_read = max(self.next_read, now + t.tCCD_L + tail)
        self.next_write = max(self.next_write, now + t.tCCD_L + tail)
        # write recovery: data lands at now+CWL..now+CWL+tBL, then tWR
        self.next_pre = max(self.next_pre, now + t.CWL + t.tBL + t.tWR + tail)

    def issue_pre(self, now: int) -> None:
        t = self.timing
        self.version += 1
        self.open_row = None
        self.next_act = max(0, now + t.tRP)


class BankState:
    """Timing state of one bank: N subarrays plus shared-structure gates.

    The legacy single-open-row API (``open_row``, ``next_*``,
    ``earliest``, ``issue_*`` without a subarray, ``snapshot``) keeps
    working and is exact in the ``"none"`` mode, where it delegates to
    the single backing :class:`SubarrayState`.  Subarray states are
    created lazily (a bank has 256 of them; a run touches a handful).

    Invalidation contract: *every* mutation of scheduling-visible state
    -- local subarray gates, the shared act/column gates, designation,
    the open-subarray set -- bumps :attr:`version` (and the affected
    subarray's own ``version``).  Under SALP one request's readiness
    depends on *other* subarrays' state (precharge victims, designation),
    so the bank epoch is the conservative invalidator; the per-subarray
    epoch additionally keys the cache entry so a stale subarray ref can
    never alias a fresh bank epoch.
    """

    __slots__ = (
        "timing", "salp", "n_subarrays", "rows_per_subarray",
        "subarrays", "open_subs", "designated",
        "next_any_act", "next_sa_sel", "col_next_read", "col_next_write",
        "act_floor", "version",
        "activations", "row_hits", "row_misses", "row_conflicts",
        "sa_sels", "first_act_cycle", "last_act_cycle",
    )

    def __init__(
        self,
        timing: TimingParams,
        salp: str = "none",
        subarrays_per_bank: int = 1,
        rows_per_subarray: int = 0,
    ) -> None:
        if salp not in SALP_MODES:
            raise ValueError(
                f"unknown salp mode {salp!r}; expected one of {SALP_MODES}"
            )
        self.timing = timing
        self.salp = salp
        self.n_subarrays = 1 if salp == "none" else max(1, subarrays_per_bank)
        self.rows_per_subarray = rows_per_subarray
        #: sub_id -> SubarrayState, created on first touch
        self.subarrays: Dict[int, SubarrayState] = {
            0: SubarrayState(timing)
        }
        #: sub_id -> ACT cycle of the currently open subarrays, in
        #: activation order (dict preserves insertion order -> the first
        #: key is the oldest open subarray, the precharge victim)
        self.open_subs: Dict[int, int] = {}
        #: subarray owning the global sense amps (SALP-2/MASA); under
        #: SALP-1 the single open subarray is trivially designated
        self.designated: Optional[int] = None
        #: shared row-logic gate: earliest next ACT to *any* subarray
        #: (tRA pacing); unused in "none" mode, where the single
        #: subarray's next_act carries the whole story
        self.next_any_act = 0
        #: MASA designation-switch pacing
        self.next_sa_sel = 0
        #: shared column-path (global bitline / IO) CAS-spacing gates;
        #: unused in "none" mode
        self.col_next_read = 0
        self.col_next_write = 0
        #: refresh-blackout floor applied to lazily-created subarrays
        self.act_floor = 0
        self.version = 0
        # Statistics (bank-level, mode-independent)
        self.activations = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.sa_sels = 0
        # Activity window (first/last activate cycle) for span profiling;
        # -1 means the bank was never used.
        self.first_act_cycle = -1
        self.last_act_cycle = -1

    # ------------------------------------------------------- subarray access

    def sub_id_for(self, row_index: int) -> int:
        """Subarray holding ``row_index`` (0 in the degenerate mode).

        Synthetic column-row identities (SAM-sub) exceed the physical row
        range, so the index is folded modulo the subarray count -- the
        same deterministic mapping the protocol checker applies.
        """
        if self.salp == "none":
            return 0
        return (row_index // self.rows_per_subarray) % self.n_subarrays

    def sub(self, sub_id: int) -> SubarrayState:
        """The subarray state for ``sub_id``, created on first touch."""
        state = self.subarrays.get(sub_id)
        if state is None:
            state = SubarrayState(self.timing, sub_id=sub_id,
                                  next_act=self.act_floor)
            self.subarrays[sub_id] = state
        return state

    def sub_for_row(self, row_index: int) -> SubarrayState:
        return self.sub(self.sub_id_for(row_index))

    @property
    def open_capacity(self) -> int:
        """How many subarrays may be activated concurrently."""
        if self.salp == "salp2":
            return 2
        if self.salp == "masa":
            return self.n_subarrays
        return 1  # "none" and "salp1"

    def any_open(self) -> bool:
        if self.salp == "none":
            return self.subarrays[0].open_row is not None
        return bool(self.open_subs)

    @property
    def all_closed(self) -> bool:
        return not self.any_open()

    def pre_victim(self, sub_id: int) -> Optional[int]:
        """The open subarray an ACT for (closed) ``sub_id`` must close
        first, or None when the ACT may go ahead.  The victim is the
        oldest-activated open subarray (FIFO)."""
        if len(self.open_subs) < self.open_capacity:
            return None
        return next(iter(self.open_subs))

    def pre_candidate(self, now: int) -> Optional[SubarrayState]:
        """The open subarray closest to being precharge-ready (refresh
        path); None when the bank is fully precharged."""
        if self.salp == "none":
            sub = self.subarrays[0]
            return sub if sub.open_row is not None else None
        best: Optional[SubarrayState] = None
        for sub_id in self.open_subs:
            sub = self.subarrays[sub_id]
            if best is None or sub.next_pre < best.next_pre:
                best = sub
        return best

    # ------------------------------------------------ legacy (N=1) field API

    @property
    def open_row(self) -> Optional[Tuple[RowKind, int]]:
        """The designated subarray's open row (the bank's open row in the
        degenerate mode).  Diagnostics / shadow-sync accessor; the
        scheduler reads per-subarray state directly."""
        if self.salp == "none":
            return self.subarrays[0].open_row
        if self.designated is None:
            return None
        return self.subarrays[self.designated].open_row

    @property
    def next_act(self) -> int:
        if self.salp == "none":
            return self.subarrays[0].next_act
        return self.next_any_act

    @property
    def next_read(self) -> int:
        if self.salp == "none":
            return self.subarrays[0].next_read
        return self.col_next_read

    @property
    def next_write(self) -> int:
        if self.salp == "none":
            return self.subarrays[0].next_write
        return self.col_next_write

    @property
    def next_pre(self) -> int:
        if self.salp == "none":
            return self.subarrays[0].next_pre
        sub = self.pre_candidate(0)
        return 0 if sub is None else sub.next_pre

    @property
    def last_act(self) -> int:
        if self.salp == "none":
            return self.subarrays[0].last_act
        best = -FOREVER
        for sub_id in self.open_subs:
            best = max(best, self.subarrays[sub_id].last_act)
        return best

    def is_open(self, row: Tuple[RowKind, int]) -> bool:
        return self.open_row == row

    def earliest(self, cmd: Command) -> int:
        """Earliest cycle this bank allows ``cmd`` to issue (degenerate
        single-subarray view; under SALP the scheduler combines the
        per-subarray and shared gates itself)."""
        if cmd is Command.SA_SEL:
            return self.next_sa_sel
        if self.salp == "none":
            return self.subarrays[0].earliest(cmd)
        if cmd in (Command.ACT, Command.ACT_COL):
            return self.next_any_act
        if cmd is Command.RD:
            return self.col_next_read
        if cmd is Command.WR:
            return self.col_next_write
        if cmd is Command.PRE:
            return self.next_pre
        raise ValueError(f"bank does not gate {cmd}")

    # -------------------------------------------------------------- issuing

    def issue_act(self, now: int, row: Tuple[RowKind, int],
                  sub: Optional[SubarrayState] = None) -> None:
        if sub is None:
            sub = self.sub_for_row(row[1])
        self.version += 1
        sub.issue_act(now, row)
        self.activations += 1
        if self.first_act_cycle < 0:
            self.first_act_cycle = now
        self.last_act_cycle = now
        if self.salp != "none":
            self.open_subs[sub.sub_id] = now
            self.designated = sub.sub_id  # newest ACT owns the global SAs
            self.next_any_act = max(self.next_any_act,
                                    now + self.timing.tRA)

    def issue_read(self, now: int, extra_internal: int = 0,
                   sub: Optional[SubarrayState] = None) -> None:
        self.version += 1
        if self.salp == "none":
            self.subarrays[0].issue_read(now, extra_internal)
            return
        t = self.timing
        tail = extra_internal * t.tCCD_L
        if sub is None:
            sub = self.subarrays[self.designated]
        sub.version += 1
        # CAS spacing binds the shared column path; read-to-precharge
        # recovery binds only the accessed subarray
        self.col_next_read = max(self.col_next_read, now + t.tCCD_L + tail)
        self.col_next_write = max(self.col_next_write, now + t.tCCD_L + tail)
        sub.next_pre = max(sub.next_pre, now + t.tRTP + tail)

    def issue_write(self, now: int, extra_internal: int = 0,
                    sub: Optional[SubarrayState] = None) -> None:
        self.version += 1
        if self.salp == "none":
            self.subarrays[0].issue_write(now, extra_internal)
            return
        t = self.timing
        tail = extra_internal * t.tCCD_L
        if sub is None:
            sub = self.subarrays[self.designated]
        sub.version += 1
        self.col_next_read = max(self.col_next_read, now + t.tCCD_L + tail)
        self.col_next_write = max(self.col_next_write, now + t.tCCD_L + tail)
        sub.next_pre = max(sub.next_pre,
                           now + t.CWL + t.tBL + t.tWR + tail)

    def issue_pre(self, now: int,
                  sub: Optional[SubarrayState] = None) -> None:
        self.version += 1
        if self.salp == "none":
            self.subarrays[0].issue_pre(now)
            return
        if sub is None:
            sub = self.pre_candidate(now)
            if sub is None:
                return
        sub.issue_pre(now)
        self.open_subs.pop(sub.sub_id, None)
        if self.designated == sub.sub_id:
            self.designated = None

    def issue_sa_sel(self, now: int, sub: SubarrayState) -> None:
        """MASA: re-designate ``sub`` as the globally connected subarray.
        The column path pays ``tSA_SEL`` before the next CAS."""
        t = self.timing
        self.version += 1
        sub.version += 1
        self.sa_sels += 1
        self.designated = sub.sub_id
        self.next_sa_sel = max(self.next_sa_sel, now + t.tSA_SEL)
        self.col_next_read = max(self.col_next_read, now + t.tSA_SEL)
        self.col_next_write = max(self.col_next_write, now + t.tSA_SEL)

    def force_close(self, now: int) -> None:
        """Close every open subarray as part of a refresh."""
        if self.salp == "none":
            if self.subarrays[0].open_row is not None:
                self.version += 1
                self.subarrays[0].issue_pre(now)
            return
        for sub_id in list(self.open_subs):
            self.issue_pre(now, self.subarrays[sub_id])

    def refresh(self, now: int, t_rfc: int) -> None:
        """Refresh blackout: close all subarrays, block ACTs for tRFC.
        Replaces the legacy direct ``bank.next_act`` write (the gates are
        per-subarray now); bumps every readiness epoch involved."""
        self.force_close(now)
        self.version += 1
        until = now + t_rfc
        self.act_floor = max(self.act_floor, until)
        for sub in self.subarrays.values():
            sub.version += 1
            sub.next_act = max(sub.next_act, until)
        if self.salp != "none":
            self.next_any_act = max(self.next_any_act, until)

    def snapshot(self) -> dict:
        """Timing-state snapshot for protocol-checker cross-validation."""
        state = {
            "open_row": self.open_row,
            "next_act": self.next_act,
            "next_read": self.next_read,
            "next_write": self.next_write,
            "next_pre": self.next_pre,
        }
        if self.salp != "none":
            state["salp"] = self.salp
            state["designated"] = self.designated
            state["open_subarrays"] = {
                sub_id: self.subarrays[sub_id].open_row
                for sub_id in self.open_subs
            }
        return state
