"""Per-bank timing state machine.

Each bank tracks its open row (which may be a row-wise row or, for SAM-sub /
RC-NVM, a column-wise subarray) and the earliest times the next command of
each kind may issue.  The constraints are updated as commands issue; the
controller asks :meth:`earliest` before issuing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .commands import Command, RowKind
from .timing import TimingParams

FOREVER = 1 << 60


@dataclass
class BankState:
    """Timing state of one bank."""

    timing: TimingParams
    open_row: Optional[Tuple[RowKind, int]] = None
    next_act: int = 0
    next_read: int = 0
    next_write: int = 0
    next_pre: int = 0
    last_act: int = -FOREVER
    #: invalidation epoch for the controller's readiness index: bumped on
    #: every mutation of the scheduling-visible state above (open_row and
    #: the next_*/last_act gates).  Any new timing rule that writes those
    #: fields outside the issue_* methods must bump this too, or cached
    #: readiness entries go stale (the scheduler-equivalence test bites).
    version: int = 0
    # Statistics
    activations: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    # Activity window (first/last activate cycle) for span profiling;
    # -1 means the bank was never used.
    first_act_cycle: int = -1
    last_act_cycle: int = -1

    def is_open(self, row: Tuple[RowKind, int]) -> bool:
        return self.open_row == row

    def earliest(self, cmd: Command) -> int:
        """Earliest cycle this bank allows ``cmd`` to issue."""
        if cmd in (Command.ACT, Command.ACT_COL):
            return self.next_act
        if cmd is Command.RD:
            return self.next_read
        if cmd is Command.WR:
            return self.next_write
        if cmd is Command.PRE:
            return self.next_pre
        raise ValueError(f"bank does not gate {cmd}")

    def issue_act(self, now: int, row: Tuple[RowKind, int]) -> None:
        t = self.timing
        self.version += 1
        self.open_row = row
        self.last_act = now
        self.activations += 1
        if self.first_act_cycle < 0:
            self.first_act_cycle = now
        self.last_act_cycle = now
        self.next_read = max(self.next_read, now + t.tRCD)
        self.next_write = max(self.next_write, now + t.tRCD)
        self.next_pre = max(self.next_pre, now + t.tRAS)
        self.next_act = FOREVER  # must precharge before the next ACT

    def issue_read(self, now: int, extra_internal: int = 0) -> None:
        """Account a column read; ``extra_internal`` extends the column path
        occupancy for multi-internal-burst gathers (RC-NVM-bit etc.)."""
        t = self.timing
        tail = extra_internal * t.tCCD_L
        self.version += 1
        self.next_read = max(self.next_read, now + t.tCCD_L + tail)
        self.next_write = max(self.next_write, now + t.tCCD_L + tail)
        self.next_pre = max(self.next_pre, now + t.tRTP + tail)

    def issue_write(self, now: int, extra_internal: int = 0) -> None:
        t = self.timing
        tail = extra_internal * t.tCCD_L
        self.version += 1
        self.next_read = max(self.next_read, now + t.tCCD_L + tail)
        self.next_write = max(self.next_write, now + t.tCCD_L + tail)
        # write recovery: data lands at now+CWL..now+CWL+tBL, then tWR
        self.next_pre = max(self.next_pre, now + t.CWL + t.tBL + t.tWR + tail)

    def issue_pre(self, now: int) -> None:
        t = self.timing
        self.version += 1
        self.open_row = None
        self.next_act = max(0, now + t.tRP)

    def force_close(self, now: int) -> None:
        """Close the row as part of a refresh."""
        if self.open_row is not None:
            self.issue_pre(now)

    def snapshot(self) -> dict:
        """Timing-state snapshot for protocol-checker cross-validation."""
        return {
            "open_row": self.open_row,
            "next_act": self.next_act,
            "next_read": self.next_read,
            "next_write": self.next_write,
            "next_pre": self.next_pre,
        }
