"""Per-rank timing state: ACT pacing (tRRD / tFAW), write-to-read
turnaround, the SAM I/O mode register, and refresh blackouts."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List

from .bank import BankState
from .commands import Command, IOMode
from .geometry import Geometry
from .timing import TimingParams


@dataclass
class RankState:
    """Timing state of one rank."""

    timing: TimingParams
    geometry: Geometry
    salp: str = "none"
    banks: List[BankState] = field(default_factory=list)
    io_mode: IOMode = IOMode.X4
    next_act_any: int = 0
    next_read: int = 0  # rank-level CAS gate (tWTR after writes, refresh)
    next_write: int = 0
    busy_until: int = 0  # refresh blackout
    act_window: Deque[int] = field(default_factory=deque)
    last_act_group: int = -1
    last_act_time: int = -(1 << 30)
    mode_switches: int = 0
    refreshes: int = 0
    #: invalidation epoch for the controller's readiness index: bumped on
    #: every mutation of scheduling-visible rank state (io_mode, the
    #: next_*/busy_until gates, ACT pacing history).  New timing rules
    #: that write those fields elsewhere must bump this too.
    version: int = 0

    def __post_init__(self) -> None:
        if not self.banks:
            g = self.geometry
            self.banks = [
                BankState(
                    self.timing,
                    salp=self.salp,
                    subarrays_per_bank=g.subarrays_per_bank,
                    rows_per_subarray=g.rows_per_subarray,
                )
                for _ in range(g.banks)
            ]

    def earliest_act(self, now: int, bank_group: int) -> int:
        """Earliest ACT issue time given tRRD, tFAW and refresh."""
        t = self.timing
        earliest = max(self.next_act_any, self.busy_until)
        if self.last_act_time > -(1 << 30):
            spacing = t.tRRD_L if bank_group == self.last_act_group else t.tRRD_S
            earliest = max(earliest, self.last_act_time + spacing)
        if len(self.act_window) >= 4:
            earliest = max(earliest, self.act_window[0] + t.tFAW)
        return earliest

    def issue_act(self, now: int, bank_group: int) -> None:
        self.version += 1
        self.last_act_time = now
        self.last_act_group = bank_group
        self.act_window.append(now)
        while len(self.act_window) > 4:
            self.act_window.popleft()

    def earliest_cas(self, cmd: Command) -> int:
        base = self.busy_until
        if cmd is Command.RD:
            return max(base, self.next_read)
        return max(base, self.next_write)

    def issue_read(self, now: int) -> None:
        pass  # rank-level read effects handled at the channel

    def issue_write(self, now: int) -> None:
        t = self.timing
        # write-to-read turnaround within this rank
        self.version += 1
        self.next_read = max(self.next_read, now + t.CWL + t.tBL + t.tWTR)

    def ensure_mode(self, mode: IOMode) -> bool:
        """True if an MRS (mode switch) is needed to serve ``mode``."""
        return self.io_mode is not mode

    def issue_mode_switch(self, now: int, mode: IOMode) -> None:
        t = self.timing
        self.version += 1
        self.io_mode = mode
        self.mode_switches += 1
        stall = now + t.tMOD_IO
        self.next_read = max(self.next_read, stall)
        self.next_write = max(self.next_write, stall)
        self.next_act_any = max(self.next_act_any, stall)

    def all_banks_precharged(self) -> bool:
        return all(b.all_closed for b in self.banks)

    def issue_refresh(self, now: int) -> None:
        """Refresh the rank: closes all banks and blacks out tRFC."""
        t = self.timing
        self.refreshes += 1
        self.version += 1
        for bank in self.banks:
            bank.refresh(now, t.tRFC)
        self.busy_until = max(self.busy_until, now + t.tRFC)
