"""Physical address mapping.

The memory controller of Table 2 uses the ``rw:rk:bk:ch:cl:offset`` order
(most-significant field first).  :class:`AddressMapper` turns a flat byte
address into a :class:`DecodedAddress` and back.  The stride-mode remapping
of Figure 10 lives in :mod:`repro.vm.stride_mapping`; this module only
implements the controller-side interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass

from .geometry import Geometry


def _log2_exact(value: int, what: str) -> int:
    bits = value.bit_length() - 1
    if value <= 0 or (1 << bits) != value:
        raise ValueError(f"{what} must be a power of two, got {value}")
    return bits


@dataclass(frozen=True)
class DecodedAddress:
    """An address broken into its device coordinates."""

    channel: int
    rank: int
    bank: int  # flat bank index within the rank (0..15)
    row: int
    column: int  # cacheline index within the row
    offset: int  # byte offset within the cacheline

    @property
    def bank_group(self) -> int:
        return self.bank >> 2

    def line_key(self) -> tuple:
        """Identity of the 64B line, ignoring the intra-line offset."""
        return (self.channel, self.rank, self.bank, self.row, self.column)


class AddressMapper:
    """Encode/decode flat physical addresses per the rw:rk:bk:ch:cl:offset map."""

    def __init__(self, geometry: Geometry | None = None) -> None:
        self.geometry = geometry or Geometry()
        g = self.geometry
        self.offset_bits = _log2_exact(g.cacheline_bytes, "cacheline size")
        self.column_bits = _log2_exact(g.lines_per_row, "lines per row")
        self.channel_bits = _log2_exact(g.channels, "channel count")
        self.bank_bits = _log2_exact(g.banks, "bank count")
        self.rank_bits = _log2_exact(g.ranks, "rank count")
        self.row_bits = _log2_exact(g.rows_per_bank, "rows per bank")
        self.total_bits = (
            self.offset_bits
            + self.column_bits
            + self.channel_bits
            + self.bank_bits
            + self.rank_bits
            + self.row_bits
        )

    def decode(self, address: int) -> DecodedAddress:
        """Split a flat byte address into device coordinates."""
        if address < 0:
            raise ValueError(f"negative address {address}")
        a = address
        offset = a & ((1 << self.offset_bits) - 1)
        a >>= self.offset_bits
        column = a & ((1 << self.column_bits) - 1)
        a >>= self.column_bits
        channel = a & ((1 << self.channel_bits) - 1)
        a >>= self.channel_bits
        bank = a & ((1 << self.bank_bits) - 1)
        a >>= self.bank_bits
        rank = a & ((1 << self.rank_bits) - 1)
        a >>= self.rank_bits
        row = a
        if row >= self.geometry.rows_per_bank:
            row %= self.geometry.rows_per_bank
        return DecodedAddress(channel, rank, bank, row, column, offset)

    def encode(self, decoded: DecodedAddress) -> int:
        """Rebuild the flat byte address from device coordinates."""
        a = decoded.row
        a = (a << self.rank_bits) | decoded.rank
        a = (a << self.bank_bits) | decoded.bank
        a = (a << self.channel_bits) | decoded.channel
        a = (a << self.column_bits) | decoded.column
        a = (a << self.offset_bits) | decoded.offset
        return a

    def line_address(self, address: int) -> int:
        """Round an address down to its cacheline base."""
        return address & ~(self.geometry.cacheline_bytes - 1)
