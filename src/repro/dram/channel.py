"""Per-channel shared-resource state: the command bus (one command per
cycle) and the data bus (one burst at a time, with rank-switch and
read/write-turnaround bubbles)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .commands import Command, RequestType
from .geometry import Geometry
from .rank import RankState
from .timing import TimingParams


@dataclass
class ChannelState:
    """Timing state of one channel."""

    timing: TimingParams
    geometry: Geometry
    ranks: List[RankState] = field(default_factory=list)
    next_command: int = 0  # command bus: one command per cycle
    data_free: int = 0  # first cycle the full-width data bus is free
    last_data_rank: int = -1
    last_data_type: Optional[RequestType] = None
    #: sub-bus occupancy for fine-granularity (AGMS/DGMS) transfers:
    #: (rank, subrank) -> first free cycle.  A sub-rank transfer uses one
    #: quarter of the pins, so transfers from different sub-ranks overlap;
    #: a full-width transfer must wait for every sub-bus and vice versa.
    subbus_free: dict = field(default_factory=dict)
    # Statistics.  Bus occupancy is integrated in *sub-bus* units so that
    # concurrent sub-rank transfers cannot sum past the physical pin
    # count: a full-width burst books ``subranks * tBL`` units, a
    # sub-rank burst ``tBL`` (its pin fraction times the full duration).
    data_busy_subbus_cycles: int = 0
    commands_issued: int = 0

    def __post_init__(self) -> None:
        if not self.ranks:
            self.ranks = [
                RankState(self.timing, self.geometry)
                for _ in range(self.geometry.ranks)
            ]

    @property
    def data_busy_cycles(self) -> float:
        """Full-bus-equivalent busy cycles.  A sub-rank transfer counts at
        its pin fraction, so the total never exceeds elapsed cycles."""
        return self.data_busy_subbus_cycles / self.geometry.subranks

    def _max_subbus_free(self) -> int:
        return max(self.subbus_free.values(), default=0)

    def earliest_cas_for_bus(
        self, cmd: Command, rank: int, req_type: RequestType,
        subrank: Optional[int] = None,
    ) -> int:
        """Earliest CAS issue time such that its data burst fits the bus.

        A read's data occupies ``[t+CL, t+CL+tBL)``; a write's
        ``[t+CWL, t+CWL+tBL)``.  Bubbles: tRTR when the burst comes from a
        different rank than the previous one, tRTW when the bus turns from
        reads to writes or back.  Sub-rank transfers only conflict with
        their own sub-bus (and any full-width transfer in flight).
        """
        t = self.timing
        latency = t.CL if cmd is Command.RD else t.CWL
        gap = 0
        if self.last_data_rank >= 0 and self.last_data_rank != rank:
            gap = max(gap, t.tRTR)
        if self.last_data_type is not None and self.last_data_type != req_type:
            gap = max(gap, t.tRTW)
        if subrank is None:
            busy = max(self.data_free, self._max_subbus_free())
        else:
            busy = max(
                self.data_free, self.subbus_free.get((rank, subrank), 0)
            )
        earliest_data = busy + gap
        return max(0, earliest_data - latency)

    def issue_cas(self, now: int, cmd: Command, rank: int,
                  req_type: RequestType,
                  subrank: Optional[int] = None) -> int:
        """Record a CAS issue; returns the cycle its data transfer ends."""
        t = self.timing
        latency = t.CL if cmd is Command.RD else t.CWL
        data_start = now + latency
        data_end = data_start + t.tBL
        if subrank is None:
            self.data_free = data_end
            self.data_busy_subbus_cycles += t.tBL * self.geometry.subranks
        else:
            self.subbus_free[(rank, subrank)] = data_end
            # fractional width, full duration: one sub-bus worth of pins
            self.data_busy_subbus_cycles += t.tBL
        self.last_data_rank = rank
        self.last_data_type = req_type
        return data_end

    def occupy_command_bus(self, now: int) -> None:
        self.next_command = now + 1
        self.commands_issued += 1
