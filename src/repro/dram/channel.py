"""Per-channel shared-resource state: the command bus (one command per
cycle) and the data bus (one burst at a time, with rank-switch and
read/write-turnaround bubbles)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .commands import Command, RequestType
from .geometry import Geometry
from .rank import RankState
from .timing import TimingParams

#: (rank, req_type) of the last burst on a pin group, for bubble insertion
_LastBurst = Optional[Tuple[int, RequestType]]


@dataclass
class ChannelState:
    """Timing state of one channel."""

    timing: TimingParams
    geometry: Geometry
    salp: str = "none"
    ranks: List[RankState] = field(default_factory=list)
    next_command: int = 0  # command bus: one command per cycle
    data_free: int = 0  # first cycle the full-width data bus is free
    last_full: _LastBurst = None
    #: sub-bus (pin-group) occupancy for fine-granularity (AGMS/DGMS)
    #: transfers: subrank -> first free cycle.  The key is the *physical*
    #: pin group, not (rank, subrank): both ranks drive the same quarter
    #: of the channel pins for a given sub-rank index, so sub-rank
    #: transfers from different ranks but the same sub-rank serialize,
    #: while transfers on different pin groups overlap; a full-width
    #: transfer must wait for every sub-bus and vice versa.
    subbus_free: Dict[int, int] = field(default_factory=dict)
    #: last burst per pin group, for per-group tRTR/tRTW bubbles
    subbus_last: Dict[int, _LastBurst] = field(default_factory=dict)
    #: optional data-burst observer, called as
    #: ``(now, cmd, rank, subrank, data_start, data_end)`` on every CAS
    #: (protocol checker hook); keep None for full-speed runs
    observer: Optional[Callable] = None
    # Statistics.  Bus occupancy is integrated in *sub-bus* units so that
    # concurrent sub-rank transfers cannot sum past the physical pin
    # count: a full-width burst books ``subranks * tBL`` units, a
    # sub-rank burst ``tBL`` (its pin fraction times the full duration).
    data_busy_subbus_cycles: int = 0
    commands_issued: int = 0
    #: invalidation epoch for the controller's readiness index: bumped
    #: whenever data-bus occupancy state changes (data_free, subbus_free,
    #: last-burst bookkeeping), i.e. on every CAS.  New rules that write
    #: that state elsewhere must bump this too.
    data_version: int = 0

    def __post_init__(self) -> None:
        if not self.ranks:
            self.ranks = [
                RankState(self.timing, self.geometry, salp=self.salp)
                for _ in range(self.geometry.ranks)
            ]

    @property
    def data_busy_cycles(self) -> float:
        """Full-bus-equivalent busy cycles.  A sub-rank transfer counts at
        its pin fraction, so the total never exceeds elapsed cycles."""
        return self.data_busy_subbus_cycles / self.geometry.subranks

    def _gap_after(self, last: _LastBurst, rank: int,
                   req_type: RequestType) -> int:
        """Bubble between a previous burst and one from (rank, req_type)."""
        if last is None:
            return 0
        t = self.timing
        gap = 0
        if last[0] != rank:
            gap = max(gap, t.tRTR)
        if last[1] != req_type:
            gap = max(gap, t.tRTW)
        return gap

    def earliest_cas_for_bus(
        self, cmd: Command, rank: int, req_type: RequestType,
        subrank: Optional[int] = None,
    ) -> int:
        """Earliest CAS issue time such that its data burst fits the bus.

        A read's data occupies ``[t+CL, t+CL+tBL)``; a write's
        ``[t+CWL, t+CWL+tBL)``.  Bubbles: tRTR when the burst comes from a
        different rank than the previous one *on the same pins*, tRTW when
        those pins turn from reads to writes or back.  Sub-rank transfers
        only conflict with their own pin group (and any full-width
        transfer in flight).
        """
        t = self.timing
        latency = t.CL if cmd is Command.RD else t.CWL
        candidates = [(self.data_free, self.last_full)]
        if subrank is None:
            for group, end in self.subbus_free.items():
                candidates.append((end, self.subbus_last.get(group)))
        else:
            candidates.append((
                self.subbus_free.get(subrank, 0),
                self.subbus_last.get(subrank),
            ))
        earliest_data = max(
            end + self._gap_after(last, rank, req_type)
            for end, last in candidates
        )
        return max(0, earliest_data - latency)

    def issue_cas(self, now: int, cmd: Command, rank: int,
                  req_type: RequestType,
                  subrank: Optional[int] = None) -> int:
        """Record a CAS issue; returns the cycle its data transfer ends."""
        t = self.timing
        latency = t.CL if cmd is Command.RD else t.CWL
        data_start = now + latency
        data_end = data_start + t.tBL
        self.data_version += 1
        if subrank is None:
            self.data_free = data_end
            self.last_full = (rank, req_type)
            self.data_busy_subbus_cycles += t.tBL * self.geometry.subranks
        else:
            self.subbus_free[subrank] = data_end
            self.subbus_last[subrank] = (rank, req_type)
            # fractional width, full duration: one sub-bus worth of pins
            self.data_busy_subbus_cycles += t.tBL
        if self.observer is not None:
            self.observer(now, cmd, rank, subrank, data_start, data_end)
        return data_end

    def occupy_command_bus(self, now: int) -> None:
        self.next_command = now + 1
        self.commands_issued += 1
