"""Cycle-level and functional models of the DDR4/RRAM memory substrate.

Timing path: :class:`~repro.dram.controller.MemoryController` schedules
:class:`~repro.dram.commands.Request` objects against the bank/rank/channel
state machines under FR-FCFS + open-page (Table 2 of the paper).

Functional path: :class:`~repro.dram.datapath.RankDatapath` moves real bits
through the common-die I/O buffers of :mod:`repro.dram.iobuffer` to verify
SAM's gather semantics.
"""

from .address import AddressMapper, DecodedAddress
from .commands import Command, IOMode, Request, RequestType, RowKind
from .controller import CommandStats, ControllerConfig, MemoryController
from .datapath import RankDatapath
from .geometry import DEFAULT_GEOMETRY, Geometry
from .iobuffer import IOModeRegister
from .timing import DDR4_2400, RRAM, TimingParams, preset

__all__ = [
    "AddressMapper",
    "DecodedAddress",
    "Command",
    "IOMode",
    "Request",
    "RequestType",
    "RowKind",
    "CommandStats",
    "ControllerConfig",
    "MemoryController",
    "RankDatapath",
    "DEFAULT_GEOMETRY",
    "Geometry",
    "IOModeRegister",
    "DDR4_2400",
    "RRAM",
    "TimingParams",
    "preset",
]
