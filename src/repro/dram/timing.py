"""Device timing parameter sets.

All values are in memory-controller clock cycles (tCK).  The DDR4-2400
numbers follow Table 2 of the paper (CL-nRCD-nRP = 17-17-17,
nRTR-nCCDS-nCCDL = 2-4-6) filled out with standard JEDEC DDR4-2400 values
for the parameters the table omits.  The RRAM set models the paper's
crossbar substrate (CL-nRCD-nRP = 17-35-1) with the long-write behaviour of
resistive memory taken from the NVMain/ISCA'09 PCM-style models the paper
cites.

The mode-switch delay of SAM (``tMOD_IO``) equals the rank-to-rank delay
(tRTR = 2 CK) per Section 5.3 of the paper.

Subarray-level parallelism (SALP, Kim et al. ISCA'12) adds two
parameters.  ``tRA`` paces back-to-back ACTs to *different subarrays of
the same bank* (the global row-address latch and wordline drivers are
shared, so the second ACT must wait a short re-arm delay instead of the
full tRP precharge of the first subarray).  ``tSA_SEL`` is the
subarray-select delay of MASA: re-designating which activated subarray
drives the shared global bitlines costs one control-register write
before the next column command.  Both default to values in the tRRD/tRTR
class so every preset is SALP-capable without redefining it; they are
ignored entirely in the degenerate single-subarray configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TimingParams:
    """Timing constraints for one memory technology, in clock cycles."""

    name: str
    tck_ns: float  # clock period in nanoseconds
    # Row commands
    tRCD: int  # ACT -> column command
    tRP: int  # PRE -> ACT
    tRAS: int  # ACT -> PRE
    tRRD_S: int  # ACT -> ACT, different bank group
    tRRD_L: int  # ACT -> ACT, same bank group
    tFAW: int  # four-activate window
    # Column commands
    CL: int  # read latency
    CWL: int  # write latency
    tBL: int  # burst occupancy on the data bus (8 beats = 4 clocks)
    tCCD_S: int  # CAS -> CAS, different bank group
    tCCD_L: int  # CAS -> CAS, same bank group
    tRTP: int  # read -> precharge
    tWR: int  # write recovery (end of write data -> precharge)
    tWTR: int  # write -> read turnaround, same rank
    tRTW: int  # read -> write turnaround bubble on the data bus
    tRTR: int  # rank-to-rank data bus switch
    # Maintenance
    tREFI: int  # refresh interval
    tRFC: int  # refresh cycle time
    # SAM extension: I/O mode (stride mode) switch delay, == tRTR per paper
    tMOD_IO: int
    # SALP extension (fields must stay last: every earlier field is
    # default-less and positional call sites exist)
    tRA: int = 4  # ACT -> ACT, same bank, different subarray
    tSA_SEL: int = 2  # MASA subarray re-designation -> column command

    def ns(self, cycles: int) -> float:
        """Convert a cycle count to nanoseconds."""
        return cycles * self.tck_ns

    def scaled(self, name: str, factor: float) -> "TimingParams":
        """Return a copy with array-latency parameters scaled by ``factor``.

        Used to model area-overhead-induced latency growth (Section 6.1:
        "latency parameters, such as tRCD, tAL, etc, are increased
        proportionally to the area overhead").  Bus-related parameters are
        left untouched because the I/O interface is unchanged.
        """
        def s(v: int) -> int:
            return max(1, round(v * factor))

        return replace(
            self,
            name=name,
            tRCD=s(self.tRCD),
            tRP=s(self.tRP),
            tRAS=s(self.tRAS),
        )


#: DDR4-2400 per Table 2 (1200 MHz clock, tCK = 0.833 ns).
DDR4_2400 = TimingParams(
    name="DDR4-2400",
    tck_ns=0.833,
    tRCD=17,
    tRP=17,
    tRAS=39,
    tRRD_S=4,
    tRRD_L=6,
    tFAW=26,
    CL=17,
    CWL=12,
    tBL=4,
    tCCD_S=4,
    tCCD_L=6,
    tRTP=9,
    tWR=18,
    tWTR=9,
    tRTW=3,
    tRTR=2,
    tREFI=9360,  # 7.8 us
    tRFC=420,  # 350 ns for an 8Gb device
    tMOD_IO=2,
    tRA=4,  # shared row-logic re-arm, tRRD_S class
    tSA_SEL=2,  # designation switch, tRTR class
)

#: RRAM substrate per Table 2 (CL-nRCD-nRP: 17-35-1) on the same DDR4-2400
#: interface.  Reads are slower to activate (tRCD 35); precharge is nearly
#: free (no destructive read, tRP 1); writes are long (SET/RESET pulses),
#: modelled with a large write-recovery time; there is no refresh.
RRAM = TimingParams(
    name="RRAM",
    tck_ns=0.833,
    tRCD=35,
    tRP=1,
    tRAS=36,
    tRRD_S=4,
    tRRD_L=6,
    tFAW=26,
    CL=17,
    CWL=12,
    tBL=4,
    tCCD_S=4,
    tCCD_L=6,
    tRTP=9,
    tWR=120,  # ~100 ns SET/RESET pulse
    tWTR=24,
    tRTW=3,
    tRTR=2,
    tREFI=0,  # non-volatile: no refresh
    tRFC=0,
    tMOD_IO=2,
    tRA=4,
    tSA_SEL=2,
)

PRESETS = {p.name: p for p in (DDR4_2400, RRAM)}


def preset(name: str) -> TimingParams:
    """Look up a timing preset by name (``DDR4-2400`` or ``RRAM``)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown timing preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
