"""Discrete-event simulation kernel.

Everything in the reproduction that models time (memory controller, CPU
cores, refresh engine) is driven by one :class:`Kernel`: a priority queue of
``(time, sequence, callback)`` events.  Time is measured in integer memory
controller clock cycles (tCK of the configured device).

The kernel is deliberately minimal -- no processes or coroutines -- because
the component state machines schedule their own wake-ups.  This keeps the
hot loop cheap, which matters for a pure-Python cycle-level simulator.

Scheduling returns a token that :meth:`Kernel.cancel` invalidates lazily
(the heap entry stays in place, its callback slot is cleared, and the pop
path skips it), :meth:`Kernel.reschedule` retimes a pending event while
preserving its same-timestamp FIFO position, and :meth:`Kernel.peek`
reports the next live deadline.  Same-timestamp events run in scheduling
order (FIFO by sequence number); the memory controller's event-wheel
equivalence guarantee leans on that ordering being stable, so it is part
of the kernel's contract, not an implementation detail.

:attr:`Kernel.events` counts executed callbacks (cancelled events never
count); together with the final ``now`` it yields the events-per-simulated-
cycle gauge the bench harness ratchets.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


#: A scheduled-event token: ``[when, seq, tie, callback]``.  ``cancel``
#: clears the callback slot in place.  ``seq`` orders same-timestamp
#: events FIFO; ``tie`` is a unique push counter so heap comparisons
#: always resolve on ints and never reach the callback (a rescheduled
#: event shares its ``seq`` with the dead entry it replaced).
Event = List[object]

#: index of the callback slot in an :data:`Event` entry
_CB = 3


class Kernel:
    """A discrete-event scheduler with integer timestamps."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Event] = []
        self._seq: int = 0
        self._pushes: int = 0
        #: callbacks executed so far (cancelled events are not executed)
        self.events: int = 0
        #: cancellations performed (observability; no behavioral role)
        self.cancelled: int = 0
        self._live: int = 0
        #: sequence number of the event currently executing.  Together
        #: with ``now`` this is a total order over scheduling instants:
        #: components snapshot ``(now, instant())`` to reconstruct, after
        #: the fact, whether one wake-up would have preceded another in
        #: the polling schedule (the event-wheel equivalence machinery).
        self.current_seq: int = -1

    def instant(self) -> int:
        """A monotone scheduling instant: the sequence number the next
        scheduled event would receive.  Snapshots taken at two different
        points in the run compare in program order."""
        return self._seq

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        Returns a token accepted by :meth:`cancel`."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, when: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run at absolute time ``when``.

        Returns a token accepted by :meth:`cancel`."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self.now}"
            )
        entry: Event = [when, self._seq, self._pushes, callback]
        heapq.heappush(self._queue, entry)
        self._seq += 1
        self._pushes += 1
        self._live += 1
        return entry

    def reschedule(self, token: Event, when: int) -> Event:
        """Move a pending event to a new time, preserving its sequence
        number: the moved event keeps the same-timestamp FIFO position of
        its *original* scheduling instant, so retiming an event never
        reorders it against same-timestamp peers scheduled later.
        Returns the new token; the old token is dead."""
        if token[_CB] is None:
            raise SimulationError("cannot reschedule a cancelled or run event")
        if when < self.now:
            raise SimulationError(
                f"cannot reschedule to {when}, current time is {self.now}"
            )
        entry: Event = [when, token[1], self._pushes, token[_CB]]
        token[_CB] = None
        self._pushes += 1
        heapq.heappush(self._queue, entry)
        return entry

    def cancel(self, token: Event) -> bool:
        """Invalidate a scheduled event.  Returns False when the event
        already ran or was already cancelled.  Lazy: the heap entry stays
        queued and is skipped (and dropped) when it surfaces."""
        if token[_CB] is None:
            return False
        token[_CB] = None
        self._live -= 1
        self.cancelled += 1
        return True

    def peek(self) -> Optional[int]:
        """Timestamp of the next live event, or None when none is queued.
        Cancelled entries surfacing at the head are dropped as a side
        effect, so repeated peeks stay cheap."""
        queue = self._queue
        while queue and queue[0][_CB] is None:
            heapq.heappop(queue)
        return queue[0][0] if queue else None  # type: ignore[return-value]

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def step(self) -> bool:
        """Run the next live event.  Returns False when none is queued."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            when, seq, _tie, callback = entry
            if callback is None:
                continue
            # mark the token consumed so a late cancel() of an event that
            # already ran is a reported no-op, not a live-count corruption
            entry[_CB] = None
            self.now = when
            self.current_seq = seq
            self._live -= 1
            self.events += 1
            callback()
            return True
        return False

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains (or limits hit).

        Returns the number of events executed.  ``until`` stops the run once
        the next live event lies beyond that time (the event is left
        queued); ``max_events`` guards against runaway simulations.
        """
        executed = 0
        while True:
            head = self.peek()
            if head is None:
                break
            if until is not None and head > until:
                break
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events at t={self.now}"
                )
            self.step()
            executed += 1
        return executed
