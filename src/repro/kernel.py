"""Discrete-event simulation kernel.

Everything in the reproduction that models time (memory controller, CPU
cores, refresh engine) is driven by one :class:`Kernel`: a priority queue of
``(time, sequence, callback)`` events.  Time is measured in integer memory
controller clock cycles (tCK of the configured device).

The kernel is deliberately minimal -- no processes or coroutines -- because
the component state machines schedule their own wake-ups.  This keeps the
hot loop cheap, which matters for a pure-Python cycle-level simulator.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Kernel:
    """A discrete-event scheduler with integer timestamps."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq: int = 0

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, when: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self.now}"
            )
        heapq.heappush(self._queue, (when, self._seq, callback))
        self._seq += 1

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _, callback = heapq.heappop(self._queue)
        self.now = when
        callback()
        return True

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains (or limits hit).

        Returns the number of events executed.  ``until`` stops the run once
        the next event lies beyond that time (the event is left queued);
        ``max_events`` guards against runaway simulations.
        """
        executed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events at t={self.now}"
                )
            self.step()
            executed += 1
        return executed
