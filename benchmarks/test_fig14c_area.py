"""Figure 14(c): area and storage overhead of every design.

Paper values (Section 6.1): SAM-sub ~7.2%, SAM-IO <0.01%, SAM-en ~0.7%
silicon; RC-NVM-bit ~15% and RC-NVM-wd ~33% plus two extra metal layers;
GS-DRAM-ecc 12.5% storage; software two-copy 100% storage.
"""

import pytest

from conftest import emit
from repro.harness.figure14 import render_figure14c, run_figure14c


def test_fig14c_area_overhead(benchmark):
    designs = benchmark.pedantic(run_figure14c, rounds=1, iterations=1)
    emit("Figure 14(c): area / storage overhead", render_figure14c())

    assert designs["SAM-sub"].silicon_fraction == pytest.approx(
        0.072, abs=0.002
    )
    assert designs["SAM-IO"].silicon_fraction < 0.0001
    assert designs["SAM-en"].silicon_fraction == pytest.approx(
        0.007, abs=0.001
    )
    assert designs["RC-NVM-bit"].silicon_fraction == pytest.approx(
        0.15, abs=0.01
    )
    assert designs["RC-NVM-wd"].silicon_fraction == pytest.approx(
        0.33, abs=0.01
    )
    assert designs["GS-DRAM-ecc"].storage_fraction == 0.125
    assert designs["two-copy"].storage_fraction == 1.0
    for name in ("RC-NVM-bit", "RC-NVM-wd"):
        assert designs[name].extra_metal_layers == 2
