"""Reliability of strided accesses (Sections 3-4): SAM keeps chipkill,
GS-DRAM does not."""

import pytest

from conftest import emit
from repro.harness.reliability import render_reliability, run_reliability


def test_reliability_matrix(benchmark):
    rows = benchmark.pedantic(
        lambda: run_reliability(trials=400), rounds=1, iterations=1
    )
    emit("Reliability under injected faults (strided accesses)",
         render_reliability(trials=400))

    for design in ("baseline", "SAM-sub", "SAM-IO", "SAM-en",
                   "GS-DRAM-ecc", "RC-NVM-wd"):
        row = rows[design]
        assert row.strided_codewords_intact
        assert row.chip_fault_protection == 1.0
        assert row.dq_fault_protection == 1.0
        assert row.double_chip_protection == 1.0

    gs = rows["GS-DRAM"]
    assert not gs.strided_codewords_intact
    assert gs.chip_fault_protection == 0.0
