"""Ablations of the design decisions DESIGN.md calls out.

* mode-switch delay: the paper claims (Section 5.3) switches are rare so
  the tRTR-class penalty is negligible -- sweep tMOD_IO and verify;
* SAM-en's two options (Section 4.3): energy contribution of fine-grained
  activation, layout contribution of the 2-D buffer;
* sector cache: what strided fills would cost if every gathered element
  invalidated/refetched full lines (executor batching as proxy);
* execution batching: group-at-a-time vs vectorized batches.
"""

import dataclasses

import pytest

from conftest import emit
from repro.core.sam import SAMEnScheme
from repro.dram.timing import DDR4_2400
from repro.workloads import make_tables
from repro.imdb import by_name
from repro.imdb.executor import CostModel
from repro.power.model import PowerModel
from repro.sim import run_query


def test_mode_switch_delay_negligible(benchmark, bench_sizes):
    """Sweep the I/O-mode switch penalty: 0 to 4x nominal tRTR."""
    n_ta, n_tb = bench_sizes
    query = by_name()["Q3"]

    def run():
        cycles = {}
        for tmod in (0, 2, 4, 8):
            scheme = SAMEnScheme()
            timing = dataclasses.replace(
                DDR4_2400, name=f"tMOD={tmod}", tMOD_IO=tmod
            )
            scheme.base_timing = lambda t=timing: t  # type: ignore
            tables = make_tables(n_ta, n_tb)
            cycles[tmod] = run_query(scheme, query, tables).cycles
        return cycles

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: I/O mode-switch delay (Q3 on SAM-en)",
        "\n".join(
            f"  tMOD_IO={t:2d} CK -> {c} cycles "
            f"(+{(c / cycles[0] - 1) * 100:.2f}%)"
            for t, c in cycles.items()
        ),
    )
    # Section 5.3: "the mode switch does not happen frequently, incurring
    # negligible performance overhead" -- the nominal tRTR-class delay
    # costs well under 1%, and even 4x the nominal delay stays small
    assert cycles[2] < 1.01 * cycles[0]
    assert cycles[8] < 1.05 * cycles[0]


def test_sam_en_option1_energy(benchmark, bench_sizes):
    """Option 1 (fine-grained activation) is where the energy saving is."""
    n_ta, n_tb = bench_sizes
    query = by_name()["Q5"]

    def run():
        out = {}
        for fga in (True, False):
            scheme = SAMEnScheme(fine_grained_activation=fga)
            tables = make_tables(n_ta, n_tb)
            result = run_query(scheme, query, tables)
            out[fga] = result.power.total_nj
        return out

    energy = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: SAM-en Option 1 (fine-grained activation), Q5 energy",
        f"  with option 1    : {energy[True] / 1e3:8.1f} uJ\n"
        f"  without option 1 : {energy[False] / 1e3:8.1f} uJ",
    )
    assert energy[True] < 0.85 * energy[False]


def test_sam_en_option2_layout(benchmark):
    """Option 2 (2-D buffer) restores critical-word-first -- a trait, and
    functionally the default storage layout (verified bit-level in the
    datapath tests)."""
    def run():
        return (
            SAMEnScheme(two_d_buffer=True).traits.critical_word_first,
            SAMEnScheme(two_d_buffer=False).traits.critical_word_first,
        )

    with_opt, without_opt = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: SAM-en Option 2 (2-D buffer)",
        f"  critical-word-first with option 2: {with_opt}\n"
        f"  critical-word-first without     : {without_opt}",
    )
    assert with_opt and not without_opt


def test_execution_batching(benchmark, bench_sizes):
    """Group-at-a-time vs vectorized batches: RC-NVM-wd likes large
    batches (field-switch amortization), SAM-en prefers group-at-a-time
    (row-buffer hits between predicate and projection)."""
    n_ta, n_tb = bench_sizes
    query = by_name()["Q1"]

    def run():
        out = {}
        for design in ("SAM-en", "RC-NVM-wd"):
            for batch in (8, 512):
                tables = make_tables(n_ta, n_tb)
                cost = CostModel(batch_records=batch)
                out[(design, batch)] = run_query(
                    design, query, tables, cost=cost
                ).cycles
        return out

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: execution batch size (Q1)",
        "\n".join(
            f"  {d:10s} batch={b:4d}: {c} cycles"
            for (d, b), c in cycles.items()
        ),
    )
    # RC-NVM gains from vectorized execution, relatively more than SAM
    rc_gain = cycles[("RC-NVM-wd", 8)] / cycles[("RC-NVM-wd", 512)]
    sam_gain = cycles[("SAM-en", 8)] / cycles[("SAM-en", 512)]
    assert rc_gain > sam_gain


def test_page_policy_ablation(benchmark, bench_sizes):
    """Open page (Table 2) vs closed page: streaming scans rely on row
    hits, so closed page costs activation churn."""
    import dataclasses as dc

    from repro.dram.controller import ControllerConfig
    from repro.sim import SystemConfig
    from repro.sim.runner import run_query as rq

    n_ta, n_tb = bench_sizes
    query = by_name()["Qs1"]

    def run():
        out = {}
        for policy in ("open", "closed"):
            config = SystemConfig(
                controller=ControllerConfig(page_policy=policy)
            )
            tables = make_tables(n_ta, n_tb)
            out[policy] = rq("baseline", query, tables,
                             config=config).cycles
        return out

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: row-buffer policy (Qs1 record scan, baseline DRAM)",
        f"  open page   : {cycles['open']} cycles\n"
        f"  closed page : {cycles['closed']} cycles "
        f"(+{(cycles['closed'] / cycles['open'] - 1) * 100:.0f}%)",
    )
    assert cycles["open"] < cycles["closed"]


def test_critical_word_first_small(benchmark, bench_sizes):
    """Losing critical-word-first (SAM-IO's transposed layout) costs
    under ~2% on row-friendly queries -- the paper cites <1% from [53]."""
    from repro.core.sam import SAMIOScheme

    n_ta, n_tb = bench_sizes
    query = by_name()["Qs3"]

    def run():
        tables = make_tables(n_ta, n_tb)
        io = run_query("SAM-IO", query, tables).cycles  # no CWF
        tables = make_tables(n_ta, n_tb)
        en = run_query("SAM-en", query, tables).cycles  # CWF
        return io, en

    io, en = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: critical-word-first (Qs3)",
        f"  SAM-en (CWF)    : {en} cycles\n"
        f"  SAM-IO (no CWF) : {io} cycles "
        f"(+{(io / en - 1) * 100:.2f}%)",
    )
    assert io <= 1.03 * en
