"""The introduction's sub-rank argument, quantified.

Section 1: granularity-reducing designs (AGMS, DGMS, subchannel, FGDRAM)
"speed up random accesses from different sub-ranks but are ineffective
for strided memory accesses whose data tend to reside in the same
sub-rank".  This bench runs both access patterns on a 4-sub-rank memory
and on SAM-en.
"""

import random

import pytest

from conftest import emit
from repro.core import make_scheme
from repro.cpu.core import Core
from repro.cpu.ops import Load
from repro.workloads import make_tables
from repro.imdb import by_name
from repro.kernel import Kernel
from repro.sim import MemorySystem, SystemConfig, run_query


def _run_loads(scheme_name: str, addrs) -> int:
    kernel = Kernel()
    system = MemorySystem(kernel, make_scheme(scheme_name), SystemConfig())
    cores = [Core(kernel, c, system) for c in range(4)]
    chunk = len(addrs) // 4
    for c, core in enumerate(cores):
        core.run([Load(a, 8) for a in addrs[c * chunk : (c + 1) * chunk]])
    kernel.run(max_events=50_000_000)
    assert all(core.finished for core in cores)
    return kernel.now


def test_subrank_random_vs_strided(benchmark, bench_sizes):
    n_ta, n_tb = bench_sizes
    rng = random.Random(11)
    # random sub-line reads inside a hot 512KB region: row hits dominate,
    # the bus is the bottleneck -- fine granularity's home turf
    random_addrs = [rng.randrange(512 * 1024) & ~7 for _ in range(2048)]
    # strided field scan: one 8B field per 1KB record
    strided_addrs = [80 + 1024 * r for r in range(2048)]

    def run():
        return {
            ("baseline", "random"): _run_loads("baseline", random_addrs),
            ("sub-rank", "random"): _run_loads("sub-rank", random_addrs),
            ("baseline", "strided"): _run_loads("baseline", strided_addrs),
            ("sub-rank", "strided"): _run_loads("sub-rank", strided_addrs),
        }

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    rand_speed = (
        cycles[("baseline", "random")] / cycles[("sub-rank", "random")]
    )
    strided_speed = (
        cycles[("baseline", "strided")] / cycles[("sub-rank", "strided")]
    )
    emit(
        "Intro claim: sub-ranked (AGMS/DGMS-class) memory",
        f"random sub-line reads : sub-rank speedup {rand_speed:5.2f}x\n"
        f"strided field scan    : sub-rank speedup {strided_speed:5.2f}x",
    )
    # random accesses benefit clearly more than strided ones
    assert rand_speed > 1.3
    assert strided_speed < 0.85 * rand_speed

    # and the strided case is where SAM actually helps
    tables = make_tables(n_ta, n_tb)
    base = run_query("baseline", by_name()["Q3"], tables)
    tables = make_tables(n_ta, n_tb)
    sub = run_query("sub-rank", by_name()["Q3"], tables)
    tables = make_tables(n_ta, n_tb)
    sam = run_query("SAM-en", by_name()["Q3"], tables)
    emit(
        "Strided query Q3",
        f"sub-rank speedup {base.cycles / sub.cycles:5.2f}x vs "
        f"SAM-en {base.cycles / sam.cycles:5.2f}x",
    )
    assert base.cycles / sam.cycles > 1.8 * (base.cycles / sub.cycles)
