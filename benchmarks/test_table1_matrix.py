"""Table 1: the qualitative comparison of designs for strided access."""

import pytest

from conftest import emit
from repro.core.compare import COLUMNS, comparison_matrix, render_table


#: Table 1 as printed in the paper (v good, o fair, x poor).
PAPER_TABLE1 = {
    "Memory Controller":    dict(zip(COLUMNS, "vvxvvv")),
    "Command Interface":    dict(zip(COLUMNS, "vvxvvv")),
    "Critical-Word-First":  dict(zip(COLUMNS, "vvxvxv")),
    "Performance":          dict(zip(COLUMNS, "xxvovv")),
    "Power Consumption":    dict(zip(COLUMNS, "oovvov")),
    "Area Overhead":        dict(zip(COLUMNS, "xxvovv")),
    "Reliability":          dict(zip(COLUMNS, "vvxvvv")),
    "Mode Switch Delay":    dict(zip(COLUMNS, "oovooo")),
}


def test_table1_matches_paper(benchmark):
    matrix = benchmark.pedantic(comparison_matrix, rounds=1, iterations=1)
    emit("Table 1: comparison of designs for strided access",
         render_table())
    mismatches = []
    for row, expected in PAPER_TABLE1.items():
        for design, symbol in expected.items():
            got = matrix[design][row]
            if got != symbol:
                mismatches.append((row, design, symbol, got))
    assert not mismatches, f"cells differing from the paper: {mismatches}"
