"""Figure 12: speedup of every design on Q1-Q12 and Qs1-Qs6.

Regenerates the paper's main result.  Paper values (geomean): SAM-sub
3.8x on Q queries with -30% on Qs; SAM-IO 4.1x / ~0%; SAM-en 4.2x / ~0%;
GS-DRAM-ecc 2.7x / -41%; RC-NVM-bit 2.6x / -58%; RC-NVM-wd 3.4x / -46%.
"""

import pytest

from conftest import emit
from repro.harness.figure12 import run_figure12


@pytest.fixture(scope="module")
def figure12(bench_sizes):
    n_ta, n_tb = bench_sizes
    return run_figure12(n_ta=n_ta, n_tb=n_tb)


def test_fig12_full_sweep(benchmark, bench_sizes):
    n_ta, n_tb = bench_sizes
    result = benchmark.pedantic(
        lambda: run_figure12(n_ta=n_ta, n_tb=n_tb),
        rounds=1,
        iterations=1,
    )
    emit("Figure 12: speedup normalized to row-store baseline",
         result.render())

    # --- shape assertions (who wins, in which direction) ---
    # SAM accelerates Q queries substantially
    assert result.q_gmean("SAM-IO") > 3.0
    assert result.q_gmean("SAM-en") > 3.0
    assert result.q_gmean("SAM-sub") > 3.0
    # ... without hurting Qs queries (the paper's headline)
    assert result.qs_gmean("SAM-IO") > 0.97
    assert result.qs_gmean("SAM-en") > 0.97
    # SAM-sub pays on Qs; RC-NVM pays more
    assert result.qs_gmean("SAM-sub") < 0.9
    assert result.qs_gmean("RC-NVM-wd") < result.qs_gmean("SAM-sub")
    # GS-DRAM-ecc clearly trails SAM on Q queries (the ECC tax)
    assert result.q_gmean("GS-DRAM-ecc") < 0.75 * result.q_gmean("SAM-en")
    # RC-NVM on its native substrate trails SAM designs
    assert result.q_gmean("RC-NVM-wd") < result.q_gmean("SAM-en")
    assert result.q_gmean("RC-NVM-bit") < result.q_gmean("RC-NVM-wd")
