"""Figure 14(b): strided granularity sweep (16 / 8 / 4 bits per chip).

Paper: finer granularity improves bandwidth utilization and performance;
SAM-en outperforms RC-NVM-wd and GS-DRAM-ecc at every granularity.
"""

import pytest

from conftest import emit
from repro.harness.figure14 import run_figure14b

QUERIES = ("Q1", "Q3", "Q4", "Q5")


def test_fig14b_granularity(benchmark, bench_sizes):
    n_ta, n_tb = bench_sizes
    result = benchmark.pedantic(
        lambda: run_figure14b(
            n_ta=max(64, n_ta // 2),
            n_tb=max(128, n_tb // 2),
            queries=QUERIES,
        ),
        rounds=1,
        iterations=1,
    )
    emit("Figure 14(b): Q-query gmean speedup by strided granularity",
         result.render())

    for design in ("SAM-en",):
        assert (
            result.speedups[4][design]
            > result.speedups[8][design]
            > result.speedups[16][design]
        )
    # SAM-en on top at every granularity
    for bits in (16, 8, 4):
        per = result.speedups[bits]
        assert per["SAM-en"] >= per["RC-NVM-wd"]
        assert per["SAM-en"] >= per["GS-DRAM-ecc"]
