"""Shared benchmark configuration.

Table sizes are scaled down from the paper's 10M records (the workloads
are stationary scans; EXPERIMENTS.md documents the size-sensitivity
check).  Override via environment variables for longer, higher-fidelity
runs:

    REPRO_BENCH_TA=4096 REPRO_BENCH_TB=8192 pytest benchmarks/ --benchmark-only
"""

import os

import pytest

TA_RECORDS = int(os.environ.get("REPRO_BENCH_TA", "512"))
TB_RECORDS = int(os.environ.get("REPRO_BENCH_TB", "1024"))


@pytest.fixture(scope="session")
def bench_sizes():
    return TA_RECORDS, TB_RECORDS


def emit(title: str, body: str) -> None:
    """Print a labelled result block (visible with pytest -s or in the
    captured section of the benchmark output)."""
    bar = "=" * max(8, len(title))
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
