"""Figure 13: power and energy efficiency by query class.

Paper values: SAM-IO read power ~1.8x baseline with energy efficiency
2.4x (reads) / 2.9x (writes); all DRAM designs match the baseline on Qs
queries; NVM shows better read efficiency but worse writes.
"""

import pytest

from conftest import emit
from repro.harness.figure13 import run_figure13

DESIGNS = (
    "baseline", "SAM-sub", "SAM-IO", "SAM-en",
    "GS-DRAM-ecc", "RC-NVM-wd",
)


def test_fig13_power_and_efficiency(benchmark, bench_sizes):
    n_ta, n_tb = bench_sizes
    result = benchmark.pedantic(
        lambda: run_figure13(
            n_ta=max(64, n_ta // 2), n_tb=max(128, n_tb // 2),
            designs=DESIGNS,
        ),
        rounds=1,
        iterations=1,
    )
    emit("Figure 13: power (mW) and energy efficiency vs baseline",
         result.render())

    reads = "Read(Q1-Q10)"
    writes = "Write(Q11,Q12)"
    qs_writes = "Write(Qs5,Qs6)"
    power = result.power_mw
    eff = result.efficiency

    # SAM-IO raises power (x16-class internal movement) ...
    assert power[reads]["SAM-IO"]["total"] > 1.4 * power[reads][
        "baseline"
    ]["total"]
    # ... but still wins on energy (finishes much earlier)
    assert eff[reads]["SAM-IO"] > 1.5
    assert eff[writes]["SAM-IO"] > 1.5
    # SAM-en strictly better than SAM-IO (fine-grained activation)
    assert eff[reads]["SAM-en"] > eff[reads]["SAM-IO"]
    assert power[reads]["SAM-en"]["total"] < power[reads]["SAM-IO"]["total"]
    # NVM: low background, better read efficiency, worse on writes
    assert power[reads]["RC-NVM-wd"]["background"] < 0.1 * power[reads][
        "baseline"
    ]["background"]
    assert eff[qs_writes]["RC-NVM-wd"] < 1.0
    # Qs queries: DRAM designs with the row-store layout match baseline
    assert eff["Read(Qs1-Qs4)"]["SAM-IO"] == pytest.approx(1.0, abs=0.05)
