"""Microbenchmarks of the substrate primitives (pytest-benchmark proper:
repeated timed rounds, since these are fast and deterministic)."""

import random

import pytest

from repro.dram import (
    AddressMapper,
    DDR4_2400,
    MemoryController,
    Request,
    RequestType,
)
from repro.dram.datapath import RankDatapath
from repro.ecc.chipkill import SSCCodec
from repro.ecc.rs import ReedSolomon
from repro.kernel import Kernel

rng = random.Random(0)


def test_bench_controller_read_stream(benchmark):
    """Simulator throughput: 512 bank-interleaved reads."""
    am = AddressMapper()

    def run():
        kernel = Kernel()
        mc = MemoryController(kernel, DDR4_2400)
        pending = [
            Request(addr=am.decode((i % 64) * 8192 + (i // 64) * 64),
                    type=RequestType.READ)
            for i in range(512)
        ]

        def feed():
            while pending and mc.can_accept(pending[0]):
                mc.submit(pending.pop(0))
            if pending:
                kernel.schedule(32, feed)

        kernel.schedule_at(0, feed)
        kernel.run()
        return kernel.now

    cycles = benchmark(run)
    assert cycles > 0


def test_bench_rs_decode_chip_fault(benchmark):
    codec = SSCCodec()
    data = bytes(rng.randrange(256) for _ in range(16))
    parity = codec.encode(data)
    bad = bytearray(data)
    bad[5] ^= 0xFF
    bad = bytes(bad)

    report = benchmark(lambda: codec.decode(bad, parity))
    assert report.data == data


def test_bench_rs_encode(benchmark):
    rs = ReedSolomon(18, 16, 8)
    data = [rng.randrange(256) for _ in range(16)]
    cw = benchmark(lambda: rs.encode(data))
    assert len(cw) == 18


def test_bench_gather_datapath(benchmark):
    dp = RankDatapath(layout="default")
    for c in range(4):
        dp.write_line(0, 0, c,
                      bytes(rng.randrange(256) for _ in range(64)))

    sectors = benchmark(lambda: dp.gather_sectors(0, 0, [0, 1, 2, 3], 1))
    assert len(sectors) == 4


def test_bench_address_decode(benchmark):
    mapper = AddressMapper()
    addrs = [rng.randrange(1 << 34) for _ in range(1000)]

    def run():
        return [mapper.decode(a) for a in addrs]

    decoded = benchmark(run)
    assert len(decoded) == 1000
