"""Figure 14(a): RC-NVM and SAM on each other's memory technology.

Paper: RC-NVM-wd and SAM-sub perform nearly the same on the same
substrate, but RC-NVM always falls behind SAM-IO / SAM-en regardless of
technology.
"""

import pytest

from conftest import emit
from repro.harness.figure14 import run_figure14a

QUERIES = ("Q1", "Q3", "Q4", "Q11", "Qs1", "Qs3")


def test_fig14a_substrate_swap(benchmark, bench_sizes):
    n_ta, n_tb = bench_sizes
    result = benchmark.pedantic(
        lambda: run_figure14a(
            n_ta=max(64, n_ta // 2),
            n_tb=max(128, n_tb // 2),
            designs=("RC-NVM-wd", "SAM-sub", "SAM-IO", "SAM-en"),
            queries=QUERIES,
        ),
        rounds=1,
        iterations=1,
    )
    emit("Figure 14(a): gmean speedup per substrate", result.render())

    dram, nvm = result.speedups["DRAM"], result.speedups["NVM"]
    # RC-NVM-wd and SAM-sub are close on the same substrate
    for sub in (dram, nvm):
        ratio = sub["SAM-sub"] / sub["RC-NVM-wd"]
        assert 0.6 < ratio < 1.9
    # RC-NVM trails SAM-IO/en regardless of substrate
    assert dram["SAM-IO"] > dram["RC-NVM-wd"]
    assert nvm["SAM-IO"] > nvm["RC-NVM-wd"]
    assert dram["SAM-en"] > dram["RC-NVM-wd"]
    # DRAM timing beats NVM timing for every design
    for design in dram:
        assert dram[design] > nvm[design]
