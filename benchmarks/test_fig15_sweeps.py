"""Figure 15: arithmetic/aggregate query sweeps (all nine panels).

Paper shapes:
(a)   speedup rises with selectivity at low projectivity;
(b,c) the rise flattens as more fields are projected;
(d-f) speedup falls as projectivity grows, rises with selectivity;
(g)   aggregate queries lift RC-NVM-wd close to SAM-en;
(h)   at full projectivity everyone converges toward the row store;
(i)   only RC-NVM-wd degrades as records grow (bank-conflict layout).
SAM-en stays at or near the best design in every panel.
"""

import pytest

from conftest import emit
from repro.harness.figure15 import (
    run_projectivity_sweep,
    run_record_size_sweep,
    run_selectivity_sweep,
)

N_TA = 256
SELS = (0.25, 1.0)
PROJS = (8, 64, 128)


def test_fig15_abc_selectivity(benchmark):
    def run():
        return {
            "a(8 fields)": run_selectivity_sweep(8, N_TA,
                                                 selectivities=SELS),
            "b(64 fields)": run_selectivity_sweep(64, N_TA,
                                                  selectivities=SELS),
            "c(128 fields)": run_selectivity_sweep(128, N_TA,
                                                   selectivities=SELS),
        }

    panels = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, panel in panels.items():
        emit(f"Figure 15({name[0]})", panel.render())

    # (a) low projectivity: SAM-en well above 1 at every selectivity
    a = panels["a(8 fields)"].points
    assert all(per["SAM-en"] > 1.5 for per in a.values())
    # (c) full projectivity: advantage shrinks toward the row store
    c = panels["c(128 fields)"].points
    assert max(per["SAM-en"] for per in c.values()) < max(
        per["SAM-en"] for per in a.values()
    )
    # SAM-en >= GS-DRAM-ecc everywhere
    for panel in panels.values():
        for per in panel.points.values():
            assert per["SAM-en"] >= 0.9 * per["GS-DRAM-ecc"]


def test_fig15_def_projectivity(benchmark):
    def run():
        return {
            "d(10%)": run_projectivity_sweep(0.10, N_TA,
                                             projectivities=PROJS),
            "f(100%)": run_projectivity_sweep(1.00, N_TA,
                                              projectivities=PROJS),
        }

    panels = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, panel in panels.items():
        emit(f"Figure 15({name[0]})", panel.render())

    # speedup declines as projectivity grows (the baseline's home turf)
    for panel in panels.values():
        series = [panel.points[p]["SAM-en"] for p in PROJS]
        assert series[0] > series[-1]


def test_fig15_gh_aggregate(benchmark):
    def run():
        return {
            "g": run_selectivity_sweep(8, N_TA, selectivities=SELS,
                                       aggregate=True),
            "h": run_projectivity_sweep(1.00, N_TA,
                                        projectivities=PROJS,
                                        aggregate=True),
        }

    panels = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, panel in panels.items():
        emit(f"Figure 15({name})", panel.render())

    # (g): aggregate processing relieves RC-NVM's field switching -- the
    # gap to SAM-en narrows (paper: "nearly the same")
    g = panels["g"].points
    for per in g.values():
        assert per["RC-NVM-wd"] > 0.45 * per["SAM-en"]
    assert all(per["SAM-en"] > 1.5 for per in g.values())


def test_fig15_i_record_size(benchmark):
    panel = benchmark.pedantic(
        lambda: run_record_size_sweep(
            n_bytes_total=256 * 1024, record_fields=(8, 128, 1024)
        ),
        rounds=1,
        iterations=1,
    )
    emit("Figure 15(i): record-size sweep (100%/100%)", panel.render())

    sizes = sorted(panel.points)
    # only RC-NVM-wd degrades with record size (paper's conclusion)
    rc = [panel.points[s]["RC-NVM-wd"] for s in sizes]
    sam = [panel.points[s]["SAM-en"] for s in sizes]
    assert rc[-1] < rc[0]
    assert sam[-1] > 0.75 * sam[0]
