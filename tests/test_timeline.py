"""Tests for the cycle-level timeline recorder, its Chrome trace-event
export, and the timeline's exclusion from the sweep cache identity."""

import dataclasses
import json

import pytest

from repro.exp.cache import point_digest
from repro.exp.spec import SweepPoint, standard_tables
from repro.workloads import make_tables
from repro.imdb.queries import by_name
from repro.imdb.sql import parse
from repro.obs import Observation
from repro.obs.artifacts import ArtifactWriter
from repro.obs.timeline import (
    TIMELINE_SCHEMA_VERSION,
    TimelineRecorder,
    validate_chrome_trace,
)
from repro.sim.runner import run_query


def _query(sql="SELECT SUM(f9) FROM Ta WHERE f10 > 7500"):
    return parse(sql, name="t")


@pytest.fixture(scope="module")
def timeline_run():
    obs = Observation(timeline=True)
    result = run_query("SAM-en", _query(), make_tables(256, 256),
                       observe=obs)
    return obs, result


# --------------------------------------------------------------- recording


class TestRecording:
    def test_off_by_default(self):
        obs = Observation()
        run_query("baseline", _query(), make_tables(128, 128),
                  observe=obs)
        assert obs.timeline is False
        assert obs.timeline_recorder is None

    def test_events_and_spans_recorded(self, timeline_run):
        obs, result = timeline_run
        rec = obs.timeline_recorder
        assert rec is not None
        assert rec.events, "no command events recorded"
        assert rec.row_spans, "no row-open spans recorded"
        # every command event sits inside the run
        assert all(0 <= cycle <= result.cycles
                   for cycle, *_rest in rec.events)

    def test_row_open_spans_close(self, timeline_run):
        obs, _result = timeline_run
        rec = obs.timeline_recorder
        for _rank, _bank, start, end, _kind, _row in rec.row_spans:
            assert start <= end <= rec.end_cycle
        assert not rec._open_rows, "finalize left rows open"

    def test_bank_table_row_hit_rates(self, timeline_run):
        obs, _result = timeline_run
        table = obs.timeline_recorder.bank_table()
        assert table
        for row in table:
            refs = (row["row_hits"] + row["row_misses"]
                    + row["row_conflicts"])
            if refs:
                assert row["hit_rate"] == pytest.approx(
                    row["row_hits"] / refs
                )
            assert 0.0 <= row["open_fraction"] <= 1.0

    def test_timeline_metrics_published(self, timeline_run):
        _obs, result = timeline_run
        assert result.metrics["timeline.events"] > 0
        assert result.metrics["timeline.end_cycle"] == result.cycles

    def test_digest_shape(self, timeline_run):
        obs, _result = timeline_run
        digest = obs.timeline_recorder.digest()
        assert digest["schema_version"] == TIMELINE_SCHEMA_VERSION
        assert digest["events"] > 0

    def test_report_renders(self, timeline_run):
        obs, _result = timeline_run
        text = obs.timeline_recorder.report()
        assert "timeline:" in text
        assert "bank" in text

    def test_detach_restores_observer_chain(self):
        obs = Observation(timeline=True)
        run_query("baseline", _query(), make_tables(128, 128),
                  observe=obs)
        rec = obs.timeline_recorder
        before = len(rec.events)
        rec.detach()
        assert len(rec.events) == before


# ------------------------------------------------------------ chrome trace


class TestChromeTrace:
    def test_export_passes_validator(self, timeline_run):
        obs, _result = timeline_run
        payload = obs.timeline_recorder.to_chrome_trace()
        assert validate_chrome_trace(payload) == []

    def test_events_have_required_keys(self, timeline_run):
        obs, _result = timeline_run
        payload = obs.timeline_recorder.to_chrome_trace()
        events = payload["traceEvents"]
        assert events
        for event in events:
            assert {"ph", "pid", "name"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0
        json.dumps(payload)  # fully serializable

    def test_validator_rejects_malformed(self):
        assert validate_chrome_trace(["not a dict"])
        assert validate_chrome_trace({"traceEvents": "nope"})
        bad = {"traceEvents": [{"ph": "X", "pid": 1}]}  # no name/ts/dur
        assert validate_chrome_trace(bad)

    def test_jsonl_export(self, timeline_run, tmp_path):
        obs, _result = timeline_run
        path = obs.timeline_recorder.export_jsonl(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert "cycle" in first

    def test_artifact_writer_exports_both(self, timeline_run, tmp_path):
        obs, _result = timeline_run
        writer = ArtifactWriter(tmp_path)
        writer.write_timeline(obs.timeline_recorder, "smoke")
        trace = json.loads((tmp_path / "smoke.timeline.json").read_text())
        assert validate_chrome_trace(trace) == []
        assert (tmp_path / "smoke.timeline.jsonl").exists()

    def test_run_artifacts_include_timeline(self, tmp_path):
        obs = Observation(timeline=True, artifacts_dir=tmp_path)
        run_query("SAM-en", _query(), make_tables(128, 128),
                  observe=obs)
        stems = [p.name for p in tmp_path.iterdir()]
        assert any(n.endswith(".timeline.json") for n in stems)
        assert any(n.endswith(".timeline.jsonl") for n in stems)


# --------------------------------------------------------- cache identity


class TestCacheIdentity:
    def _point(self, **kw):
        from repro.workloads import QueryWorkload

        return SweepPoint(
            key=("SAM-en", "Q3"),
            scheme="SAM-en",
            workload=QueryWorkload(query=by_name()["Q3"],
                                   tables=standard_tables(64, 64)),
            **kw,
        )

    def test_timeline_flags_do_not_change_digest(self):
        base = self._point()
        flagged = dataclasses.replace(
            base, timeline=True, timeline_dir="/tmp/somewhere"
        )
        assert point_digest(base, source="s") == \
            point_digest(flagged, source="s")

    def test_check_flag_still_forks_digest(self):
        base = self._point()
        checked = dataclasses.replace(base, check=True)
        assert point_digest(base, source="s") != \
            point_digest(checked, source="s")


# ------------------------------------------------------- direct unit paths


class TestRecorderUnit:
    def test_queue_depth_samples_on_change(self, timeline_run):
        obs, _result = timeline_run
        samples = obs.timeline_recorder.queue_samples
        assert samples
        # samples are only taken when a depth changes
        for prev, cur in zip(samples, samples[1:]):
            assert prev[1:] != cur[1:]

    def test_bus_busy_cycles_positive(self, timeline_run):
        obs, result = timeline_run
        busy = obs.timeline_recorder.bus_busy_cycles()
        assert busy
        assert all(0 < v <= result.cycles for v in busy.values())
