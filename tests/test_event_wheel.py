"""Event-wheel lockdown: exactness, wakeup efficiency, and the guard
paths the wheel's equivalence argument leans on.

The event wheel's contract is that it never changes *behavior*, only the
cost of re-deriving scheduler decisions: the controller's wake-up event
stream is identical to the polling reference by construction, so command
streams, cycle counts and stall ledgers match exactly.  The fuzzed
battery in ``test_vectorized.py`` replays controller-level traces under
both modes; this file locks down the rest -- full-system equivalence
under backpressure, the stale-wakeup guard, the writeback-poll futility
gate, and the O(commands)-not-O(cycles) event count on idle-gap
workloads.
"""

import dataclasses

import pytest

from repro.dram import AddressMapper, ControllerConfig, DDR4_2400
from repro.dram.controller import MemoryController
from repro.imdb.queries import by_name
from repro.kernel import Kernel
from repro.obs import Observation
from repro.sim import run_query
from repro.sim.config import SystemConfig
from repro.workloads import make_tables

from .test_dram_controller import read


def _config(event_wheel, **ctrl):
    return dataclasses.replace(
        SystemConfig(),
        controller=ControllerConfig(event_wheel=event_wheel, **ctrl),
    )


def _run(scheme, query_name, event_wheel, tables, **ctrl):
    obs = Observation()
    result = run_query(
        scheme, by_name()[query_name], tables,
        config=_config(event_wheel, **ctrl), observe=obs,
    )
    return result, obs


@pytest.fixture(scope="module")
def tables():
    return make_tables(256, 512)


# --------------------------------------------------- stale-wakeup guard

def test_stale_wakeup_guard_drops_superseded_event():
    """An earlier wake-up scheduled over a pending later one must not
    fork a second wake-up chain: the superseded event still fires, but
    the ``_wakeup_at`` guard drops it before it reaches the scheduler."""
    kernel = Kernel()
    mc = MemoryController(
        kernel, DDR4_2400, config=ControllerConfig(refresh_enabled=False)
    )
    scans = []
    real_try_issue = mc._try_issue
    mc._try_issue = lambda now: scans.append(now) or real_try_issue(now)

    mc._schedule_wakeup(10)
    mc._schedule_wakeup(4)  # supersedes; the event at 10 lingers
    assert mc._wakeup_at == 4
    assert kernel.pending() == 2  # superseded event NOT cancelled
    kernel.run()
    # both events fired, but only the armed one reached the scheduler
    assert kernel.events == 2
    assert scans == [4]


def test_stale_wakeup_rearm_acts_at_original_position():
    """Re-arming a time that still has a lingering superseded event must
    let that (oldest) event act -- the guard compares times, not tokens,
    so the wake-up keeps its original intra-cycle FIFO position."""
    kernel = Kernel()
    mc = MemoryController(
        kernel, DDR4_2400, config=ControllerConfig(refresh_enabled=False)
    )
    scans = []
    real_try_issue = mc._try_issue
    mc._try_issue = lambda now: scans.append(now) or real_try_issue(now)

    mc._schedule_wakeup(10)
    mc._schedule_wakeup(4)
    kernel.run(until=5)
    assert scans == [4]
    mc._schedule_wakeup(10)  # re-arm: the lingering event stands in
    assert kernel.pending() == 2  # old stale entry + the fresh one
    kernel.run()
    assert scans == [4, 10]  # acted exactly once at the re-armed time


# --------------------------------------------- full-system equivalence

_BACKPRESSURE = dict(
    read_queue_capacity=4,
    write_queue_capacity=4,
    write_high_watermark=3,
    write_low_watermark=1,
)

_CELLS = (("SAM-sub", "Qs5"), ("baseline", "Q7"), ("SAM-en", "Q3"))


@pytest.mark.parametrize("scheme,query", _CELLS)
def test_wheel_matches_polling_full_system(scheme, query, tables):
    """Full-system exactness on tiny controller queues, so core
    backpressure retries and blocked writebacks are actually exercised:
    cycles, command counts and the controller stall ledger must be
    identical in both scheduling modes."""
    wheel, wobs = _run(scheme, query, True, tables, **_BACKPRESSURE)
    poll, pobs = _run(scheme, query, False, tables, **_BACKPRESSURE)
    assert wheel.cycles == poll.cycles
    assert wheel.memory_stats == poll.memory_stats
    assert wobs.stalls.ledger.entries == pobs.stalls.ledger.entries
    assert wheel.stalls == poll.stalls
    # the tiny queues must actually bite, or this test proves nothing
    assert wheel.metrics["core.retries"] > 0
    # identical event streams is the mechanism behind the exactness
    assert wheel.metrics["kernel.events"] == poll.metrics["kernel.events"]


def test_wheel_matches_polling_default_config(tables):
    """Same exactness at the default (paper) configuration."""
    wheel, wobs = _run("SAM-en", "Qs1", True, tables)
    poll, pobs = _run("SAM-en", "Qs1", False, tables)
    assert wheel.cycles == poll.cycles
    assert wheel.memory_stats == poll.memory_stats
    assert wobs.stalls.ledger.entries == pobs.stalls.ledger.entries


# ------------------------------------------------- memoized scheduler

def test_peek_hits_only_in_wheel_mode(tables):
    """The dry-run memo must actually be exercised in wheel mode and
    never in the polling reference."""
    wheel, _ = _run("SAM-en", "Q3", True, tables)
    poll, _ = _run("SAM-en", "Q3", False, tables)
    assert wheel.metrics["dram.peek_hits"] > 0
    assert poll.metrics["dram.peek_hits"] == 0


# ------------------------------------------------- writeback futility

def test_no_writeback_polls_when_queue_never_blocks(tables):
    """Writeback polling is demand-driven in both modes: a run whose
    writebacks are always admitted immediately schedules zero polls."""
    wheel, _ = _run("SAM-en", "Q3", True, tables)
    assert wheel.metrics["sys.wb_polls"] == 0


def test_blocked_writebacks_drain_identically(tables):
    """Force writeback blocking with a tiny write queue (the update
    queries dirty cache lines, so the end-of-run flush has real
    writebacks to push): blocked drains must resolve at identical cycles
    in both modes, with identical poll event counts."""
    ctrl = dict(
        write_queue_capacity=2, write_high_watermark=2,
        write_low_watermark=1,
    )
    for query in ("Q11", "Q12"):
        wheel, wobs = _run("baseline", query, True, tables, **ctrl)
        poll, pobs = _run("baseline", query, False, tables, **ctrl)
        assert wheel.cycles == poll.cycles
        assert wheel.memory_stats == poll.memory_stats
        assert wobs.stalls.ledger.entries == pobs.stalls.ledger.entries
        assert wheel.metrics["sys.writebacks"] > 0
        assert wheel.metrics["sys.wb_polls"] > 0
        assert (
            wheel.metrics["sys.wb_polls"] == poll.metrics["sys.wb_polls"]
        )
        assert poll.metrics["sys.wb_polls_futile"] == 0


def test_writeback_futility_gate_skips_relowering():
    """While no controller issue frees a queue slot, every poll is
    provably futile: the gate must re-arm without re-lowering the
    blocked line, and resume draining the moment a slot-freed
    notification arrives."""
    from repro.core.registry import make_scheme
    from repro.sim.system import MemorySystem

    kernel = Kernel()
    system = MemorySystem(kernel, make_scheme("baseline"))
    lowered = []
    real_lower = system.scheme.lower_write
    system.scheme.lower_write = lambda line: (
        lowered.append(line) or real_lower(line)
    )
    # block admission outright: the poll chain can never succeed
    system._can_accept_all = lambda requests: False
    system._pending_writebacks.append(0)
    system._drain_writebacks()
    assert system._writeback_poll_scheduled
    assert lowered == [0]  # the initial blocked attempt lowered once
    kernel.run(until=100)
    assert system.wb_polls == system.wb_polls_futile > 3
    assert lowered == [0]  # every futile poll skipped the re-lower
    # a slot-freed notification re-arms the next poll as a real attempt
    del system._can_accept_all  # restore the class method
    system._on_slot_freed(None)
    kernel.run(until=200)
    assert not system._pending_writebacks
    assert lowered == [0, 0]  # exactly one real re-lower drained it
    assert system.wb_polls > system.wb_polls_futile


# ----------------------------------------------- wakeup efficiency

def test_idle_gap_workload_events_scale_with_commands():
    """A trace with long idle gaps between requests must execute
    O(commands) kernel events, not O(cycles): the controller sleeps to
    exact deadlines and schedules nothing at all while idle."""
    kernel = Kernel()
    mc = MemoryController(
        kernel, DDR4_2400, config=ControllerConfig(refresh_enabled=False)
    )
    mapper = AddressMapper(mc.geometry)
    done = []
    gap = 5_000
    n = 20
    for i in range(n):
        kernel.schedule_at(
            i * gap,
            lambda i=i: mc.submit(read(mapper, i * 64, done)),
        )
    kernel.run()
    assert len(done) == n
    assert kernel.now >= (n - 1) * gap
    # ~6 events per command (submit, wake-ups along the ACT/RD chain,
    # completion); the budget is generous but a per-cycle poller would
    # blow through it by three orders of magnitude
    assert kernel.events < 12 * n


def test_event_efficiency_gauges_published(tables):
    """The wakeup-efficiency gauges land in the metrics registry (and
    therefore in run manifests and ``repro bench`` payloads)."""
    result, _ = _run("SAM-en", "Qs1", True, tables)
    m = result.metrics
    assert m["kernel.events"] == m["sim.events"] > 0
    assert m["sim.events_per_cycle"] == pytest.approx(
        m["sim.events"] / result.cycles
    )
    # dense workloads sit around 1-2 events/cycle; a per-cycle poller
    # across every component would be an order of magnitude higher
    assert 0 < m["sim.events_per_cycle"] < 5
    assert m["kernel.cancelled"] == 0  # nothing cancels on this path
