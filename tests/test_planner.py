"""Tests for the query-planner IR: logical plan -> physical plan -> ops.

The plan *shapes* (operator tree + per-operator access mode) are pinned
as goldens for every registered scheme x every built-in query.  Schemes
fall into three classes: stride-capable designs, plain row stores
(baseline, sub-rank) and the plain column store.
"""

import pytest

from repro.core.registry import available_schemes, make_scheme
from repro.workloads import make_tables
from repro.imdb import by_name
from repro.imdb.plan import LogicalPlan, PhysicalPlan, logical_plan
from repro.imdb.planner import ideal_choice, plan_for
from repro.obs import Observation
from repro.sim.runner import run_ideal, run_query

STRIDED = (
    "GS-DRAM", "GS-DRAM-ecc", "RC-NVM-bit", "RC-NVM-wd",
    "SAM-IO", "SAM-en", "SAM-sub", "SAM-en+masa",
)
# the pure SALP schemes keep the stock interface and row layout: their
# plans are plain-row shapes (the salp_row_derate moves costs, not modes,
# for stride-less designs)
ROW_PLAIN = ("baseline", "sub-rank", "salp1", "salp2", "masa")
COL_PLAIN = ("column-store",)


def _class_of(scheme: str) -> str:
    if scheme in STRIDED:
        return "strided"
    return "plain-col" if scheme in COL_PLAIN else "plain-row"


def _signature(plan: PhysicalPlan) -> str:
    return plan.mode + ":" + ",".join(
        f"{n.op}/{n.mode}" for n in plan.walk()
    )


#: Golden plan shapes per (query, scheme class), at Ta=256/Tb=512.
GOLDEN_SHAPES = {
    "Q1": {
        "strided": "column:project/strided,filter/strided,scan/",
        "plain-row": "column:project/spans,filter/spans,scan/",
        "plain-col": "column:project/vector,filter/vector,scan/",
    },
    "Q2": {
        "strided": "column:materialize/rows,filter/strided,scan/",
        "plain-row": "column:materialize/rows,filter/spans,scan/",
        "plain-col": "column:materialize/rows,filter/vector,scan/",
    },
    "Q3": {
        "strided": "column:aggregate/strided,filter/strided,scan/",
        "plain-row": "column:aggregate/spans,filter/spans,scan/",
        "plain-col": "column:aggregate/vector,filter/vector,scan/",
    },
    "Q4": {
        "strided": "column:aggregate/strided,filter/strided,scan/",
        "plain-row": "column:aggregate/spans,filter/spans,scan/",
        "plain-col": "column:aggregate/vector,filter/vector,scan/",
    },
    "Q5": {
        "strided": "column:aggregate/strided,filter/strided,scan/",
        "plain-row": "column:aggregate/spans,filter/spans,scan/",
        "plain-col": "column:aggregate/vector,filter/vector,scan/",
    },
    "Q6": {
        "strided": "column:aggregate/strided,filter/strided,scan/",
        "plain-row": "column:aggregate/spans,filter/spans,scan/",
        "plain-col": "column:aggregate/vector,filter/vector,scan/",
    },
    "Q7": {
        "strided": "column:join/,hash-build/strided,scan/,"
                   "project/strided,hash-probe/strided,scan/",
        "plain-row": "column:join/,hash-build/spans,scan/,"
                     "project/spans,hash-probe/spans,scan/",
        "plain-col": "column:join/,hash-build/vector,scan/,"
                     "project/vector,hash-probe/vector,scan/",
    },
    "Q8": {
        "strided": "column:join/,hash-build/strided,scan/,"
                   "project/strided,hash-probe/strided,scan/",
        "plain-row": "column:join/,hash-build/spans,scan/,"
                     "project/spans,hash-probe/spans,scan/",
        "plain-col": "column:join/,hash-build/vector,scan/,"
                     "project/vector,hash-probe/vector,scan/",
    },
    "Q9": {
        "strided": "column:project/strided,filter/strided,scan/",
        "plain-row": "column:project/spans,filter/spans,scan/",
        "plain-col": "column:project/vector,filter/vector,scan/",
    },
    "Q10": {
        "strided": "column:project/strided,filter/strided,scan/",
        "plain-row": "column:project/spans,filter/spans,scan/",
        "plain-col": "column:project/vector,filter/vector,scan/",
    },
    "Q11": {
        "strided": "column:update/strided,filter/strided,scan/",
        "plain-row": "column:update/stores,filter/spans,scan/",
        "plain-col": "column:update/stores,filter/vector,scan/",
    },
    "Q12": {
        "strided": "column:update/strided,filter/strided,scan/",
        "plain-row": "column:update/stores,filter/spans,scan/",
        "plain-col": "column:update/stores,filter/vector,scan/",
    },
    "Qs1": {
        "strided": "row:materialize/rows,scan/",
        "plain-row": "row:materialize/rows,scan/",
        "plain-col": "row:materialize/rows,scan/",
    },
    "Qs2": {
        "strided": "row:materialize/rows,scan/",
        "plain-row": "row:materialize/rows,scan/",
        "plain-col": "row:materialize/rows,scan/",
    },
    "Qs3": {
        "strided": "row:materialize/rows,filter/spans,scan/",
        "plain-row": "row:materialize/rows,filter/spans,scan/",
        "plain-col": "row:materialize/rows,filter/fields,scan/",
    },
    "Qs4": {
        "strided": "row:materialize/rows,filter/spans,scan/",
        "plain-row": "row:materialize/rows,filter/spans,scan/",
        "plain-col": "row:materialize/rows,filter/fields,scan/",
    },
    "Qs5": {
        "strided": "row:insert/rows",
        "plain-row": "row:insert/rows",
        "plain-col": "row:insert/rows",
    },
    "Qs6": {
        "strided": "row:insert/rows",
        "plain-row": "row:insert/rows",
        "plain-col": "row:insert/rows",
    },
}


@pytest.fixture(scope="module")
def tables():
    return make_tables(256, 512)


class TestPlanShapes:
    @pytest.mark.parametrize("scheme", available_schemes())
    @pytest.mark.parametrize("qname", sorted(GOLDEN_SHAPES))
    def test_golden_shape(self, scheme, qname, tables):
        query = by_name()[qname]
        plan = plan_for(scheme, query, tables)
        assert _signature(plan) == GOLDEN_SHAPES[qname][_class_of(scheme)]

    def test_every_builtin_query_is_pinned(self):
        assert sorted(GOLDEN_SHAPES) == sorted(by_name())

    @pytest.mark.parametrize("scheme", available_schemes())
    def test_explain_renders_every_query(self, scheme, tables):
        for query in by_name().values():
            plan = plan_for(scheme, query, tables)
            text = plan.explain()
            assert text.startswith("PhysicalPlan")
            assert plan.mode in text
            d = plan.to_dict()
            assert d["scheme"] == scheme
            assert d["mode"] == plan.mode
            assert d["root"]["op"] == plan.root.op

    def test_logical_plan_carries_the_query(self):
        query = by_name()["Q3"]
        logical = logical_plan(query)
        assert isinstance(logical, LogicalPlan)
        assert logical.query == "Q3"
        ops = [n.op for n in logical.root.walk()]
        assert ops[0] == "aggregate" and ops[-1] == "scan"

    def test_physical_plan_links_logical(self, tables):
        plan = plan_for("SAM-en", by_name()["Q1"], tables)
        assert plan.logical is not None
        assert plan.logical.query == "Q1"


class TestIdealChoice:
    def test_matches_paper_preference_for_every_query(self, tables):
        for name, query in by_name().items():
            winner, estimates = ideal_choice(query, tables)
            expected = (
                "baseline" if query.prefers == "row" else "column-store"
            )
            assert winner == expected, (
                f"{name}: planner chose {winner} ({estimates}), "
                f"paper says {expected}"
            )
            assert set(estimates) == {"baseline", "column-store"}

    def test_run_ideal_reports_ideal_scheme(self, tables):
        result = run_ideal(by_name()["Q3"], tables)
        assert result.scheme == "ideal"
        assert result.cycles > 0

    def test_run_ideal_forwards_check(self, tables):
        observe = Observation()
        result = run_ideal(
            by_name()["Q3"], tables, observe=observe, check=True
        )
        assert result.scheme == "ideal"
        # the protocol checker only counts commands when attached
        assert observe.registry.value("check.commands") > 0

    def test_run_ideal_forwards_gather_factor(self, tables):
        # ideal resolves to baseline/column-store; both reject an
        # explicit gather factor, which run_ideal must forward
        with pytest.raises(ValueError, match="gather_factor"):
            run_ideal(by_name()["Q3"], tables, gather_factor=4)


class TestPlanInManifest:
    def test_run_result_embeds_plan(self, tables):
        result = run_query("SAM-en", by_name()["Q1"], tables)
        assert result.plan is not None
        manifest = result.manifest()
        assert manifest["plan"]["scheme"] == "SAM-en"
        assert manifest["plan"]["mode"] == "column"
        assert manifest["plan"]["root"]["op"] == "project"

    def test_lowered_footprint_checker_sees_gathers(self, tables):
        observe = Observation()
        run_query(
            "SAM-en", by_name()["Q1"], tables,
            observe=observe, check=True,
        )
        assert observe.registry.value("check.lowered_gathers") > 0


class TestSchemeGatherValidation:
    @pytest.mark.parametrize("name", sorted(ROW_PLAIN + COL_PLAIN))
    def test_no_stride_schemes_reject_gather_factor(self, name):
        with pytest.raises(ValueError, match="gather_factor=8"):
            make_scheme(name, gather_factor=8)

    @pytest.mark.parametrize("name", sorted(ROW_PLAIN + COL_PLAIN))
    def test_default_and_unit_gather_are_fine(self, name):
        assert make_scheme(name) is not None
        assert make_scheme(name, gather_factor=1) is not None

    def test_stride_schemes_accept_gather_factor(self):
        scheme = make_scheme("SAM-en", gather_factor=4)
        assert scheme.gather_factor == 4
