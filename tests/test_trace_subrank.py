"""Tests for command tracing and the sub-ranked (AGMS/DGMS) scheme."""

import pytest

from repro.core import make_scheme
from repro.core.subrank import SUBRANKS, SubRankScheme
from repro.cpu.core import Core
from repro.cpu.ops import Load
from repro.dram import (
    AddressMapper,
    DDR4_2400,
    MemoryController,
    Request,
    RequestType,
)
from repro.dram.commands import Command
from repro.kernel import Kernel
from repro.sim import MemorySystem, SystemConfig
from repro.sim.trace import CommandTracer


class TestTracer:
    def run_traced(self, addrs):
        kernel = Kernel()
        mc = MemoryController(kernel, DDR4_2400)
        tracer = CommandTracer(mc)
        am = AddressMapper(mc.geometry)
        for a in addrs:
            mc.submit(Request(addr=am.decode(a), type=RequestType.READ))
        kernel.run()
        return kernel, mc, tracer

    def test_records_commands(self):
        kernel, mc, tracer = self.run_traced([0, 64, 128])
        assert tracer.command_counts["ACT"] == 1
        assert tracer.command_counts["RD"] == 3
        assert len(tracer.events) == 4

    def test_bus_utilization(self):
        kernel, mc, tracer = self.run_traced(
            [b * 8192 for b in range(16)]
        )
        util = tracer.bus_utilization(kernel.now)
        assert 0.3 < util <= 1.0

    def test_hottest_banks(self):
        kernel, mc, tracer = self.run_traced([0, 64, 8192])
        hot = dict(tracer.hottest_banks())
        assert hot[(0, 0)] >= 2

    def test_cas_gap_histogram(self):
        kernel, mc, tracer = self.run_traced([i * 64 for i in range(8)])
        gaps = tracer.cas_gap_histogram()
        # same-bank stream: consecutive CAS at tCCD_L
        assert max(gaps, key=gaps.get) == DDR4_2400.tCCD_L

    def test_report(self):
        kernel, mc, tracer = self.run_traced([0, 64])
        text = tracer.report(kernel.now)
        assert "utilization" in text and "RD=2" in text

    def test_detach(self):
        kernel = Kernel()
        mc = MemoryController(kernel, DDR4_2400)
        tracer = CommandTracer(mc)
        tracer.detach()
        assert mc.observer is None

    def test_events_optional(self):
        kernel = Kernel()
        mc = MemoryController(kernel, DDR4_2400)
        tracer = CommandTracer(mc, keep_events=False)
        am = AddressMapper(mc.geometry)
        mc.submit(Request(addr=am.decode(0), type=RequestType.READ))
        kernel.run()
        assert tracer.events == []
        assert tracer.command_counts["RD"] == 1


class TestSubRank:
    def test_subrank_mapping(self):
        assert SubRankScheme.subrank_of(0) == 0
        assert SubRankScheme.subrank_of(16) == 1
        assert SubRankScheme.subrank_of(48) == 3
        assert SubRankScheme.subrank_of(64) == 0

    def test_full_line_read_spans_all_subranks(self):
        scheme = make_scheme("sub-rank")
        requests = scheme.lower_read(0)
        assert sorted(r.subrank for r in requests) == list(range(SUBRANKS))

    def test_sector_read_fetches_only_requested(self):
        scheme = make_scheme("sub-rank")
        requests = scheme.lower_read_sectors(0, 0b0010)
        assert len(requests) == 1 and requests[0].subrank == 1

    def test_fetch_fills_requested_sectors_only(self):
        kernel = Kernel()
        system = MemorySystem(kernel, make_scheme("sub-rank"),
                              SystemConfig())
        done = []
        system.issue_fetch(0, 0, 0b0001, lambda: done.append(1))
        kernel.run()
        assert done == [1]
        res = system.lookup(0, 0, 0b1111)
        assert res.missing_mask == 0b1110  # other sectors still missing

    def test_subrank_transfers_overlap(self):
        """Four reads from four different sub-ranks finish faster than
        four full-width bursts would."""
        kernel = Kernel()
        mc = MemoryController(kernel, DDR4_2400)
        am = AddressMapper(mc.geometry)
        finish = []
        for s in range(4):
            mc.submit(
                Request(
                    addr=am.decode(16 * s),
                    type=RequestType.READ,
                    subrank=s,
                    on_complete=lambda r, t: finish.append(t),
                )
            )
        kernel.run()
        span = max(finish) - min(finish)
        # overlapping quarter-width transfers: bounded by tCCD, not 4*tBL
        assert span <= 3 * DDR4_2400.tCCD_L

    def test_same_subrank_serializes(self):
        kernel = Kernel()
        mc = MemoryController(kernel, DDR4_2400)
        am = AddressMapper(mc.geometry)
        finish = []
        for i in range(4):
            mc.submit(
                Request(
                    addr=am.decode(64 * i),  # all chunk 0 -> sub-rank 0
                    type=RequestType.READ,
                    subrank=0,
                    on_complete=lambda r, t: finish.append(t),
                )
            )
        kernel.run()
        span = max(finish) - min(finish)
        assert span >= 3 * DDR4_2400.tBL  # back-to-back, no overlap

    def test_strided_query_barely_helped(self):
        from repro.workloads import make_tables
        from repro.imdb import by_name
        from repro.sim import run_query

        query = by_name()["Q3"]
        base = run_query("baseline", query, make_tables(256, 256))
        sub = run_query("sub-rank", query, make_tables(256, 256))
        assert str(sub.result) == str(base.result)
        speed = base.cycles / sub.cycles
        assert speed < 1.6  # far from SAM's ~4x

    def test_not_chipkill_compatible(self):
        assert not make_scheme("sub-rank").traits.ecc_compatible
