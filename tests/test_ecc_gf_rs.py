"""Tests for GF(2^m) arithmetic and the Reed-Solomon codecs."""

import random

import pytest

from repro.ecc.gf import GF, field
from repro.ecc.rs import DecodeFailure, ReedSolomon

rng = random.Random(99)


class TestGF:
    @pytest.mark.parametrize("m", [2, 3, 4, 8])
    def test_exp_log_inverse(self, m):
        gf = field(m)
        for a in range(1, gf.size):
            assert gf.exp[gf.log[a]] == a

    def test_mul_div_roundtrip(self):
        gf = field(8)
        for _ in range(200):
            a = rng.randrange(1, 256)
            b = rng.randrange(1, 256)
            assert gf.div(gf.mul(a, b), b) == a

    def test_add_is_xor(self):
        gf = field(4)
        assert gf.add(0b1010, 0b0110) == 0b1100

    def test_inverse(self):
        gf = field(8)
        for a in range(1, 256):
            assert gf.mul(a, gf.inv(a)) == 1

    def test_zero_division_raises(self):
        gf = field(8)
        with pytest.raises(ZeroDivisionError):
            gf.div(5, 0)
        with pytest.raises(ZeroDivisionError):
            gf.inv(0)

    def test_pow(self):
        gf = field(8)
        a = 7
        assert gf.pow(a, 3) == gf.mul(gf.mul(a, a), a)
        assert gf.pow(a, 0) == 1
        assert gf.pow(0, 5) == 0

    def test_alpha_generates_field(self):
        gf = field(4)
        seen = {gf.alpha_pow(i) for i in range(gf.size - 1)}
        assert len(seen) == gf.size - 1

    def test_poly_eval_horner(self):
        gf = field(8)
        # p(x) = 3 + 5x + x^2 at x=2: 3 ^ (5*2) ^ (2*2)
        p = [3, 5, 1]
        expected = 3 ^ gf.mul(5, 2) ^ gf.mul(2, 2)
        assert gf.poly_eval(p, 2) == expected

    def test_poly_mul_degree(self):
        gf = field(8)
        p = [1, 2, 3]
        q = [4, 5]
        assert len(gf.poly_mul(p, q)) == 4

    def test_poly_deriv_characteristic_two(self):
        gf = field(8)
        # d/dx (a + bx + cx^2 + dx^3) = b + dx^2 (even terms vanish)
        assert gf.poly_deriv([9, 7, 5, 3]) == [7, 0, 3]

    def test_shared_instances(self):
        assert field(8) is field(8)

    def test_unknown_field_size(self):
        with pytest.raises(ValueError):
            GF(13)


class TestReedSolomon:
    @pytest.mark.parametrize("n,k,m", [(18, 16, 8), (36, 32, 8), (15, 11, 4)])
    def test_encode_produces_codeword(self, n, k, m):
        rs = ReedSolomon(n, k, m)
        data = [rng.randrange(rs.gf.size) for _ in range(k)]
        cw = rs.encode(data)
        assert len(cw) == n
        assert cw[:k] == data  # systematic
        assert not any(rs.syndromes(cw))

    def test_error_free_decode(self):
        rs = ReedSolomon(18, 16, 8)
        data = list(range(16))
        result = rs.decode(rs.encode(data))
        assert list(result.data) == data
        assert result.corrected == 0

    @pytest.mark.parametrize("n,k,m", [(18, 16, 8), (36, 32, 8)])
    def test_corrects_up_to_capability(self, n, k, m):
        rs = ReedSolomon(n, k, m)
        for _ in range(25):
            data = [rng.randrange(rs.gf.size) for _ in range(k)]
            cw = rs.encode(data)
            t = rng.randrange(1, rs.correctable + 1)
            corrupted = list(cw)
            positions = rng.sample(range(n), t)
            for p in positions:
                corrupted[p] ^= rng.randrange(1, rs.gf.size)
            result = rs.decode(corrupted)
            assert list(result.data) == data
            assert sorted(result.corrected_positions) == sorted(positions)

    def test_ssc_corrects_any_single_chip(self):
        """Every position, every error value: the chipkill guarantee."""
        rs = ReedSolomon(18, 16, 8)
        data = [rng.randrange(256) for _ in range(16)]
        cw = rs.encode(data)
        for pos in range(18):
            for mask in (0x01, 0x80, 0xFF):
                corrupted = list(cw)
                corrupted[pos] ^= mask
                assert list(rs.decode(corrupted).data) == data

    def test_distance_three_detects_most_doubles(self):
        """SSC has d=3: double errors are not correctable; they must not
        be silently 'corrected' into the original data."""
        rs = ReedSolomon(18, 16, 8)
        data = [rng.randrange(256) for _ in range(16)]
        cw = rs.encode(data)
        silent_as_original = 0
        for _ in range(100):
            corrupted = list(cw)
            for p in rng.sample(range(18), 2):
                corrupted[p] ^= rng.randrange(1, 256)
            try:
                result = rs.decode(corrupted)
                assert list(result.data) != data or True
                if list(result.data) == data:
                    silent_as_original += 1
            except DecodeFailure:
                pass
        assert silent_as_original == 0

    def test_distance_five_detects_triples(self):
        rs = ReedSolomon(36, 32, 8)
        data = [rng.randrange(256) for _ in range(32)]
        cw = rs.encode(data)
        outcomes = {"detected": 0, "wrong": 0}
        for _ in range(150):
            corrupted = list(cw)
            for p in rng.sample(range(36), 3):
                corrupted[p] ^= rng.randrange(1, 256)
            try:
                result = rs.decode(corrupted)
                if list(result.data) != data:
                    outcomes["wrong"] += 1
            except DecodeFailure:
                outcomes["detected"] += 1
        # the vast majority of 3-error patterns on a d=5 code are flagged
        assert outcomes["detected"] > 130

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReedSolomon(300, 200, 8)  # n >= field size
        with pytest.raises(ValueError):
            ReedSolomon(10, 10, 8)

    def test_wrong_data_length(self):
        rs = ReedSolomon(18, 16, 8)
        with pytest.raises(ValueError):
            rs.encode([0] * 10)
        with pytest.raises(ValueError):
            rs.decode([0] * 10)

    def test_symbol_out_of_range(self):
        rs = ReedSolomon(18, 16, 8)
        with pytest.raises(ValueError):
            rs.encode([999] + [0] * 15)

    def test_min_distance(self):
        assert ReedSolomon(18, 16, 8).min_distance == 3
        assert ReedSolomon(36, 32, 8).min_distance == 5
