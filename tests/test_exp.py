"""Tests for the unified sweep engine (repro.exp) and its satellites."""

import json
import pickle
import warnings

import numpy as np
import pytest

from repro.core.registry import make_scheme
from repro.exp import (
    ExperimentSpec,
    ResultCache,
    SweepEngine,
    SweepPoint,
    TableSpec,
    build_tables,
    point_digest,
    standard_tables,
)
from repro.harness.figure12 import build_figure12_spec, run_figure12
from repro.workloads import QueryWorkload, make_tables
from repro.imdb.queries import by_name
from repro.obs.artifacts import to_jsonable


def _tiny_spec(n=2):
    """A minimal two-point query spec (baseline + SAM-en on Q3)."""
    q = by_name()["Q3"]
    tables = standard_tables(64, 64)
    workload = QueryWorkload(query=q, tables=tables)
    points = [
        SweepPoint(key=("baseline", "Q3"), scheme="baseline",
                   workload=workload),
        SweepPoint(key=("SAM-en", "Q3"), scheme="SAM-en",
                   workload=workload, gather_factor=8),
    ]
    return ExperimentSpec("tiny", tuple(points[:n]))


class TestTableSpec:
    def test_build_is_deterministic(self):
        spec = TableSpec("Ta", 128, 32, seed=7)
        a, b = spec.build(), spec.build()
        assert np.array_equal(a.values, b.values)

    def test_standard_tables_match_make_tables(self):
        built = build_tables(standard_tables(32, 48))
        legacy = make_tables(32, 48)
        for name in ("Ta", "Tb"):
            assert np.array_equal(built[name].values, legacy[name].values)
            assert built[name].schema.n_fields == legacy[name].schema.n_fields

    def test_rejects_empty_tables(self):
        with pytest.raises(ValueError):
            TableSpec("Ta", 128, 0, seed=1)


class TestSweepSpec:
    def test_duplicate_keys_rejected(self):
        q = by_name()["Q3"]
        tables = standard_tables(16, 16)
        p = SweepPoint(key=("a",), scheme="baseline",
                       workload=QueryWorkload(query=q, tables=tables))
        with pytest.raises(ValueError, match="duplicate"):
            ExperimentSpec("dup", (p, p))

    def test_query_point_needs_workload(self):
        with pytest.raises(ValueError):
            SweepPoint(key=("a",), scheme="baseline")

    def test_kind_must_match_workload_kind(self):
        workload = QueryWorkload(query=by_name()["Q3"],
                                 tables=standard_tables(16, 16))
        with pytest.raises(ValueError, match="does not match"):
            SweepPoint(key=("a",), kind="kernel", scheme="baseline",
                       workload=workload)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SweepPoint(key=("a",), kind="mystery", scheme="baseline")

    def test_reliability_point_params(self):
        p = SweepPoint(key=("reliability", "SAM-en"), kind="reliability",
                       scheme="SAM-en", params=(("trials", 50), ("seed", 3)))
        assert p.param("trials") == 50
        assert p.param("missing", 9) == 9
        assert p.label == "reliability/SAM-en"

    def test_points_are_picklable(self):
        spec = _tiny_spec()
        clone = pickle.loads(pickle.dumps(spec.points[1]))
        assert clone == spec.points[1]


class TestDigests:
    def test_digest_is_stable(self):
        a, b = _tiny_spec().points[0], _tiny_spec().points[0]
        assert point_digest(a, source="s") == point_digest(b, source="s")

    def test_digest_sees_every_knob(self):
        base = _tiny_spec().points[1]
        d0 = point_digest(base, source="s")
        workload = base.workload
        variants = [
            SweepPoint(key=base.key, scheme=base.scheme, workload=workload,
                       gather_factor=4),
            SweepPoint(key=base.key, scheme=base.scheme, workload=workload,
                       gather_factor=8, timing="RRAM"),
            SweepPoint(key=base.key, scheme=base.scheme,
                       workload=QueryWorkload(
                           query=workload.query,
                           tables=standard_tables(128, 64)),
                       gather_factor=8),
        ]
        for v in variants:
            assert point_digest(v, source="s") != d0
        # a source-tree edit invalidates everything
        assert point_digest(base, source="other") != d0


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("abc", {"x": 1})
        assert cache.get("abc") == {"x": 1}
        assert len(cache) == 1

    def test_miss_and_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("nope") is None
        cache.path("bad").write_bytes(b"not a pickle")
        assert cache.get("bad") is None  # degrades to a miss, no raise


class TestEngine:
    def test_results_in_spec_order(self):
        spec = _tiny_spec()
        run = SweepEngine().run(spec)
        assert list(run.results) == list(spec.keys())
        assert run.speedup(("SAM-en", "Q3"), ("baseline", "Q3")) > 1.0

    def test_parallel_matches_serial_exactly(self):
        kwargs = dict(n_ta=64, n_tb=64, designs=["SAM-en"],
                      queries=["Q3", "Qs1"], include_ideal=True)
        serial = run_figure12(engine=SweepEngine(jobs=1), **kwargs)
        par = run_figure12(engine=SweepEngine(jobs=4), **kwargs)
        dump = lambda r: json.dumps(to_jsonable(r.payload()), sort_keys=True)
        assert dump(serial) == dump(par)

    def test_warm_cache_executes_nothing(self, tmp_path):
        spec = build_figure12_spec(n_ta=64, n_tb=64, designs=["SAM-en"],
                                   queries=["Q3"], include_ideal=False)
        cold = SweepEngine(cache=ResultCache(tmp_path)).run(spec)
        assert cold.executed == len(spec) and cold.cache_hits == 0
        warm = SweepEngine(cache=ResultCache(tmp_path)).run(spec)
        assert warm.executed == 0 and warm.cache_hits == len(spec)
        assert [r.cycles for r in warm.results.values()] == [
            r.cycles for r in cold.results.values()
        ]

    def test_no_cache_always_executes(self, tmp_path):
        spec = _tiny_spec(n=1)
        engine = SweepEngine()  # cache=None
        assert engine.run(spec).executed == 1
        assert engine.run(spec).executed == 1
        assert not list(tmp_path.iterdir())

    def test_manifest_totals(self, tmp_path):
        engine = SweepEngine(cache=ResultCache(tmp_path))
        engine.run(_tiny_spec())
        engine.run(_tiny_spec())
        manifest = engine.manifest()
        assert manifest["totals"]["points"] == 4
        assert manifest["totals"]["cache_hits"] == 2
        assert manifest["totals"]["executed"] == 2
        assert manifest["metrics"]["exp.cache.hits"] == 2

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            SweepEngine(jobs=0)


class TestWithTiming:
    def test_clone_leaves_original_untouched(self):
        scheme = make_scheme("SAM-en")
        native = scheme.timing.name
        clone = scheme.with_timing("RRAM")
        assert clone is not scheme
        assert "RRAM" in clone.timing.name
        assert scheme.timing.name == native
        assert scheme.timing_override is None

    def test_rcnvm_keeps_native_rram_without_override(self):
        scheme = make_scheme("RC-NVM-wd")
        assert "RRAM" in scheme.timing.name
        dram = scheme.with_timing("DDR4-2400")
        assert "DDR4-2400" in dram.timing.name
        assert "RRAM" in scheme.timing.name

    def test_unknown_preset_fails_fast(self):
        with pytest.raises(KeyError, match="unknown timing preset"):
            make_scheme("SAM-en").with_timing("SRAM-9000")


class TestAllocatePlacements:
    def test_insert_shadow_regions(self):
        from repro.sim.runner import _REGION_STRIDE, allocate_placements

        tables = make_tables(16, 16)
        placements = allocate_placements(make_scheme("baseline"), tables)
        assert set(placements) == {"Ta", "Ta+insert", "Tb", "Tb+insert"}
        # table order is sorted(name); each table owns two stride regions
        assert placements["Ta"].table.base == 0
        assert placements["Ta+insert"].table.base == _REGION_STRIDE
        assert placements["Tb"].table.base == 2 * _REGION_STRIDE
        assert (placements["Tb+insert"].table.base
                == 3 * _REGION_STRIDE)

    def test_capacity_overflow_raises(self):
        from repro.imdb.schema import Table, TableSchema
        from repro.sim.runner import allocate_placements

        tables = {
            f"T{i}": Table(TableSchema(f"T{i}", 4), 4, seed=i)
            for i in range(3)  # 3 tables x 2 regions x 8GiB > 32GiB module
        }
        with pytest.raises(ValueError, match="address space"):
            allocate_placements(make_scheme("baseline"), tables)


class TestBusAccounting:
    def test_subrank_utilization_never_exceeds_one(self):
        """Sub-rank bursts book tBL sub-bus cycles (a quarter of the bus),
        so total busy time can no longer exceed elapsed time."""
        from repro.sim.runner import run_query

        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            for design in ("baseline", "SAM-sub", "SAM-en"):
                result = run_query(design, by_name()["Q3"],
                                   make_tables(128, 128))
                assert 0.0 < result.bus_utilization <= 1.0
