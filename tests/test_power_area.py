"""Tests for the power and area models."""

import pytest

from repro.area import (
    TrackBudget,
    all_designs,
    sam_en_area,
    sam_io_area,
    sam_sub_area,
    sam_sub_global_bitlines,
    wire_overhead,
)
from repro.core import make_scheme
from repro.dram.controller import CommandStats
from repro.dram.timing import DDR4_2400, RRAM
from repro.power import PowerConfig, PowerModel


class TestWiring:
    def test_paper_track_budget(self):
        """Section 6.1: 128 GWL + 12 LDL/WLsel tracks per subarray."""
        budget = TrackBudget()
        assert budget.baseline == 140

    def test_sam_sub_global_bitlines_5_7_percent(self):
        assert sam_sub_global_bitlines() == pytest.approx(8 / 140)
        assert abs(sam_sub_global_bitlines() - 0.057) < 0.001

    def test_wire_overhead_scales(self):
        assert wire_overhead(14) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            wire_overhead(-1)


class TestAreaReports:
    def test_paper_totals(self):
        """The headline numbers of Section 6.1."""
        assert abs(sam_sub_area().silicon_fraction - 0.072) < 0.002
        assert sam_io_area().silicon_fraction < 0.0001
        assert abs(sam_en_area().silicon_fraction - 0.007) < 0.001

    def test_figure14c_inventory(self):
        designs = all_designs()
        assert designs["RC-NVM-wd"].silicon_fraction > designs[
            "RC-NVM-bit"
        ].silicon_fraction
        assert designs["GS-DRAM-ecc"].storage_fraction == 0.125
        assert designs["two-copy"].storage_fraction == 1.0

    def test_metal_layers(self):
        designs = all_designs()
        assert designs["RC-NVM-bit"].extra_metal_layers == 2
        assert designs["SAM-sub"].extra_metal_layers == 0


class TestPowerModel:
    def make(self, config=None, timing=DDR4_2400):
        return PowerModel(config or PowerConfig(), timing)

    def stats(self, **kw):
        s = CommandStats()
        for key, value in kw.items():
            setattr(s, key, value)
        return s

    def test_background_scales_with_time(self):
        model = self.make()
        a = model.evaluate(self.stats(), 1000)
        b = model.evaluate(self.stats(), 2000)
        assert b.background_nj == pytest.approx(2 * a.background_nj)

    def test_read_energy_positive(self):
        model = self.make()
        out = model.evaluate(self.stats(reads=100), 1000)
        assert out.rdwr_nj > 0

    def test_stride_reads_cost_more_than_regular(self):
        """SAM-IO's gathers burn x16-class current + internal bursts."""
        sam_io = PowerConfig(name="SAM-IO", stride_internal_bursts=4)
        model = self.make(sam_io)
        regular = model.evaluate(self.stats(reads=100), 1000).rdwr_nj
        stride = model.evaluate(
            self.stats(reads=100, stride_mode_reads=100), 1000
        ).rdwr_nj
        assert stride > 1.5 * regular

    def test_sam_en_cheaper_than_sam_io(self):
        io_cfg = PowerConfig(name="SAM-IO", stride_internal_bursts=4)
        en_cfg = PowerConfig(
            name="SAM-en", stride_internal_bursts=1, stride_act_fraction=0.25
        )
        stats = self.stats(reads=100, stride_mode_reads=100, col_acts=10)
        io_e = self.make(io_cfg).evaluate(stats, 1000).total_nj
        en_e = self.make(en_cfg).evaluate(stats, 1000).total_nj
        assert en_e < io_e

    def test_rram_background_near_zero(self):
        rram_cfg = PowerConfig(name="rc", rram=True)
        model = PowerModel(rram_cfg, RRAM)
        dram = self.make()
        assert (
            model.background_power_mw() < 0.05 * dram.background_power_mw()
        )

    def test_rram_writes_expensive(self):
        rram_cfg = PowerConfig(name="rc", rram=True)
        model = PowerModel(rram_cfg, RRAM)
        reads = model.evaluate(self.stats(reads=100), 1000).rdwr_nj
        writes = model.evaluate(self.stats(writes=100), 1000).rdwr_nj
        assert writes > 2 * reads

    def test_refresh_energy_counted(self):
        model = self.make()
        without = model.evaluate(self.stats(), 1000).act_nj
        with_ref = model.evaluate(self.stats(refreshes=10), 1000).act_nj
        assert with_ref > without

    def test_power_breakdown_components(self):
        model = self.make()
        out = model.evaluate(self.stats(reads=10, acts=5), 10000)
        assert out.total_nj == pytest.approx(
            out.background_nj + out.act_nj + out.rdwr_nj
        )
        assert out.power_mw("total") == pytest.approx(
            out.power_mw("background")
            + out.power_mw("act")
            + out.power_mw("rdwr")
        )

    def test_background_scale_applied(self):
        scaled = PowerConfig(name="sub", background_scale=1.02)
        a = self.make().background_power_mw()
        b = self.make(scaled).background_power_mw()
        assert b == pytest.approx(1.02 * a)

    def test_scheme_power_configs_integrate(self):
        for name in ("SAM-IO", "SAM-en", "SAM-sub", "RC-NVM-wd"):
            scheme = make_scheme(name)
            model = PowerModel(scheme.power_config, scheme.timing)
            out = model.evaluate(self.stats(reads=10), 1000)
            assert out.total_nj > 0
