"""Tests for SEC-DED, the chipkill codecs, layouts, and fault injection."""

import random

import pytest

from repro.ecc import hamming
from repro.ecc.chipkill import (
    SSCCodec,
    SSCDSDCodec,
    codeword_split,
    decode_line,
    encode_line,
)
from repro.ecc.injection import (
    FAULT_MODELS,
    run_campaign,
    unprotected_tally,
)
from repro.ecc.layout import (
    check_codewords,
    gs_dram_gather_check,
    regular_transfer_check,
    sam_gather_check,
)

rng = random.Random(5)


class TestHamming:
    def test_no_error(self):
        d = rng.randrange(1 << 64)
        _, c = hamming.encode(d)
        result = hamming.decode(d, c)
        assert result.data == d and result.corrected_bit is None

    def test_corrects_every_data_bit(self):
        d = rng.randrange(1 << 64)
        _, c = hamming.encode(d)
        for bit in range(64):
            assert hamming.decode(d ^ (1 << bit), c).data == d

    def test_corrects_check_bit_errors(self):
        d = rng.randrange(1 << 64)
        _, c = hamming.encode(d)
        for bit in range(8):
            assert hamming.decode(d, c ^ (1 << bit)).data == d

    def test_detects_double_errors(self):
        d = rng.randrange(1 << 64)
        _, c = hamming.encode(d)
        for _ in range(50):
            b1, b2 = rng.sample(range(64), 2)
            with pytest.raises(hamming.DoubleError):
                hamming.decode(d ^ (1 << b1) ^ (1 << b2), c)

    def test_detects_data_plus_check_double(self):
        d = rng.randrange(1 << 64)
        _, c = hamming.encode(d)
        with pytest.raises(hamming.DoubleError):
            hamming.decode(d ^ 1, c ^ 1)

    def test_columns_are_odd_weight(self):
        for col in hamming._COLUMNS:
            assert bin(col).count("1") % 2 == 1

    def test_out_of_range_data(self):
        with pytest.raises(ValueError):
            hamming.encode(1 << 64)


class TestChipkillCodecs:
    def test_ssc_shape(self):
        codec = SSCCodec()
        assert codec.n == 18
        assert codec.data_bytes == 16 and codec.parity_bytes == 2

    def test_ssc_dsd_shape(self):
        codec = SSCDSDCodec()
        assert codec.n == 36
        assert codec.data_bytes == 32 and codec.parity_bytes == 4

    def test_ssc_corrects_chip_failure(self):
        codec = SSCCodec()
        data = bytes(rng.randrange(256) for _ in range(16))
        parity = codec.encode(data)
        for chip in range(16):
            bad = bytearray(data)
            bad[chip] ^= 0xFF
            report = codec.decode(bytes(bad), parity)
            assert report.data == data
            assert report.corrected_chips == (chip,)

    def test_ssc_corrects_parity_chip_failure(self):
        codec = SSCCodec()
        data = bytes(rng.randrange(256) for _ in range(16))
        parity = bytearray(codec.encode(data))
        parity[0] ^= 0xA5
        report = codec.decode(data, bytes(parity))
        assert report.data == data

    def test_ssc_dsd_detects_double_chip(self):
        codec = SSCDSDCodec()
        data = bytes(rng.randrange(256) for _ in range(32))
        parity = codec.encode(data)
        bad = bytearray(data)
        bad[3] ^= 0x0F
        bad[17] ^= 0xF0
        report = codec.decode(bytes(bad), parity)
        assert report.detected_uncorrectable
        assert report.corrected_chips == ()

    def test_check_accepts_valid_rejects_invalid(self):
        codec = SSCCodec()
        data = bytes(range(16))
        parity = codec.encode(data)
        assert codec.check(data, parity)
        assert not codec.check(bytes(16), parity)

    def test_line_encode_decode(self):
        line = bytes(rng.randrange(256) for _ in range(64))
        parity = encode_line(line)
        assert len(parity) == 8
        decoded, reports = decode_line(line, parity)
        assert decoded == line
        assert len(reports) == 4

    def test_line_decode_fixes_chip_in_every_codeword(self):
        line = bytes(rng.randrange(256) for _ in range(64))
        parity = encode_line(line)
        bad = bytearray(line)
        for cw in range(4):
            bad[cw * 16 + 7] ^= 0x3C
        decoded, reports = decode_line(bytes(bad), parity)
        assert decoded == line
        assert all(r.corrected_chips == (7,) for r in reports)

    def test_codeword_split(self):
        line = bytes(64)
        chunks = codeword_split(line, SSCCodec())
        assert len(chunks) == 4 and all(len(c) == 16 for c in chunks)


class TestLayoutChecks:
    def test_regular_transfer_complete(self):
        check = regular_transfer_check()
        assert check.complete and check.codewords == 4

    def test_sam_gather_complete(self):
        check = sam_gather_check()
        assert check.complete and check.codewords == 4

    def test_sam_gather_any_lines(self):
        assert sam_gather_check((10, 20, 30, 40)).complete

    def test_gs_dram_gather_incomplete(self):
        check = gs_dram_gather_check()
        assert not check.complete
        assert "parity" in check.reason

    def test_empty_transfer(self):
        assert not check_codewords([]).complete


class TestInjection:
    def test_ssc_survives_chip_faults(self):
        tally = run_campaign(SSCCodec(), FAULT_MODELS["chip"], trials=200)
        assert tally.silent == 0
        assert tally.corrected == 200

    def test_ssc_survives_single_bits(self):
        tally = run_campaign(
            SSCCodec(), FAULT_MODELS["single_bit"], trials=200
        )
        assert tally.protected_rate == 1.0

    def test_ssc_dsd_flags_double_chips(self):
        tally = run_campaign(
            SSCDSDCodec(), FAULT_MODELS["double_chip"], trials=200
        )
        assert tally.silent == 0
        assert tally.detected == 200

    def test_unprotected_faults_are_silent(self):
        tally = unprotected_tally(FAULT_MODELS["chip"], trials=100)
        assert tally.silent == 100
        assert tally.protected_rate == 0.0

    def test_dq_fault_equals_chip_fault_for_variant(self):
        tally = run_campaign(SSCCodec(), FAULT_MODELS["dq"], trials=100)
        assert tally.protected_rate == 1.0


class TestChipAlignedSSC:
    """The symbol-boundary subtlety: SSC symbols are the 8 bits a *chip*
    contributes, which the Figure 4 layouts interleave at nibble/bit
    granularity -- a chip failure is a single-symbol error only under the
    chip-aligned mapping."""

    def _roundtrip(self, layout):
        from repro.ecc.chipkill import (
            ChipAlignedSSC,
            sector_chip_symbols,
            sector_from_chip_symbols,
        )

        codec = ChipAlignedSSC(layout)
        data = bytes(rng.randrange(256) for _ in range(16))
        parity = codec.encode_sector(data)
        symbols = sector_chip_symbols(data, parity, layout)
        assert sector_from_chip_symbols(symbols, layout) == (data, parity)
        return codec, data, parity, symbols

    def test_symbol_mapping_roundtrip_default(self):
        self._roundtrip("default")

    def test_symbol_mapping_roundtrip_transposed(self):
        self._roundtrip("transposed")

    def test_chip_failure_is_single_symbol(self):
        from repro.ecc.chipkill import (
            ChipAlignedSSC,
            sector_from_chip_symbols,
        )

        for layout in ("default", "transposed"):
            codec, data, parity, symbols = self._roundtrip(layout)
            for chip in range(18):
                bad = list(symbols)
                bad[chip] ^= 0xFF
                bd, bp = sector_from_chip_symbols(bad, layout)
                report = codec.decode_sector(bd, bp)
                assert report.data == data
                assert report.corrected_chips == (chip,)

    def test_byte_codec_cannot_fix_spread_chip_failure(self):
        """Contrast: under the default layout a chip failure spans two
        byte-symbols, which the plain byte-wise SSC cannot correct."""
        from repro.ecc.chipkill import (
            ChipAlignedSSC,
            SSCCodec,
            sector_chip_symbols,
            sector_from_chip_symbols,
        )

        aligned = ChipAlignedSSC("default")
        data = bytes(rng.randrange(256) for _ in range(16))
        byte_codec = SSCCodec()
        byte_parity = byte_codec.encode(data)
        symbols = sector_chip_symbols(data, byte_parity, "default")
        symbols[5] ^= 0xFF  # one whole chip
        bd, bp = sector_from_chip_symbols(symbols, "default")
        report = byte_codec.decode(bd, bp)
        # either flagged uncorrectable or (rarely) miscorrected -- but it
        # cannot reliably restore the data
        assert report.detected_uncorrectable or report.data != data

    def test_double_chip_detected(self):
        from repro.ecc.chipkill import (
            ChipAlignedSSC,
            sector_from_chip_symbols,
        )

        codec, data, parity, symbols = self._roundtrip("default")
        bad = list(symbols)
        bad[2] ^= 0x11
        bad[9] ^= 0x22
        bd, bp = sector_from_chip_symbols(bad, "default")
        report = codec.decode_sector(bd, bp)
        assert report.detected_uncorrectable or report.data != data

    def test_unknown_layout(self):
        from repro.ecc.chipkill import ChipAlignedSSC

        with pytest.raises(ValueError):
            ChipAlignedSSC("diagonal")
