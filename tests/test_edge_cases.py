"""Edge cases and stress configurations across the stack."""

import pytest

from repro.cache.hierarchy import HierarchyConfig
from repro.core import make_scheme
from repro.dram.controller import ControllerConfig
from repro.workloads import make_tables
from repro.imdb import TA, TB, Table, TableSchema, by_name
from repro.imdb.query import Predicate, SelectQuery
from repro.sim import SystemConfig, run_query


class TestDegenerateWorkloads:
    def test_zero_selectivity(self):
        query = SelectQuery(
            "none", "Ta", (3,), Predicate.where(10, ">", 0.0)
        )
        for scheme in ("baseline", "SAM-en", "RC-NVM-wd"):
            result = run_query(scheme, query, make_tables(64, 64))
            assert result.selected_records == 0
            assert result.cycles > 0

    def test_full_selectivity(self):
        query = SelectQuery(
            "all", "Ta", (3,), Predicate.where(10, ">", 1.0)
        )
        result = run_query("SAM-en", query, make_tables(64, 64))
        assert result.selected_records == 64

    def test_single_record_table(self):
        tables = {"Ta": Table(TA, 1, seed=1), "Tb": Table(TB, 1, seed=2)}
        result = run_query("SAM-en", by_name()["Q3"], tables)
        assert result.cycles > 0

    def test_partial_gather_group(self):
        """Record counts not divisible by the gather factor."""
        tables = {"Ta": Table(TA, 13, seed=1), "Tb": Table(TB, 13, seed=2)}
        base = run_query("baseline", by_name()["Q3"], tables)
        tables = {"Ta": Table(TA, 13, seed=1), "Tb": Table(TB, 13, seed=2)}
        sam = run_query("SAM-en", by_name()["Q3"], tables)
        assert sam.result == base.result

    def test_table_smaller_than_group(self):
        tables = {"Ta": Table(TA, 3, seed=1), "Tb": Table(TB, 3, seed=2)}
        result = run_query("SAM-sub", by_name()["Q1"], tables)
        assert result.cycles > 0

    def test_odd_field_count_table(self):
        schema = TableSchema("Odd", n_fields=24)  # 192B records
        tables = {
            "Ta": Table(schema, 64, seed=1),
            "Tb": Table(TB, 64, seed=2),
        }
        query = SelectQuery(
            "odd", "Ta", (5,), Predicate.where(10, ">", 0.5)
        )
        base = run_query("baseline", query, tables)
        tables = {
            "Ta": Table(schema, 64, seed=1),
            "Tb": Table(TB, 64, seed=2),
        }
        sam = run_query("SAM-en", query, tables)
        assert sam.result == base.result


class TestStressConfigurations:
    def test_two_core_system(self):
        config = SystemConfig(cores=2)
        result = run_query(
            "SAM-en", by_name()["Q3"], make_tables(64, 64), config=config
        )
        assert result.cycles > 0

    def test_single_core_system(self):
        config = SystemConfig(cores=1)
        result = run_query(
            "baseline", by_name()["Q4"], make_tables(64, 64), config=config
        )
        assert result.cycles > 0

    def test_tiny_caches(self):
        config = SystemConfig(
            hierarchy=HierarchyConfig(
                l1_bytes=512, l2_bytes=1024, llc_bytes=4096
            )
        )
        base_cfg = SystemConfig()
        small = run_query(
            "baseline", by_name()["Q1"], make_tables(64, 64), config=config
        )
        normal = run_query(
            "baseline", by_name()["Q1"], make_tables(64, 64),
            config=base_cfg,
        )
        assert small.result == normal.result
        assert small.cycles >= normal.cycles  # less cache can't be faster

    def test_shallow_write_queue(self):
        config = SystemConfig(
            controller=ControllerConfig(
                write_queue_capacity=4,
                write_high_watermark=3,
                write_low_watermark=1,
            )
        )
        result = run_query(
            "baseline", by_name()["Qs6"], make_tables(32, 64), config=config
        )
        assert result.memory_stats.writes > 0

    def test_refresh_disabled(self):
        config = SystemConfig(
            controller=ControllerConfig(refresh_enabled=False)
        )
        result = run_query(
            "baseline", by_name()["Q3"], make_tables(64, 64), config=config
        )
        assert result.memory_stats.refreshes == 0

    def test_low_mlp(self):
        from repro.cpu.core import CoreConfig

        slow = SystemConfig(core=CoreConfig(mlp=1))
        fast = SystemConfig(core=CoreConfig(mlp=16))
        a = run_query("baseline", by_name()["Q3"], make_tables(64, 64),
                      config=slow)
        b = run_query("baseline", by_name()["Q3"], make_tables(64, 64),
                      config=fast)
        assert a.cycles > b.cycles  # no overlap vs deep overlap


class TestSchemeEdges:
    def test_gather_factor_two(self):
        result = run_query(
            "SAM-IO", by_name()["Q3"], make_tables(64, 64), gather_factor=2
        )
        assert result.cycles > 0

    def test_all_schemes_handle_tb_only_query(self):
        for scheme in ("SAM-sub", "GS-DRAM-ecc", "RC-NVM-bit", "sub-rank"):
            result = run_query(
                scheme, by_name()["Q4"], make_tables(16, 128)
            )
            assert result.cycles > 0

    def test_update_with_no_matches(self):
        from repro.imdb.query import UpdateQuery

        query = UpdateQuery(
            "noop", "Tb", ((3, 5),), Predicate.where(10, ">", 0.0)
        )
        result = run_query("SAM-en", query, make_tables(32, 64))
        assert result.result == 0
        assert result.memory_stats.gather_writes == 0
