"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure12_args(self):
        args = build_parser().parse_args(
            ["figure12", "--ta", "64", "--designs", "SAM-en"]
        )
        assert args.ta == 64 and args.designs == ["SAM-en"]

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "SELECT f1 FROM Ta"])
        assert args.scheme == "SAM-en" and not args.baseline


class TestCommands:
    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "SAM-en" in out and "RC-NVM-wd" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Reliability" in capsys.readouterr().out

    def test_figure14c(self, capsys):
        assert main(["figure14c"]) == 0
        assert "SAM-sub" in capsys.readouterr().out

    def test_reliability(self, capsys):
        assert main(["reliability", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "GS-DRAM" in out and "False" in out

    def test_query_runs(self, capsys):
        code = main(
            [
                "query",
                "SELECT SUM(f9) FROM Ta WHERE f10 > 7500",
                "--scheme", "SAM-en", "--baseline",
                "--ta", "128", "--tb", "128",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "gathers" in out

    def test_figure12_small(self, capsys):
        code = main(
            [
                "figure12", "--ta", "64", "--tb", "64",
                "--designs", "SAM-en", "--queries", "Q3",
            ]
        )
        assert code == 0
        assert "Gmean" in capsys.readouterr().out

    def test_figure15_unknown_panel(self, capsys):
        code = main(["figure15", "--ta", "64", "--panels", "z"])
        assert code == 2
