"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure12_args(self):
        args = build_parser().parse_args(
            ["figure12", "--ta", "64", "--designs", "SAM-en"]
        )
        assert args.ta == 64 and args.designs == ["SAM-en"]

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "SELECT f1 FROM Ta"])
        assert args.scheme == "SAM-en" and not args.baseline


class TestCommands:
    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "SAM-en" in out and "RC-NVM-wd" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Reliability" in capsys.readouterr().out

    def test_figure14c(self, capsys):
        assert main(["figure14c"]) == 0
        assert "SAM-sub" in capsys.readouterr().out

    def test_reliability(self, capsys):
        assert main(["reliability", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "GS-DRAM" in out and "False" in out

    def test_query_runs(self, capsys):
        code = main(
            [
                "query",
                "SELECT SUM(f9) FROM Ta WHERE f10 > 7500",
                "--scheme", "SAM-en", "--baseline",
                "--ta", "128", "--tb", "128",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "gathers" in out

    def test_figure12_small(self, capsys):
        code = main(
            [
                "figure12", "--ta", "64", "--tb", "64",
                "--designs", "SAM-en", "--queries", "Q3",
            ]
        )
        assert code == 0
        assert "Gmean" in capsys.readouterr().out

    def test_figure15_unknown_panel(self, capsys):
        code = main(["figure15", "--ta", "64", "--panels", "z"])
        assert code == 2


class TestJsonOutput:
    def test_schemes_json(self, capsys):
        assert main(["schemes", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert any(row["name"] == "SAM-en" for row in rows)

    def test_figure14c_json(self, capsys):
        assert main(["figure14c", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "figure14c"
        assert "SAM-en" in payload["designs"]

    def test_table1_json(self, capsys):
        assert main(["table1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "table1"

    def test_figure12_json(self, capsys):
        code = main(
            [
                "figure12", "--ta", "64", "--tb", "64",
                "--designs", "SAM-en", "--queries", "Q3", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "figure12"
        assert payload["speedups"]["SAM-en"]["Q3"] > 0

    def test_query_json_is_manifest(self, capsys):
        code = main(
            [
                "query", "SELECT SUM(f9) FROM Ta WHERE f10 > 7500",
                "--ta", "128", "--tb", "128", "--json",
            ]
        )
        assert code == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["kind"] == "run"
        assert manifest["scheme"] == "SAM-en"
        assert manifest["metrics"]["dram.reads"] > 0
        assert manifest["spans"]["name"] == "run_query"

    def test_figure14c_artifacts(self, tmp_path, capsys):
        code = main(["figure14c", "--artifacts", str(tmp_path)])
        assert code == 0
        path = tmp_path / "figure14c.json"
        assert json.loads(path.read_text())["kind"] == "figure14c"
        # text output still printed alongside the artifact
        assert "SAM-sub" in capsys.readouterr().out

    def test_query_artifacts_and_trace(self, tmp_path, capsys):
        code = main(
            [
                "query", "SELECT SUM(f9) FROM Ta WHERE f10 > 7500",
                "--ta", "128", "--tb", "128",
                "--artifacts", str(tmp_path), "--trace",
            ]
        )
        assert code == 0
        manifests = list(tmp_path.glob("run-*.json"))
        assert manifests, "query manifest not written"
        traces = list(tmp_path.glob("run-*.trace.jsonl"))
        assert traces, "trace JSONL not written"

    def test_query_stats_and_profile(self, capsys):
        code = main(
            [
                "query", "SELECT SUM(f9) FROM Ta WHERE f10 > 7500",
                "--ta", "128", "--tb", "128", "--stats", "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dram.reads" in out  # registry dump
        assert "flush_drain" in out  # span profile
