"""Unit tests for the bank/rank/channel timing state machines."""

import pytest

from repro.dram.bank import FOREVER, BankState
from repro.dram.channel import ChannelState
from repro.dram.commands import Command, IOMode, RequestType, RowKind
from repro.dram.geometry import Geometry
from repro.dram.rank import RankState
from repro.dram.timing import DDR4_2400


ROW = (RowKind.ROW, 5)
COL = (RowKind.COLUMN, 5)


class TestBankState:
    def make(self):
        return BankState(DDR4_2400)

    def test_initially_closed(self):
        bank = self.make()
        assert bank.open_row is None
        assert bank.earliest(Command.ACT) == 0

    def test_act_gates_column_commands(self):
        bank = self.make()
        bank.issue_act(100, ROW)
        assert bank.open_row == ROW
        assert bank.earliest(Command.RD) == 100 + DDR4_2400.tRCD
        assert bank.earliest(Command.PRE) == 100 + DDR4_2400.tRAS

    def test_no_second_act_without_precharge(self):
        bank = self.make()
        bank.issue_act(0, ROW)
        assert bank.earliest(Command.ACT) == FOREVER
        bank.issue_pre(100)
        assert bank.earliest(Command.ACT) == 100 + DDR4_2400.tRP

    def test_read_to_precharge_trtp(self):
        bank = self.make()
        bank.issue_act(0, ROW)
        bank.issue_read(20)
        assert bank.earliest(Command.PRE) >= 20 + DDR4_2400.tRTP

    def test_write_recovery(self):
        bank = self.make()
        bank.issue_act(0, ROW)
        bank.issue_write(20)
        expected = 20 + DDR4_2400.CWL + DDR4_2400.tBL + DDR4_2400.tWR
        assert bank.earliest(Command.PRE) >= expected

    def test_internal_bursts_extend_column_occupancy(self):
        bank = self.make()
        bank.issue_act(0, ROW)
        bank.issue_read(20, extra_internal=3)
        assert bank.earliest(Command.RD) == 20 + 4 * DDR4_2400.tCCD_L

    def test_column_row_is_distinct_identity(self):
        bank = self.make()
        bank.issue_act(0, ROW)
        assert bank.is_open(ROW) and not bank.is_open(COL)

    def test_force_close(self):
        bank = self.make()
        bank.issue_act(0, ROW)
        bank.force_close(50)
        assert bank.open_row is None


class TestRankState:
    def make(self):
        return RankState(DDR4_2400, Geometry())

    def test_trrd_spacing(self):
        rank = self.make()
        rank.issue_act(100, bank_group=0)
        same = rank.earliest_act(101, bank_group=0)
        diff = rank.earliest_act(101, bank_group=1)
        assert same == 100 + DDR4_2400.tRRD_L
        assert diff == 100 + DDR4_2400.tRRD_S

    def test_faw_limits_four_activates(self):
        rank = self.make()
        for i in range(4):
            rank.issue_act(i * 4, bank_group=i)
        earliest = rank.earliest_act(16, bank_group=0)
        assert earliest >= 0 + DDR4_2400.tFAW

    def test_write_to_read_turnaround(self):
        rank = self.make()
        rank.issue_write(50)
        expected = 50 + DDR4_2400.CWL + DDR4_2400.tBL + DDR4_2400.tWTR
        assert rank.earliest_cas(Command.RD) >= expected

    def test_mode_switch_stalls_rank(self):
        rank = self.make()
        assert rank.ensure_mode(IOMode.STRIDE)
        rank.issue_mode_switch(10, IOMode.STRIDE)
        assert not rank.ensure_mode(IOMode.STRIDE)
        assert rank.next_read >= 10 + DDR4_2400.tMOD_IO
        assert rank.mode_switches == 1

    def test_refresh_closes_banks_and_blacks_out(self):
        rank = self.make()
        rank.banks[3].issue_act(0, ROW)
        rank.issue_refresh(100)
        assert rank.all_banks_precharged()
        assert rank.busy_until == 100 + DDR4_2400.tRFC


class TestChannelState:
    def make(self):
        return ChannelState(DDR4_2400, Geometry())

    def test_data_bus_serializes_bursts(self):
        ch = self.make()
        end1 = ch.issue_cas(0, Command.RD, 0, RequestType.READ)
        assert end1 == DDR4_2400.CL + DDR4_2400.tBL
        # next read must not start its data before end1
        earliest = ch.earliest_cas_for_bus(Command.RD, 0, RequestType.READ)
        assert earliest + DDR4_2400.CL >= end1

    def test_rank_switch_bubble(self):
        ch = self.make()
        ch.issue_cas(0, Command.RD, 0, RequestType.READ)
        same = ch.earliest_cas_for_bus(Command.RD, 0, RequestType.READ)
        other = ch.earliest_cas_for_bus(Command.RD, 1, RequestType.READ)
        assert other == same + DDR4_2400.tRTR

    def test_read_write_turnaround(self):
        ch = self.make()
        ch.issue_cas(0, Command.RD, 0, RequestType.READ)
        wr = ch.earliest_cas_for_bus(Command.WR, 0, RequestType.WRITE)
        rd = ch.earliest_cas_for_bus(Command.RD, 0, RequestType.READ)
        assert wr > rd - (DDR4_2400.CL - DDR4_2400.CWL)

    def test_subbus_independent(self):
        ch = self.make()
        ch.issue_cas(0, Command.RD, 0, RequestType.READ, subrank=0)
        free = ch.earliest_cas_for_bus(
            Command.RD, 0, RequestType.READ, subrank=1
        )
        busy = ch.earliest_cas_for_bus(
            Command.RD, 0, RequestType.READ, subrank=0
        )
        assert free < busy

    def test_full_width_waits_for_subbuses(self):
        ch = self.make()
        ch.issue_cas(0, Command.RD, 0, RequestType.READ, subrank=2)
        full = ch.earliest_cas_for_bus(Command.RD, 0, RequestType.READ)
        assert full + DDR4_2400.CL >= DDR4_2400.CL + DDR4_2400.tBL

    def test_command_bus_one_per_cycle(self):
        ch = self.make()
        ch.occupy_command_bus(7)
        assert ch.next_command == 8
        assert ch.commands_issued == 1
