"""Tests for the ASCII chart renderers."""

import pytest

from repro.harness.report import bar_chart, grouped_bar_chart, sweep_chart


class TestBarChart:
    def test_scales_to_peak(self):
        text = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_labels_aligned(self):
        text = bar_chart({"short": 1.0, "longer-name": 1.0})
        starts = [line.index("#") for line in text.splitlines()]
        assert len(set(starts)) == 1

    def test_reference_marker(self):
        text = bar_chart({"a": 0.5, "b": 2.0}, width=10, reference=1.0)
        assert "|" in text.splitlines()[0]

    def test_values_printed(self):
        text = bar_chart({"a": 3.14159}, fmt="{:.1f}")
        assert "3.1" in text

    def test_empty(self):
        assert bar_chart({}) == "(empty)"

    def test_zero_values(self):
        text = bar_chart({"a": 0.0})
        assert "#" not in text

    def test_all_zero_with_reference(self):
        text = bar_chart({"a": 0.0, "b": 0.0}, width=10, reference=1.0)
        assert "#" not in text
        # reference == peak sits at the right edge; must not crash
        assert len(text.splitlines()) == 2

    def test_reference_above_peak(self):
        text = bar_chart({"a": 0.5, "b": 0.8}, width=10, reference=2.0)
        lines = text.splitlines()
        # bars scale against the reference, not the tallest bar
        assert max(line.count("#") for line in lines) <= 5

    def test_reference_below_all_values(self):
        text = bar_chart({"a": 3.0, "b": 4.0}, width=10, reference=1.0)
        for line in text.splitlines():
            assert "|" in line

    def test_single_huge_value(self):
        text = bar_chart({"a": 1e12}, width=10)
        assert text.count("#") == 10


class TestGroupedBarChart:
    def test_groups_rendered(self):
        text = grouped_bar_chart(
            {"Q1": {"SAM": 4.0, "base": 1.0}, "Q2": {"SAM": 3.0,
                                                     "base": 1.0}}
        )
        assert "Q1" in text and "Q2" in text
        assert text.count("SAM") == 2

    def test_empty_groups(self):
        assert grouped_bar_chart({}) == ""

    def test_group_with_empty_series(self):
        text = grouped_bar_chart({"Q1": {}})
        assert "Q1" in text and "(empty)" in text


class TestSweepChart:
    def test_plots_series(self):
        points = {0.25: {"SAM": 2.0}, 1.0: {"SAM": 6.0}}
        text = sweep_chart(points, ["SAM"])
        assert "o" in text
        assert "o=SAM" in text

    def test_multiple_series_glyphs(self):
        points = {1: {"a": 1.0, "b": 2.0}, 2: {"a": 2.0, "b": 4.0}}
        text = sweep_chart(points, ["a", "b"])
        assert "o=a" in text and "x=b" in text

    def test_empty(self):
        assert sweep_chart({}, ["a"]) == "(empty)"

    def test_missing_series_points_skipped(self):
        points = {1: {"a": 1.0}, 2: {}}
        text = sweep_chart(points, ["a"])
        assert "o" in text

    def test_all_zero_values(self):
        points = {1: {"a": 0.0}, 2: {"a": 0.0}}
        text = sweep_chart(points, ["a"])
        assert "o" in text  # plotted on the bottom row, no crash

    def test_single_point(self):
        text = sweep_chart({1: {"a": 2.0}}, ["a"])
        assert "o" in text and "peak 2.00" in text
