"""Tests for the workload IR (repro.workloads) and its satellites."""

import dataclasses

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.registry import make_scheme
from repro.cpu.isa import decode, encode
from repro.cpu.ops import GatherLoad, Load, Store
from repro.exp import ExperimentSpec, SweepEngine, SweepPoint, point_digest
from repro.imdb.queries import by_name
from repro.sim.runner import allocate_placements, run_workload
from repro.workloads import (
    KERNELS,
    KernelWorkload,
    QueryWorkload,
    available_kernels,
    build_tables,
    encode_stream,
    standard_tables,
)

mnemonics = st.sampled_from(["sload", "sstore"])
registers = st.integers(min_value=0, max_value=255)
addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)


# ------------------------------------------------------------------ ISA

@given(mnemonics, registers, addresses)
def test_isa_encode_decode_roundtrip(mnemonic, register, address):
    inst = decode(encode(mnemonic, register, address))
    assert inst.mnemonic == mnemonic
    assert inst.register == register
    assert inst.address == address


@given(registers, addresses)
def test_isa_word_roundtrip_through_reencode(register, address):
    word = encode("sload", register, address)
    inst = decode(word)
    assert encode(inst.mnemonic, inst.register, inst.address) == word


def test_isa_rejects_out_of_range():
    with pytest.raises(ValueError):
        encode("smove", 0, 0)
    with pytest.raises(ValueError):
        encode("sload", 256, 0)
    with pytest.raises(ValueError):
        encode("sload", 0, 1 << 48)
    with pytest.raises(ValueError):
        decode(0x11 << 56)


# ---------------------------------------------------------- determinism

kernel_names = st.sampled_from(sorted(KERNELS))
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _build_streams(workload, scheme_name="SAM-en"):
    from repro.core.registry import _NO_STRIDE

    gf = None if scheme_name in _NO_STRIDE else 8
    scheme = make_scheme(scheme_name, gather_factor=gf)
    from repro.sim.config import SystemConfig

    config = SystemConfig()
    tables = workload.materialize()
    placements = allocate_placements(scheme, tables)
    return workload.build(scheme, config, tables, placements)


@settings(max_examples=20, deadline=None)
@given(kernel_names, seeds)
def test_kernel_workload_is_deterministic(name, seed):
    """Identical (name, params, seed) -> identical digest, name and
    per-core op streams."""
    # shrink footprints so expansion stays fast under hypothesis
    params = "[n=8]" if name not in ("jacobi2d", "mxv", "doitgen") else "[n=4]"
    a = KernelWorkload.from_spec(f"{name}{params}", seed=seed)
    b = KernelWorkload.from_spec(f"{name}{params}", seed=seed)
    assert a.digest == b.digest
    assert a.name == b.name
    assert a.program() == b.program()
    assert _build_streams(a).ops_per_core == _build_streams(b).ops_per_core


def test_kernel_digest_separates_content():
    base = KernelWorkload.from_spec("strided_read[stride=256]")
    assert base.digest != KernelWorkload.from_spec(
        "strided_read[stride=512]"
    ).digest
    assert base.digest != KernelWorkload.from_spec(
        "strided_write[stride=256]"
    ).digest
    assert base.digest != dataclasses.replace(base, seed=1).digest


def test_kernel_params_canonicalize():
    """Parameter order and defaults never fork identities."""
    a = KernelWorkload.from_spec("strided_read[stride=256,elem=8]")
    b = KernelWorkload.from_spec("strided_read[elem=8,stride=256]")
    c = KernelWorkload.from_spec("strided_read[stride=256,n=512]")
    assert a == b == c
    assert a.name == "strided_read[elem=8,n=512,stride=256]"


def test_kernel_rejects_bad_specs():
    with pytest.raises(ValueError):
        KernelWorkload.from_spec("no_such_kernel")
    with pytest.raises(ValueError):
        KernelWorkload.from_spec("strided_read[bogus=1]")
    with pytest.raises(ValueError):
        KernelWorkload.from_spec("strided_read[stride=7]")  # not mult of 8
    with pytest.raises(ValueError):
        KernelWorkload.from_spec("strided_read[stride")  # malformed


def test_registry_lists_every_family():
    names = available_kernels()
    for family in ("stream_read", "stream_write", "stream_copy",
                   "strided_read", "strided_write", "strided_copy",
                   "mxv", "jacobi2d", "doitgen"):
        assert family in names


# ----------------------------------------------------------- lowering

def test_strided_kernel_lowers_to_gathers_only_with_stride_hardware():
    w = KernelWorkload.from_spec("strided_read[stride=256,n=64]")
    sam_ops = [op for ops in _build_streams(w, "SAM-en").ops_per_core
               for op in ops]
    base_ops = [op for ops in _build_streams(w, "baseline").ops_per_core
                for op in ops]
    assert any(isinstance(op, GatherLoad) for op in sam_ops)
    assert all(isinstance(op, (Load, Store)) for op in base_ops)
    # same footprint either way: every gathered element is a plain load
    # on the stride-less design
    gathered = [a for op in sam_ops if isinstance(op, GatherLoad)
                for a in op.element_addrs]
    assert sorted(gathered) == sorted(
        op.addr for op in base_ops if isinstance(op, Load)
    )


def test_stream_kernel_never_gathers():
    w = KernelWorkload.from_spec("stream_read[n=64]")
    ops = [op for ops in _build_streams(w, "SAM-en").ops_per_core
           for op in ops]
    assert all(isinstance(op, Load) for op in ops)


def test_encode_stream_words_roundtrip():
    w = KernelWorkload.from_spec("strided_read[stride=256,n=64]")
    build = _build_streams(w, "SAM-en")
    words = encode_stream(
        op for ops in build.ops_per_core for op in ops
    )
    assert words, "strided kernel should emit sload words"
    for word in words:
        assert decode(word).mnemonic == "sload"


# -------------------------------------------------------------- oracle

def test_kernel_oracle_catches_dropped_op():
    from repro.check import KernelOracle, OracleError

    w = KernelWorkload.from_spec("strided_read[stride=256,n=64]")
    scheme = make_scheme("SAM-en", gather_factor=8)
    from repro.sim.config import SystemConfig

    config = SystemConfig()
    tables = w.materialize()
    placements = allocate_placements(scheme, tables)
    build = w.build(scheme, config, tables, placements)
    # drop one op from one core: the access diff must flag it
    broken = [list(ops) for ops in build.ops_per_core]
    victim = next(i for i, ops in enumerate(broken) if ops)
    broken[victim] = broken[victim][1:]
    bad = dataclasses.replace(build, ops_per_core=broken)
    with pytest.raises(OracleError, match="kernel-accesses"):
        KernelOracle().check_build(w, scheme, bad, placements)


def test_kernel_oracle_catches_wrong_result():
    from repro.check import KernelOracle, OracleError

    w = KernelWorkload.from_spec("stream_read[n=64]")
    scheme = make_scheme("baseline")
    from repro.sim.config import SystemConfig

    config = SystemConfig()
    tables = w.materialize()
    placements = allocate_placements(scheme, tables)
    build = w.build(scheme, config, tables, placements)
    bad = dataclasses.replace(build, result="kernel:deadbeef")
    with pytest.raises(OracleError, match="kernel-result"):
        KernelOracle().check_build(w, scheme, bad, placements)


def test_kernel_oracle_accepts_clean_build():
    from repro.check import KernelOracle

    w = KernelWorkload.from_spec("mxv[n=8]")
    scheme = make_scheme("SAM-en", gather_factor=8)
    from repro.sim.config import SystemConfig

    config = SystemConfig()
    tables = w.materialize()
    placements = allocate_placements(scheme, tables)
    build = w.build(scheme, config, tables, placements)
    oracle = KernelOracle()
    oracle.check_build(w, scheme, build, placements)
    assert not oracle.mismatches


# --------------------------------------------------------- end to end

def test_kernel_result_is_scheme_invariant():
    """The differential heart: every design must compute the same bytes."""
    results = {}
    for scheme in ("baseline", "SAM-en", "masa"):
        w = KernelWorkload.from_spec("strided_copy[stride=256,n=64]")
        r = run_workload(w, scheme, check=True)
        results[scheme] = r.result
    assert len(set(results.values())) == 1
    assert next(iter(results.values())).startswith("kernel:")


def test_sam_accelerates_strided_not_stream():
    strided = KernelWorkload.from_spec("strided_read[stride=512,n=128]")
    stream = KernelWorkload.from_spec("stream_read[n=128]")
    s_base = run_workload(strided, "baseline").cycles
    s_sam = run_workload(strided, "SAM-en").cycles
    u_base = run_workload(stream, "baseline").cycles
    u_sam = run_workload(stream, "SAM-en").cycles
    assert s_base / s_sam > 2.0
    assert u_sam == u_base


# ------------------------------------------------------- sweep plumbing

def test_query_workload_matches_legacy_run():
    from repro.sim.runner import run_query

    q = by_name()["Q3"]
    tables = standard_tables(64, 64)
    workload = QueryWorkload(query=q, tables=tables)
    via_workload = run_workload(workload, "SAM-en", gather_factor=8)
    via_wrapper = run_query("SAM-en", q, build_tables(tables),
                            gather_factor=8)
    assert via_workload.cycles == via_wrapper.cycles
    assert via_workload.result == via_wrapper.result
    assert via_workload.query == "Q3"


def test_kernel_sweep_points_cache_and_digest(tmp_path):
    from repro.exp import ResultCache

    w = KernelWorkload.from_spec("strided_read[stride=256,n=64]")
    point = SweepPoint(key=("SAM-en", w.name), kind="kernel",
                       scheme="SAM-en", workload=w, gather_factor=8)
    other = dataclasses.replace(
        point, workload=KernelWorkload.from_spec(
            "strided_read[stride=512,n=64]"
        ),
    )
    assert point_digest(point, source="s") != point_digest(other, source="s")

    spec = ExperimentSpec("kern", (point,))
    cold = SweepEngine(cache=ResultCache(tmp_path)).run(spec)
    assert cold.executed == 1
    warm = SweepEngine(cache=ResultCache(tmp_path)).run(spec)
    assert warm.executed == 0 and warm.cache_hits == 1
    assert warm[point.key].cycles == cold[point.key].cycles


def test_kernel_harness_sweep_small():
    from repro.harness.kernels import KernelSweepResult, run_kernel_sweep

    result = run_kernel_sweep(designs=["SAM-en"])
    assert isinstance(result, KernelSweepResult)
    payload = result.payload()
    assert payload["kind"] == "kernel-sweep"
    strided = [k for k in result.kernels if k.startswith("strided_")]
    assert len(strided) >= 9  # >= 3 families x >= 3 stride points
    for k in strided:
        assert result.speedups["SAM-en"][k] > 1.0
        assert result.gathers["SAM-en"][k] > 0
        assert result.gathers["baseline"][k] == 0
