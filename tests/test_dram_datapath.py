"""Tests for the rank-level functional datapath: SAM's gather semantics
must be bit-exact against software strided reads, in both layouts."""

import random

import pytest

from repro.dram.datapath import (
    RankDatapath,
    pack_default,
    pack_transposed,
    unpack_default,
    unpack_transposed,
)

rng = random.Random(7)


def rand_bytes(n):
    return bytes(rng.randrange(256) for _ in range(n))


class TestGenericPackers:
    @pytest.mark.parametrize("n_chips", [2, 16])
    def test_default_roundtrip(self, n_chips):
        data = rand_bytes(n_chips * 4)
        assert unpack_default(pack_default(data, n_chips), n_chips) == data

    @pytest.mark.parametrize("n_chips", [2, 16])
    def test_transposed_roundtrip(self, n_chips):
        data = rand_bytes(n_chips * 4)
        assert (
            unpack_transposed(pack_transposed(data, n_chips), n_chips) == data
        )

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            pack_default(b"123", 16)


@pytest.fixture(params=["default", "transposed"])
def datapath(request):
    dp = RankDatapath(layout=request.param)
    lines = [rand_bytes(64) for _ in range(4)]
    parities = [rand_bytes(8) for _ in range(4)]
    for c, (line, parity) in enumerate(zip(lines, parities)):
        dp.write_line(0, 5, c, line, parity=parity)
    return dp, lines, parities


class TestGather:
    def test_gather_matches_software_strided_read(self, datapath):
        dp, lines, _ = datapath
        for sector in range(4):
            got = dp.gather_sectors(0, 5, [0, 1, 2, 3], sector)
            want = [lines[c][16 * sector : 16 * sector + 16]
                    for c in range(4)]
            assert got == want

    def test_gather_with_parity_returns_whole_codewords(self, datapath):
        dp, lines, parities = datapath
        got = dp.gather_sectors(0, 5, [0, 1, 2, 3], 2, with_parity=True)
        for j in range(4):
            data, par = got[j]
            assert data == lines[j][32:48]
            assert par == parities[j][4:6]

    def test_gather_arbitrary_column_order(self, datapath):
        dp, lines, _ = datapath
        got = dp.gather_sectors(0, 5, [3, 1, 0, 2], 0)
        assert got == [lines[3][:16], lines[1][:16], lines[0][:16],
                       lines[2][:16]]

    def test_gather_validates_arguments(self, datapath):
        dp, _, _ = datapath
        with pytest.raises(ValueError):
            dp.gather_sectors(0, 5, [0, 1], 0)
        with pytest.raises(ValueError):
            dp.gather_sectors(0, 5, [0, 1, 2, 3], 9)


class TestRegularReads:
    def test_default_layout_bus_read_is_logical(self):
        dp = RankDatapath(layout="default")
        line = rand_bytes(64)
        dp.write_line(1, 2, 3, line)
        assert dp.read_line(1, 2, 3) == line
        assert dp.read_line_logical(1, 2, 3) == line

    def test_transposed_layout_bus_read_is_permuted(self):
        """SAM-IO's CPU-side transpose cost (Section 4.2.2): the raw bus
        view differs from the stored line."""
        dp = RankDatapath(layout="transposed")
        line = rand_bytes(64)
        dp.write_line(1, 2, 3, line)
        assert dp.read_line(1, 2, 3) != line
        assert dp.read_line_logical(1, 2, 3) == line

    def test_unwritten_line_reads_zero(self):
        dp = RankDatapath()
        assert dp.read_line(0, 0, 0) == bytes(64)

    def test_parity_roundtrip(self):
        dp = RankDatapath()
        parity = rand_bytes(8)
        dp.write_line(0, 0, 0, rand_bytes(64), parity=parity)
        assert dp.read_parity(0, 0, 0) == parity

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            RankDatapath(layout="diagonal")


class TestChipkillConsistency:
    """The end-to-end reliability story: gathered sectors + parities form
    decodable SSC codewords (Section 4.1)."""

    def test_gathered_codeword_decodes(self):
        from repro.ecc.chipkill import SSCCodec

        codec = SSCCodec()
        dp = RankDatapath(layout="default")
        lines = [rand_bytes(64) for _ in range(4)]
        for c, line in enumerate(lines):
            parity = b"".join(
                codec.encode(line[16 * s : 16 * s + 16]) for s in range(4)
            )
            dp.write_line(0, 0, c, line, parity=parity)
        for sector in range(4):
            pairs = dp.gather_sectors(
                0, 0, [0, 1, 2, 3], sector, with_parity=True
            )
            for j, (data, parity) in enumerate(pairs):
                assert codec.check(data, parity)
                assert data == lines[j][16 * sector : 16 * sector + 16]
