"""Tests for the ISA extension, memory ops, and the stride-mode VM mapping."""

import pytest

from repro.cpu import isa
from repro.cpu.ops import Compute, GatherLoad, GatherStore, Load, Store
from repro.vm import (
    PAGE_SIZE,
    PageTable,
    StrideMapping,
    sam_io_mapping,
    sam_sub_mapping,
)


class TestISA:
    def test_encode_decode_sload(self):
        word = isa.encode("sload", 3, 0xDEADBEEF)
        inst = isa.decode(word)
        assert inst.mnemonic == "sload"
        assert inst.register == 3
        assert inst.address == 0xDEADBEEF
        assert inst.is_load

    def test_encode_decode_sstore(self):
        inst = isa.decode(isa.encode("sstore", 255, 0))
        assert inst.mnemonic == "sstore" and not inst.is_load

    def test_rejects_unknown_mnemonic(self):
        with pytest.raises(ValueError):
            isa.encode("sadd", 0, 0)

    def test_rejects_bad_register(self):
        with pytest.raises(ValueError):
            isa.encode("sload", 256, 0)

    def test_rejects_wide_address(self):
        with pytest.raises(ValueError):
            isa.encode("sload", 0, 1 << 48)

    def test_rejects_non_stride_opcode(self):
        with pytest.raises(ValueError):
            isa.decode(0x00 << 56)

    def test_address_roundtrip_48_bits(self):
        addr = (1 << 48) - 1
        assert isa.decode(isa.encode("sload", 1, addr)).address == addr


class TestOps:
    def test_gather_load_freezes_addresses(self):
        op = GatherLoad([1, 2, 3])
        assert op.element_addrs == (1, 2, 3)

    def test_gather_store(self):
        op = GatherStore(range(4))
        assert op.element_addrs == (0, 1, 2, 3)

    def test_load_defaults(self):
        assert Load(100).size == 8

    def test_ops_hashable(self):
        assert hash(Compute(5)) == hash(Compute(5))
        assert Load(0, 8) == Load(0, 8)


class TestStrideMapping:
    def test_mapping_is_involution(self):
        for mapping in (sam_sub_mapping(4), sam_sub_mapping(8),
                        sam_io_mapping(4), sam_io_mapping(8)):
            for addr in (0, 0x12345678, 0xFFFFFF, 1 << 35):
                assert mapping.undo(mapping.apply(addr)) == addr

    def test_segment_width_by_granularity(self):
        assert sam_sub_mapping(4).segment_bits == 3  # Figure 10
        assert sam_sub_mapping(8).segment_bits == 2
        assert sam_io_mapping(4).segment_bits == 3

    def test_swap_moves_bits(self):
        mapping = StrideMapping("t", 2, 4, 12)
        addr = 0b11 << 4  # segment bits set
        mapped = mapping.apply(addr)
        assert mapped == 0b11 << 12

    def test_sixteen_byte_offset_preserved(self):
        """The 4-bit strided-data offset is never remapped (Figure 10)."""
        mapping = sam_io_mapping(4)
        for addr in range(16):
            assert mapping.apply(addr) == addr

    def test_overlapping_segments_rejected(self):
        with pytest.raises(ValueError):
            StrideMapping("bad", 4, 4, 6)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            StrideMapping("bad", 0, 4, 12)


class TestPageTable:
    def test_translate(self):
        pt = PageTable()
        pt.map_page(5, 42)
        assert pt.translate(5 * PAGE_SIZE + 123) == 42 * PAGE_SIZE + 123

    def test_page_fault(self):
        pt = PageTable()
        with pytest.raises(KeyError):
            pt.translate(0)

    def test_translate_stride_applies_mapping(self):
        mapping = sam_io_mapping(4)
        pt = PageTable(mapping)
        pt.map_page(0, 0)
        vaddr = 0b101 << 4  # lands in the swapped segment
        assert pt.translate_stride(vaddr) == mapping.apply(vaddr)

    def test_translate_stride_without_mapping(self):
        pt = PageTable()
        pt.map_page(0, 0)
        with pytest.raises(RuntimeError):
            pt.translate_stride(0)

    def test_stride_translation_is_bijective_within_frame(self):
        """Remapped addresses must not collide (it is a permutation)."""
        pt = PageTable(sam_sub_mapping(4))
        pt.map_page(0, 0)
        seen = {pt.translate_stride(a) for a in range(0, PAGE_SIZE, 16)}
        assert len(seen) == PAGE_SIZE // 16
