"""Tests for cycle-accounting stall attribution and the structured
queue-full error."""

import pytest

from repro.dram import (
    AddressMapper,
    ControllerConfig,
    DDR4_2400,
    MemoryController,
    Request,
    RequestType,
)
from repro.dram.controller import QueueFullError
from repro.workloads import make_tables
from repro.imdb.sql import parse
from repro.kernel import Kernel
from repro.obs import Observation
from repro.obs.metrics import MetricsRegistry
from repro.obs.stalls import (
    BUSY,
    DRAM_SERVICE,
    MEM_WAIT,
    STALL_REASONS,
    TRCD,
    CoreStallLog,
    StallAttributor,
    StallLedger,
    merge_breakdown,
    render_stall_report,
)
from repro.sim.runner import run_query


def _query(sql="SELECT SUM(f9) FROM Ta WHERE f10 > 7500"):
    return parse(sql, name="t")


# ----------------------------------------------------------- CoreStallLog


class TestCoreStallLog:
    def test_busy_coalesces_contiguous(self):
        log = CoreStallLog(0)
        log.note_busy(0, 5)
        log.note_busy(5, 9)  # touches the previous interval
        assert log.busy == [[0, 9]]
        assert log.busy_cycles == 9

    def test_busy_ignores_empty(self):
        log = CoreStallLog(0)
        log.note_busy(7, 7)
        log.note_busy(8, 3)
        assert log.busy == []

    def test_open_block_idempotent(self):
        log = CoreStallLog(0)
        log.open_block(10, MEM_WAIT)
        log.open_block(12, "queue_full")  # ignored: already open
        log.close_block(20)
        assert log.blocks == [[10, 20, MEM_WAIT]]

    def test_close_without_open_is_noop(self):
        log = CoreStallLog(0)
        log.close_block(5)
        assert log.blocks == []

    def test_adjacent_same_reason_blocks_coalesce(self):
        log = CoreStallLog(0)
        log.open_block(0, MEM_WAIT)
        log.close_block(4)
        log.open_block(4, MEM_WAIT)
        log.close_block(9)
        assert log.blocks == [[0, 9, MEM_WAIT]]


# ------------------------------------------------------------ StallLedger


class TestStallLedger:
    def test_note_orders_and_merges(self):
        ledger = StallLedger()
        ledger.note(0, 5, TRCD)
        ledger.note(5, 8, TRCD)  # same reason, contiguous -> merged
        assert ledger.entries == [[0, 8, TRCD]]

    def test_note_truncates_stale_tail(self):
        # a submit() can wake the controller inside a recorded wait: the
        # old wait ends the moment the controller re-evaluates
        ledger = StallLedger()
        ledger.note(0, 20, TRCD)
        ledger.note(6, 10, "refresh")
        assert ledger.entries == [[0, 6, TRCD], [6, 10, "refresh"]]

    def test_overlay_partitions_with_gaps(self):
        ledger = StallLedger()
        ledger.note(10, 14, TRCD)
        out = ledger.overlay(8, 20)
        assert out == {TRCD: 4, DRAM_SERVICE: 8}
        assert sum(out.values()) == 12

    def test_overlay_empty_window(self):
        assert StallLedger().overlay(5, 5) == {}


# -------------------------------------------------- conservation (tier-1)


class TestConservation:
    """busy + attributed stalls == finish - start, exactly, per core."""

    @pytest.mark.parametrize("scheme", ["baseline", "SAM-en", "SAM-sub"])
    def test_per_core_cycles_sum_exactly(self, scheme):
        obs = Observation()
        result = run_query(scheme, _query(), make_tables(256, 256),
                           observe=obs)
        assert result.stalls is not None
        per_core = result.stalls["per_core"]
        assert per_core, "no cores attributed"
        for core_id, breakdown in per_core.items():
            total = breakdown["total"]
            attributed = sum(v for k, v in breakdown.items()
                             if k != "total")
            assert attributed == total, (
                f"core {core_id}: {attributed} != {total}: {breakdown}"
            )
            assert "unaccounted" not in breakdown, breakdown

    def test_merged_matches_per_core(self):
        obs = Observation()
        result = run_query("baseline", _query(), make_tables(128, 128),
                           observe=obs)
        per_core = result.stalls["per_core"]
        merged = result.stalls["merged"]
        assert merged == merge_breakdown(per_core)
        assert merged["total"] == sum(
            b["total"] for b in per_core.values()
        )

    def test_stall_gauges_published(self):
        obs = Observation()
        result = run_query("baseline", _query(), make_tables(128, 128),
                           observe=obs)
        assert result.metrics["stalls.total"] > 0
        assert result.metrics["stalls.busy"] > 0

    def test_mode_switch_bucket_appears_for_sam(self):
        # SAM-en on a strided query must pay MRS + tMOD_IO switches
        obs = Observation()
        result = run_query(
            "SAM-en",
            _query("SELECT f3 FROM Ta WHERE f10 > 7500"),
            make_tables(256, 256), observe=obs,
        )
        merged = result.stalls["merged"]
        assert merged.get("mode_switch", 0) > 0

    def test_reason_names_stay_in_taxonomy(self):
        obs = Observation()
        result = run_query("SAM-sub", _query(), make_tables(256, 256),
                           observe=obs)
        allowed = set(STALL_REASONS) | {"total"}
        for breakdown in result.stalls["per_core"].values():
            assert set(breakdown) <= allowed, set(breakdown) - allowed


# -------------------------------------------------------------- reporting


class TestReporting:
    def test_render_has_reason_rows_and_share(self):
        per_core = {
            0: {BUSY: 60, TRCD: 40, "total": 100},
            1: {BUSY: 30, DRAM_SERVICE: 70, "total": 100},
        }
        text = render_stall_report(per_core)
        assert "core0" in text and "core1" in text
        assert "busy" in text and "trcd" in text
        assert "%" in text
        assert text.splitlines()[-1].startswith("total")

    def test_render_empty(self):
        assert render_stall_report({}) == "(no cores)"

    def test_unknown_reason_still_rendered(self):
        per_core = {0: {BUSY: 1, "unaccounted": 2, "total": 3}}
        assert "unaccounted" in render_stall_report(per_core)


# --------------------------------------------------------- QueueFullError


class TestQueueFullError:
    def _fill(self, metrics=None):
        kernel = Kernel()
        mc = MemoryController(
            kernel, DDR4_2400,
            config=ControllerConfig(read_queue_capacity=2,
                                    refresh_enabled=False),
        )
        mc.metrics = metrics
        mapper = AddressMapper(mc.geometry)
        done = []
        for i in range(2):
            mc.submit(Request(
                addr=mapper.decode(i * 4096),
                type=RequestType.READ,
                on_complete=lambda r, t: done.append(t),
            ))
        overflow = Request(
            addr=mapper.decode(3 * 4096),
            type=RequestType.READ,
            on_complete=lambda r, t: done.append(t),
            source_core=3,
        )
        with pytest.raises(QueueFullError) as info:
            mc.submit(overflow)
        return info.value

    def test_structured_fields(self):
        err = self._fill()
        assert err.kind == "read"
        assert err.capacity == 2
        assert err.core == 3
        assert err.cycle == 0
        assert "read queue full" in str(err)
        assert "capacity 2" in str(err)
        assert "core 3" in str(err)

    def test_is_runtime_error(self):
        # callers catching the old RuntimeError keep working
        assert issubclass(QueueFullError, RuntimeError)

    def test_reject_counter(self):
        reg = MetricsRegistry()
        self._fill(metrics=reg)
        assert reg.value("controller.queue_full_rejects") == 1


# ---------------------------------------------------------- unit overlay


class TestAttributorUnit:
    def test_mem_wait_overlays_ledger(self):
        class FakeCore:
            core_id = 0
            start_cycle = 0
            finish_cycle = 10

        attr = StallAttributor()
        log = attr.core_log(0)
        log.note_busy(0, 4)
        log.open_block(4, MEM_WAIT)
        attr.ledger.note(4, 7, TRCD)
        out = attr.attribute([FakeCore()])
        breakdown = out[0]
        assert breakdown[BUSY] == 4
        assert breakdown[TRCD] == 3
        assert breakdown[DRAM_SERVICE] == 3  # ledger gap 7..10
        assert breakdown["total"] == 10
        assert "unaccounted" not in breakdown

    def test_unaccounted_surfaces_gap(self):
        class FakeCore:
            core_id = 1
            start_cycle = 0
            finish_cycle = 10

        attr = StallAttributor()
        log = attr.core_log(1)
        log.note_busy(0, 4)  # cycles 4..10 never logged as anything
        out = attr.attribute([FakeCore()])
        assert out[1]["unaccounted"] == 6
