"""Tests for the discrete-event kernel."""

import pytest

from repro.kernel import Kernel, SimulationError


def test_runs_events_in_time_order():
    k = Kernel()
    order = []
    k.schedule(5, lambda: order.append("b"))
    k.schedule(1, lambda: order.append("a"))
    k.schedule(9, lambda: order.append("c"))
    k.run()
    assert order == ["a", "b", "c"]
    assert k.now == 9


def test_same_time_events_run_in_schedule_order():
    k = Kernel()
    order = []
    for tag in "abc":
        k.schedule(3, lambda t=tag: order.append(t))
    k.run()
    assert order == ["a", "b", "c"]


def test_schedule_at_absolute_time():
    k = Kernel()
    seen = []
    k.schedule_at(7, lambda: seen.append(k.now))
    k.run()
    assert seen == [7]


def test_cannot_schedule_in_past():
    k = Kernel()
    k.schedule(2, lambda: None)
    k.run()
    assert k.now == 2
    with pytest.raises(SimulationError):
        k.schedule_at(1, lambda: None)


def test_negative_delay_rejected():
    k = Kernel()
    with pytest.raises(SimulationError):
        k.schedule(-1, lambda: None)


def test_events_can_schedule_more_events():
    k = Kernel()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            k.schedule(2, lambda: chain(n + 1))

    k.schedule(0, lambda: chain(0))
    k.run()
    assert seen == [0, 1, 2, 3]
    assert k.now == 6


def test_run_until_leaves_future_events_queued():
    k = Kernel()
    seen = []
    k.schedule(1, lambda: seen.append(1))
    k.schedule(10, lambda: seen.append(10))
    executed = k.run(until=5)
    assert seen == [1]
    assert executed == 1
    assert k.pending() == 1
    k.run()
    assert seen == [1, 10]


def test_max_events_guard():
    k = Kernel()

    def forever():
        k.schedule(1, forever)

    k.schedule(0, forever)
    with pytest.raises(SimulationError):
        k.run(max_events=100)


def test_step_returns_false_when_empty():
    k = Kernel()
    assert not k.step()


def test_step_advances_time():
    k = Kernel()
    k.schedule(4, lambda: None)
    assert k.step()
    assert k.now == 4


# ---------------------------------------------------- token API (cancel/peek)

def test_cancel_prevents_execution_and_counts():
    k = Kernel()
    seen = []
    token = k.schedule(3, lambda: seen.append("x"))
    k.schedule(5, lambda: seen.append("y"))
    assert k.cancel(token)
    assert not k.cancel(token)  # idempotent: already cancelled
    assert k.cancelled == 1
    k.run()
    assert seen == ["y"]
    assert k.events == 1  # cancelled events never count as executed


def test_cancel_after_run_returns_false():
    k = Kernel()
    token = k.schedule(1, lambda: None)
    k.run()
    assert not k.cancel(token)
    assert k.cancelled == 0


def test_peek_reports_next_live_deadline():
    k = Kernel()
    assert k.peek() is None
    t1 = k.schedule(4, lambda: None)
    k.schedule(9, lambda: None)
    assert k.peek() == 4
    k.cancel(t1)
    # the cancelled head is dropped as a side effect of peeking
    assert k.peek() == 9
    assert k.pending() == 1


def test_reschedule_preserves_fifo_position():
    """A rescheduled event keeps its original same-timestamp sequence
    position: retiming never reorders it against peers scheduled later."""
    k = Kernel()
    order = []
    early = k.schedule(10, lambda: order.append("early"))
    k.schedule(10, lambda: order.append("late"))
    moved = k.reschedule(early, 2)
    k.reschedule(moved, 10)  # back to the contested timestamp
    k.run()
    assert order == ["early", "late"]


def test_reschedule_rejects_dead_token_and_past_time():
    k = Kernel()
    token = k.schedule(5, lambda: None)
    k.cancel(token)
    with pytest.raises(SimulationError):
        k.reschedule(token, 7)
    live = k.schedule(5, lambda: None)
    k.schedule(2, lambda: None)
    k.run(until=3)
    with pytest.raises(SimulationError):
        k.reschedule(live, 1)


# ------------------------------------------------------- hypothesis properties

import hypothesis.strategies as st
from hypothesis import given, settings

_delays = st.lists(st.integers(min_value=0, max_value=30),
                   min_size=1, max_size=40)


@given(_delays)
@settings(max_examples=60, deadline=None)
def test_property_same_timestamp_fifo(delays):
    """Events run sorted by time; equal timestamps preserve scheduling
    order (FIFO) -- the ordering contract the event-wheel equivalence
    guarantee leans on."""
    k = Kernel()
    ran = []
    for i, d in enumerate(delays):
        k.schedule(d, lambda i=i, d=d: ran.append((d, i)))
    executed = k.run()
    assert executed == len(delays)
    assert ran == sorted(ran)  # time-major, scheduling-index-minor
    assert k.events == len(delays)


@given(_delays, st.integers(min_value=0, max_value=35))
@settings(max_examples=60, deadline=None)
def test_property_until_boundary(delays, until):
    """run(until=T) executes exactly the events with timestamp <= T and
    leaves the rest queued."""
    k = Kernel()
    ran = []
    for d in delays:
        k.schedule(d, lambda d=d: ran.append(d))
    executed = k.run(until=until)
    expected = [d for d in sorted(delays) if d <= until]
    assert ran == expected
    assert executed == len(expected)
    assert k.pending() == len(delays) - len(expected)
    k.run()
    assert len(ran) == len(delays)


@given(_delays, st.integers(min_value=0, max_value=45))
@settings(max_examples=60, deadline=None)
def test_property_max_events_boundary(delays, budget):
    """run(max_events=N) executes at most N events; exceeding the budget
    raises instead of silently truncating."""
    k = Kernel()
    for d in delays:
        k.schedule(d, lambda: None)
    if budget >= len(delays):
        assert k.run(max_events=budget) == len(delays)
    else:
        with pytest.raises(SimulationError):
            k.run(max_events=budget)
        assert k.events == budget


@given(_delays)
@settings(max_examples=60, deadline=None)
def test_property_schedule_in_past_rejected(delays):
    """After time advances, scheduling strictly before now always raises
    and scheduling at now always succeeds."""
    k = Kernel()
    for d in delays:
        k.schedule(d, lambda: None)
    k.run()
    assert k.now == max(delays)
    if k.now > 0:
        with pytest.raises(SimulationError):
            k.schedule_at(k.now - 1, lambda: None)
    token = k.schedule_at(k.now, lambda: None)
    assert token[0] == k.now
    k.run()


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_property_cancel_peek_invariants(data):
    """Random cancels: peek always reports the earliest *live* event,
    pending() tracks live count exactly, and only live events execute."""
    delays = data.draw(_delays)
    k = Kernel()
    ran = []
    tokens = [k.schedule(d, lambda d=d: ran.append(d)) for d in delays]
    drop = data.draw(st.sets(
        st.integers(min_value=0, max_value=len(tokens) - 1)
    ))
    for i in sorted(drop):
        assert k.cancel(tokens[i])
    live = [d for i, d in enumerate(delays) if i not in drop]
    assert k.pending() == len(live)
    assert k.cancelled == len(drop)
    assert k.peek() == (min(live) if live else None)
    executed = k.run()
    assert executed == len(live)
    assert ran == sorted(live)
    assert k.events == len(live)
