"""Tests for the discrete-event kernel."""

import pytest

from repro.kernel import Kernel, SimulationError


def test_runs_events_in_time_order():
    k = Kernel()
    order = []
    k.schedule(5, lambda: order.append("b"))
    k.schedule(1, lambda: order.append("a"))
    k.schedule(9, lambda: order.append("c"))
    k.run()
    assert order == ["a", "b", "c"]
    assert k.now == 9


def test_same_time_events_run_in_schedule_order():
    k = Kernel()
    order = []
    for tag in "abc":
        k.schedule(3, lambda t=tag: order.append(t))
    k.run()
    assert order == ["a", "b", "c"]


def test_schedule_at_absolute_time():
    k = Kernel()
    seen = []
    k.schedule_at(7, lambda: seen.append(k.now))
    k.run()
    assert seen == [7]


def test_cannot_schedule_in_past():
    k = Kernel()
    k.schedule(2, lambda: None)
    k.run()
    assert k.now == 2
    with pytest.raises(SimulationError):
        k.schedule_at(1, lambda: None)


def test_negative_delay_rejected():
    k = Kernel()
    with pytest.raises(SimulationError):
        k.schedule(-1, lambda: None)


def test_events_can_schedule_more_events():
    k = Kernel()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            k.schedule(2, lambda: chain(n + 1))

    k.schedule(0, lambda: chain(0))
    k.run()
    assert seen == [0, 1, 2, 3]
    assert k.now == 6


def test_run_until_leaves_future_events_queued():
    k = Kernel()
    seen = []
    k.schedule(1, lambda: seen.append(1))
    k.schedule(10, lambda: seen.append(10))
    executed = k.run(until=5)
    assert seen == [1]
    assert executed == 1
    assert k.pending() == 1
    k.run()
    assert seen == [1, 10]


def test_max_events_guard():
    k = Kernel()

    def forever():
        k.schedule(1, forever)

    k.schedule(0, forever)
    with pytest.raises(SimulationError):
        k.run(max_events=100)


def test_step_returns_false_when_empty():
    k = Kernel()
    assert not k.step()


def test_step_advances_time():
    k = Kernel()
    k.schedule(4, lambda: None)
    assert k.step()
    assert k.now == 4
