"""Tests for the system glue: MSHR, fetch/gather paths, cores, runner."""

import pytest

from repro.core import make_scheme
from repro.cpu.core import Core, CoreConfig
from repro.cpu.ops import Compute, GatherLoad, GatherStore, Load, Store
from repro.imdb import TA, TB, Table, by_name
from repro.kernel import Kernel
from repro.sim import MemorySystem, SystemConfig, run_ideal, run_query


def make_system(scheme_name="baseline", **kw):
    kernel = Kernel()
    scheme = make_scheme(scheme_name, **kw)
    system = MemorySystem(kernel, scheme, SystemConfig())
    return kernel, system


class TestMemorySystem:
    def test_sectorize(self):
        _, system = make_system()
        line, mask = system.sectorize(100, 8)
        assert line == 64 and mask == 0b0100  # bytes 36..44 -> sector 2

    def test_fetch_fills_whole_line(self):
        kernel, system = make_system()
        done = []
        assert system.issue_fetch(0, 0, 0b0001, lambda: done.append(1))
        kernel.run()
        assert done == [1]
        # every sector valid after a 64B fetch
        res = system.lookup(0, 0, 0b1111)
        assert res.missing_mask == 0

    def test_mshr_merges_duplicate_fetches(self):
        kernel, system = make_system()
        done = []
        system.issue_fetch(0, 0, 0b0001, lambda: done.append("a"))
        system.issue_fetch(1, 0, 0b0010, lambda: done.append("b"))
        assert system.stats.demand_fetches == 1
        assert system.stats.merged_fetches == 1
        kernel.run()
        assert sorted(done) == ["a", "b"]

    def test_gather_fills_sectors_across_lines(self):
        kernel, system = make_system("SAM-en")
        done = []
        addrs = [i * 1024 + 80 for i in range(8)]
        assert system.issue_gather(0, addrs, lambda: done.append(1))
        kernel.run()
        assert done == [1]
        assert system.gather_cached(0, addrs)
        # but other sectors of those lines are still invalid
        res = system.lookup(0, 1024, 0b11111111)
        assert res.missing_mask != 0

    def test_gather_fallback_for_baseline(self):
        kernel, system = make_system("baseline")
        done = []
        addrs = [0, 64]
        assert system.issue_gather(0, addrs, lambda: done.append(1))
        kernel.run()
        assert done == [1]
        assert system.stats.gather_fallback_requests == 2

    def test_streaming_store(self):
        kernel, system = make_system()
        assert system.issue_store_line(0, 0)
        kernel.run()
        assert system.controller.stats.writes == 1
        assert system.outstanding_writes == 0

    def test_gather_store_updates_cached_copies(self):
        kernel, system = make_system("SAM-en")
        system.issue_fetch(0, 1024, 0b1, lambda: None)
        kernel.run()
        addrs = [i * 1024 + 80 for i in range(8)]
        assert system.issue_gather_store(0, addrs)
        kernel.run()
        assert system.controller.stats.gather_writes >= 1

    def test_gather_store_rejected_without_stride(self):
        _, system = make_system("baseline")
        with pytest.raises(RuntimeError):
            system.issue_gather_store(0, [0, 64])

    def test_eviction_writebacks_reach_memory(self):
        kernel, system = make_system()
        # dirty a line, then evict it by fetching its whole LLC set
        system.hierarchy.complete_write_fill(0, 0, 0b1111)
        llc = system.hierarchy.llc
        sets = llc.num_sets
        for i in range(1, llc.ways + 1):
            system.issue_fetch(0, i * sets * 64, 0b1111, lambda: None)
            kernel.run()
        assert system.stats.writebacks >= 1
        kernel.run()
        assert system.controller.stats.writes >= 1

    def test_fully_drained(self):
        kernel, system = make_system()
        assert system.fully_drained
        system.issue_store_line(0, 0)
        assert not system.fully_drained
        kernel.run()
        assert system.fully_drained


class TestCore:
    def run_ops(self, ops, scheme="baseline"):
        kernel, system = make_system(scheme)
        core = Core(kernel, 0, system, CoreConfig())
        core.run(ops)
        kernel.run(max_events=1_000_000)
        assert core.finished
        return kernel, system, core

    def test_compute_advances_time(self):
        kernel, _, _ = self.run_ops([Compute(100)])
        assert kernel.now >= 100

    def test_load_miss_then_hit(self):
        # the compute gap lets the fill land; the second load hits
        _, _, core = self.run_ops([Load(0, 8), Compute(200), Load(8, 8)])
        assert core.misses == 1 and core.hits == 1

    def test_back_to_back_loads_merge_in_mshr(self):
        """A non-blocking core issues the second load before the first
        fill returns; the MSHR merges them into one memory request."""
        _, system, core = self.run_ops([Load(0, 8), Load(8, 8)])
        assert core.misses == 2
        assert system.stats.demand_fetches == 1
        assert system.stats.merged_fetches == 1

    def test_mlp_limits_outstanding(self):
        """With MLP=2 the core cannot have more than 2 misses in flight."""
        kernel, system = make_system()
        core = Core(kernel, 0, system, CoreConfig(mlp=2))
        core.run([Load(i * 4096, 8) for i in range(8)])
        max_inflight = 0

        def probe():
            nonlocal max_inflight
            max_inflight = max(max_inflight, core._inflight)
            if not core.finished:
                kernel.schedule(1, probe)

        kernel.schedule_at(0, probe)
        kernel.run(max_events=100000)
        assert core.finished
        assert max_inflight <= 2

    def test_gather_load_counts(self):
        _, _, core = self.run_ops(
            [GatherLoad([i * 1024 + 80 for i in range(8)])], scheme="SAM-en"
        )
        assert core.gathers == 1 and core.misses == 1

    def test_gather_hit_after_fill(self):
        addrs = [i * 1024 + 80 for i in range(8)]
        _, _, core = self.run_ops(
            [GatherLoad(addrs), Compute(200), GatherLoad(addrs)],
            scheme="SAM-en",
        )
        assert core.hits == 1

    def test_partial_store_rfo(self):
        _, system, core = self.run_ops([Store(0, 8)])
        # read-for-ownership fetch happened, then the line is dirty
        assert system.controller.stats.reads == 1
        dirty = system.hierarchy.flush_dirty()
        assert dirty

    def test_full_line_store_streams(self):
        _, system, core = self.run_ops([Store(0, 64)])
        assert system.controller.stats.reads == 0
        assert system.controller.stats.writes == 1


class TestRunner:
    def tables(self, n=64):
        return {"Ta": Table(TA, n, seed=1), "Tb": Table(TB, n, seed=2)}

    def test_run_query_returns_result(self):
        r = run_query("baseline", by_name()["Q3"], self.tables())
        assert r.cycles > 0
        assert r.scheme == "baseline" and r.query == "Q3"
        assert isinstance(r.result, dict)

    def test_results_identical_across_schemes(self):
        expected = None
        for scheme in ("baseline", "column-store", "SAM-en", "GS-DRAM-ecc"):
            r = run_query(scheme, by_name()["Q3"], self.tables())
            if expected is None:
                expected = r.result
            assert r.result == expected

    def test_run_ideal_picks_store(self):
        r_col = run_ideal(by_name()["Q3"], self.tables())
        assert r_col.scheme == "ideal"
        r_row = run_ideal(by_name()["Qs1"], self.tables())
        assert r_row.scheme == "ideal"

    def test_power_attached(self):
        r = run_query("SAM-en", by_name()["Q3"], self.tables())
        assert r.power.total_nj > 0
        assert r.power.total_mw > 0

    def test_speedup_helper(self):
        base = run_query("baseline", by_name()["Q3"], self.tables(256))
        sam = run_query("SAM-en", by_name()["Q3"], self.tables(256))
        assert sam.speedup_over(base) > 1.0

    def test_gather_factor_override(self):
        r = run_query(
            "SAM-en", by_name()["Q3"], self.tables(), gather_factor=4
        )
        assert r.cycles > 0

    def test_core_stats_collected(self):
        r = run_query("baseline", by_name()["Q1"], self.tables())
        assert r.core_stats["loads"] > 0
