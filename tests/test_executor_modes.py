"""Tests for the planner's access-mode choice and gather derating."""

import pytest

from repro.core import make_scheme
from repro.cpu.ops import GatherLoad, Load
from repro.imdb import QueryExecutor, TA, TB, Table, TableSchema
from repro.imdb.query import Predicate, SelectQuery
from repro.imdb.queries import aggregate_query, arithmetic_query
from repro.sim.config import SystemConfig
from repro.sim.runner import allocate_placements


def make_executor(scheme_name, ta=None):
    scheme = make_scheme(scheme_name)
    tables = {
        "Ta": ta or Table(TA, 64, seed=1),
        "Tb": Table(TB, 64, seed=2),
    }
    placements = allocate_placements(scheme, tables)
    return (
        QueryExecutor(scheme, SystemConfig(), tables, placements),
        tables,
    )


def op_kinds(output):
    return {type(op) for ops in output.ops_per_core for op in ops}


class TestEffectiveGather:
    def test_row_constrained_gather_derates_with_record_size(self):
        ex, _ = make_executor("SAM-en")
        assert ex.planner.effective_gather(ex.tables["Ta"]) == 8  # 1KB records
        big = Table(TableSchema("Big", 1024), 16, seed=3)  # 8KB records
        ex2, _ = make_executor(
            "SAM-en", ta=big
        )
        assert ex2.planner.effective_gather(big) == 1

    def test_vertical_gather_not_derated(self):
        big = Table(TableSchema("Big", 1024), 16, seed=3)
        ex, _ = make_executor("SAM-sub", ta=big)
        assert ex.planner.effective_gather(big) == 8


class TestModeChoice:
    def test_low_projectivity_uses_stride(self):
        ex, tables = make_executor("SAM-en")
        assert ex.planner.stride_worthwhile(tables["Ta"], [10], [3, 4], 0.25)

    def test_cost_model_prefers_sparse_projections(self):
        """The advantage shrinks as projectivity rises: at full
        projectivity on 1KB records the two modes cost about the same."""
        ex, tables = make_executor("SAM-en")
        ta = tables["Ta"]
        assert ex.planner.stride_worthwhile(ta, [10], [3, 4], 0.25)
        # dense case: within 20% of the row cost (a wash, not a win)
        g = ex.planner.effective_gather(ta)
        col = (1 + 128) / g
        row = 1 + min(16, 16)
        assert col == pytest.approx(row, rel=0.2)

    def test_huge_records_fall_back_to_rows(self):
        big = Table(TableSchema("Big", 1024), 16, seed=3)
        ex, _ = make_executor("SAM-en", ta=big)
        # with one element per gather, stride mode has no advantage even
        # at high projectivity
        assert not ex.planner.stride_worthwhile(
            big, [0], list(range(512)), 1.0
        )

    def test_baseline_never_strides(self):
        ex, tables = make_executor("baseline")
        assert not ex.planner.stride_worthwhile(tables["Ta"], [10], [3], 0.25)

    def test_full_projection_on_huge_records_emits_plain_loads(self):
        big = Table(TableSchema("Big", 1024), 16, seed=3)
        ex, _ = make_executor("SAM-en", ta=big)
        query = SelectQuery(
            "full", "Ta", tuple(range(1024)), Predicate.where(0, "<", 1.0)
        )
        out = ex.build(query)
        assert GatherLoad not in op_kinds(out)

    def test_sparse_projection_query_emits_gathers_on_sam(self):
        ex, tables = make_executor("SAM-en")
        query = arithmetic_query(4, 0.25)
        out = ex.build(query)
        assert GatherLoad in op_kinds(out)


class TestAggregateExecution:
    def test_field_at_a_time_coalesces_segments(self):
        ex, _ = make_executor("SAM-en")
        merged = ex.lowering.coalesce([(0, 8), (8, 16), (32, 40)])
        assert merged == [(0, 16), (32, 40)]

    def test_aggregate_emits_fewer_operator_rounds(self):
        """Field-at-a-time aggregates issue long per-field runs on
        vertical layouts (RC-NVM's 64-record chunks coalesce), which is
        what amortizes the column-to-column switches of Figure 15(g)."""
        ex, _ = make_executor("RC-NVM-wd", ta=Table(TA, 512, seed=1))
        out = ex.build(aggregate_query(2, 1.0))
        found = False
        for ops in out.ops_per_core:
            gathers = [op for op in ops if isinstance(op, GatherLoad)]
            if len(gathers) < 12:
                continue
            found = True
            # consecutive gathers mostly share their field (sector offset)
            offsets = [g.element_addrs[0] % 1024 for g in gathers]
            changes = sum(
                1 for a, b in zip(offsets, offsets[1:]) if a != b
            )
            assert changes < len(offsets) / 2
        assert found
