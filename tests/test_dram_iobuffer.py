"""Tests for the functional I/O-buffer path (Figures 3, 7, 8, 9)."""

import random

import pytest

from repro.dram.iobuffer import (
    IOModeRegister,
    block_column,
    deserialize_stride_fine,
    deserialize_x4,
    lane,
    pack_line_default,
    pack_line_transposed,
    serialize_stride,
    serialize_stride_2d,
    serialize_stride_fine,
    serialize_x4,
    unpack_line_default,
    unpack_line_transposed,
    with_lane,
)

rng = random.Random(1234)


def random_line():
    return bytes(rng.randrange(256) for _ in range(64))


def random_block():
    return rng.randrange(1 << 32)


class TestLanes:
    def test_lane_extraction(self):
        block = 0xDDCCBBAA
        assert lane(block, 0) == 0xAA
        assert lane(block, 3) == 0xDD

    def test_with_lane(self):
        block = with_lane(0, 2, 0x5A)
        assert lane(block, 2) == 0x5A
        assert lane(block, 0) == 0

    def test_lane_out_of_range(self):
        with pytest.raises(ValueError):
            lane(0, 4)

    def test_block_column_is_two_bits_per_lane(self):
        # column n gathers bits {2n, 2n+1} of each lane (Figure 8(b))
        block = with_lane(0, 0, 0b11)  # lane 0 bits 0,1 set
        assert block_column(block, 0) == 0b11
        assert block_column(block, 1) == 0


class TestSerialization:
    def test_x4_roundtrip(self):
        for _ in range(50):
            block = random_block()
            assert deserialize_x4(serialize_x4(block)) == block

    def test_x4_beats_are_nibbles(self):
        beats = serialize_x4(random_block())
        assert len(beats) == 8
        assert all(0 <= b < 16 for b in beats)

    def test_stride_serializer_sends_one_lane_per_buffer(self):
        buffers = [with_lane(0, 2, 0x10 + j) for j in range(4)]
        beats = serialize_stride(buffers, 2)
        # DQ j carries lane 2 of buffer j; reassemble and check
        for j in range(4):
            value = 0
            for k, beat in enumerate(beats):
                value |= ((beat >> j) & 1) << k
            assert value == 0x10 + j

    def test_stride_needs_four_buffers(self):
        with pytest.raises(ValueError):
            serialize_stride([0, 0], 0)

    def test_2d_serializer_sends_column_per_buffer(self):
        buffers = [random_block() for _ in range(4)]
        for n in range(4):
            beats = serialize_stride_2d(buffers, n)
            for j in range(4):
                value = 0
                for k, beat in enumerate(beats):
                    value |= ((beat >> j) & 1) << k
                assert value == block_column(buffers[j], n)

    def test_fine_granularity_four_symbols_on_two_dqs(self):
        buffers = [with_lane(0, 0, j + 1) for j in range(4)]
        beats = serialize_stride_fine(buffers, 0)
        symbols = deserialize_stride_fine(beats)
        assert symbols == [1, 2, 3, 4]

    def test_fine_granularity_upper_dqs_idle(self):
        buffers = [random_block() for _ in range(4)]
        beats = serialize_stride_fine(buffers, 0)
        assert all(beat < 4 for beat in beats)  # only DQ0/DQ1 toggle

    def test_fine_granularity_lane_pair_selection(self):
        buffers = [with_lane(0, 2, 0xF) for _ in range(4)]
        assert deserialize_stride_fine(
            serialize_stride_fine(buffers, 1)
        ) == [0xF & 0xF] * 4


class TestLinePacking:
    def test_default_roundtrip(self):
        for _ in range(20):
            line = random_line()
            assert unpack_line_default(pack_line_default(line)) == line

    def test_transposed_roundtrip(self):
        for _ in range(20):
            line = random_line()
            assert unpack_line_transposed(pack_line_transposed(line)) == line

    def test_default_layout_codeword_spans_two_beats(self):
        """Figure 4(b): sector s occupies beats 2s, 2s+1 of all chips."""
        line = bytearray(64)
        line[0:16] = bytes(range(1, 17))  # only sector 0 nonzero
        blocks = pack_line_default(bytes(line))
        for block in blocks:
            for l in range(4):
                # lane bits for beats 2..7 must be zero
                assert lane(block, l) >> 2 == 0

    def test_transposed_layout_lane_is_symbol(self):
        """Figure 4(c): sector n maps to lane n of every chip."""
        line = bytearray(64)
        line[16:32] = bytes(range(1, 17))  # only sector 1 nonzero
        blocks = pack_line_transposed(bytes(line))
        for block in blocks:
            assert lane(block, 0) == 0
            assert lane(block, 2) == 0
            assert lane(block, 3) == 0

    def test_layouts_differ_on_bus(self):
        line = random_line()
        assert pack_line_default(line) != pack_line_transposed(line)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            pack_line_default(b"short")


class TestModeRegister:
    def test_default_x4(self):
        reg = IOModeRegister()
        assert reg.enabled_drivers == (0, 1, 2, 3)
        assert not reg.is_stride

    def test_stride_modes_drive_one_lane_per_buffer(self):
        reg = IOModeRegister()
        reg.set_mode("Sx4_3")
        assert reg.enabled_drivers == (3, 7, 11, 15)  # Figure 7's table
        assert reg.is_stride and reg.stride_lane == 3

    def test_x16_enables_all_drivers(self):
        reg = IOModeRegister()
        reg.set_mode("x16")
        assert reg.enabled_drivers == tuple(range(16))

    def test_register_is_one_hot(self):
        reg = IOModeRegister()
        for mode in ("x4", "x8", "x16", "Sx4_0", "Sx4_1", "Sx4_2", "Sx4_3"):
            reg.set_mode(mode)
            assert bin(reg.bits).count("1") == 1

    def test_unknown_mode_rejected(self):
        reg = IOModeRegister()
        with pytest.raises(ValueError):
            reg.set_mode("x32")

    def test_stride_lane_on_regular_mode_raises(self):
        reg = IOModeRegister()
        with pytest.raises(ValueError):
            _ = reg.stride_lane
