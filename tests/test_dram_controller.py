"""Tests for the cycle-level memory controller."""

import pytest

from repro.dram import (
    AddressMapper,
    ControllerConfig,
    DDR4_2400,
    IOMode,
    MemoryController,
    Request,
    RequestType,
    RowKind,
)
from repro.kernel import Kernel


def make_controller(**cfg):
    kernel = Kernel()
    config = ControllerConfig(**cfg) if cfg else ControllerConfig(
        refresh_enabled=False
    )
    mc = MemoryController(kernel, DDR4_2400, config=config)
    return kernel, mc, AddressMapper(mc.geometry)


def read(mapper, addr, done, **kw):
    return Request(
        addr=mapper.decode(addr),
        type=RequestType.READ,
        on_complete=lambda r, t: done.append((r.req_id, t)),
        **kw,
    )


def write(mapper, addr, done, **kw):
    return Request(
        addr=mapper.decode(addr),
        type=RequestType.WRITE,
        on_complete=lambda r, t: done.append((r.req_id, t)),
        **kw,
    )


class TestBasicTiming:
    def test_single_read_latency(self):
        k, mc, am = make_controller()
        done = []
        mc.submit(read(am, 0, done))
        k.run()
        # ACT@0, RD@tRCD, data ends at tRCD + CL + tBL
        assert done[0][1] == 17 + 17 + 4

    def test_row_hit_read_pipelines(self):
        k, mc, am = make_controller()
        done = []
        for i in range(4):
            mc.submit(read(am, i * 64, done))
        k.run()
        times = sorted(t for _, t in done)
        # same bank: consecutive CAS at tCCD_L
        assert times[1] - times[0] == DDR4_2400.tCCD_L
        assert mc.stats.acts == 1
        assert mc.stats.row_hits == 4

    def test_different_banks_reach_bus_rate(self):
        k, mc, am = make_controller()
        done = []
        for b in range(8):
            mc.submit(read(am, b * 8192, done))
        k.run()
        times = sorted(t for _, t in done)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # bank-interleaved reads stream at the burst length
        assert min(gaps) == DDR4_2400.tBL
        assert mc.stats.acts == 8

    def test_row_conflict_requires_precharge(self):
        k, mc, am = make_controller()
        done = []
        row_stride = 8192 * 16 * 2  # same bank, next row
        mc.submit(read(am, 0, done))
        mc.submit(read(am, row_stride, done))
        k.run()
        assert mc.stats.row_conflicts == 1
        assert mc.stats.precharges >= 1
        assert mc.stats.acts == 2

    def test_frfcfs_reorders_row_hit_first(self):
        k, mc, am = make_controller()
        done = []
        row_stride = 8192 * 16 * 2
        r_conflict = read(am, row_stride, done)
        r_hit = read(am, 64, done)
        mc.submit(read(am, 0, done))  # opens the row
        mc.submit(r_conflict)  # older, needs PRE+ACT
        mc.submit(r_hit)  # younger, row hit
        k.run()
        finish = {rid: t for rid, t in done}
        assert finish[r_hit.req_id] < finish[r_conflict.req_id]


class TestWrites:
    def test_writes_complete(self):
        k, mc, am = make_controller()
        done = []
        for i in range(8):
            mc.submit(write(am, i * 64, done))
        k.run()
        assert len(done) == 8
        assert mc.stats.writes == 8

    def test_write_then_read_same_rank_pays_twtr(self):
        k, mc, am = make_controller()
        done = []
        mc.submit(write(am, 0, done))
        k.run()
        t_write_issue = mc.stats.writes
        mc.submit(read(am, 64, done))
        k.run()
        # the read's completion reflects the tWTR turnaround
        write_done = done[0][1]
        read_done = done[1][1]
        assert read_done > write_done

    def test_write_drain_watermarks(self):
        k, mc, am = make_controller(
            write_high_watermark=4, write_low_watermark=1,
            refresh_enabled=False,
        )
        done = []
        reads = []
        for i in range(6):
            mc.submit(write(am, i * 64, done))
        mc.submit(read(am, 1 << 20, reads and None or done))
        k.run()
        assert mc.stats.writes == 6

    def test_queue_capacity_enforced(self):
        k, mc, am = make_controller(
            write_queue_capacity=2, refresh_enabled=False
        )
        done = []
        mc.submit(write(am, 0, done))
        mc.submit(write(am, 64, done))
        bad = write(am, 128, done)
        assert not mc.can_accept(bad)
        with pytest.raises(RuntimeError):
            mc.submit(bad)


class TestStrideMode:
    def test_mode_switch_charged_once_per_batch(self):
        k, mc, am = make_controller()
        done = []
        for i in range(8):
            mc.submit(
                read(am, i * 256, done, io_mode=IOMode.STRIDE, gather=4)
            )
        k.run()
        assert mc.stats.mode_switches == 1
        assert mc.stats.gather_reads == 8
        assert mc.stats.stride_mode_reads == 8

    def test_mode_switch_back_and_forth(self):
        k, mc, am = make_controller()
        done = []
        mc.submit(read(am, 0, done))
        k.run()
        mc.submit(read(am, 64, done, io_mode=IOMode.STRIDE, gather=4))
        k.run()
        mc.submit(read(am, 128, done))
        k.run()
        assert mc.stats.mode_switches == 2

    def test_gather_read_single_burst_occupancy(self):
        """A gather returns G elements but occupies one burst slot."""
        k, mc, am = make_controller()
        done = []
        for i in range(4):
            mc.submit(
                read(am, i * 64, done, io_mode=IOMode.STRIDE, gather=8)
            )
        k.run()
        times = sorted(t for _, t in done)
        assert times[1] - times[0] == DDR4_2400.tCCD_L

    def test_column_activation_conflicts_with_row(self):
        """SAM-sub/RC-NVM: a column-wise open conflicts with row-wise."""
        k, mc, am = make_controller()
        done = []
        mc.submit(read(am, 0, done))
        col = read(am, 0, done, row_kind=RowKind.COLUMN)
        mc.submit(col)
        mc.submit(read(am, 64, done))
        k.run()
        # opening the column-subarray closes the row; the third read
        # must re-activate
        assert mc.stats.row_conflicts >= 1
        assert mc.stats.col_acts == 1

    def test_internal_bursts_extend_bank_occupancy(self):
        k, mc, am = make_controller()
        plain, heavy = [], []
        for i in range(4):
            mc.submit(read(am, i * 64, plain))
        k.run()
        t_plain = k.now
        k2, mc2, _ = make_controller()
        for i in range(4):
            mc2.submit(
                Request(
                    addr=am.decode(i * 64),
                    type=RequestType.READ,
                    internal_bursts=3,
                    on_complete=lambda r, t: heavy.append(t),
                )
            )
        k2.run()
        assert k2.now > t_plain


class TestRefresh:
    def test_refresh_issued_periodically(self):
        k, mc, am = make_controller(refresh_enabled=True)
        done = []
        # keep the controller busy past several tREFI
        def feed(i=[0]):
            if i[0] < 2000:
                req = read(am, (i[0] % 256) * 64, done)
                if mc.can_accept(req):
                    mc.submit(req)
                    i[0] += 1
                k.schedule(16, feed)
        k.schedule_at(0, feed)
        k.run(max_events=3_000_000)
        assert mc.stats.refreshes > 0

    def test_no_refresh_for_rram(self):
        from repro.dram.timing import RRAM

        kernel = Kernel()
        mc = MemoryController(kernel, RRAM)
        am = AddressMapper(mc.geometry)
        done = []
        for i in range(32):
            mc.submit(read(am, i * 64, done))
        kernel.run()
        assert mc.stats.refreshes == 0


class TestStats:
    def test_avg_read_latency(self):
        k, mc, am = make_controller()
        done = []
        mc.submit(read(am, 0, done))
        k.run()
        assert mc.stats.avg_read_latency == 38

    def test_idle(self):
        k, mc, am = make_controller()
        assert mc.idle()
        done = []
        mc.submit(read(am, 0, done))
        assert not mc.idle()
        k.run()
        assert mc.idle()


class TestPagePolicy:
    def test_closed_page_precharges_after_cas(self):
        k, mc, am = make_controller(
            page_policy="closed", refresh_enabled=False
        )
        done = []
        for i in range(4):
            mc.submit(read(am, i * 64, done))
        k.run()
        # every column command re-activates under closed page
        assert mc.stats.acts == 4
        assert mc.stats.row_hits == 4  # CAS counted as served

    def test_open_page_faster_for_streams(self):
        k1, mc1, am = make_controller(refresh_enabled=False)
        done = []
        for i in range(16):
            mc1.submit(read(am, i * 64, done))
        k1.run()
        k2, mc2, _ = make_controller(
            page_policy="closed", refresh_enabled=False
        )
        done2 = []
        for i in range(16):
            mc2.submit(read(am, i * 64, done2))
        k2.run()
        assert k1.now < k2.now


class TestCriticalWordFirst:
    def test_early_restart_shortens_completion(self):
        k, mc, am = make_controller(refresh_enabled=False)
        done = []
        req = read(am, 0, done)
        req.early_restart = True
        mc.submit(req)
        k.run()
        # completes tBL/2 before the end of the burst
        assert done[0][1] == 17 + 17 + 4 - DDR4_2400.tBL // 2

    def test_no_early_restart_for_writes(self):
        k, mc, am = make_controller(refresh_enabled=False)
        done = []
        req = write(am, 0, done)
        req.early_restart = True
        mc.submit(req)
        k.run()
        assert done[0][1] == mc.channel.data_free  # full transfer time

    def test_scheme_traits_drive_early_restart(self):
        from repro.core import make_scheme

        cwf = make_scheme("SAM-en").lower_read(0)[0]
        no_cwf = make_scheme("SAM-IO").lower_read(0)[0]
        assert cwf.early_restart and not no_cwf.early_restart
