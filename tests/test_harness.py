"""Tests for the experiment harness (small configurations)."""

import pytest

from repro.harness.figure12 import run_figure12
from repro.harness.figure13 import CLASSES, run_figure13
from repro.harness.figure14 import (
    run_figure14a,
    run_figure14b,
    run_figure14c,
)
from repro.harness.figure15 import (
    run_record_size_sweep,
    run_selectivity_sweep,
)
from repro.harness.reliability import run_reliability
from repro.workloads import geomean, make_tables


class TestWorkload:
    def test_make_tables_shapes(self):
        tables = make_tables(100, 200)
        assert tables["Ta"].n_records == 100
        assert tables["Tb"].n_records == 200

    def test_geomean(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1, 0])


class TestFigure12:
    def test_small_run(self):
        result = run_figure12(
            n_ta=128,
            n_tb=128,
            designs=["SAM-en", "SAM-sub"],
            queries=["Q3", "Qs1"],
            include_ideal=True,
        )
        assert set(result.speedups) == {"SAM-en", "SAM-sub", "ideal"}
        assert result.speedups["SAM-en"]["Q3"] > 1.5
        assert result.speedups["SAM-en"]["Qs1"] == pytest.approx(1.0,
                                                                 abs=0.05)
        text = result.render()
        assert "Gmean(Q)" in text and "Gmean(Qs)" in text

    def test_gmean_helpers(self):
        result = run_figure12(
            n_ta=128, n_tb=128, designs=["SAM-en"],
            queries=["Q3", "Q4"], include_ideal=False,
        )
        g = result.q_gmean("SAM-en")
        assert g == pytest.approx(
            geomean(result.speedups["SAM-en"].values())
        )


class TestFigure13:
    def test_classes_cover_benchmark(self):
        names = [q for qs in CLASSES.values() for q in qs]
        assert len(names) == 18

    def test_small_run(self):
        result = run_figure13(
            n_ta=64, n_tb=128, designs=["baseline", "SAM-IO"]
        )
        cls = "Read(Q1-Q10)"
        assert result.efficiency[cls]["baseline"] == pytest.approx(1.0)
        assert result.efficiency[cls]["SAM-IO"] > 1.2
        assert result.power_mw[cls]["SAM-IO"]["total"] > result.power_mw[
            cls
        ]["baseline"]["total"]


class TestFigure14:
    def test_substrate_swap(self):
        result = run_figure14a(
            n_ta=128, n_tb=128,
            designs=["SAM-en", "RC-NVM-wd"],
            queries=["Q3", "Qs1"],
        )
        # SAM on DRAM beats SAM on NVM; both substrates run
        assert result.speedups["DRAM"]["SAM-en"] > result.speedups["NVM"][
            "SAM-en"
        ]
        assert "RC-NVM-wd" in result.speedups["NVM"]

    def test_granularity_ordering(self):
        result = run_figure14b(
            n_ta=128, n_tb=128, designs=["SAM-en"], queries=["Q3"]
        )
        assert (
            result.speedups[4]["SAM-en"]
            > result.speedups[8]["SAM-en"]
            > result.speedups[16]["SAM-en"]
        )

    def test_area_inventory(self):
        designs = run_figure14c()
        assert designs["SAM-IO"].silicon_fraction < 0.001
        assert designs["RC-NVM-wd"].silicon_fraction > 0.2


class TestFigure15:
    def test_selectivity_sweep_shape(self):
        panel = run_selectivity_sweep(
            8, n_ta=128, designs=["SAM-en"], selectivities=(0.25, 1.0)
        )
        assert set(panel.points) == {0.25, 1.0}
        for per in panel.points.values():
            assert "SAM-en" in per and "ideal" in per

    def test_record_size_sweep(self):
        panel = run_record_size_sweep(
            n_bytes_total=64 * 1024,
            designs=["SAM-en"],
            record_fields=(8, 128),
        )
        assert set(panel.points) == {8, 128}

    def test_render(self):
        panel = run_selectivity_sweep(
            8, n_ta=128, designs=["SAM-en"], selectivities=(1.0,)
        )
        assert "selectivity" in panel.render()


class TestReliability:
    def test_gs_dram_unprotected(self):
        rows = run_reliability(trials=50)
        assert not rows["GS-DRAM"].strided_codewords_intact
        assert rows["GS-DRAM"].chip_fault_protection == 0.0

    def test_sam_fully_protected(self):
        rows = run_reliability(trials=50)
        for design in ("SAM-sub", "SAM-IO", "SAM-en"):
            assert rows[design].strided_codewords_intact
            assert rows[design].chip_fault_protection == 1.0
            assert rows[design].double_chip_protection == 1.0


class TestFigure13Internals:
    def test_power_breakdown_components_sum(self):
        result = run_figure13(
            n_ta=64, n_tb=64, designs=["baseline"]
        )
        for cls, per in result.power_mw.items():
            parts = per["baseline"]
            assert parts["total"] == pytest.approx(
                parts["background"] + parts["rdwr"] + parts["act"],
                rel=1e-6,
            )


class TestSSCDSDLineCodec:
    def test_line_as_two_wide_codewords(self):
        import random

        from repro.ecc.chipkill import SSCDSDCodec, decode_line, encode_line

        rng = random.Random(9)
        codec = SSCDSDCodec()
        line = bytes(rng.randrange(256) for _ in range(64))
        parity = encode_line(line, codec)
        assert len(parity) == 8  # 2 codewords x 4 parity bytes
        bad = bytearray(line)
        bad[5] ^= 0x77  # one chip of the first wide codeword
        decoded, reports = decode_line(bytes(bad), parity, codec)
        assert decoded == line
        assert len(reports) == 2
