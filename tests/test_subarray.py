"""Subarray-generic bank model: unit, protocol-rule and property tests.

Covers the three layers the SALP refactor touched:

* :class:`~repro.dram.bank.SubarrayState` / :class:`~repro.dram.bank.BankState`
  -- per-subarray gates, shared-structure gates, designation, capacity,
  refresh blackout, and the degenerate ``salp="none"`` legacy API;
* the protocol checker's subarray rules (tRA, tSA_SEL, capacity,
  designation, SA_SEL legality) on hand-built command streams;
* the readiness-index invalidation contract: a hypothesis property that
  no mutation of scheduling-visible state ever leaves the
  ``(bank.version, sub.version)`` cache key unchanged.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.check.protocol import TimingProtocolChecker
from repro.dram.bank import FOREVER, BankState, SubarrayState
from repro.dram.commands import Command, RowKind
from repro.dram.geometry import Geometry
from repro.dram.timing import DDR4_2400

T = DDR4_2400
#: rows 0 / 512 / 1024 live in subarrays 0 / 1 / 2 at the test geometry
SUBS = 4
ROWS_PER_SUB = 512
ROW0 = (RowKind.ROW, 0)
ROW1 = (RowKind.ROW, ROWS_PER_SUB)
ROW2 = (RowKind.ROW, 2 * ROWS_PER_SUB)


def make_bank(salp: str) -> BankState:
    return BankState(T, salp=salp, subarrays_per_bank=SUBS,
                     rows_per_subarray=ROWS_PER_SUB)


# ------------------------------------------------------------ construction

def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="salp"):
        BankState(T, salp="salp3")


def test_none_mode_is_single_subarray():
    bank = BankState(T)
    assert bank.n_subarrays == 1
    assert bank.open_capacity == 1
    assert bank.sub_id_for(123456) == 0


def test_subarrays_created_lazily():
    bank = make_bank("masa")
    assert set(bank.subarrays) == {0}
    bank.issue_act(10, ROW2)
    assert set(bank.subarrays) == {0, 2}


def test_synthetic_rows_fold_into_range():
    bank = make_bank("masa")
    huge = SUBS * ROWS_PER_SUB * 7 + 3 * ROWS_PER_SUB
    assert bank.sub_id_for(huge) == 3


# ------------------------------------------------------- legacy (none) mode

def test_none_mode_legacy_field_api():
    bank = BankState(T)
    sub = bank.subarrays[0]
    bank.issue_act(100, ROW0)
    assert bank.open_row == ROW0
    assert bank.is_open(ROW0)
    assert bank.next_read == sub.next_read == 100 + T.tRCD
    assert bank.next_pre == 100 + T.tRAS
    assert bank.next_act == FOREVER
    assert bank.last_act == 100
    bank.issue_pre(400)
    assert bank.open_row is None
    assert bank.next_act == 400 + T.tRP
    assert bank.all_closed


def test_subarray_state_gates_match_legacy_bank():
    """One SubarrayState must reproduce the legacy bank field updates."""
    sub = SubarrayState(T)
    sub.issue_act(50, ROW0)
    assert sub.earliest(Command.RD) == 50 + T.tRCD
    assert sub.earliest(Command.PRE) == 50 + T.tRAS
    sub.issue_read(60, extra_internal=2)
    tail = 2 * T.tCCD_L
    assert sub.next_read == 60 + T.tCCD_L + tail
    assert sub.next_pre == max(50 + T.tRAS, 60 + T.tRTP + tail)
    sub.issue_write(80)
    assert sub.next_pre >= 80 + T.CWL + T.tBL + T.tWR


# ------------------------------------------------------------- SALP modes

def test_capacity_per_mode():
    assert make_bank("salp1").open_capacity == 1
    assert make_bank("salp2").open_capacity == 2
    assert make_bank("masa").open_capacity == SUBS


def test_salp1_overlapped_precharge():
    """SALP-1's point: after PRE, an ACT to a *different* subarray is
    gated by the shared-logic tRA re-arm, not the local tRP."""
    bank = make_bank("salp1")
    bank.issue_act(0, ROW0)
    bank.issue_pre(100, bank.sub(0))
    # the precharged subarray pays its local tRP ...
    assert bank.sub(0).next_act == 100 + T.tRP
    # ... but subarray 1 only waits for the row logic (armed at ACT time)
    assert bank.sub(1).next_act == 0
    assert bank.next_any_act == T.tRA
    assert T.tRA < T.tRP  # the overlap is real


def test_victim_is_oldest_open_subarray():
    bank = make_bank("salp2")
    bank.issue_act(0, ROW0)
    bank.issue_act(10, ROW1)
    assert bank.pre_victim(2) == 0          # FIFO: oldest first
    bank.issue_pre(50, bank.sub(0))
    assert bank.pre_victim(2) is None       # under capacity again
    assert list(bank.open_subs) == [1]


def test_newest_act_owns_designation():
    bank = make_bank("salp2")
    bank.issue_act(0, ROW0)
    assert bank.designated == 0
    bank.issue_act(10, ROW1)
    assert bank.designated == 1
    assert bank.open_row == ROW1            # designated sub's row
    bank.issue_pre(50, bank.sub(1))
    assert bank.designated is None          # closing the owner clears it


def test_sa_sel_redesignates_and_paces_column_path():
    bank = make_bank("masa")
    bank.issue_act(0, ROW0)
    bank.issue_act(10, ROW1)
    bank.issue_sa_sel(30, bank.sub(0))
    assert bank.designated == 0
    assert bank.next_sa_sel == 30 + T.tSA_SEL
    assert bank.col_next_read >= 30 + T.tSA_SEL
    assert bank.col_next_write >= 30 + T.tSA_SEL
    assert bank.sa_sels == 1


def test_cas_splits_shared_and_local_gates():
    bank = make_bank("masa")
    bank.issue_act(0, ROW0)
    bank.issue_act(10, ROW1)
    bank.issue_read(40, sub=bank.sub(1))
    # CAS spacing binds the shared column path ...
    assert bank.col_next_read == 40 + T.tCCD_L
    # ... read-to-precharge recovery binds only the accessed subarray
    assert bank.sub(1).next_pre >= 40 + T.tRTP
    assert bank.sub(0).next_pre == 0 + T.tRAS


def test_refresh_blackout_covers_lazy_subarrays():
    bank = make_bank("masa")
    bank.issue_act(0, ROW0)
    bank.refresh(100, T.tRFC)
    assert bank.all_closed
    assert bank.sub(0).next_act >= 100 + T.tRFC
    # a subarray created only after the refresh still sees the blackout
    assert bank.sub(3).next_act == 100 + T.tRFC
    assert bank.next_any_act >= 100 + T.tRFC


def test_snapshot_carries_salp_state():
    bank = make_bank("masa")
    bank.issue_act(0, ROW0)
    bank.issue_act(10, ROW1)
    snap = bank.snapshot()
    assert snap["salp"] == "masa"
    assert snap["designated"] == 1
    assert snap["open_subarrays"] == {0: ROW0, 1: ROW1}
    assert "salp" not in BankState(T).snapshot()


# ----------------------------------------------------- protocol-rule tests

def checker(salp: str) -> TimingProtocolChecker:
    return TimingProtocolChecker(
        T, Geometry(), strict=False, salp=salp
    )


def rules_of(chk: TimingProtocolChecker) -> set:
    return {v.rule for v in chk.violations}


def test_checker_flags_capacity_overflow():
    chk = checker("salp1")
    chk.on_command(0, Command.ACT, rank=0, bank=0, row=ROW0)
    chk.on_command(1000, Command.ACT, rank=0, bank=0, row=ROW1)
    assert "salp-capacity" in rules_of(chk)


def test_checker_flags_tra():
    chk = checker("masa")
    chk.on_command(100, Command.ACT, rank=0, bank=0, row=ROW0)
    chk.on_command(101, Command.ACT, rank=0, bank=0, row=ROW1)
    assert "tRA" in rules_of(chk)


def test_checker_flags_undesignated_cas():
    chk = checker("masa")
    chk.on_command(0, Command.ACT, rank=0, bank=0, row=ROW0)
    chk.on_command(100, Command.ACT, rank=0, bank=0, row=ROW1)
    chk.on_command(200, Command.RD, rank=0, bank=0, row=ROW0)
    assert "cas-undesignated" in rules_of(chk)


def test_checker_flags_tsa_sel_pacing():
    chk = checker("masa")
    chk.on_command(0, Command.ACT, rank=0, bank=0, row=ROW0)
    chk.on_command(100, Command.ACT, rank=0, bank=0, row=ROW1)
    chk.on_command(200, Command.SA_SEL, rank=0, bank=0, row=ROW0)
    chk.on_command(201, Command.RD, rank=0, bank=0, row=ROW0)
    assert "tSA_SEL" in rules_of(chk)


def test_checker_rejects_sa_sel_outside_masa():
    chk = checker("salp1")
    chk.on_command(0, Command.ACT, rank=0, bank=0, row=ROW0)
    chk.on_command(100, Command.SA_SEL, rank=0, bank=0, row=ROW0)
    assert "sa-sel-mode" in rules_of(chk)


def test_checker_rejects_sa_sel_on_closed_subarray():
    chk = checker("masa")
    chk.on_command(0, Command.ACT, rank=0, bank=0, row=ROW0)
    chk.on_command(100, Command.SA_SEL, rank=0, bank=0, row=ROW1)
    assert "sa-sel-on-closed" in rules_of(chk)


def test_checker_rejects_sa_sel_without_row():
    chk = checker("masa")
    chk.on_command(0, Command.SA_SEL, rank=0, bank=0)
    assert "sa-sel-without-row" in rules_of(chk)


def test_checker_accepts_clean_masa_stream():
    chk = checker("masa")
    chk.on_command(0, Command.ACT, rank=0, bank=0, row=ROW0)
    chk.on_command(50, Command.ACT, rank=0, bank=0, row=ROW1)
    chk.on_command(100, Command.SA_SEL, rank=0, bank=0, row=ROW0)
    chk.on_command(110, Command.RD, rank=0, bank=0, row=ROW0)
    chk.on_command(200, Command.PRE, rank=0, bank=0, subarray=0)
    chk.on_command(210, Command.PRE, rank=0, bank=0, subarray=1)
    assert chk.violations == []


# --------------------------------------- version-invalidation property

def _visible_state(bank: BankState) -> tuple:
    """Everything the scheduler may read when pricing a request."""
    return (
        tuple(sorted(
            (i, s.open_row, s.next_act, s.next_read, s.next_write,
             s.next_pre, s.last_act)
            for i, s in bank.subarrays.items()
        )),
        bank.designated,
        bank.next_any_act,
        bank.next_sa_sel,
        bank.col_next_read,
        bank.col_next_write,
        tuple(bank.open_subs.items()),
        bank.act_floor,
    )


def _version_keys(bank: BankState) -> dict:
    """The readiness-cache key of every materialized subarray."""
    return {
        i: (bank.version, s.version) for i, s in bank.subarrays.items()
    }


_OP = st.tuples(
    st.sampled_from(("act", "read", "write", "pre", "sa_sel", "refresh")),
    st.integers(min_value=0, max_value=SUBS - 1),
    st.integers(min_value=1, max_value=50),
)


@pytest.mark.parametrize("salp", ("none", "salp1", "salp2", "masa"))
@given(ops=st.lists(_OP, min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_mutations_never_leave_stale_readiness_keys(salp, ops):
    """The invalidation contract of the incremental FR-FCFS index: if a
    command or refresh changes any scheduling-visible bank/subarray
    state, the ``(bank.version, sub.version)`` key of every affected
    subarray must change too -- otherwise the controller would keep
    serving a cached readiness entry computed against the old state."""
    bank = BankState(T, salp=salp, subarrays_per_bank=SUBS,
                     rows_per_subarray=ROWS_PER_SUB)
    now = 0
    for name, sub_id, step in ops:
        now += step
        if salp == "none":
            sub_id = 0
        sub = bank.sub(sub_id)
        row = (RowKind.ROW, sub_id * ROWS_PER_SUB)
        before_state = _visible_state(bank)
        before_keys = _version_keys(bank)
        if name == "act":
            bank.issue_act(now, row, sub)
        elif name == "read":
            bank.issue_read(now, sub=sub)
        elif name == "write":
            bank.issue_write(now, sub=sub)
        elif name == "pre":
            bank.issue_pre(now, sub)
        elif name == "sa_sel":
            if salp == "none":
                continue
            bank.issue_sa_sel(now, sub)
        elif name == "refresh":
            bank.refresh(now, T.tRFC)
        after_state = _visible_state(bank)
        if after_state == before_state:
            continue
        after_keys = _version_keys(bank)
        for i, key in before_keys.items():
            assert after_keys[i] != key, (
                f"{name} on subarray {sub_id} at {now} changed visible "
                f"state but left subarray {i}'s readiness key at {key}"
            )
