"""Property-based tests (hypothesis) on the core data structures."""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.dram.address import AddressMapper
from repro.dram.datapath import RankDatapath
from repro.dram.iobuffer import (
    deserialize_x4,
    pack_line_default,
    pack_line_transposed,
    serialize_x4,
    unpack_line_default,
    unpack_line_transposed,
)
from repro.ecc import hamming
from repro.ecc.chipkill import SSCCodec
from repro.ecc.injection import FAULT_MODELS, run_campaign
from repro.ecc.rs import ReedSolomon
from repro.cache.sector import SectorCache
from repro.vm import PAGE_SIZE, sam_io_mapping, sam_sub_mapping

lines = st.binary(min_size=64, max_size=64)
blocks = st.integers(min_value=0, max_value=(1 << 32) - 1)
# the module holds 2^35 bytes; addresses beyond that wrap at the row level
addresses = st.integers(min_value=0, max_value=(1 << 35) - 1)


@given(addresses)
def test_address_mapper_roundtrip(addr):
    mapper = AddressMapper()
    assert mapper.encode(mapper.decode(addr)) == addr


@given(blocks)
def test_x4_serialization_roundtrip(block):
    assert deserialize_x4(serialize_x4(block)) == block


@given(lines)
def test_default_packing_roundtrip(line):
    assert unpack_line_default(pack_line_default(line)) == line


@given(lines)
def test_transposed_packing_roundtrip(line):
    assert unpack_line_transposed(pack_line_transposed(line)) == line


@given(
    st.lists(lines, min_size=4, max_size=4),
    st.integers(min_value=0, max_value=3),
    st.sampled_from(["default", "transposed"]),
)
@settings(max_examples=25, deadline=None)
def test_gather_equals_strided_read(four_lines, sector, layout):
    """The headline functional property of SAM: one stride-mode burst
    returns exactly the bytes a software strided read would load."""
    dp = RankDatapath(layout=layout)
    for c, line in enumerate(four_lines):
        dp.write_line(0, 0, c, line)
    got = dp.gather_sectors(0, 0, [0, 1, 2, 3], sector)
    want = [line[16 * sector : 16 * sector + 16] for line in four_lines]
    assert got == want


@given(st.lists(st.integers(0, 255), min_size=16, max_size=16))
def test_ssc_parity_deterministic_and_valid(data):
    codec = SSCCodec()
    data = bytes(data)
    parity = codec.encode(data)
    assert codec.encode(data) == parity
    assert codec.check(data, parity)


@given(
    st.lists(st.integers(0, 255), min_size=16, max_size=16),
    st.integers(0, 17),
    st.integers(1, 255),
)
def test_ssc_corrects_any_symbol_error(data, position, mask):
    codec = SSCCodec()
    data = bytes(data)
    parity = codec.encode(data)
    word = bytearray(data + parity)
    word[position] ^= mask
    report = codec.decode(bytes(word[:16]), bytes(word[16:]))
    assert not report.detected_uncorrectable
    assert report.data == data


@given(st.integers(0, (1 << 64) - 1), st.integers(0, 63))
def test_hamming_corrects_any_bit(data, bit):
    _, check = hamming.encode(data)
    assert hamming.decode(data ^ (1 << bit), check).data == data


@given(
    st.lists(st.integers(0, 255), min_size=16, max_size=16),
)
def test_rs_systematic(data):
    rs = ReedSolomon(18, 16, 8)
    assert rs.encode(data)[:16] == data


@given(addresses, st.sampled_from([4, 8]))
def test_stride_mapping_involution(addr, granularity):
    for make in (sam_sub_mapping, sam_io_mapping):
        mapping = make(granularity)
        assert mapping.apply(mapping.apply(addr)) == addr


@given(addresses, st.sampled_from([4, 8]))
def test_stride_mapping_preserves_strided_offset(addr, granularity):
    """The 16B intra-codeword offset is never remapped."""
    mapping = sam_io_mapping(granularity)
    assert mapping.apply(addr) % 16 == addr % 16


@given(
    st.lists(
        st.tuples(
            st.integers(0, 31),  # line index
            st.integers(1, 15),  # sector mask
            st.booleans(),  # dirty
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_sector_cache_invariants(operations):
    """After any fill sequence: dirty implies valid, and a lookup hit
    implies all requested sectors were filled at some point."""
    cache = SectorCache(size_bytes=8 * 64, ways=2, sectors=4)
    for line_idx, mask, dirty in operations:
        cache.fill(line_idx * 64, mask, dirty=dirty)
        for cache_set in cache._sets:
            for state in cache_set.values():
                assert state.dirty_mask & ~state.valid_mask == 0
        hit, missing = cache.lookup(line_idx * 64, mask)
        assert hit and missing == 0


@given(st.integers(0, PAGE_SIZE - 1))
def test_stride_translation_bijective(offset):
    mapping = sam_sub_mapping(4)
    mapped = mapping.apply(offset)
    assert mapping.apply(mapped) == offset


# ---------------------------------------------------------------------------
# Fault-injection round trips: the Monte-Carlo campaign of ecc/injection.py
# must agree with an independent replay of each trial's rng stream and
# decode classification.
# ---------------------------------------------------------------------------

def _replay_trial(codec, fault, seed):
    """Reproduce one ``run_campaign(trials=1, seed)`` trial by hand."""
    rng = random.Random(seed)
    data = bytes(rng.randrange(256) for _ in range(codec.data_bytes))
    parity = codec.encode(data)
    masks = fault.generate(rng, codec.n)
    bad_data = bytes(b ^ masks[i] for i, b in enumerate(data))
    bad_parity = bytes(
        b ^ masks[codec.data_bytes + i] for i, b in enumerate(parity)
    )
    report = codec.decode(bad_data, bad_parity)
    if report.detected_uncorrectable:
        outcome = "detected"
    elif report.data == data:
        outcome = "corrected"
    else:
        outcome = "silent"
    return data, report, outcome


@given(
    st.integers(0, 2**32 - 1),
    st.sampled_from(sorted(FAULT_MODELS)),
)
@settings(max_examples=80, deadline=None)
def test_campaign_tally_matches_replayed_classification(seed, model_name):
    """ReliabilityTally accounting == a per-trial replay of the decode."""
    fault = FAULT_MODELS[model_name]
    tally = run_campaign(SSCCodec(), fault, trials=1, seed=seed)
    _, _, outcome = _replay_trial(SSCCodec(), fault, seed)
    assert tally.trials == 1
    assert tally.corrected + tally.detected + tally.silent == 1
    assert (tally.corrected, tally.detected, tally.silent) == tuple(
        int(outcome == kind) for kind in ("corrected", "detected", "silent")
    )
    assert tally.protected_rate == float(outcome != "silent")
    assert tally.silent_rate == float(outcome == "silent")


@given(
    st.integers(0, 2**32 - 1),
    st.sampled_from(["single_bit", "chip", "dq"]),
)
@settings(max_examples=80, deadline=None)
def test_single_chip_faults_always_corrected_bit_exact(seed, model_name):
    """Any single-chip fault model is within SSC's guarantee: the decode
    must return the original bytes and touch at most one symbol."""
    codec = SSCCodec()
    data, report, outcome = _replay_trial(
        codec, FAULT_MODELS[model_name], seed
    )
    assert outcome == "corrected"
    assert report.data == data
    assert not report.detected_uncorrectable
    assert len(report.corrected_chips) <= 1


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=80, deadline=None)
def test_double_chip_fault_never_reported_corrected(seed):
    """Two failed chips exceed SSC's distance-3 guarantee: the campaign
    may detect or silently miscorrect, but must never tally a trial as
    corrected (that would imply a weight-2 error was weight <= 1)."""
    tally = run_campaign(
        SSCCodec(), FAULT_MODELS["double_chip"], trials=1, seed=seed
    )
    assert tally.corrected == 0
    assert tally.detected + tally.silent == 1


# ---------------------------------------------------------------------------
# Wrong-shape inputs fail loudly with descriptive messages.
# ---------------------------------------------------------------------------

def test_rs_rejects_wrong_codeword_length():
    rs = ReedSolomon(18, 16, 8)
    with pytest.raises(ValueError, match="expected 18 codeword symbols, got 3"):
        rs.syndromes([1, 2, 3])
    with pytest.raises(ValueError, match="expected 18 symbols, got 4"):
        rs.decode([0] * 4)
    with pytest.raises(ValueError, match="expected 16 data symbols, got 17"):
        rs.encode([0] * 17)


def test_rs_rejects_out_of_field_symbols():
    rs = ReedSolomon(18, 16, 8)
    with pytest.raises(ValueError, match=r"symbol 256 out of range for GF\(2\^8\)"):
        rs.syndromes([0] * 17 + [256])
    with pytest.raises(ValueError, match=r"out of range for GF\(2\^8\)"):
        rs.decode([999] + [0] * 17)


def test_ssc_codec_rejects_wrong_shape():
    codec = SSCCodec()
    with pytest.raises(ValueError, match="16B data \\+ 2B parity, got 15B \\+ 2B"):
        codec.decode(bytes(15), bytes(2))
    with pytest.raises(ValueError, match="got 16B \\+ 3B"):
        codec.check(bytes(16), bytes(3))
    with pytest.raises(ValueError, match="codeword data is 16 bytes, got 12"):
        codec.encode(bytes(12))
